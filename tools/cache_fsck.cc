// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Offline scrub / repair tool for the TreeArtifact cache — the admin
// face of ArtifactCache::Scrub(), and the harness CI's fault-injection
// job drives end to end (corrupt a cache on purpose, assert the scrub
// repairs it, assert a second scrub is clean).
//
//   cache_fsck build <root>           populate <root> with deterministic
//                                     demo artifacts (seeded generators)
//   cache_fsck scrub <root>           recover + verify + repair
//   cache_fsck ls <root>              list manifest keys
//   cache_fsck corrupt <root> [key]   flip one byte in an entry file
//                                     (first key when omitted)
//   cache_fsck kill-manifest <root>   delete MANIFEST (simulated crash)
//
// Exit codes: 0 = cache is clean (nothing to fix), 1 = problems were
// found AND repaired (rerun to confirm 0), 2 = usage error or an
// unrecoverable failure.

#include <cstdio>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "common/status.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/artifact_cache.h"
#include "scalar/scalar_field.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_io.h"

namespace {

using graphscape::ArtifactCache;
using graphscape::ArtifactKey;
using graphscape::Status;
using graphscape::StatusOr;

int Usage() {
  std::fprintf(stderr,
               "usage: cache_fsck build|scrub|ls <root>\n"
               "       cache_fsck corrupt <root> [key]\n"
               "       cache_fsck kill-manifest <root>\n");
  return 2;
}

StatusOr<ArtifactCache> OpenCache(const std::string& root) {
  return ArtifactCache::Open(root);
}

int Build(const std::string& root) {
  StatusOr<ArtifactCache> cache = OpenCache(root);
  if (!cache.ok()) {
    std::fprintf(stderr, "cache_fsck: open: %s\n",
                 cache.status().ToString().c_str());
    return 2;
  }
  // Two seeded graphs, KC field each: enough entries that corruption and
  // recovery of ONE is observable against intact neighbors.
  const struct {
    const char* name;
    uint32_t num_vertices;
    uint64_t seed;
  } kDemos[] = {{"ba-demo", 400, 7}, {"er-demo", 300, 11}};
  for (const auto& demo : kDemos) {
    graphscape::Rng rng(demo.seed);
    const graphscape::Graph g =
        demo.seed == 7
            ? graphscape::BarabasiAlbert(demo.num_vertices, 3, &rng)
            : graphscape::ErdosRenyi(demo.num_vertices, 0.02, &rng);
    const auto kc = graphscape::VertexScalarField::FromCounts(
        "KC", graphscape::CoreNumbers(g));
    graphscape::TreeArtifact artifact;
    artifact.tree =
        graphscape::SuperTree(graphscape::BuildVertexScalarTree(g, kc));
    artifact.field_name = kc.Name();
    artifact.field_values = kc.Values();
    const Status put =
        cache.value().Put(ArtifactKey{demo.name, "KC"}, artifact);
    if (!put.ok()) {
      std::fprintf(stderr, "cache_fsck: put %s: %s\n", demo.name,
                   put.ToString().c_str());
      return 2;
    }
    std::printf("stored %s/KC\n", demo.name);
  }
  return 0;
}

int Scrub(const std::string& root) {
  StatusOr<ArtifactCache> cache = OpenCache(root);
  if (!cache.ok()) {
    std::fprintf(stderr, "cache_fsck: open: %s\n",
                 cache.status().ToString().c_str());
    return 2;
  }
  // Open() itself recovers (sweeps temps, rebuilds a lost manifest,
  // adopts strays); report that work too, or a post-crash scrub would
  // claim the cache was always clean.
  const graphscape::CacheStats& open_stats = cache.value().stats();
  const bool open_repaired = open_stats.temps_swept != 0 ||
                             open_stats.manifest_recovered ||
                             open_stats.strays_adopted != 0 ||
                             open_stats.corrupt_quarantined != 0;
  if (open_repaired) {
    std::printf(
        "open: %llu temps swept, manifest %s, %llu strays adopted, "
        "%llu quarantined\n",
        static_cast<unsigned long long>(open_stats.temps_swept),
        open_stats.manifest_recovered ? "RECOVERED" : "ok",
        static_cast<unsigned long long>(open_stats.strays_adopted),
        static_cast<unsigned long long>(open_stats.corrupt_quarantined));
  }
  StatusOr<graphscape::ScrubReport> report = cache.value().Scrub();
  if (!report.ok()) {
    std::fprintf(stderr, "cache_fsck: scrub: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  const graphscape::ScrubReport& r = report.value();
  std::printf("scrub: %llu checked, %llu ok, %llu temps removed, "
              "%llu missing dropped\n",
              static_cast<unsigned long long>(r.entries_checked),
              static_cast<unsigned long long>(r.entries_ok),
              static_cast<unsigned long long>(r.temps_removed),
              static_cast<unsigned long long>(r.missing_dropped));
  for (const std::string& key : r.quarantined) {
    std::printf("quarantined: %s\n", key.c_str());
  }
  for (const std::string& key : r.adopted) {
    std::printf("adopted: %s\n", key.c_str());
  }
  return (r.Clean() && !open_repaired) ? 0 : 1;
}

int List(const std::string& root) {
  StatusOr<ArtifactCache> cache = OpenCache(root);
  if (!cache.ok()) {
    std::fprintf(stderr, "cache_fsck: open: %s\n",
                 cache.status().ToString().c_str());
    return 2;
  }
  for (const std::string& key : cache.value().Keys()) {
    std::printf("%s\n", key.c_str());
  }
  return 0;
}

int Corrupt(const std::string& root, const std::string& key_arg) {
  StatusOr<ArtifactCache> cache = OpenCache(root);
  if (!cache.ok() || cache.value().Keys().empty()) {
    std::fprintf(stderr, "cache_fsck: no cache entries at %s\n",
                 root.c_str());
    return 2;
  }
  const std::string key =
      key_arg.empty() ? cache.value().Keys().front() : key_arg;
  const std::string path = root + "/entries/" +
                           ArtifactCache::EncodeKey(key) + ".gsta";
  StatusOr<std::string> bytes = graphscape::ReadFileBytes(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "cache_fsck: read %s: %s\n", path.c_str(),
                 bytes.status().ToString().c_str());
    return 2;
  }
  std::string mutated = bytes.value();
  mutated[mutated.size() / 2] =
      static_cast<char>(mutated[mutated.size() / 2] ^ 0x01);
  const Status wrote =
      graphscape::WriteFileBytes(path, mutated, /*sync=*/true);
  if (!wrote.ok()) {
    std::fprintf(stderr, "cache_fsck: write %s: %s\n", path.c_str(),
                 wrote.ToString().c_str());
    return 2;
  }
  std::printf("corrupted %s (flipped one bit mid-file)\n", key.c_str());
  return 0;
}

int KillManifest(const std::string& root) {
  const Status gone = graphscape::RemoveFile(root + "/MANIFEST");
  if (!gone.ok()) {
    std::fprintf(stderr, "cache_fsck: %s\n", gone.ToString().c_str());
    return 2;
  }
  std::printf("removed %s/MANIFEST\n", root.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string root = argv[2];
  if (command == "build") return Build(root);
  if (command == "scrub") return Scrub(root);
  if (command == "ls") return List(root);
  if (command == "corrupt") return Corrupt(root, argc > 3 ? argv[3] : "");
  if (command == "kill-manifest") return KillManifest(root);
  return Usage();
}
