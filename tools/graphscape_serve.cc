// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// graphscape_serve: the Graphscape query daemon. Serves the wire
// protocol of docs/SERVICE.md over 127.0.0.1 from an ArtifactCache
// directory — the one cache_fsck and the figure benches populate.
//
//   graphscape_serve --cache=DIR [--port=N] [--threads=N]
//                    [--tile-cache-mb=N] [--budget-mb=N]
//                    [--deadline-s=F] [--port-file=PATH]
//
// --cache defaults to $GRAPHSCAPE_CACHE_DIR. --port=0 (the default)
// binds an ephemeral port; the chosen port is printed on stdout and,
// with --port-file, written there too so scripts can wait for readiness
// by polling the file (the CI service-smoke job does exactly this).
// --threads=0 means DefaultThreads() (GRAPHSCAPE_THREADS, else
// hardware_concurrency). SIGINT/SIGTERM stop accepting, drain, and exit
// 0. Flag reference with operational context: docs/OPERATIONS.md.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/status.h"
#include "service/server.h"
#include "service/service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

// --name=value string flag; true when `arg` matched `name`.
bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --cache=DIR [--port=N] [--threads=N] [--tile-cache-mb=N]\n"
      "          [--budget-mb=N] [--deadline-s=F] [--port-file=PATH]\n"
      "Serves the Graphscape query protocol (docs/SERVICE.md) from the\n"
      "artifact cache at DIR ($GRAPHSCAPE_CACHE_DIR if --cache is "
      "omitted).\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using graphscape::Status;
  using graphscape::StatusOr;
  namespace service = graphscape::service;

  std::string cache_dir;
  if (const char* env = std::getenv("GRAPHSCAPE_CACHE_DIR")) cache_dir = env;
  std::string port_file;
  long port = 0;
  long threads = 0;
  long tile_cache_mb = 64;
  long budget_mb = 256;
  double deadline_s = 10.0;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--cache", &value)) {
      cache_dir = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      port = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      threads = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--tile-cache-mb", &value)) {
      tile_cache_mb = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--budget-mb", &value)) {
      budget_mb = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--deadline-s", &value)) {
      deadline_s = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      port_file = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (cache_dir.empty() || port < 0 || port > 65535 || threads < 0 ||
      tile_cache_mb <= 0 || budget_mb <= 0) {
    return Usage(argv[0]);
  }

  service::QueryService::Options service_options;
  service_options.tile_cache_bytes =
      static_cast<uint64_t>(tile_cache_mb) << 20;
  service_options.request_budget_bytes =
      static_cast<uint64_t>(budget_mb) << 20;
  service_options.request_deadline_seconds = deadline_s;
  StatusOr<std::unique_ptr<service::QueryService>> opened =
      service::QueryService::Open(cache_dir, service_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "graphscape_serve: cannot open cache %s: %s\n",
                 cache_dir.c_str(), opened.status().message().c_str());
    return 1;
  }
  std::unique_ptr<service::QueryService> query_service =
      std::move(opened).value();

  service::ServiceServer::Options server_options;
  server_options.port = static_cast<uint16_t>(port);
  server_options.num_threads = static_cast<uint32_t>(threads);
  service::ServiceServer server(query_service.get(), server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "graphscape_serve: %s\n",
                 started.message().c_str());
    return 1;
  }

  std::printf("graphscape_serve: cache=%s port=%u threads=%u\n",
              cache_dir.c_str(), server.port(), server.num_threads());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Written after Start(), so a script that sees the file can connect
    // immediately — the port inside is already listening.
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "graphscape_serve: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("graphscape_serve: stopping\n");
  server.Stop();
  return 0;
}
