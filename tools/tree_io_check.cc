// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// CI's cross-compiler artifact check for scalar/tree_io.h. Two modes:
//
//   tree_io_check write <dir>   build KC (vertex) and KT (edge) super
//                               trees for two registry datasets and
//                               save them as .gsta artifacts;
//   tree_io_check verify <dir>  load every artifact written above,
//                               re-serialize, and fail unless the bytes
//                               are identical to the file on disk.
//
// The CI workflow runs `write` on the gcc leg and `verify` on the clang
// leg against the downloaded artifacts, pinning the format (and the tree
// construction itself) across compilers. Exit code 0 on success.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"

namespace {

using namespace graphscape;

struct NamedArtifact {
  std::string filename;
  TreeArtifact artifact;
};

// The artifact set both modes agree on: deterministic datasets, one
// vertex tree and one edge tree each.
std::vector<NamedArtifact> BuildArtifacts() {
  std::vector<NamedArtifact> artifacts;
  for (const DatasetId id : {DatasetId::kGrQc, DatasetId::kWikiVote}) {
    const Dataset ds = MakeDataset(id);
    {
      NamedArtifact named;
      named.filename = std::string(ds.spec.name) + "_kc.gsta";
      const VertexScalarField kc =
          VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
      named.artifact.tree = SuperTree(BuildVertexScalarTree(ds.graph, kc));
      named.artifact.field_name = kc.Name();
      named.artifact.field_values = kc.Values();
      artifacts.push_back(std::move(named));
    }
    {
      NamedArtifact named;
      named.filename = std::string(ds.spec.name) + "_kt.gsta";
      const EdgeScalarField kt =
          EdgeScalarField::FromCounts("KT", TrussNumbers(ds.graph));
      named.artifact.tree = SuperTree(BuildEdgeScalarTree(ds.graph, kt));
      named.artifact.field_name = kt.Name();
      named.artifact.field_values = kt.Values();
      artifacts.push_back(std::move(named));
    }
  }
  return artifacts;
}

int Write(const std::string& dir) {
  for (const NamedArtifact& named : BuildArtifacts()) {
    const std::string path = dir + "/" + named.filename;
    const Status status = SaveTreeArtifact(named.artifact, path);
    if (!status.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%u super nodes, %u elements)\n", path.c_str(),
                named.artifact.tree.NumNodes(),
                named.artifact.tree.NumElements());
  }
  return 0;
}

int Verify(const std::string& dir) {
  int failures = 0;
  for (const NamedArtifact& named : BuildArtifacts()) {
    const std::string path = dir + "/" + named.filename;
    const StatusOr<std::string> read = ReadFileBytes(path);
    if (!read.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   read.status().ToString().c_str());
      ++failures;
      continue;
    }
    const std::string& on_disk = read.value();
    const auto loaded = DeserializeTreeArtifact(on_disk);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      ++failures;
      continue;
    }
    const StatusOr<std::string> reserialized =
        SerializeTreeArtifact(loaded.value());
    if (!reserialized.ok() || reserialized.value() != on_disk) {
      std::fprintf(stderr, "FAIL %s: re-serialization differs\n",
                   path.c_str());
      ++failures;
      continue;
    }
    // The strongest cross-compiler pin: this leg's own build of the same
    // dataset must serialize to the other leg's bytes exactly.
    const StatusOr<std::string> rebuilt =
        SerializeTreeArtifact(named.artifact);
    if (!rebuilt.ok() || rebuilt.value() != on_disk) {
      std::fprintf(stderr,
                   "FAIL %s: locally rebuilt tree serializes differently\n",
                   path.c_str());
      ++failures;
      continue;
    }
    std::printf("OK %s (%u super nodes, %u elements)\n", path.c_str(),
                loaded.value().tree.NumNodes(),
                loaded.value().tree.NumElements());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "write") != 0 &&
                    std::strcmp(argv[1], "verify") != 0)) {
    std::fprintf(stderr, "usage: %s write|verify <dir>\n", argv[0]);
    return 2;
  }
  return std::strcmp(argv[1], "write") == 0 ? Write(argv[2])
                                            : Verify(argv[2]);
}
