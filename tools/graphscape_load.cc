// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// graphscape_load: closed-loop load generator for graphscape_serve.
//
//   graphscape_load --port=N [--host=H] [--clients=N] [--requests=N]
//                   [--seed=N] [--zipf=F] [--classes=LIST]
//
// Each of --clients worker threads opens one connection and issues
// --requests requests back-to-back (closed loop: the next request waits
// for the previous response). Dataset popularity is zipf(--zipf) over
// the corpus discovered from the daemon's own STATS verb — no side
// channel; whatever the cache serves is what gets load. --classes picks
// the query mix from {tree,peaks,toppeaks,members,correlation,tile,
// stats}, comma-separated; default is all seven.
//
// Readout (machine-greppable, one "name value" per line — the CI
// service-smoke job asserts on these):
//
//   requests / ok / server_errors / wire_errors counters,
//   qps, p50_ms, p99_ms.
//
// Error taxonomy matches service/client.h: server_errors are structured
// non-OK frames (expected under fault injection — the daemon answered
// correctly with an error); wire_errors are transport/framing failures
// (NEVER expected; the exit code is 0 iff wire_errors == 0, which is
// the property CI gates on with and without failpoints armed).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/wire.h"

namespace {

using graphscape::Rng;
using graphscape::Status;
using graphscape::StatusOr;
using graphscape::StrPrintf;
using graphscape::WallTimer;
namespace service = graphscape::service;

struct CorpusEntry {
  std::string dataset;
  std::vector<std::string> fields;
};

struct ClientTotals {
  uint64_t ok = 0;
  uint64_t server_errors = 0;
  uint64_t wire_errors = 0;
  std::vector<double> latencies_ms;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [--host=H] [--clients=N] [--requests=N]\n"
      "          [--seed=N] [--zipf=F] [--classes=tree,peaks,toppeaks,"
      "members,correlation,tile,stats]\n",
      argv0);
  return 2;
}

// "STATS" -> corpus: every "key dataset/field" line becomes one field
// of one dataset (docs/SERVICE.md pins the payload shape).
StatusOr<std::vector<CorpusEntry>> DiscoverCorpus(const std::string& host,
                                                  uint16_t port) {
  service::BlockingClient client;
  Status status = client.Connect(host, port);
  if (!status.ok()) return status;
  StatusOr<service::ResponseFrame> reply = client.Roundtrip("STATS");
  if (!reply.ok()) return reply.status();
  if (reply.value().wire_code != service::kWireOk) {
    return Status::Unavailable(
        StrPrintf("STATS answered wire code %u", reply.value().wire_code));
  }
  std::map<std::string, std::vector<std::string>> by_dataset;
  const std::string& payload = reply.value().payload;
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("key ", 0) != 0) continue;
    const std::string canonical = line.substr(4);
    const size_t slash = canonical.find('/');
    if (slash == std::string::npos) continue;
    by_dataset[canonical.substr(0, slash)].push_back(
        canonical.substr(slash + 1));
  }
  std::vector<CorpusEntry> corpus;
  corpus.reserve(by_dataset.size());
  for (auto& entry : by_dataset) {
    corpus.push_back(CorpusEntry{entry.first, std::move(entry.second)});
  }
  return corpus;
}

// Zipf CDF over corpus ranks: weight of rank r is 1/(r+1)^s. The corpus
// is sorted by dataset name, so rank — hence popularity — is stable
// across runs; determinism is the point of the seeded generator.
std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& value : cdf) value /= total;
  return cdf;
}

size_t SampleCdf(const std::vector<double>& cdf, double u) {
  return static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

std::string MakeRequestLine(const std::string& klass,
                            const CorpusEntry& entry, Rng* rng) {
  const std::string& field =
      entry.fields[rng->UniformInt(static_cast<uint32_t>(
          entry.fields.size()))];
  if (klass == "tree") {
    return "TREE " + entry.dataset + " " + field;
  }
  if (klass == "peaks") {
    // Field ranges vary per dataset; any level is a legal query (an
    // empty superlevel set is a valid answer), so sample broadly.
    return StrPrintf("PEAKS %s %s %.17g", entry.dataset.c_str(),
                     field.c_str(), rng->UniformDouble() * 8.0);
  }
  if (klass == "toppeaks") {
    return StrPrintf("TOPPEAKS %s %s %u", entry.dataset.c_str(),
                     field.c_str(), 1 + rng->UniformInt(16));
  }
  if (klass == "members") {
    // Node 0 exists in every non-empty tree (contraction mints roots
    // first), so the query is always valid without knowing the size.
    return StrPrintf("MEMBERS %s %s 0", entry.dataset.c_str(),
                     field.c_str());
  }
  if (klass == "correlation") {
    const std::string& other =
        entry.fields[rng->UniformInt(static_cast<uint32_t>(
            entry.fields.size()))];
    return "CORRELATION " + entry.dataset + " " + field + " " + other;
  }
  if (klass == "tile") {
    // A few camera presets, not a continuum: repeats are what give the
    // tile LRU its hits (watch tile_hits climb via STATS).
    static const double kAzimuths[] = {225.0, 45.0, 135.0, 315.0};
    return StrPrintf("TILE %s %s %.17g %.17g 128 96",
                     entry.dataset.c_str(), field.c_str(),
                     kAzimuths[rng->UniformInt(4)], 42.0);
  }
  return "STATS";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 0;
  long clients = 4;
  long requests = 100;
  unsigned long long seed = 1;
  double zipf = 1.1;
  std::string classes_flag =
      "tree,peaks,toppeaks,members,correlation,tile,stats";

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      port = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--clients", &value)) {
      clients = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--requests", &value)) {
      requests = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--zipf", &value)) {
      zipf = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--classes", &value)) {
      classes_flag = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535 || clients <= 0 || requests <= 0) {
    return Usage(argv[0]);
  }

  std::vector<std::string> classes;
  size_t pos = 0;
  while (pos <= classes_flag.size()) {
    size_t comma = classes_flag.find(',', pos);
    if (comma == std::string::npos) comma = classes_flag.size();
    const std::string klass = classes_flag.substr(pos, comma - pos);
    if (!klass.empty()) classes.push_back(klass);
    pos = comma + 1;
  }
  if (classes.empty()) return Usage(argv[0]);

  StatusOr<std::vector<CorpusEntry>> corpus =
      DiscoverCorpus(host, static_cast<uint16_t>(port));
  if (!corpus.ok()) {
    std::fprintf(stderr, "graphscape_load: STATS discovery failed: %s\n",
                 corpus.status().message().c_str());
    return 1;
  }
  if (corpus.value().empty()) {
    std::fprintf(stderr,
                 "graphscape_load: the daemon serves an empty cache\n");
    return 1;
  }
  const std::vector<CorpusEntry>& entries = corpus.value();
  const std::vector<double> cdf = ZipfCdf(entries.size(), zipf);

  std::printf("graphscape_load: %ld clients x %ld requests -> %s:%ld "
              "(%u datasets, zipf %.2f)\n",
              clients, requests, host.c_str(), port,
              static_cast<unsigned>(entries.size()), zipf);

  std::vector<ClientTotals> totals(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  WallTimer wall;
  for (long c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTotals& mine = totals[static_cast<size_t>(c)];
      Rng rng(seed + static_cast<uint64_t>(c) * 0x9e3779b97f4a7c15ull);
      service::BlockingClient client;
      for (long r = 0; r < requests; ++r) {
        if (!client.connected()) {
          if (!client.Connect(host, static_cast<uint16_t>(port)).ok()) {
            ++mine.wire_errors;
            continue;
          }
        }
        const CorpusEntry& entry =
            entries[SampleCdf(cdf, rng.UniformDouble())];
        const std::string& klass =
            classes[rng.UniformInt(static_cast<uint32_t>(classes.size()))];
        const std::string line = MakeRequestLine(klass, entry, &rng);
        WallTimer latency;
        StatusOr<service::ResponseFrame> reply = client.Roundtrip(line);
        if (!reply.ok()) {
          // Transport poisoned: count, drop the connection, reconnect
          // on the next iteration (service/client.h taxonomy).
          ++mine.wire_errors;
          client.Close();
          continue;
        }
        mine.latencies_ms.push_back(latency.Seconds() * 1e3);
        if (reply.value().wire_code == service::kWireOk) {
          ++mine.ok;
        } else {
          ++mine.server_errors;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.Seconds();

  uint64_t ok = 0, server_errors = 0, wire_errors = 0;
  std::vector<double> latencies;
  for (const ClientTotals& t : totals) {
    ok += t.ok;
    server_errors += t.server_errors;
    wire_errors += t.wire_errors;
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    if (latencies.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  const uint64_t answered = ok + server_errors;

  std::printf("requests %llu\n",
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(clients) *
                  static_cast<uint64_t>(requests)));
  std::printf("ok %llu\n", static_cast<unsigned long long>(ok));
  std::printf("server_errors %llu\n",
              static_cast<unsigned long long>(server_errors));
  std::printf("wire_errors %llu\n",
              static_cast<unsigned long long>(wire_errors));
  std::printf("qps %.1f\n",
              elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0);
  std::printf("p50_ms %.3f\n", percentile(0.50));
  std::printf("p99_ms %.3f\n", percentile(0.99));
  return wire_errors == 0 ? 0 : 1;
}
