// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The recovery suite: every crash/corruption seam of the TreeArtifact
// cache and the fs layer armed in turn, asserting the cache converges
// back to a clean state whose artifact bytes are BYTE-IDENTICAL to a
// clean-run serialization (the acceptance criterion CI also checks with
// cmp via cache_fsck). Seams come from common/failpoint.h; nothing here
// needs a real disk fault.

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/retry.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/artifact_cache.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"

namespace graphscape {
namespace {

using failpoint::ScopedFailpoint;
using failpoint::Spec;

TreeArtifact MakeArtifact(uint64_t seed) {
  Rng rng(seed);
  const Graph g = BarabasiAlbert(180, 3, &rng);
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildVertexScalarTree(g, kc));
  artifact.field_name = kc.Name();
  artifact.field_values = kc.Values();
  return artifact;
}

std::string MustSerialize(const TreeArtifact& artifact) {
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

std::string FreshRoot(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gs_recovery_" + name;
  for (const char* sub : {"/entries", "/quarantine", ""}) {
    const std::string dir = root + sub;
    const StatusOr<std::vector<std::string>> names = ListDir(dir);
    if (!names.ok()) continue;
    for (const std::string& file : names.value()) {
      (void)RemoveFile(dir + "/" + file);
    }
    ::rmdir(dir.c_str());
  }
  return root;
}

// Retry policy for tests: real backoff schedule, no real sleeping.
ArtifactCache::Options FastOptions() {
  ArtifactCache::Options options;
  options.retry.sleeper = [](double) {};
  return options;
}

ArtifactCache MustOpen(const std::string& root) {
  StatusOr<ArtifactCache> cache = ArtifactCache::Open(root, FastOptions());
  EXPECT_TRUE(cache.ok()) << cache.status().ToString();
  return std::move(cache).value();
}

std::string EntryPathFor(const std::string& root, const std::string& key) {
  return root + "/entries/" + ArtifactCache::EncodeKey(key) + ".gsta";
}

class RecoveryTest : public ::testing::Test {
 protected:
  ~RecoveryTest() override { failpoint::DisarmAll(); }
};

// A Put whose payload write tears on disk but whose rename and manifest
// commit still happen (the disk acknowledged a write it dropped): the
// next load must catch the mismatch, quarantine, and GetOrBuild must
// converge to byte-clean state.
TEST_F(RecoveryTest, TornEntryIsQuarantinedAndRebuiltByteIdentical) {
  const std::string root = FreshRoot("torn");
  ArtifactCache cache = MustOpen(root);
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact artifact = MakeArtifact(3);
  {
    ScopedFailpoint torn("cache/torn_entry", Spec::Once());
    ASSERT_TRUE(cache.Put(key, artifact).ok());
    EXPECT_EQ(torn.fire_count(), 1u);
  }
  const StatusOr<TreeArtifact> bad = cache.Get(key);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.stats().corrupt_quarantined, 1u);

  const StatusOr<TreeArtifact> healed = cache.GetOrBuild(
      key, [&]() -> StatusOr<TreeArtifact> { return MakeArtifact(3); });
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  const StatusOr<std::string> on_disk =
      ReadFileBytes(EntryPathFor(root, "ds/KC"));
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk.value(), MustSerialize(artifact));  // byte-identical
  // The corrupt bytes were preserved for postmortem, not deleted.
  const StatusOr<std::vector<std::string>> quarantined =
      ListDir(root + "/quarantine");
  ASSERT_TRUE(quarantined.ok());
  EXPECT_EQ(quarantined.value().size(), 1u);
}

// A crash after the temp write but before the rename: the entry must not
// become visible, the stale temp must be swept at the next Open, and the
// previously stored version must still be served.
TEST_F(RecoveryTest, CrashAfterTempKeepsOldEntryAndSweepsTheTemp) {
  const std::string root = FreshRoot("crashtemp");
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact old_artifact = MakeArtifact(5);
  {
    ArtifactCache cache = MustOpen(root);
    ASSERT_TRUE(cache.Put(key, old_artifact).ok());
    ScopedFailpoint crash("cache/crash_after_temp", Spec::Once());
    const Status failed = cache.Put(key, MakeArtifact(7));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  }
  ASSERT_TRUE(PathExists(EntryPathFor(root, "ds/KC") + ".tmp"));

  ArtifactCache cache = MustOpen(root);
  EXPECT_EQ(cache.stats().temps_swept, 1u);
  EXPECT_FALSE(PathExists(EntryPathFor(root, "ds/KC") + ".tmp"));
  const StatusOr<TreeArtifact> loaded = cache.Get(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(old_artifact));
}

// A crash between the entry rename and the manifest commit: the entry is
// durable but unreferenced; the next Open must validate and adopt it.
TEST_F(RecoveryTest, StrayEntryFromManifestCrashIsAdopted) {
  const std::string root = FreshRoot("stray");
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact artifact = MakeArtifact(9);
  {
    ArtifactCache cache = MustOpen(root);
    ScopedFailpoint crash("cache/manifest_crash", Spec::Once());
    ASSERT_FALSE(cache.Put(key, artifact).ok());
  }
  ArtifactCache cache = MustOpen(root);
  EXPECT_EQ(cache.stats().strays_adopted, 1u);
  ASSERT_TRUE(cache.Contains(key));
  const StatusOr<TreeArtifact> loaded = cache.Get(key);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
}

// MANIFEST deleted (or trashed) out-of-band: rebuilt by scanning and
// validating the entry files, which are individually self-validating.
TEST_F(RecoveryTest, LostOrCorruptManifestIsRebuiltFromEntries) {
  const std::string root = FreshRoot("manifest");
  const TreeArtifact a = MakeArtifact(11), b = MakeArtifact(13);
  {
    ArtifactCache cache = MustOpen(root);
    ASSERT_TRUE(cache.Put(ArtifactKey{"a", "f"}, a).ok());
    ASSERT_TRUE(cache.Put(ArtifactKey{"b", "f"}, b).ok());
  }
  ASSERT_TRUE(RemoveFile(root + "/MANIFEST").ok());
  {
    ArtifactCache cache = MustOpen(root);
    EXPECT_TRUE(cache.stats().manifest_recovered);
    EXPECT_EQ(cache.Keys(), (std::vector<std::string>{"a/f", "b/f"}));
    const StatusOr<TreeArtifact> loaded = cache.Get(ArtifactKey{"a", "f"});
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(a));
  }
  // Scribble over the manifest instead of deleting it: same recovery.
  ASSERT_TRUE(
      WriteFileBytes(root + "/MANIFEST", "GSCM 1\ngarbage\n", true).ok());
  ArtifactCache cache = MustOpen(root);
  EXPECT_TRUE(cache.stats().manifest_recovered);
  EXPECT_EQ(cache.Keys(), (std::vector<std::string>{"a/f", "b/f"}));
}

// A bit flip on the stored bytes (silent disk corruption): caught by the
// manifest checksum on load, quarantined, rebuilt byte-identical.
TEST_F(RecoveryTest, BitFlippedEntryIsCaughtQuarantinedAndRebuilt) {
  const std::string root = FreshRoot("bitflip");
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact artifact = MakeArtifact(15);
  ArtifactCache cache = MustOpen(root);
  ASSERT_TRUE(cache.Put(key, artifact).ok());

  const std::string path = EntryPathFor(root, "ds/KC");
  StatusOr<std::string> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.value();
  mutated[mutated.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteFileBytes(path, mutated, true).ok());

  const StatusOr<TreeArtifact> bad = cache.Get(key);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  const StatusOr<TreeArtifact> healed = cache.GetOrBuild(
      key, [&]() -> StatusOr<TreeArtifact> { return MakeArtifact(15); });
  ASSERT_TRUE(healed.ok());
  const StatusOr<std::string> on_disk = ReadFileBytes(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk.value(), MustSerialize(artifact));
}

// Same corruption injected at the READ seam instead of on disk (a read
// that "succeeds" with flipped bits, as a failing controller produces).
TEST_F(RecoveryTest, CorruptReadSeamTriggersQuarantineOnce) {
  const std::string root = FreshRoot("readseam");
  const ArtifactKey key{"ds", "KC"};
  ArtifactCache cache = MustOpen(root);
  ASSERT_TRUE(cache.Put(key, MakeArtifact(17)).ok());
  {
    ScopedFailpoint corrupt("cache/load_corrupt", Spec::Once());
    EXPECT_EQ(cache.Get(key).status().code(), StatusCode::kDataLoss);
  }
  // The GOOD bytes got quarantined with the flip applied in memory only;
  // either way the cache self-heals through GetOrBuild.
  const StatusOr<TreeArtifact> healed = cache.GetOrBuild(
      key, [&]() -> StatusOr<TreeArtifact> { return MakeArtifact(17); });
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(cache.Get(key).ok());
}

// Transient I/O faults at the fs seams must be absorbed by retry /
// the short-write loop, invisibly to the caller.
TEST_F(RecoveryTest, TransientFaultsAreAbsorbedByRetryAndWriteLoops) {
  const std::string root = FreshRoot("transient");
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact artifact = MakeArtifact(19);
  ArtifactCache cache = MustOpen(root);
  {
    // One short write(2) return: the loop lands every byte anyway.
    ScopedFailpoint short_write("fs/short_write", Spec::Once());
    ASSERT_TRUE(cache.Put(key, artifact).ok());
    EXPECT_EQ(short_write.fire_count(), 1u);
  }
  {
    // One failed open on the read path: absorbed by the retry policy.
    ScopedFailpoint flaky_open("fs/open_read", Spec::Once());
    const StatusOr<TreeArtifact> loaded = cache.Get(key);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(flaky_open.fire_count(), 1u);
    EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
  }
  {
    // One transient manifest-write failure inside Put: retried through.
    ScopedFailpoint manifest("cache/manifest_write", Spec::Once());
    ASSERT_TRUE(cache.Put(ArtifactKey{"ds", "other"}, artifact).ok());
    EXPECT_EQ(manifest.fire_count(), 1u);
  }
}

// Transient faults that OUTLAST the retry budget surface as Unavailable
// and leave the previous entry intact.
TEST_F(RecoveryTest, PersistentFaultSurfacesAfterRetriesWithOldEntryIntact) {
  const std::string root = FreshRoot("persistent");
  const ArtifactKey key{"ds", "KC"};
  const TreeArtifact old_artifact = MakeArtifact(21);
  ArtifactCache cache = MustOpen(root);
  ASSERT_TRUE(cache.Put(key, old_artifact).ok());
  {
    ScopedFailpoint down("fs/open_write", Spec::Always());
    const Status failed = cache.Put(key, MakeArtifact(23));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
    EXPECT_EQ(down.fire_count(), FastOptions().retry.max_attempts);
  }
  const StatusOr<TreeArtifact> loaded = cache.Get(key);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(old_artifact));
}

// A rebuild that itself fails (injected allocation-cap hit in the
// builder's ResourceBudget) propagates the builder's refusal.
TEST_F(RecoveryTest, RebuildOverBudgetPropagatesResourceExhausted) {
  const std::string root = FreshRoot("oom");
  const ArtifactKey key{"ds", "KC"};
  ArtifactCache cache = MustOpen(root);
  const StatusOr<TreeArtifact> result = cache.GetOrBuild(
      key, []() -> StatusOr<TreeArtifact> {
        Rng rng(25);
        const Graph g = BarabasiAlbert(180, 3, &rng);
        const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
        ResourceBudget tiny(64);
        StatusOr<ScalarTree> tree =
            BuildVertexScalarTreeGuarded(g, kc, &tiny);
        if (!tree.ok()) return tree.status();
        TreeArtifact artifact;
        artifact.tree = SuperTree(tree.value());
        return artifact;
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// Scrub finds and fixes everything at once: a temp, a corrupt entry, and
// a stray; the second pass is clean (cache_fsck's 1-then-0 protocol).
TEST_F(RecoveryTest, ScrubRepairsEverythingThenReportsClean) {
  const std::string root = FreshRoot("scrub");
  const TreeArtifact keep = MakeArtifact(27), stray = MakeArtifact(29);
  ArtifactCache cache = MustOpen(root);
  ASSERT_TRUE(cache.Put(ArtifactKey{"keep", "f"}, keep).ok());
  ASSERT_TRUE(cache.Put(ArtifactKey{"bad", "f"}, MakeArtifact(31)).ok());

  // Corrupt one entry, plant a stray temp and an unreferenced entry.
  const std::string bad_path = EntryPathFor(root, "bad/f");
  StatusOr<std::string> bytes = ReadFileBytes(bad_path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.value();
  mutated[10] ^= 0x80;
  ASSERT_TRUE(WriteFileBytes(bad_path, mutated, true).ok());
  ASSERT_TRUE(
      WriteFileBytes(root + "/entries/leftover.tmp", "junk", false).ok());
  ASSERT_TRUE(WriteFileBytes(EntryPathFor(root, "stray/f"),
                             MustSerialize(stray), true).ok());

  const StatusOr<ScrubReport> first = cache.Scrub();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().Clean());
  EXPECT_EQ(first.value().temps_removed, 1u);
  EXPECT_EQ(first.value().quarantined,
            (std::vector<std::string>{"bad/f"}));
  EXPECT_EQ(first.value().adopted, (std::vector<std::string>{"stray/f"}));

  const StatusOr<ScrubReport> second = cache.Scrub();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().Clean());
  // The survivors are intact and the stray is now a first-class entry.
  EXPECT_TRUE(cache.Get(ArtifactKey{"keep", "f"}).ok());
  const StatusOr<TreeArtifact> adopted = cache.Get(ArtifactKey{"stray", "f"});
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(MustSerialize(adopted.value()), MustSerialize(stray));
}

// SaveTreeArtifact's atomicity: a failed rename leaves the previous file
// byte-for-byte intact and no temp behind.
TEST_F(RecoveryTest, AtomicSaveLeavesOldFileIntactOnRenameFailure) {
  const std::string path =
      ::testing::TempDir() + "/gs_recovery_atomic.gsta";
  const TreeArtifact first = MakeArtifact(33);
  ASSERT_TRUE(SaveTreeArtifact(first, path).ok());
  {
    ScopedFailpoint rename_fails("fs/rename", Spec::Once());
    ASSERT_FALSE(SaveTreeArtifact(MakeArtifact(35), path).ok());
  }
  EXPECT_FALSE(PathExists(path + ".tmp"));
  const StatusOr<std::string> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), MustSerialize(first));
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace graphscape
