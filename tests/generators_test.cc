// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "metrics/kcore.h"

namespace graphscape {
namespace {

uint32_t CountComponents(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<char> seen(n, 0);
  std::vector<VertexId> queue;
  uint32_t components = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = 1;
    queue.assign(1, s);
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      for (const VertexId u : g.Neighbors(v)) {
        if (!seen[u]) {
          seen[u] = 1;
          queue.push_back(u);
        }
      }
    }
  }
  return components;
}

TEST(BarabasiAlbertTest, ExactEdgeCountAndConnected) {
  Rng rng(42);
  const uint32_t n = 100, m = 3;
  const Graph g = BarabasiAlbert(n, m, &rng);
  EXPECT_EQ(g.NumVertices(), n);
  // Seed clique on m+1 vertices plus m edges per later vertex, all distinct
  // by construction.
  EXPECT_EQ(g.NumEdges(), m * (m + 1) / 2 + (n - m - 1) * m);
  EXPECT_EQ(CountComponents(g), 1u);
  for (VertexId v = 0; v < n; ++v) EXPECT_GE(g.Degree(v), m);
}

TEST(BarabasiAlbertTest, DeterministicForSameSeed) {
  Rng rng_a(7), rng_b(7);
  const Graph a = BarabasiAlbert(64, 2, &rng_a);
  const Graph b = BarabasiAlbert(64, 2, &rng_b);
  EXPECT_EQ(a.Adjacency(), b.Adjacency());
  EXPECT_EQ(a.Offsets(), b.Offsets());
}

TEST(ErdosRenyiTest, EdgeCountTracksProbability) {
  Rng rng(13);
  const uint32_t n = 200;
  const Graph g = ErdosRenyi(n, 0.3, &rng);
  const double expected = 0.3 * n * (n - 1) / 2.0;
  EXPECT_GT(g.NumEdges(), expected * 0.85);
  EXPECT_LT(g.NumEdges(), expected * 1.15);
}

TEST(ErdosRenyiTest, DegenerateProbabilities) {
  Rng rng(1);
  EXPECT_EQ(ErdosRenyi(50, 0.0, &rng).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, &rng).NumEdges(), 45u);
}

TEST(CollaborationNetworkTest, PlantedCoresAreDense) {
  Rng rng(11);
  CollaborationOptions options;
  options.num_vertices = 512;
  options.num_groups = 64;
  options.num_planted_cores = 2;
  options.planted_core_size = 24;
  const Graph g = CollaborationNetwork(options, &rng);
  EXPECT_EQ(g.NumVertices(), 512u);
  const std::vector<uint32_t> core = CoreNumbers(g);
  const uint32_t max_core = *std::max_element(core.begin(), core.end());
  // The planted (near-)cliques guarantee a deep core; sampling collisions
  // can shave a few vertices off the 24, hence the margin.
  EXPECT_GE(max_core, 16u);
}

}  // namespace
}  // namespace graphscape
