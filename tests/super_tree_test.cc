// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 2: same-value chain contraction of the scalar tree.

#include "scalar/super_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

TEST(SuperTreeTest, PlateausContractToOneNodePerLevel) {
  // Path 0-1-2-3 with values [1,1,2,2]: two plateaus, two super nodes.
  const Graph g = Path(4);
  const VertexScalarField field("f", {1.0, 1.0, 2.0, 2.0});
  const SuperTree super(BuildVertexScalarTree(g, field));
  ASSERT_EQ(super.NumNodes(), 2u);
  EXPECT_EQ(super.NodeOf(0), super.NodeOf(1));
  EXPECT_EQ(super.NodeOf(2), super.NodeOf(3));
  EXPECT_NE(super.NodeOf(0), super.NodeOf(2));

  const uint32_t low = super.NodeOf(0);
  const uint32_t high = super.NodeOf(2);
  EXPECT_DOUBLE_EQ(super.Value(low), 1.0);
  EXPECT_DOUBLE_EQ(super.Value(high), 2.0);
  EXPECT_EQ(super.MemberCount(low), 2u);
  EXPECT_EQ(super.MemberCount(high), 2u);
  EXPECT_EQ(super.Parent(high), low);
  EXPECT_EQ(super.Parent(low), kInvalidSuperNode);
  EXPECT_EQ(super.NumRoots(), 1u);
}

TEST(SuperTreeTest, ConstantFieldCollapsesEachComponent) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  const VertexScalarField field("f", std::vector<double>(6, 3.0));
  const SuperTree super(BuildVertexScalarTree(g, field));
  EXPECT_EQ(super.NumNodes(), 2u);
  EXPECT_EQ(super.NumRoots(), 2u);
  EXPECT_EQ(super.MemberCount(super.NodeOf(0)), 3u);
  EXPECT_EQ(super.MemberCount(super.NodeOf(3)), 3u);
}

TEST(SuperTreeTest, DistinctValuesKeepEveryNode) {
  const Graph g = Path(5);
  const VertexScalarField field("f", {5.0, 1.0, 4.0, 2.0, 3.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const SuperTree super(tree);
  EXPECT_EQ(super.NumNodes(), tree.NumNodes());
}

TEST(SuperTreeTest, KCoreFieldOnPlantedCliqueIsSmall) {
  // A K-Core field has very few distinct levels, so the super tree must be
  // dramatically smaller than the n-node scalar tree.
  Rng rng(3);
  CollaborationOptions options;
  options.num_vertices = 300;
  options.num_groups = 40;
  options.num_planted_cores = 1;
  options.planted_core_size = 16;
  const Graph g = CollaborationNetwork(options, &rng);
  const VertexScalarField field =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const SuperTree super(tree);
  EXPECT_LT(super.NumNodes(), tree.NumNodes() / 2);
}

TEST(SuperTreeTest, NodeCountNeverExceedsScalarTree) {
  // Property test from the issue: |super tree| <= |scalar tree|, member
  // counts partition the vertices, and parents strictly decrease in value.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Graph g = BarabasiAlbert(300, 2, &rng);
    std::vector<double> values(g.NumVertices());
    for (auto& v : values)
      v = static_cast<double>(rng.UniformInt(1 + 4 * static_cast<uint32_t>(seed)));
    const VertexScalarField field("f", values);
    const ScalarTree tree = BuildVertexScalarTree(g, field);
    const SuperTree super(tree);

    EXPECT_LE(super.NumNodes(), tree.NumNodes());
    EXPECT_GE(super.NumNodes(), 1u);
    uint64_t members = 0;
    for (uint32_t node = 0; node < super.NumNodes(); ++node) {
      members += super.MemberCount(node);
      const uint32_t parent = super.Parent(node);
      if (parent != kInvalidSuperNode) {
        EXPECT_LT(super.Value(parent), super.Value(node));
      }
    }
    EXPECT_EQ(members, g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_DOUBLE_EQ(super.Value(super.NodeOf(v)), field[v]);
    }
  }
}

}  // namespace
}  // namespace graphscape
