// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Oracle-grade coverage for the query layer: filter/sort/top-k checked
// against brute-force std::sort oracles (NaN and tie determinism
// included), and the NN graph checked against an exact O(n^2) oracle at
// small n plus its structural invariants (simple, symmetric, bounded
// nominations, threshold respected).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/graph_algos.h"
#include "query/nn_graph.h"
#include "query/table.h"

namespace graphscape {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Table RandomTable(size_t rows, uint32_t columns, uint64_t seed) {
  Rng rng(seed);
  Table table(rows);
  for (uint32_t c = 0; c < columns; ++c) {
    std::vector<double> values(rows);
    // Coarse quantization forces plenty of exact ties.
    for (auto& v : values) v = std::floor(10.0 * rng.UniformDouble()) / 2.0;
    table.AddColumn("col" + std::to_string(c), std::move(values));
  }
  return table;
}

TEST(TableTest, BasicAccessorsAndValidation) {
  Table table(3);
  const uint32_t a = table.AddColumn("alpha", {1.0, 2.0, 3.0});
  const uint32_t b = table.AddColumn("beta", {6.0, 5.0, 4.0});
  EXPECT_EQ(table.NumRows(), 3u);
  EXPECT_EQ(table.NumColumns(), 2u);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_DOUBLE_EQ(table.Value(1, b), 5.0);
  EXPECT_EQ(table.ColumnName(0), "alpha");
  EXPECT_EQ(table.FindColumn("beta"), 1u);
  EXPECT_EQ(table.FindColumn("missing"), kNoColumn);
  EXPECT_EQ(table.Label(0), "");  // labels unset
  table.SetLabels({"x", "y", "z"});
  EXPECT_EQ(table.Label(2), "z");
  EXPECT_THROW(table.AddColumn("short", {1.0}), std::invalid_argument);
  EXPECT_THROW(table.SetLabels({"only-one"}), std::invalid_argument);
}

TEST(TableTest, AddFieldKeepsNameAndValues) {
  const VertexScalarField field("kcore", {3.0, 1.0, 2.0});
  Table table(3);
  const uint32_t c = table.AddField(field);
  EXPECT_EQ(table.ColumnName(c), "kcore");
  EXPECT_EQ(table.Column(c), field.Values());
}

TEST(FilterTest, EveryOpMatchesHandPickedRows) {
  Table table(5);
  table.AddColumn("x", {1.0, 2.0, 2.0, 3.0, 4.0});
  using Rows = std::vector<uint32_t>;
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kLess, 2.0}}), (Rows{0}));
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kLessEqual, 2.0}}),
            (Rows{0, 1, 2}));
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kGreater, 2.0}}), (Rows{3, 4}));
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kGreaterEqual, 4.0}}),
            (Rows{4}));
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kEqual, 2.0}}), (Rows{1, 2}));
  EXPECT_EQ(FilterRows(table, {{0, FilterOp::kNotEqual, 2.0}}),
            (Rows{0, 3, 4}));
}

TEST(FilterTest, ConjunctionMatchesBruteForce) {
  const Table table = RandomTable(200, 3, 11);
  const std::vector<Filter> filters = {{0, FilterOp::kGreaterEqual, 1.5},
                                       {1, FilterOp::kLess, 3.5},
                                       {2, FilterOp::kNotEqual, 2.0}};
  const std::vector<uint32_t> rows = FilterRows(table, filters);
  std::set<uint32_t> selected(rows.begin(), rows.end());
  EXPECT_EQ(selected.size(), rows.size()) << "duplicate row ids";
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  for (uint32_t row = 0; row < 200; ++row) {
    const bool expected = table.Value(row, 0) >= 1.5 &&
                          table.Value(row, 1) < 3.5 &&
                          table.Value(row, 2) != 2.0;
    EXPECT_EQ(selected.count(row) == 1, expected) << "row " << row;
  }
}

TEST(FilterTest, EmptyResultIsEmptyAndRepeatable) {
  const Table table = RandomTable(50, 1, 3);
  const std::vector<Filter> impossible = {{0, FilterOp::kGreater, 1e9}};
  EXPECT_TRUE(FilterRows(table, impossible).empty());
  EXPECT_EQ(FilterRows(table, impossible), FilterRows(table, impossible));
  // No filters at all selects every row.
  EXPECT_EQ(FilterRows(table, {}).size(), 50u);
}

TEST(FilterTest, NanCellNeverPasses) {
  Table table(3);
  table.AddColumn("x", {1.0, kNan, 3.0});
  for (const FilterOp op :
       {FilterOp::kLess, FilterOp::kLessEqual, FilterOp::kGreater,
        FilterOp::kGreaterEqual, FilterOp::kEqual, FilterOp::kNotEqual}) {
    for (const uint32_t row : FilterRows(table, {{0, op, 2.0}}))
      EXPECT_NE(row, 1u) << "NaN row passed op "
                         << static_cast<int>(op);
  }
}

TEST(SortTest, SingleKeyMatchesStdSortOracle) {
  const Table table = RandomTable(300, 2, 17);
  for (const bool ascending : {true, false}) {
    std::vector<uint32_t> oracle(table.NumRows());
    for (uint32_t row = 0; row < oracle.size(); ++row) oracle[row] = row;
    std::sort(oracle.begin(), oracle.end(), [&](uint32_t a, uint32_t b) {
      const double va = table.Value(a, 0), vb = table.Value(b, 0);
      if (va != vb) return ascending ? va < vb : va > vb;
      return a < b;
    });
    EXPECT_EQ(SortRows(table, {{0, ascending}}), oracle)
        << "ascending=" << ascending;
  }
}

TEST(SortTest, MultiKeyLexicographicOrder) {
  Table table(4);
  table.AddColumn("major", {1.0, 1.0, 0.0, 0.0});
  table.AddColumn("minor", {5.0, 4.0, 5.0, 4.0});
  // major ascending groups {2, 3} before {0, 1}; minor DESCENDING inside
  // each group puts the 5.0 row first.
  EXPECT_EQ(SortRows(table, {{0, true}, {1, false}}),
            (std::vector<uint32_t>{2, 3, 0, 1}));
}

TEST(SortTest, NanSortsLastUnderEitherDirectionTiesByRowId) {
  Table table(5);
  table.AddColumn("x", {2.0, kNan, 1.0, kNan, 2.0});
  EXPECT_EQ(SortRows(table, {{0, true}}),
            (std::vector<uint32_t>{2, 0, 4, 1, 3}));
  EXPECT_EQ(SortRows(table, {{0, false}}),
            (std::vector<uint32_t>{0, 4, 2, 1, 3}));
}

TEST(TopKTest, MatchesSortPrefixAndExcludesNan) {
  Table table(6);
  table.AddColumn("x", {3.0, kNan, 5.0, 1.0, 5.0, 2.0});
  EXPECT_EQ(TopK(table, 0, 3), (std::vector<uint32_t>{2, 4, 0}));
  EXPECT_EQ(TopK(table, 0, 3, /*largest=*/false),
            (std::vector<uint32_t>{3, 5, 0}));
  // k beyond the non-NaN rows returns them all, NaN row excluded.
  EXPECT_EQ(TopK(table, 0, 100).size(), 5u);
  EXPECT_TRUE(TopK(table, 0, 0).empty());
}

TEST(ColumnAsFieldTest, NamesValuesAndRejectsNan) {
  Table table(3);
  table.AddColumn("height", {1.0, 2.0, 3.0});
  table.AddColumn("broken", {1.0, kNan, 3.0});
  const VertexScalarField field = ColumnAsField(table, 0);
  EXPECT_EQ(field.Name(), "height");
  EXPECT_EQ(field.Values(), table.Column(0));
  EXPECT_THROW(ColumnAsField(table, 1), std::invalid_argument);
}

// --------------------------------------------------------------- NN graph --

/// Exact oracle: the same nomination rule, written independently over
/// all pairs — (distance, id)-sorted, thresholded, capped, unioned.
std::set<std::pair<uint32_t, uint32_t>> OracleEdges(
    const Table& table, const NnGraphOptions& options) {
  const uint32_t n = static_cast<uint32_t>(table.NumRows());
  std::vector<std::vector<double>> points(n);
  std::vector<uint32_t> columns = options.columns;
  if (columns.empty())
    for (uint32_t c = 0; c < table.NumColumns(); ++c) columns.push_back(c);
  for (uint32_t row = 0; row < n; ++row)
    for (const uint32_t c : columns) {
      double x = table.Value(row, c);
      if (options.normalize) {
        double mean = 0.0, var = 0.0;
        for (uint32_t r = 0; r < n; ++r) mean += table.Value(r, c);
        mean /= n;
        for (uint32_t r = 0; r < n; ++r) {
          const double delta = table.Value(r, c) - mean;
          var += delta * delta;
        }
        const double stddev = var > 0.0 ? std::sqrt(var / n) : 1.0;
        x = (x - mean) / stddev;
      }
      points[row].push_back(x);
    }
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t u = 0; u < n; ++u) {
    std::vector<std::pair<double, uint32_t>> candidates;
    for (uint32_t v = 0; v < n; ++v) {
      if (v == u) continue;
      double dist = 0.0;
      for (size_t f = 0; f < points[u].size(); ++f) {
        const double x = points[u][f] - points[v][f];
        dist += x * x;
      }
      dist = std::sqrt(dist);
      if (dist <= options.distance_threshold)
        candidates.push_back({dist, v});
    }
    std::sort(candidates.begin(), candidates.end());
    for (size_t s = 0;
         s < std::min<size_t>(candidates.size(), options.max_neighbors); ++s)
      edges.insert({std::min(u, candidates[s].second),
                    std::max(u, candidates[s].second)});
  }
  return edges;
}

std::set<std::pair<uint32_t, uint32_t>> GraphEdges(const Graph& g) {
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) edges.insert(g.EdgeEndpoints(e));
  return edges;
}

TEST(NnGraphTest, MatchesExactOracleAtSmallN) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Table table = RandomTable(40, 3, seed);
    NnGraphOptions options;
    options.max_neighbors = 4;
    options.distance_threshold = 2.0;
    options.normalize = false;
    const Graph g = BuildNnGraph(table, options);
    EXPECT_EQ(GraphEdges(g), OracleEdges(table, options)) << "seed " << seed;
  }
}

TEST(NnGraphTest, NormalizedDistanceMatchesOracle) {
  const Table table = RandomTable(30, 2, 5);
  NnGraphOptions options;
  options.max_neighbors = 3;
  options.normalize = true;
  const Graph g = BuildNnGraph(table, options);
  EXPECT_EQ(GraphEdges(g), OracleEdges(table, options));
}

TEST(NnGraphTest, SimpleSymmetricAndThresholded) {
  const Table table = RandomTable(60, 2, 9);
  NnGraphOptions options;
  options.max_neighbors = 5;
  options.distance_threshold = 1.5;
  options.normalize = false;
  const Graph g = BuildNnGraph(table, options);
  EXPECT_EQ(g.NumVertices(), 60u);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    EXPECT_NE(u, v) << "self loop";
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_TRUE(g.HasEdge(v, u)) << "missing reverse adjacency";
    double dist = 0.0;
    for (uint32_t c = 0; c < 2; ++c) {
      const double x = table.Value(u, c) - table.Value(v, c);
      dist += x * x;
    }
    EXPECT_LE(std::sqrt(dist), 1.5) << "edge beyond the threshold";
  }
}

TEST(NnGraphTest, ColumnSubsetScalingAndNormalization) {
  // Scaling one column by 1000 changes nothing under normalize=true.
  Rng rng(21);
  std::vector<double> a(25), b(25);
  for (auto& x : a) x = rng.UniformDouble();
  for (auto& x : b) x = rng.UniformDouble();
  Table plain(25), scaled(25);
  plain.AddColumn("a", a);
  plain.AddColumn("b", b);
  for (auto& x : b) x *= 1000.0;
  scaled.AddColumn("a", a);
  scaled.AddColumn("b", b);
  NnGraphOptions options;
  options.max_neighbors = 3;
  EXPECT_EQ(GraphEdges(BuildNnGraph(plain, options)),
            GraphEdges(BuildNnGraph(scaled, options)));
  // Restricting to one column ignores the other entirely.
  NnGraphOptions only_a = options;
  only_a.columns = {0};
  Table just_a(25);
  just_a.AddColumn("a", a);
  EXPECT_EQ(GraphEdges(BuildNnGraph(scaled, only_a)),
            GraphEdges(BuildNnGraph(just_a, options)));
}

TEST(NnGraphTest, ThresholdSeparatesFarClusters) {
  // Two tight value clusters 100 apart: no cross edges, two components.
  Table table(20);
  std::vector<double> x(20);
  for (uint32_t row = 0; row < 20; ++row)
    x[row] = (row < 10 ? 0.0 : 100.0) + 0.1 * row;
  table.AddColumn("x", std::move(x));
  NnGraphOptions options;
  options.normalize = false;
  options.distance_threshold = 5.0;
  const Graph g = BuildNnGraph(table, options);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    EXPECT_EQ(u < 10, v < 10) << "edge crossed the gap";
  }
  EXPECT_EQ(ConnectedComponents(g).num_components, 2u);
}

TEST(NnGraphTest, DegenerateInputs) {
  Table empty(0);
  empty.AddColumn("x", {});
  EXPECT_EQ(BuildNnGraph(empty).NumVertices(), 0u);
  Table single(1);
  single.AddColumn("x", {1.0});
  const Graph g = BuildNnGraph(single);
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
  // All-identical rows: distances 0, ties resolved by id — still simple.
  Table ties(5);
  ties.AddColumn("x", {2.0, 2.0, 2.0, 2.0, 2.0});
  NnGraphOptions options;
  options.max_neighbors = 2;
  const Graph tie_graph = BuildNnGraph(ties, options);
  EXPECT_EQ(GraphEdges(tie_graph), OracleEdges(ties, options));
}

TEST(NnGraphTest, RepeatBuildsAreIdentical) {
  const Table table = RandomTable(50, 2, 33);
  NnGraphOptions options;
  options.max_neighbors = 4;
  const Graph a = BuildNnGraph(table, options);
  const Graph b = BuildNnGraph(table, options);
  EXPECT_EQ(a.Adjacency(), b.Adjacency());
  EXPECT_EQ(a.Offsets(), b.Offsets());
}

TEST(PlantGenusTableTest, BandsLabelsAndDeterminism) {
  Rng rng(11);
  const Table table = MakePlantGenusTable(120, &rng);
  EXPECT_EQ(table.NumRows(), 120u);
  EXPECT_EQ(table.NumColumns(), 2u);
  for (uint32_t row = 0; row < 120; ++row) {
    const std::string& label = table.Label(row);
    const double attr0 = table.Value(row, 0);
    if (label == "genusA") {
      EXPECT_GE(attr0, 2.0);
      EXPECT_LE(attr0, 3.2);
    } else if (label == "genusB") {
      EXPECT_GE(attr0, 3.8);
      EXPECT_LE(attr0, 5.0);
    } else {
      EXPECT_EQ(label, "genusC");
      EXPECT_GE(attr0, 8.5);
      EXPECT_LE(attr0, 9.5);
    }
    EXPECT_GE(table.Value(row, 1), 4.0);
    EXPECT_LE(table.Value(row, 1), 6.0);
  }
  Rng rng2(11);
  const Table again = MakePlantGenusTable(120, &rng2);
  EXPECT_EQ(table.Column(0), again.Column(0));
  EXPECT_EQ(table.Column(1), again.Column(1));
}

}  // namespace
}  // namespace graphscape
