// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Enforces the arena discipline of Algorithms 1/2/3: the number of heap
// allocations per build is a small constant (the up-front flat arrays),
// independent of graph size — i.e., the sweep loops themselves never
// allocate. A per-node or per-edge allocation would make the count scale
// with n and fail these bounds immediately. Both the vertex sweep and
// the edge sweep run under the same counting-operator-new harness.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_queries.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace graphscape {
namespace {

uint64_t AllocationsDuringBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = field_rng.UniformDouble();
  const VertexScalarField field("f", values);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const SuperTree super(tree);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(super.NumNodes(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, BuildAllocationCountIsConstantInGraphSize) {
  const uint64_t small = AllocationsDuringBuild(1 << 8);
  const uint64_t large = AllocationsDuringBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the sweep loop";
  // Algorithm 1's six flat arrays + the field copy + Algorithm 2's five;
  // leave headroom for minor standard-library noise but stay well below
  // anything per-node.
  EXPECT_LE(large, 24u);
}

uint64_t AllocationsDuringEdgeBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(static_cast<size_t>(g.NumEdges()));
  for (auto& v : values) v = field_rng.UniformDouble();
  const EdgeScalarField field("f", values);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  const SuperTree super(tree);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(super.NumNodes(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, EdgeBuildAllocationCountIsConstantInGraphSize) {
  const uint64_t small = AllocationsDuringEdgeBuild(1 << 8);
  const uint64_t large = AllocationsDuringEdgeBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the edge sweep loop";
  // The endpoint pair of arrays + Algorithm 3's six + the field copy +
  // Algorithm 2's five; same headroom rule as the vertex bound.
  EXPECT_LE(large, 28u);
}

uint64_t AllocationsDuringIndexBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values)
    v = static_cast<double>(field_rng.UniformInt(32));
  const VertexScalarField field("f", values);
  const SuperTree super(BuildVertexScalarTree(g, field));

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const TreeMemberIndex index(super);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(index.SubtreeMemberCount(0), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, MemberIndexBuildAllocatesConstantArrays) {
  // The query index is the same flat-array discipline: a fixed set of
  // pre-sized vectors (children CSR, Euler positions, member CSR, the
  // reserved DFS stack) — nothing per node or per member.
  const uint64_t small = AllocationsDuringIndexBuild(1 << 8);
  const uint64_t large = AllocationsDuringIndexBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with tree size - something allocates "
         "inside the index build loops";
  EXPECT_LE(large, 16u);
}

}  // namespace
}  // namespace graphscape
