// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Enforces the arena discipline of Algorithms 1/2/3: the number of heap
// allocations per build is a small constant (the up-front flat arrays),
// independent of graph size — i.e., the sweep loops themselves never
// allocate. A per-node or per-edge allocation would make the count scale
// with n and fail these bounds immediately. Both the vertex sweep and
// the edge sweep run under the same counting-operator-new harness.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "community/bigclam.h"
#include "gen/generators.h"
#include "graph/intersect.h"
#include "graph/intersect_simd.h"
#include "layout/spring_layout.h"
#include "metrics/triangles.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/terrain_layout.h"
#include "terrain/terrain_raster.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// libstdc++'s std::get_temporary_buffer (stable_sort) allocates through
// the nothrow variant; override it too so every new/delete pair stays on
// malloc/free (ASan flags a mixed pair as alloc-dealloc-mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace graphscape {
namespace {

uint64_t AllocationsDuringBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = field_rng.UniformDouble();
  const VertexScalarField field("f", values);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const SuperTree super(tree);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(super.NumNodes(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, BuildAllocationCountIsConstantInGraphSize) {
  const uint64_t small = AllocationsDuringBuild(1 << 8);
  const uint64_t large = AllocationsDuringBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the sweep loop";
  // Algorithm 1's six flat arrays + the field copy + Algorithm 2's five;
  // leave headroom for minor standard-library noise but stay well below
  // anything per-node.
  EXPECT_LE(large, 24u);
}

uint64_t AllocationsDuringParallelBuild(uint32_t n, uint32_t threads) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = field_rng.UniformDouble();
  const VertexScalarField field("f", values);

  // grain 64 pins the chunk count at the lane ceiling for both sizes
  // (n / 64 >> 4 lanes), so the two runs allocate the same NUMBER of
  // per-chunk scratch arrays and differ only in array lengths.
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScalarTree tree =
      BuildVertexScalarTreeParallel(g, field, {threads, /*grain=*/64});
  const SuperTree super(tree);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(super.NumNodes(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest,
     ParallelBuildAllocationCountIsConstantInGraphSize) {
  // Warm-up: spawn the pool's worker threads outside the counted window
  // (thread creation allocates; it happens once per process, not per
  // build). The parallel build then follows the same discipline as the
  // sequential one — the per-chunk scratch (local union-find, kept-edge
  // streams, sort runs) is a fixed NUMBER of arrays per chunk, and the
  // chunk count depends only on the thread count, never on n. The sweep
  // and merge loops themselves never allocate.
  // Both sizes sit above the parallel-sort threshold so the two runs
  // take the identical code path end to end.
  (void)AllocationsDuringParallelBuild(1 << 13, 4);
  const uint64_t small = AllocationsDuringParallelBuild(1 << 13, 4);
  const uint64_t large = AllocationsDuringParallelBuild(1 << 16, 4);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the chunked parallel sweep";
  // The sequential build's arrays + the sort aux buffer + per-chunk
  // scratch (3 arrays x <=4 chunks) + the packed kept-edge streams.
  EXPECT_LE(large, 48u);
}

uint64_t AllocationsDuringEdgeBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(static_cast<size_t>(g.NumEdges()));
  for (auto& v : values) v = field_rng.UniformDouble();
  const EdgeScalarField field("f", values);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  const SuperTree super(tree);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(super.NumNodes(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, EdgeBuildAllocationCountIsConstantInGraphSize) {
  const uint64_t small = AllocationsDuringEdgeBuild(1 << 8);
  const uint64_t large = AllocationsDuringEdgeBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the edge sweep loop";
  // The endpoint pair of arrays + Algorithm 3's six + the field copy +
  // Algorithm 2's five; same headroom rule as the vertex bound.
  EXPECT_LE(large, 28u);
}

uint64_t AllocationsDuringIndexBuild(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values)
    v = static_cast<double>(field_rng.UniformInt(32));
  const VertexScalarField field("f", values);
  const SuperTree super(BuildVertexScalarTree(g, field));

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const TreeMemberIndex index(super);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(index.SubtreeMemberCount(0), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, MemberIndexBuildAllocatesConstantArrays) {
  // The query index is the same flat-array discipline: a fixed set of
  // pre-sized vectors (children CSR, Euler positions, member CSR, the
  // reserved DFS stack) — nothing per node or per member.
  const uint64_t small = AllocationsDuringIndexBuild(1 << 8);
  const uint64_t large = AllocationsDuringIndexBuild(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with tree size - something allocates "
         "inside the index build loops";
  EXPECT_LE(large, 16u);
}

TEST(AllocationDisciplineTest, IntersectKernelsNeverAllocate) {
  // The intersection layer (graph/intersect_simd.h) is allocation-free by
  // contract: zero heap allocations across Count/Count3/Into and the
  // ForEachCommonNeighbor wrappers, for every dispatchable kernel. Count3
  // in particular must keep its pair-intersection scratch on the stack.
  Rng rng(42);
  const Graph g = BarabasiAlbert(1 << 10, 4, &rng);
  std::vector<uint32_t> scratch(g.NumVertices());
  uint64_t sink = 0;

  for (const auto kernel :
       {intersect::Kernel::kScalar, intersect::Kernel::kSse2,
        intersect::Kernel::kAvx2}) {
    if (!intersect::KernelSupported(kernel)) continue;
    const intersect::Kernel previous = intersect::ActiveKernel();
    ASSERT_TRUE(intersect::SetKernelForTesting(kernel));
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (VertexId u = 0; u < 64; ++u) {
      for (VertexId v = u + 1; v < 64; ++v) {
        sink += CountCommonNeighbors(g, u, v);
        sink += CountCommonNeighbors(g, u, v, (u + v) % g.NumVertices());
        const Graph::NeighborRange ru = g.Neighbors(u);
        const Graph::NeighborRange rv = g.Neighbors(v);
        sink += intersect::Into(ru.begin(), ru.size(), rv.begin(), rv.size(),
                                scratch.data());
        ForEachCommonNeighbor(g, u, v, [&](VertexId w) { sink += w; });
      }
    }
    const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
    intersect::SetKernelForTesting(previous);
    EXPECT_EQ(before, after)
        << "kernel " << intersect::KernelName(kernel)
        << " allocated inside the intersection hot path";
  }
  EXPECT_GT(sink, 0u);
}

uint64_t AllocationsDuringTriangleCount(uint32_t n) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(n, 4, &rng);
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const uint64_t total = CountTriangles(g);
  const std::vector<uint32_t> per_vertex = VertexTriangleCounts(g);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(total, 0u);
  EXPECT_EQ(per_vertex.size(), g.NumVertices());
  return after - before;
}

TEST(AllocationDisciplineTest, TriangleCountAllocationsConstantInGraphSize) {
  // CountTriangles/VertexTriangleCounts allocate a fixed set of arrays
  // up front (the forward adjacency's offsets + targets, the counts
  // vector, one intersection scratch buffer) and nothing per vertex or
  // per intersection inside the sweep.
  const uint64_t small = AllocationsDuringTriangleCount(1 << 8);
  const uint64_t large = AllocationsDuringTriangleCount(1 << 14);
  EXPECT_EQ(small, large)
      << "allocation count scales with graph size - something allocates "
         "inside the triangle sweep";
  EXPECT_LE(large, 12u);
}

uint64_t AllocationsDuringSpringRefine(uint32_t iterations) {
  Rng rng(21);
  const Graph g = BarabasiAlbert(1 << 10, 4, &rng);
  Positions pos(g.NumVertices());
  Rng scatter(3);
  for (auto& p : pos) {
    p.x = scatter.UniformDouble();
    p.y = scatter.UniformDouble();
  }
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  SpringLayoutOptions options;
  options.iterations = iterations;
  RefineSpringLayout(g, options, &pos);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(pos.size(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, SpringIterationLoopDoesNotAllocate) {
  // The grid-binned force loop reuses one set of pre-sized buffers:
  // more iterations must not mean more allocations.
  const uint64_t few = AllocationsDuringSpringRefine(4);
  const uint64_t many = AllocationsDuringSpringRefine(32);
  EXPECT_EQ(few, many)
      << "allocation count scales with iterations - something allocates "
         "inside the spring iteration loop";
  EXPECT_LE(many, 12u);
}

uint64_t AllocationsDuringBigClamFit(uint32_t iterations) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(1 << 10, 4, &rng);
  BigClamOptions options;
  options.num_communities = 4;
  options.iterations = iterations;
  options.num_threads = 1;  // inline dispatch: no pool in the window
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const BigClamAffiliations fit = BigClamFit(g, options);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(fit.num_vertices, 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, BigClamIterationLoopDoesNotAllocate) {
  // The projected-gradient loop ping-pongs between two pre-sized factor
  // matrices; the BFS seeding scratch is allocated once up front. More
  // iterations must not mean more allocations.
  const uint64_t few = AllocationsDuringBigClamFit(2);
  const uint64_t many = AllocationsDuringBigClamFit(80);
  EXPECT_EQ(few, many)
      << "allocation count scales with iterations - something allocates "
         "inside the BigCLAM gradient loop";
  EXPECT_LE(many, 24u);
}

uint64_t AllocationsDuringRasterize(uint32_t resolution) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(1 << 10, 4, &rng);
  Rng field_rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = static_cast<double>(field_rng.UniformInt(16));
  const SuperTree super(
      BuildVertexScalarTree(g, VertexScalarField("f", values)));
  const TerrainLayout layout = BuildTerrainLayout(super);
  RasterOptions options;
  options.width = options.height = resolution;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const HeightField field = RasterizeTerrain(layout, options);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(field.height_at.size(), 0u);
  return after - before;
}

TEST(AllocationDisciplineTest, RasterPaintLoopAllocatesOnlyOutputArrays) {
  // The painter's loop writes row spans into the two up-front output
  // arrays; neither resolution nor node count adds allocations.
  const uint64_t small = AllocationsDuringRasterize(64);
  const uint64_t large = AllocationsDuringRasterize(512);
  EXPECT_EQ(small, large)
      << "allocation count scales with resolution - something allocates "
         "inside the raster paint loop";
  EXPECT_LE(large, 4u);
}

}  // namespace
}  // namespace graphscape
