// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/simplify.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

TEST(QuantizeFieldTest, BoundsDistinctValues) {
  Rng rng(5);
  std::vector<double> values(1000);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  for (const uint32_t levels : {1u, 4u, 16u}) {
    const VertexScalarField snapped = QuantizeField(field, levels);
    std::set<double> distinct(snapped.Values().begin(),
                              snapped.Values().end());
    EXPECT_LE(distinct.size(), levels);
    EXPECT_GE(snapped.MinValue(), field.MinValue());
    EXPECT_LE(snapped.MaxValue(), field.MaxValue());
  }
}

TEST(QuantizeFieldTest, ConstantFieldUnchanged) {
  const VertexScalarField field("f", std::vector<double>(10, 2.5));
  const VertexScalarField snapped = QuantizeField(field, 8);
  for (const double v : snapped.Values()) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(SimplifiedVertexSuperTreeTest, OneLevelCollapsesToComponents) {
  GraphBuilder builder(7);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  // vertices 5, 6 isolated
  const Graph g = builder.Build();
  Rng rng(1);
  std::vector<double> values(7);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  const SuperTree super = SimplifiedVertexSuperTree(g, field, 1);
  EXPECT_EQ(super.NumNodes(), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(super.NumRoots(), 4u);
}

TEST(SimplifiedVertexSuperTreeTest, MoreLevelsKeepMoreNodes) {
  Rng rng(9);
  const Graph g = BarabasiAlbert(1 << 12, 4, &rng);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);

  const uint32_t full =
      SuperTree(BuildVertexScalarTree(g, field)).NumNodes();
  uint32_t previous = 0;
  for (const uint32_t levels : {2u, 16u, 128u}) {
    const uint32_t nodes =
        SimplifiedVertexSuperTree(g, field, levels).NumNodes();
    EXPECT_GE(nodes, previous);
    EXPECT_LE(nodes, full);
    previous = nodes;
  }
  EXPECT_EQ(full, g.NumVertices());  // continuous field: all distinct
}

}  // namespace
}  // namespace graphscape
