// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/simplify.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

TEST(QuantizeFieldTest, BoundsDistinctValues) {
  Rng rng(5);
  std::vector<double> values(1000);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  for (const uint32_t levels : {1u, 4u, 16u}) {
    const VertexScalarField snapped = QuantizeField(field, levels);
    std::set<double> distinct(snapped.Values().begin(),
                              snapped.Values().end());
    EXPECT_LE(distinct.size(), levels);
    EXPECT_GE(snapped.MinValue(), field.MinValue());
    EXPECT_LE(snapped.MaxValue(), field.MaxValue());
  }
}

TEST(QuantizeFieldTest, ConstantFieldUnchanged) {
  const VertexScalarField field("f", std::vector<double>(10, 2.5));
  const VertexScalarField snapped = QuantizeField(field, 8);
  for (const double v : snapped.Values()) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(QuantizeFieldTest, BucketingRegressionPinsExactFences) {
  // Pins the bucketing the vertex path has always had, which the edge
  // path must reproduce exactly: lower-fence snapping, with the maximum
  // folded into the top bucket. Range [0, 1], 4 levels, width 0.25.
  const std::vector<double> values{0.0, 0.24, 0.25, 0.5, 0.99, 1.0};
  const VertexScalarField field("f", values);
  const VertexScalarField snapped = QuantizeField(field, 4);
  const std::vector<double> expected{0.0, 0.0, 0.25, 0.5, 0.75, 0.75};
  ASSERT_EQ(snapped.Values().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_DOUBLE_EQ(snapped.Values()[i], expected[i]) << "index " << i;
}

TEST(QuantizeFieldTest, VertexAndEdgeQuantizationAreBitIdentical) {
  // Same values through both entry points -> the shared SnapToLevels
  // core must emit identical doubles, not merely close ones.
  Rng rng(17);
  std::vector<double> values(512);
  for (auto& v : values) v = rng.UniformDouble() * 100.0 - 50.0;
  const VertexScalarField vertex_field("f", values);
  const EdgeScalarField edge_field("f", values);
  for (const uint32_t levels : {1u, 3u, 7u, 64u}) {
    const std::vector<double> from_vertex =
        QuantizeField(vertex_field, levels).Values();
    const std::vector<double> from_edge =
        QuantizeEdgeField(edge_field, levels).Values();
    ASSERT_EQ(from_vertex.size(), from_edge.size());
    for (size_t i = 0; i < from_vertex.size(); ++i)
      EXPECT_EQ(from_vertex[i], from_edge[i]) << "levels " << levels;
  }
}

TEST(SimplifiedVertexSuperTreeTest, OneLevelCollapsesToComponents) {
  GraphBuilder builder(7);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  // vertices 5, 6 isolated
  const Graph g = builder.Build();
  Rng rng(1);
  std::vector<double> values(7);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  const SuperTree super = SimplifiedVertexSuperTree(g, field, 1);
  EXPECT_EQ(super.NumNodes(), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(super.NumRoots(), 4u);
}

TEST(SimplifiedVertexSuperTreeTest, MoreLevelsKeepMoreNodes) {
  Rng rng(9);
  const Graph g = BarabasiAlbert(1 << 12, 4, &rng);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);

  const uint32_t full =
      SuperTree(BuildVertexScalarTree(g, field)).NumNodes();
  uint32_t previous = 0;
  for (const uint32_t levels : {2u, 16u, 128u}) {
    const uint32_t nodes =
        SimplifiedVertexSuperTree(g, field, levels).NumNodes();
    EXPECT_GE(nodes, previous);
    EXPECT_LE(nodes, full);
    previous = nodes;
  }
  EXPECT_EQ(full, g.NumVertices());  // continuous field: all distinct
}

TEST(SimplifiedEdgeSuperTreeTest, OneLevelCollapsesToEdgeBearingComponents) {
  GraphBuilder builder(8);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  // vertices 5, 6, 7 isolated: no edge-tree presence at all
  const Graph g = builder.Build();
  Rng rng(3);
  std::vector<double> values(static_cast<size_t>(g.NumEdges()));
  for (auto& v : values) v = rng.UniformDouble();
  const EdgeScalarField field("f", values);
  const SuperTree super = SimplifiedEdgeSuperTree(g, field, 1);
  EXPECT_EQ(super.NumNodes(), 2u);  // {triangle edges}, {3-4}
  EXPECT_EQ(super.NumRoots(), 2u);
}

TEST(SimplifiedEdgeSuperTreeTest, MoreLevelsKeepMoreNodes) {
  Rng rng(21);
  const Graph g = BarabasiAlbert(1 << 11, 4, &rng);
  std::vector<double> values(static_cast<size_t>(g.NumEdges()));
  for (auto& v : values) v = rng.UniformDouble();
  const EdgeScalarField field("f", values);

  const uint32_t full = SuperTree(BuildEdgeScalarTree(g, field)).NumNodes();
  uint32_t previous = 0;
  for (const uint32_t levels : {2u, 16u, 128u}) {
    const uint32_t nodes =
        SimplifiedEdgeSuperTree(g, field, levels).NumNodes();
    EXPECT_GE(nodes, previous);
    EXPECT_LE(nodes, full);
    previous = nodes;
  }
  EXPECT_EQ(full, g.NumEdges());  // continuous field: all distinct
}

}  // namespace
}  // namespace graphscape
