// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Differential suite for the sorted-run intersection layer
// (graph/intersect_simd.h + graph/intersect.h): every execution strategy
// — scalar merge, galloping, SSE2, AVX2, and the public dispatched entry
// points — must agree with a brute-force oracle and with each other, on
// counts, on emitted elements, AND on emission order, across 10k seeded
// adversarial run pairs (empty, disjoint, identical, 1:4096 skew,
// all-ties at block boundaries, lengths 0/1/non-multiple-of-lane-width).
// The suite runs under ASan/UBSan and TSan via the regular CI matrix, and
// in the -DGRAPHSCAPE_SIMD=OFF leg, where the vector kernels report
// unsupported and the dispatched paths must still pass everything.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "graph/intersect.h"
#include "graph/intersect_simd.h"
#include "metrics/clustering.h"
#include "metrics/ktruss.h"
#include "metrics/nucleus.h"
#include "metrics/triangles.h"

namespace graphscape {
namespace {

using intersect::Kernel;

std::vector<Kernel> SupportedKernels() {
  std::vector<Kernel> kernels;
  for (const Kernel k : {Kernel::kScalar, Kernel::kSse2, Kernel::kAvx2}) {
    if (intersect::KernelSupported(k)) kernels.push_back(k);
  }
  return kernels;
}

// Restores the process-wide dispatch no matter how a test exits.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel kernel) : previous_(intersect::ActiveKernel()) {
    EXPECT_TRUE(intersect::SetKernelForTesting(kernel));
  }
  ~ScopedKernel() { intersect::SetKernelForTesting(previous_); }

 private:
  Kernel previous_;
};

std::vector<uint32_t> OracleIntersect(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> OracleIntersect3(const std::vector<uint32_t>& a,
                                       const std::vector<uint32_t>& b,
                                       const std::vector<uint32_t>& c) {
  return OracleIntersect(OracleIntersect(a, b), c);
}

// Sorted duplicate-free run of `len` values drawn from [0, universe).
std::vector<uint32_t> MakeRun(uint32_t len, uint32_t universe, Rng* rng) {
  std::set<uint32_t> values;
  while (values.size() < len && values.size() < universe) {
    values.insert(static_cast<uint32_t>(rng->UniformInt(universe)));
  }
  return std::vector<uint32_t>(values.begin(), values.end());
}

void ExpectAllPathsAgree(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  const std::vector<uint32_t> oracle = OracleIntersect(a, b);
  const uint32_t na = static_cast<uint32_t>(a.size());
  const uint32_t nb = static_cast<uint32_t>(b.size());
  std::vector<uint32_t> out(std::min(a.size(), b.size()) + 1, 0xdeadbeefu);

  // Non-dispatched reference paths, both orientations.
  EXPECT_EQ(oracle.size(), intersect::detail::CountMerge(a.data(), na,
                                                         b.data(), nb));
  EXPECT_EQ(oracle.size(), intersect::detail::CountMerge(b.data(), nb,
                                                         a.data(), na));
  EXPECT_EQ(oracle.size(), intersect::detail::CountGallop(a.data(), na,
                                                          b.data(), nb));
  EXPECT_EQ(oracle.size(), intersect::detail::CountGallop(b.data(), nb,
                                                          a.data(), na));
  uint32_t got = intersect::detail::IntoMerge(a.data(), na, b.data(), nb,
                                              out.data());
  ASSERT_EQ(oracle.size(), got);
  EXPECT_TRUE(std::equal(oracle.begin(), oracle.end(), out.begin()));
  got = intersect::detail::IntoGallop(a.data(), na, b.data(), nb,
                                      out.data());
  ASSERT_EQ(oracle.size(), got);
  EXPECT_TRUE(std::equal(oracle.begin(), oracle.end(), out.begin()));

  // Dispatched entry points under every kernel this machine supports.
  for (const Kernel kernel : SupportedKernels()) {
    ScopedKernel scoped(kernel);
    EXPECT_EQ(oracle.size(), intersect::Count(a.data(), na, b.data(), nb))
        << "kernel " << intersect::KernelName(kernel);
    EXPECT_EQ(oracle.size(), intersect::Count(b.data(), nb, a.data(), na))
        << "kernel " << intersect::KernelName(kernel);
    std::fill(out.begin(), out.end(), 0xdeadbeefu);
    got = intersect::Into(a.data(), na, b.data(), nb, out.data());
    ASSERT_EQ(oracle.size(), got)
        << "kernel " << intersect::KernelName(kernel);
    EXPECT_TRUE(std::equal(oracle.begin(), oracle.end(), out.begin()))
        << "kernel " << intersect::KernelName(kernel);
  }
}

TEST(IntersectKernelTest, ScalarKernelIsAlwaysSupported) {
  EXPECT_TRUE(intersect::KernelSupported(Kernel::kScalar));
  EXPECT_TRUE(intersect::SetKernelForTesting(intersect::ActiveKernel()));
}

TEST(IntersectKernelTest, UnsupportedKernelIsRejected) {
#ifdef GRAPHSCAPE_SIMD_DISABLED
  // The SIMD-off build must refuse both vector kernels and stay scalar.
  EXPECT_FALSE(intersect::KernelSupported(Kernel::kSse2));
  EXPECT_FALSE(intersect::KernelSupported(Kernel::kAvx2));
  EXPECT_FALSE(intersect::SetKernelForTesting(Kernel::kAvx2));
  EXPECT_EQ(Kernel::kScalar, intersect::ActiveKernel());
#else
  GTEST_SKIP() << "vector kernels compiled in; nothing to reject";
#endif
}

TEST(IntersectKernelTest, KernelNamesAreStable) {
  EXPECT_STREQ("scalar", intersect::KernelName(Kernel::kScalar));
  EXPECT_STREQ("sse2", intersect::KernelName(Kernel::kSse2));
  EXPECT_STREQ("avx2", intersect::KernelName(Kernel::kAvx2));
}

TEST(IntersectDifferentialTest, HandPickedAdversarialPairs) {
  const std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
      cases = {
          {{}, {}},
          {{}, {1, 2, 3}},
          {{5}, {5}},
          {{5}, {4}},
          {{1, 2, 3, 4, 5, 6, 7, 8}, {1, 2, 3, 4, 5, 6, 7, 8}},
          // Disjoint but interleaved: every merge step alternates sides.
          {{0, 2, 4, 6, 8, 10, 12, 14}, {1, 3, 5, 7, 9, 11, 13, 15}},
          // Match exactly at the 4-lane and 8-lane block boundaries.
          {{0, 1, 2, 3, 100, 101, 102, 103},
           {3, 100, 200, 201, 202, 203, 204, 205}},
          {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
           {7, 8, 15, 16, 23, 24, 31, 32, 39, 40, 47, 48, 55, 56, 63, 64}},
          // Non-multiple-of-lane-width lengths with a tail match.
          {{1, 2, 3, 4, 5}, {5}},
          {{1, 2, 3, 4, 5, 6, 7, 8, 9}, {9, 10, 11}},
          // One giant gap the galloping path must leap in one bound.
          {{1, 1000000000}, {2, 3, 4, 5, 6, 7, 8, 9, 1000000000}},
      };
  for (const auto& [a, b] : cases) ExpectAllPathsAgree(a, b);
}

TEST(IntersectDifferentialTest, SeededFuzzTenThousandPairs) {
  // 10k adversarial pairs: lengths sweep 0..~4096 including 1 and
  // non-multiples of the lane width, skews up to 1:4096, and universe
  // sizes from all-ties (dense overlap) to near-disjoint.
  Rng rng(20260807);
  for (uint32_t trial = 0; trial < 10000; ++trial) {
    const uint32_t shape = static_cast<uint32_t>(rng.UniformInt(4));
    uint32_t na, nb;
    switch (shape) {
      case 0:  // balanced small (tails + boundaries)
        na = static_cast<uint32_t>(rng.UniformInt(18));
        nb = static_cast<uint32_t>(rng.UniformInt(18));
        break;
      case 1:  // balanced blocky
        na = 16 + static_cast<uint32_t>(rng.UniformInt(113));
        nb = 16 + static_cast<uint32_t>(rng.UniformInt(113));
        break;
      case 2:  // skewed ~1:100
        na = 1 + static_cast<uint32_t>(rng.UniformInt(8));
        nb = 256 + static_cast<uint32_t>(rng.UniformInt(512));
        break;
      default:  // heavy skew up to 1:4096
        na = 1;
        nb = 4096;
        break;
    }
    // Universe factor 1 forces maximal ties; 16 makes sparse overlap.
    const uint32_t factor = 1u << rng.UniformInt(5);
    const uint32_t universe = std::max(1u, std::max(na, nb) * factor);
    const std::vector<uint32_t> a = MakeRun(na, universe, &rng);
    const std::vector<uint32_t> b = MakeRun(nb, universe, &rng);
    ExpectAllPathsAgree(a, b);
    if (HasFailure()) {
      ADD_FAILURE() << "first failing trial " << trial << " na=" << a.size()
                    << " nb=" << b.size() << " universe=" << universe;
      break;
    }
  }
}

TEST(IntersectDifferentialTest, ThreeWayCountMatchesOracle) {
  Rng rng(99);
  for (uint32_t trial = 0; trial < 2000; ++trial) {
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.UniformInt(600));
    const std::vector<uint32_t> a =
        MakeRun(static_cast<uint32_t>(rng.UniformInt(300)), universe, &rng);
    const std::vector<uint32_t> b =
        MakeRun(static_cast<uint32_t>(rng.UniformInt(300)), universe, &rng);
    const std::vector<uint32_t> c =
        MakeRun(static_cast<uint32_t>(rng.UniformInt(300)), universe, &rng);
    const size_t expected = OracleIntersect3(a, b, c).size();
    for (const Kernel kernel : SupportedKernels()) {
      ScopedKernel scoped(kernel);
      EXPECT_EQ(expected,
                intersect::Count3(a.data(), static_cast<uint32_t>(a.size()),
                                  b.data(), static_cast<uint32_t>(b.size()),
                                  c.data(), static_cast<uint32_t>(c.size())))
          << "trial " << trial << " kernel "
          << intersect::KernelName(kernel);
    }
  }
}

TEST(IntersectDifferentialTest, ThreeWayCountCrossesChunkBoundaries) {
  // Runs longer than the 256-element internal chunk, dense overlap: the
  // chunked pair pass plus the galloping filter must not drop or double
  // count matches at chunk seams.
  std::vector<uint32_t> a, b, c;
  for (uint32_t i = 0; i < 1500; ++i) {
    a.push_back(i);
    if (i % 2 == 0) b.push_back(i);
    if (i % 3 == 0) c.push_back(i);
  }
  const size_t expected = OracleIntersect3(a, b, c).size();  // i % 6 == 0
  ASSERT_EQ(expected, 250u);
  for (const Kernel kernel : SupportedKernels()) {
    ScopedKernel scoped(kernel);
    EXPECT_EQ(expected,
              intersect::Count3(a.data(), static_cast<uint32_t>(a.size()),
                                b.data(), static_cast<uint32_t>(b.size()),
                                c.data(), static_cast<uint32_t>(c.size())));
  }
}

TEST(IntersectGraphApiTest, CallbackWrapperMatchesCountOnEveryPair) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(1 << 9, 6, &rng);
  for (const Kernel kernel : SupportedKernels()) {
    ScopedKernel scoped(kernel);
    for (VertexId u = 0; u < g.NumVertices(); u += 3) {
      for (VertexId v = u + 1; v < g.NumVertices(); v += 97) {
        std::vector<VertexId> via_callback;
        ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
          via_callback.push_back(w);
        });
        EXPECT_TRUE(std::is_sorted(via_callback.begin(), via_callback.end()));
        EXPECT_EQ(via_callback.size(), CountCommonNeighbors(g, u, v));
      }
    }
  }
}

TEST(IntersectGraphApiTest, ThreeWayCallbackMatchesOracleAndCount) {
  // Star-of-cliques: vertex 0 is a hub adjacent to everyone — the 3-way
  // lagging-pointer restructure must handle the hub run staying at the
  // frontier while leaf runs gallop.
  GraphBuilder builder(64);
  for (VertexId v = 1; v < 64; ++v) builder.AddEdge(0, v);
  for (VertexId base = 1; base + 4 <= 64; base += 4) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
  }
  const Graph g = builder.Build();
  for (VertexId a = 0; a < 16; ++a) {
    for (VertexId b = a + 1; b < 16; ++b) {
      for (VertexId c = b + 1; c < 16; ++c) {
        std::vector<VertexId> na(g.Neighbors(a).begin(),
                                 g.Neighbors(a).end());
        std::vector<VertexId> nb(g.Neighbors(b).begin(),
                                 g.Neighbors(b).end());
        std::vector<VertexId> nc(g.Neighbors(c).begin(),
                                 g.Neighbors(c).end());
        const std::vector<uint32_t> oracle = OracleIntersect3(na, nb, nc);
        std::vector<VertexId> via_callback;
        ForEachCommonNeighbor(g, a, b, c, [&](VertexId d) {
          via_callback.push_back(d);
        });
        EXPECT_EQ(oracle, via_callback);
        EXPECT_EQ(oracle.size(), CountCommonNeighbors(g, a, b, c));
      }
    }
  }
}

// The end-to-end determinism pin: every triangle-adjacent metric must be
// exactly identical under every kernel — the SIMD-off CI leg re-proves
// this cross-build via the Table II readout diff.
TEST(IntersectMetricsTest, MetricsAreKernelInvariant) {
  Rng rng(31);
  const Graph ba = BarabasiAlbert(1 << 10, 5, &rng);
  CollaborationOptions collab_options;
  collab_options.num_vertices = 1 << 10;
  collab_options.num_groups = 1 << 9;
  collab_options.num_planted_cores = 2;
  collab_options.planted_core_size = 16;
  Rng collab_rng(5);
  const Graph collab = CollaborationNetwork(collab_options, &collab_rng);

  for (const Graph* g : {&ba, &collab}) {
    uint64_t triangles = 0;
    std::vector<uint32_t> per_vertex, truss, nucleus;
    double avg_cc = 0.0;
    bool first = true;
    for (const Kernel kernel : SupportedKernels()) {
      ScopedKernel scoped(kernel);
      const uint64_t t = CountTriangles(*g);
      const std::vector<uint32_t> pv = VertexTriangleCounts(*g);
      const std::vector<uint32_t> tr = TrussNumbers(*g);
      const std::vector<uint32_t> nu = NucleusEdgeNumbers(*g);
      const double cc = AverageClusteringCoefficient(*g);
      if (first) {
        triangles = t;
        per_vertex = pv;
        truss = tr;
        nucleus = nu;
        avg_cc = cc;
        first = false;
        continue;
      }
      EXPECT_EQ(triangles, t) << intersect::KernelName(kernel);
      EXPECT_EQ(per_vertex, pv) << intersect::KernelName(kernel);
      EXPECT_EQ(truss, tr) << intersect::KernelName(kernel);
      EXPECT_EQ(nucleus, nu) << intersect::KernelName(kernel);
      // Bit-identical, not merely close: the kernels change instruction
      // choice, never the arithmetic.
      EXPECT_EQ(avg_cc, cc) << intersect::KernelName(kernel);
    }
  }
}

TEST(IntersectMetricsTest, TriangleCountsMatchBruteForceOracle) {
  // The forward-adjacency restructure of metrics/triangles.cc against an
  // O(n^3) oracle, under the widest kernel available.
  Rng rng(13);
  const Graph g = BarabasiAlbert(96, 4, &rng);
  uint64_t oracle = 0;
  std::vector<uint32_t> oracle_per_vertex(g.NumVertices(), 0);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      if (!g.HasEdge(u, v)) continue;
      for (VertexId w = v + 1; w < g.NumVertices(); ++w) {
        if (g.HasEdge(u, w) && g.HasEdge(v, w)) {
          ++oracle;
          ++oracle_per_vertex[u];
          ++oracle_per_vertex[v];
          ++oracle_per_vertex[w];
        }
      }
    }
  }
  EXPECT_EQ(oracle, CountTriangles(g));
  EXPECT_EQ(oracle_per_vertex, VertexTriangleCounts(g));
}

}  // namespace
}  // namespace graphscape
