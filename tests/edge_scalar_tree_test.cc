// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 3 correctness: hand-computable examples, the undirected-twin
// EdgeIndex mapping, a brute-force merge-tree oracle over random graphs
// from three generator families, agreement with the naive dual-graph
// baseline, and the constant-per-component property with connected
// components as the oracle.

#include "scalar/edge_scalar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "metrics/ktruss.h"
#include "metrics/nucleus.h"
#include "scalar/simplify.h"

namespace graphscape {
namespace {

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

EdgeScalarField RandomEdgeField(const Graph& g, uint64_t seed,
                                uint32_t distinct) {
  Rng rng(seed);
  std::vector<double> values(static_cast<size_t>(g.NumEdges()));
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(distinct));
  return EdgeScalarField("f", std::move(values));
}

// Brute-force merge-tree reference, independent of union-find and of the
// CSR sweep tricks: explicit line-graph adjacency, components tracked as
// plain vectors, every step by linear scan. For node w in rank order,
// every existing component touching a neighbor of w chains its head
// under w, then all of them fuse with w into one component.
std::vector<uint32_t> BruteForceMergeParents(
    uint32_t num_nodes, const std::vector<std::vector<uint32_t>>& adjacency,
    const std::vector<double>& values) {
  std::vector<uint32_t> order(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&values](uint32_t a, uint32_t b) {
    return values[a] > values[b] || (values[a] == values[b] && a < b);
  });

  struct Component {
    std::vector<uint32_t> nodes;
    uint32_t head;
  };
  std::vector<Component> components;
  std::vector<uint32_t> parents(num_nodes, kInvalidVertex);

  for (const uint32_t w : order) {
    Component merged;
    merged.nodes.push_back(w);
    merged.head = w;
    for (size_t c = 0; c < components.size();) {
      const bool touches = std::any_of(
          components[c].nodes.begin(), components[c].nodes.end(),
          [&](uint32_t node) {
            const auto& nbrs = adjacency[node];
            return std::find(nbrs.begin(), nbrs.end(), w) != nbrs.end();
          });
      if (!touches) {
        ++c;
        continue;
      }
      parents[components[c].head] = w;
      merged.nodes.insert(merged.nodes.end(), components[c].nodes.begin(),
                          components[c].nodes.end());
      components.erase(components.begin() + static_cast<long>(c));
    }
    components.push_back(std::move(merged));
  }
  return parents;
}

// Line-graph adjacency for the oracle: edges are nodes, shared endpoint
// means adjacent.
std::vector<std::vector<uint32_t>> LineGraphAdjacency(const Graph& g) {
  const EdgeIndex index(g);
  std::vector<std::vector<uint32_t>> adjacency(index.NumEdges());
  const std::vector<uint32_t>& offsets = g.Offsets();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      for (uint32_t t = s + 1; t < offsets[v + 1]; ++t) {
        adjacency[index.EdgeAtSlot(s)].push_back(index.EdgeAtSlot(t));
        adjacency[index.EdgeAtSlot(t)].push_back(index.EdgeAtSlot(s));
      }
    }
  }
  return adjacency;
}

void ExpectMatchesOracle(const Graph& g, const EdgeScalarField& field) {
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  const std::vector<uint32_t> expected = BruteForceMergeParents(
      static_cast<uint32_t>(g.NumEdges()), LineGraphAdjacency(g),
      field.Values());
  ASSERT_EQ(tree.NumNodes(), expected.size());
  for (uint32_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(tree.Parent(e), expected[e]) << "edge " << e;
  }
}

TEST(EdgeIndexTest, TwinMappingMatchesEdgeList) {
  Rng rng(3);
  const Graph g = ErdosRenyi(60, 0.1, &rng);
  const EdgeIndex index(g);
  const auto edges = EdgeList(g);
  ASSERT_EQ(index.NumEdges(), edges.size());
  for (uint32_t e = 0; e < edges.size(); ++e) {
    EXPECT_EQ(index.U(e), edges[e].first);
    EXPECT_EQ(index.V(e), edges[e].second);
    EXPECT_EQ(index.EdgeId(edges[e].first, edges[e].second), e);
    EXPECT_EQ(index.EdgeId(edges[e].second, edges[e].first), e);
  }
  // Every CSR slot maps to the id of the edge it belongs to.
  const std::vector<uint32_t>& offsets = g.Offsets();
  const std::vector<VertexId>& adj = g.Adjacency();
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (uint32_t s = offsets[u]; s < offsets[u + 1]; ++s) {
      const uint32_t e = index.EdgeAtSlot(s);
      EXPECT_EQ(std::min(u, adj[s]), index.U(e));
      EXPECT_EQ(std::max(u, adj[s]), index.V(e));
    }
  }
}

TEST(EdgeScalarTreeTest, MonotonePathChainsItsEdges) {
  // Path 0-1-2-3: edges e0={0,1}, e1={1,2}, e2={2,3} with increasing
  // values chain leaf-to-root; the minimum edge e0 is the root.
  const Graph g = Path(4);
  const EdgeScalarField field("f", {1.0, 2.0, 3.0});
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  ASSERT_EQ(tree.NumNodes(), 3u);
  EXPECT_EQ(tree.Parent(2), 1u);
  EXPECT_EQ(tree.Parent(1), 0u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 1u);
}

TEST(EdgeScalarTreeTest, StarEdgesChainThroughTheHub) {
  // Star center 0, leaves 1..3: edges e0={0,1}, e1={0,2}, e2={0,3} all
  // share vertex 0, so they chain in value order regardless of layout.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 3);
  const Graph g = builder.Build();
  const EdgeScalarField field("f", {3.0, 1.0, 2.0});
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  EXPECT_EQ(tree.Parent(0), 2u);  // value 3 chains under value 2
  EXPECT_EQ(tree.Parent(2), 1u);  // value 2 chains under value 1
  EXPECT_EQ(tree.Parent(1), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 1u);
}

TEST(EdgeScalarTreeTest, BridgeEdgeMergesTwoComponentsAtTheSaddle) {
  // Two triangles {0,1,2} (high values) and {3,4,5} (mid values) joined
  // by bridge 2-3 carrying the minimum: the bridge is the root and has
  // both triangle heads (their minima e0 and e4) as children.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);  // e0
  builder.AddEdge(0, 2);  // e1
  builder.AddEdge(1, 2);  // e2
  builder.AddEdge(2, 3);  // e3 (bridge)
  builder.AddEdge(3, 4);  // e4
  builder.AddEdge(3, 5);  // e5
  builder.AddEdge(4, 5);  // e6
  const Graph g = builder.Build();
  const EdgeScalarField field("f", {7.0, 8.0, 9.0, 1.0, 4.0, 5.0, 6.0});
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  EXPECT_EQ(tree.Parent(3), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 1u);
  // Heads of the two triangle chains (their minima e0 and e4) attach to
  // the bridge.
  EXPECT_EQ(tree.Parent(0), 3u);
  EXPECT_EQ(tree.Parent(4), 3u);
}

TEST(EdgeScalarTreeTest, IsolatedVerticesContributeNothing) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);  // vertex 4 isolated
  const Graph g = builder.Build();
  const EdgeScalarField field("f", {1.0, 2.0});
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  EXPECT_EQ(tree.NumNodes(), 2u);
  EXPECT_EQ(tree.NumRoots(), 2u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
  EXPECT_EQ(tree.Parent(1), kInvalidVertex);
}

TEST(EdgeScalarTreeTest, FieldRejectsNonFiniteValues) {
  EXPECT_THROW(EdgeScalarField("f", {1.0, std::nan("")}),
               std::invalid_argument);
}

TEST(EdgeScalarTreeTest, MatchesBruteForceOracleOnThreeGraphFamilies) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Graph ba = BarabasiAlbert(120, 3, &rng);
    ExpectMatchesOracle(ba, RandomEdgeField(ba, seed * 11, 8));
    ExpectMatchesOracle(ba, RandomEdgeField(ba, seed * 13, 1000000));

    const Graph er = ErdosRenyi(150, 0.04, &rng);
    ExpectMatchesOracle(er, RandomEdgeField(er, seed * 17, 8));

    CollaborationOptions options;
    options.num_vertices = 160;
    options.num_planted_cores = 2;
    options.planted_core_size = 8;
    const Graph collab = CollaborationNetwork(options, &rng);
    ExpectMatchesOracle(collab, RandomEdgeField(collab, seed * 19, 6));
  }
}

TEST(EdgeScalarTreeTest, PrebuiltIndexOverloadMatchesConvenienceOverload) {
  // The convenience overload gathers endpoints with a light CSR pass;
  // the amortized overload reads them off a prebuilt EdgeIndex. Same
  // sweep, identical trees.
  Rng rng(9);
  const Graph g = ErdosRenyi(300, 0.03, &rng);
  const EdgeScalarField field = RandomEdgeField(g, 41, 12);
  const ScalarTree direct = BuildEdgeScalarTree(g, field);
  const EdgeIndex index(g);
  const ScalarTree amortized = BuildEdgeScalarTree(g, index, field);
  ASSERT_EQ(direct.NumNodes(), amortized.NumNodes());
  EXPECT_EQ(direct.NumRoots(), amortized.NumRoots());
  for (uint32_t e = 0; e < direct.NumNodes(); ++e)
    EXPECT_EQ(direct.Parent(e), amortized.Parent(e));
}

TEST(EdgeScalarTreeTest, NaiveDualGraphBaselineProducesIdenticalTrees) {
  Rng rng(5);
  const Graph g = BarabasiAlbert(800, 4, &rng);
  const EdgeScalarField field = RandomEdgeField(g, 23, 16);
  const ScalarTree optimized = BuildEdgeScalarTree(g, field);
  const auto naive = BuildEdgeScalarTreeNaive(g, field);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_EQ(naive.value().NumNodes(), optimized.NumNodes());
  EXPECT_EQ(naive.value().NumRoots(), optimized.NumRoots());
  for (uint32_t e = 0; e < optimized.NumNodes(); ++e) {
    EXPECT_EQ(naive.value().Parent(e), optimized.Parent(e)) << "edge " << e;
  }
}

TEST(EdgeScalarTreeTest, NaiveBaselineGuardsAgainstLineGraphBlowup) {
  // A hub of degree 200 needs 200*199/2 = 19900 line edges; cap at 1000.
  GraphBuilder builder(201);
  for (uint32_t i = 1; i <= 200; ++i) builder.AddEdge(0, i);
  const Graph g = builder.Build();
  const EdgeScalarField field = RandomEdgeField(g, 1, 4);
  const auto naive = BuildEdgeScalarTreeNaive(g, field, 1000);
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);
}

TEST(EdgeScalarTreeTest,
     ConstantPerComponentFieldYieldsOneContractedChainPerComponent) {
  // Property (oracle: graph_algos connected components): on a field
  // constant within each component, every edge-bearing component's edges
  // collapse into a single same-value chain — the component's max edge
  // id is its root, and Algorithm 2 contracts the whole chain to exactly
  // one super node per component.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    // Sparse ER fragments into many components; add isolated vertices.
    const Graph g = ErdosRenyi(200, 0.008, &rng);
    const ComponentLabeling comps = ConnectedComponents(g);
    const EdgeIndex index(g);

    std::vector<double> values(index.NumEdges());
    std::vector<char> component_has_edge(comps.num_components, 0);
    std::vector<uint32_t> max_edge_of(comps.num_components, 0);
    for (uint32_t e = 0; e < index.NumEdges(); ++e) {
      const uint32_t c = comps.ComponentOf(index.U(e));
      values[e] = static_cast<double>(c);
      component_has_edge[c] = 1;
      max_edge_of[c] = std::max(max_edge_of[c], e);
    }
    uint32_t edge_bearing = 0;
    for (const char has : component_has_edge) edge_bearing += has;

    const EdgeScalarField field("component", std::move(values));
    const ScalarTree tree = BuildEdgeScalarTree(g, field);
    EXPECT_EQ(tree.NumRoots(), edge_bearing);

    // Each edge's leaf-to-root walk stays inside its component and ends
    // at the component's maximum edge id.
    for (uint32_t e = 0; e < tree.NumNodes(); ++e) {
      const uint32_t c = comps.ComponentOf(index.U(e));
      uint32_t node = e;
      while (tree.Parent(node) != kInvalidVertex) {
        node = tree.Parent(node);
        EXPECT_EQ(comps.ComponentOf(index.U(node)), c);
      }
      EXPECT_EQ(node, max_edge_of[c]);
    }

    // Algorithm 2 contracts each component's chain to one super node.
    const SuperTree super(tree);
    EXPECT_EQ(super.NumNodes(), edge_bearing);
    EXPECT_EQ(super.NumRoots(), edge_bearing);
  }
}

TEST(EdgeSuperTreeTest, BuildEdgeSuperTreeContractsLevels) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(500, 3, &rng);
  const EdgeScalarField field = RandomEdgeField(g, 31, 4);  // few levels
  const EdgeSuperTree super = BuildEdgeSuperTree(g, field);
  EXPECT_GT(super.NumNodes(), 0u);
  EXPECT_LT(super.NumNodes(), g.NumEdges());  // contraction really fires
  uint32_t members = 0;
  for (uint32_t node = 0; node < super.NumNodes(); ++node)
    members += super.MemberCount(node);
  EXPECT_EQ(members, g.NumEdges());  // every edge in exactly one node
}

TEST(EdgeFieldProducersTest, TrussnessFieldMatchesTrussNumbers) {
  CollaborationOptions options;
  options.num_vertices = 120;
  options.num_planted_cores = 1;
  options.planted_core_size = 8;
  Rng rng(2);
  const Graph g = CollaborationNetwork(options, &rng);
  const EdgeScalarField field = TrussnessEdgeField(g);
  const std::vector<uint32_t> truss = TrussNumbers(g);
  ASSERT_EQ(field.Size(), truss.size());
  for (uint32_t e = 0; e < truss.size(); ++e)
    EXPECT_EQ(field[e], static_cast<double>(truss[e]));
  EXPECT_GE(field.MinValue(), 2.0);
  // The planted 8-clique drives trussness to 8 somewhere.
  EXPECT_GE(field.MaxValue(), 8.0);
  // And the field feeds the tree pipeline end to end.
  const SuperTree super = SimplifiedEdgeSuperTree(g, field, 4);
  EXPECT_GT(super.NumNodes(), 0u);
}

TEST(EdgeFieldProducersTest, NucleusFieldLiftsTriangleValuesToEdges) {
  // A 5-clique: every triangle has nucleus number 2 (each triangle is in
  // two 4-cliques), so every edge lifts to 2.
  GraphBuilder builder(5);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(u, v);
  const Graph clique = builder.Build();
  const EdgeScalarField field = NucleusEdgeField(clique);
  ASSERT_EQ(field.Size(), 10u);
  for (uint32_t e = 0; e < field.Size(); ++e) EXPECT_EQ(field[e], 2.0);

  // Triangle-free edges take value 0.
  const Graph path = Path(4);
  const EdgeScalarField path_field = NucleusEdgeField(path);
  for (uint32_t e = 0; e < path_field.Size(); ++e)
    EXPECT_EQ(path_field[e], 0.0);
}

}  // namespace
}  // namespace graphscape
