// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// ArtifactCache under normal operation: CRUD, persistence across Open,
// the GetOrBuild contract, key encoding, stats, and the on-disk promise
// that entry files are byte-identical to SerializeTreeArtifact output.
// The crash/corruption paths live in tests/recovery_test.cc.

#include "scalar/artifact_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"

namespace graphscape {
namespace {

TreeArtifact MakeArtifact(uint64_t seed) {
  Rng rng(seed);
  const Graph g = BarabasiAlbert(200, 3, &rng);
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildVertexScalarTree(g, kc));
  artifact.field_name = kc.Name();
  artifact.field_values = kc.Values();
  return artifact;
}

std::string MustSerialize(const TreeArtifact& artifact) {
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

// Fresh, empty cache root per test (removes leftovers from a previous
// run of the same test).
std::string FreshRoot(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gs_cache_" + name;
  for (const char* sub : {"/entries", "/quarantine", ""}) {
    const std::string dir = root + sub;
    const StatusOr<std::vector<std::string>> names = ListDir(dir);
    if (!names.ok()) continue;
    for (const std::string& file : names.value()) {
      (void)RemoveFile(dir + "/" + file);
    }
    ::rmdir(dir.c_str());
  }
  return root;
}

ArtifactCache MustOpen(const std::string& root) {
  StatusOr<ArtifactCache> cache = ArtifactCache::Open(root);
  EXPECT_TRUE(cache.ok()) << cache.status().ToString();
  return std::move(cache).value();
}

TEST(ArtifactCacheTest, PutGetRoundtripsByteIdentically) {
  ArtifactCache cache = MustOpen(FreshRoot("roundtrip"));
  const TreeArtifact artifact = MakeArtifact(3);
  const ArtifactKey key{"demo", "KC"};
  ASSERT_TRUE(cache.Put(key, artifact).ok());
  EXPECT_TRUE(cache.Contains(key));

  const StatusOr<TreeArtifact> loaded = cache.Get(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCacheTest, EntryFileIsExactlyTheSerializedArtifact) {
  // The mmap-ready promise: what's on disk IS SerializeTreeArtifact's
  // output, nothing wrapped around it.
  const std::string root = FreshRoot("rawbytes");
  ArtifactCache cache = MustOpen(root);
  const TreeArtifact artifact = MakeArtifact(5);
  ASSERT_TRUE(cache.Put(ArtifactKey{"demo", "KC"}, artifact).ok());
  const StatusOr<std::string> on_disk = ReadFileBytes(
      root + "/entries/" + ArtifactCache::EncodeKey("demo/KC") + ".gsta");
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk.value(), MustSerialize(artifact));
}

TEST(ArtifactCacheTest, MissIsNotFound) {
  ArtifactCache cache = MustOpen(FreshRoot("miss"));
  const StatusOr<TreeArtifact> missing =
      cache.Get(ArtifactKey{"never", "stored"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCacheTest, EntriesSurviveReopen) {
  const std::string root = FreshRoot("reopen");
  const TreeArtifact artifact = MakeArtifact(7);
  {
    ArtifactCache cache = MustOpen(root);
    ASSERT_TRUE(cache.Put(ArtifactKey{"ds", "KC"}, artifact).ok());
    ASSERT_TRUE(cache.Put(ArtifactKey{"ds", "KT"}, MakeArtifact(9)).ok());
  }
  ArtifactCache cache = MustOpen(root);
  EXPECT_FALSE(cache.stats().manifest_recovered);
  EXPECT_EQ(cache.Keys(), (std::vector<std::string>{"ds/KC", "ds/KT"}));
  const StatusOr<TreeArtifact> loaded = cache.Get(ArtifactKey{"ds", "KC"});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
}

TEST(ArtifactCacheTest, PutReplacesAndRemoveDrops) {
  ArtifactCache cache = MustOpen(FreshRoot("replace"));
  const ArtifactKey key{"ds", "KC"};
  ASSERT_TRUE(cache.Put(key, MakeArtifact(3)).ok());
  const TreeArtifact replacement = MakeArtifact(11);
  ASSERT_TRUE(cache.Put(key, replacement).ok());
  const StatusOr<TreeArtifact> loaded = cache.Get(key);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(replacement));

  ASSERT_TRUE(cache.Remove(key).ok());
  EXPECT_FALSE(cache.Contains(key));
  EXPECT_TRUE(cache.Remove(key).ok());  // idempotent
  EXPECT_EQ(cache.Get(key).status().code(), StatusCode::kNotFound);
}

TEST(ArtifactCacheTest, GetOrBuildBuildsOnceThenHits) {
  ArtifactCache cache = MustOpen(FreshRoot("getorbuild"));
  const ArtifactKey key{"ds", "KC"};
  int builds = 0;
  const auto builder = [&]() -> StatusOr<TreeArtifact> {
    ++builds;
    return MakeArtifact(13);
  };
  const StatusOr<TreeArtifact> first = cache.GetOrBuild(key, builder);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const StatusOr<TreeArtifact> second = cache.GetOrBuild(key, builder);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(MustSerialize(second.value()), MustSerialize(first.value()));
}

TEST(ArtifactCacheTest, GetOrBuildPropagatesBuilderFailure) {
  ArtifactCache cache = MustOpen(FreshRoot("builderfail"));
  const StatusOr<TreeArtifact> result = cache.GetOrBuild(
      ArtifactKey{"ds", "KC"}, []() -> StatusOr<TreeArtifact> {
        return Status::ResourceExhausted("builder over budget");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(cache.Contains(ArtifactKey{"ds", "KC"}));
}

TEST(ArtifactCacheTest, KeyEncodingIsBijectiveAndFilesystemSafe) {
  for (const std::string& canonical :
       {std::string("plain/KC"), std::string("with space/and%percent"),
        std::string("dots.and-dashes_ok/f"), std::string("slash//double"),
        std::string("unicode/\xc3\xa9")}) {
    const std::string encoded = ArtifactCache::EncodeKey(canonical);
    for (const char c : encoded) {
      const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-' || c == '%';
      EXPECT_TRUE(safe) << canonical << " -> " << encoded;
    }
    const StatusOr<std::string> decoded = ArtifactCache::DecodeKey(encoded);
    ASSERT_TRUE(decoded.ok()) << encoded;
    EXPECT_EQ(decoded.value(), canonical);
  }
  EXPECT_FALSE(ArtifactCache::DecodeKey("bad%Z1").ok());
  EXPECT_FALSE(ArtifactCache::DecodeKey("truncated%4").ok());
  EXPECT_FALSE(ArtifactCache::DecodeKey("raw space").ok());
}

TEST(ArtifactCacheTest, KeysWithAwkwardCharactersRoundtripThroughDisk) {
  const std::string root = FreshRoot("awkward");
  ArtifactCache cache = MustOpen(root);
  const ArtifactKey key{"ca-GrQc (snap)", "k core #2"};
  const TreeArtifact artifact = MakeArtifact(15);
  ASSERT_TRUE(cache.Put(key, artifact).ok());
  // Reopen: the key must survive the encode -> filename -> decode trip.
  ArtifactCache reopened = MustOpen(root);
  ASSERT_TRUE(reopened.Contains(key));
  const StatusOr<TreeArtifact> loaded = reopened.Get(key);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
}

TEST(ArtifactCacheTest, ScrubOnHealthyCacheIsClean) {
  ArtifactCache cache = MustOpen(FreshRoot("cleanscrub"));
  ASSERT_TRUE(cache.Put(ArtifactKey{"a", "f"}, MakeArtifact(3)).ok());
  ASSERT_TRUE(cache.Put(ArtifactKey{"b", "f"}, MakeArtifact(5)).ok());
  const StatusOr<ScrubReport> report = cache.Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().Clean());
  EXPECT_EQ(report.value().entries_checked, 2u);
  EXPECT_EQ(report.value().entries_ok, 2u);
}

}  // namespace
}  // namespace graphscape
