// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Persistence pairs vs hand-computed oracles on path/star graphs, the
// structural invariants (one pair per leaf, one essential pair per
// component, non-negative persistence) on random graphs for vertex and
// edge trees, and the SimplifyByPersistence contract: tau = 0 is the
// identity, cancelled features vanish, survivors keep their pairs — the
// consistency pin against §II-E level quantization.

#include "scalar/persistence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/simplify.h"
#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph Star(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

TEST(PersistenceTest, TwoPeakPathMatchesHandComputation) {
  // Peaks at v1 (5) and v3 (6) merge at the saddle v2 (2); the elder
  // peak v3 survives to the component minimum v0 (1).
  const Graph g = Path(5);
  const VertexScalarField field("f", {1.0, 5.0, 2.0, 6.0, 3.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const auto pairs = PersistencePairs(tree);
  ASSERT_EQ(pairs.size(), 2u);

  EXPECT_TRUE(pairs[0].essential);
  EXPECT_EQ(pairs[0].birth_element, 3u);
  EXPECT_EQ(pairs[0].death_element, kInvalidVertex);
  EXPECT_DOUBLE_EQ(pairs[0].birth, 6.0);
  EXPECT_DOUBLE_EQ(pairs[0].death, 1.0);

  EXPECT_FALSE(pairs[1].essential);
  EXPECT_EQ(pairs[1].birth_element, 1u);
  EXPECT_EQ(pairs[1].death_element, 2u);
  EXPECT_DOUBLE_EQ(pairs[1].birth, 5.0);
  EXPECT_DOUBLE_EQ(pairs[1].death, 2.0);
  EXPECT_DOUBLE_EQ(pairs[1].Persistence(), 3.0);
}

TEST(PersistenceTest, LowCenterStarPairsEveryLeafAgainstTheHub) {
  // Every spoke is a local maximum; all merge at the hub (0). The
  // highest spoke v4 is essential; v3, v2, v1 die at the hub with
  // persistence 3, 2, 1 — sorted descending after the essential pair.
  const Graph g = Star(4);
  const VertexScalarField field("f", {0.0, 1.0, 2.0, 3.0, 4.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const auto pairs = PersistencePairs(tree);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_TRUE(pairs[0].essential);
  EXPECT_EQ(pairs[0].birth_element, 4u);
  EXPECT_DOUBLE_EQ(pairs[0].Persistence(), 4.0);
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(pairs[i].essential);
    EXPECT_EQ(pairs[i].birth_element, 4u - i);
    EXPECT_EQ(pairs[i].death_element, 0u);
    EXPECT_DOUBLE_EQ(pairs[i].Persistence(), 4.0 - i);
  }
}

void ExpectPairInvariants(const ScalarTree& tree) {
  const auto pairs = PersistencePairs(tree);

  // One pair per leaf of the scalar tree.
  std::vector<char> has_child(tree.NumNodes(), 0);
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    if (tree.Parent(v) != kInvalidVertex) has_child[tree.Parent(v)] = 1;
  }
  uint32_t leaves = 0;
  for (const char c : has_child) leaves += !c;
  EXPECT_EQ(pairs.size(), leaves);

  uint32_t essential = 0;
  std::set<uint32_t> births;
  for (const auto& pair : pairs) {
    EXPECT_TRUE(births.insert(pair.birth_element).second)
        << "births must be distinct leaves";
    EXPECT_FALSE(has_child[pair.birth_element]);
    EXPECT_DOUBLE_EQ(pair.birth, tree.Value(pair.birth_element));
    EXPECT_GE(pair.Persistence(), 0.0);
    if (pair.essential) {
      ++essential;
      EXPECT_EQ(pair.death_element, kInvalidVertex);
    } else {
      EXPECT_DOUBLE_EQ(pair.death, tree.Value(pair.death_element));
    }
  }
  EXPECT_EQ(essential, tree.NumRoots());
}

TEST(PersistenceTest, InvariantsHoldOnRandomVertexAndEdgeTrees) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = BarabasiAlbert(300, 3, &rng);
    std::vector<double> vertex_values(g.NumVertices());
    for (auto& v : vertex_values)
      v = static_cast<double>(rng.UniformInt(9));
    ExpectPairInvariants(
        BuildVertexScalarTree(g, VertexScalarField("f", vertex_values)));

    const Graph er = ErdosRenyi(200, 0.012, &rng);  // fragments
    std::vector<double> edge_values(static_cast<size_t>(er.NumEdges()));
    for (auto& v : edge_values)
      v = static_cast<double>(rng.UniformInt(7));
    ExpectPairInvariants(
        BuildEdgeScalarTree(er, EdgeScalarField("f", edge_values)));
  }
}

TEST(PersistenceTest, ZeroThresholdIsTheIdentity) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(200, 3, &rng);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(PersistenceSimplifiedValues(tree, 0.0), tree.Values());
  EXPECT_EQ(PersistenceSimplifiedValues(tree, -1.0), tree.Values());
}

TEST(PersistenceTest, CancelsExactlyTheLowPersistencePeak) {
  // tau = 4 kills the persistence-3 peak at v1 (clamped down to its
  // death value 2) and must leave everything else bit-identical.
  const Graph g = Path(5);
  const VertexScalarField field("f", {1.0, 5.0, 2.0, 6.0, 3.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  const std::vector<double> simplified =
      PersistenceSimplifiedValues(tree, 4.0);
  const std::vector<double> expected{1.0, 2.0, 2.0, 6.0, 3.0};
  EXPECT_EQ(simplified, expected);

  const SuperTree super = SimplifyByPersistence(g, field, 4.0);
  EXPECT_EQ(CountComponentsAtLevel(super, 5.0), 1u);  // peak v1 gone
  EXPECT_EQ(CountComponentsAtLevel(super, 3.0), 1u);
  EXPECT_EQ(super.NumRoots(), 1u);
}

TEST(PersistenceTest, NestedCancellationsCascade) {
  // Plateau profile 1-4-2-3-2-9: cancelling at tau = 2.5 kills the
  // persistence-1 bump at v3 AND the persistence-2 peak at v1 (clamped
  // through its own death to 1's branch floor).
  const Graph g = Path(6);
  const VertexScalarField field("f", {1.0, 4.0, 2.0, 3.0, 2.0, 9.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  // Pairs: essential (9 @ v5, death 1), v1 (4, dies at 2, pers 2),
  // v3 (3, dies at 2, pers 1).
  const auto pairs = PersistencePairs(tree);
  ASSERT_EQ(pairs.size(), 3u);
  const std::vector<double> simplified =
      PersistenceSimplifiedValues(tree, 2.5);
  const std::vector<double> expected{1.0, 2.0, 2.0, 2.0, 2.0, 9.0};
  EXPECT_EQ(simplified, expected);
}

TEST(PersistenceTest, SurvivingPairsMatchOriginalAboveThreshold) {
  // The simplification contract: rebuilding on cancelled values keeps
  // exactly the original pairs with persistence >= tau (plus all
  // essential pairs), unchanged. Clamping flattens the cancelled
  // branches into plateaus, and the id tie-break can split a plateau
  // into several sweep leaves — those contribute pairs of persistence
  // exactly 0, and nothing else: no feature strictly between 0 and tau
  // survives or appears.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Graph g = BarabasiAlbert(250, 3, &rng);
    std::vector<double> values(g.NumVertices());
    for (auto& v : values) v = static_cast<double>(rng.UniformInt(12));
    const VertexScalarField field("f", values);
    const ScalarTree tree = BuildVertexScalarTree(g, field);
    const double tau = 3.0;

    std::multiset<double> expected;
    for (const auto& pair : PersistencePairs(tree)) {
      if (pair.essential || pair.Persistence() >= tau)
        expected.insert(pair.Persistence());
    }
    const ScalarTree simplified = BuildVertexScalarTree(
        g, VertexScalarField("f", PersistenceSimplifiedValues(tree, tau)));
    std::multiset<double> actual;
    for (const auto& pair : PersistencePairs(simplified)) {
      if (pair.Persistence() > 0.0 || pair.essential)
        actual.insert(pair.Persistence());
      EXPECT_TRUE(pair.essential || pair.Persistence() >= tau ||
                  pair.Persistence() == 0.0)
          << "feature below tau survived: " << pair.Persistence();
    }
    EXPECT_EQ(actual, expected);
  }
}

TEST(PersistenceTest, ConsistentWithLevelQuantizationOnMatchedKnobs) {
  // §II-E quantization to L levels kills every feature whose persistence
  // is below (max - min) / L; SimplifyByPersistence with that threshold
  // is the surgical version. On the two-peak path both agree on the
  // surviving peak structure for every L.
  const Graph g = Path(5);
  const VertexScalarField field("f", {1.0, 5.0, 2.0, 6.0, 3.0});
  const double range = field.MaxValue() - field.MinValue();
  for (const uint32_t levels : {1u, 2u, 4u}) {
    const double tau = range / levels;
    const SuperTree by_persistence = SimplifyByPersistence(g, field, tau);
    const SuperTree by_levels = SimplifiedVertexSuperTree(g, field, levels);
    EXPECT_EQ(TopPeaks(by_persistence, 100).size(),
              TopPeaks(by_levels, 100).size())
        << "levels " << levels;
    EXPECT_EQ(by_persistence.NumRoots(), by_levels.NumRoots());
  }
  // And the persistence path preserves exact values where quantization
  // smears: at L = 2 the surviving peaks keep summits 5 and 6.
  const auto peaks =
      PeaksAtLevel(SimplifyByPersistence(g, field, range / 2), 5.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].max_scalar, 6.0);
  EXPECT_DOUBLE_EQ(peaks[1].max_scalar, 5.0);
}

TEST(PersistenceTest, EdgeTreeSimplificationSharesTheCore) {
  // Bridge of minimal trussness between two triangles: KT field has two
  // persistence features; a threshold above their gap keeps only the
  // elder triangle's peak.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(3, 5);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  const EdgeScalarField field("f", {7.0, 8.0, 9.0, 1.0, 4.0, 5.0, 6.0});
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  const auto pairs = PersistencePairs(tree);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs[0].essential);
  EXPECT_DOUBLE_EQ(pairs[1].birth, 6.0);
  EXPECT_DOUBLE_EQ(pairs[1].death, 1.0);

  const SuperTree simplified = SimplifyEdgeByPersistence(g, field, 6.0);
  EXPECT_EQ(CountComponentsAtLevel(simplified, 6.0), 1u);
  EXPECT_EQ(CountComponentsAtLevel(simplified, 2.0), 1u);
}

}  // namespace
}  // namespace graphscape
