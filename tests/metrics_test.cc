// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "graph/graph_builder.h"
#include "metrics/centrality.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "metrics/nucleus.h"
#include "metrics/pagerank.h"
#include "metrics/triangles.h"

namespace graphscape {
namespace {

Graph Clique(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t u = 0; u < n; ++u)
    for (uint32_t v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  return builder.Build();
}

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

TEST(CoreNumbersTest, CliqueWithTail) {
  // K4 on {0..3}, tail 3-4-5: clique cores are 3, tail cores are 1.
  GraphBuilder builder(6);
  for (uint32_t u = 0; u < 4; ++u)
    for (uint32_t v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const std::vector<uint32_t> core = CoreNumbers(builder.Build());
  EXPECT_EQ(core, (std::vector<uint32_t>{3, 3, 3, 3, 1, 1}));
}

TEST(CoreNumbersTest, StarIsOneCore) {
  GraphBuilder builder(5);
  for (uint32_t v = 1; v < 5; ++v) builder.AddEdge(0, v);
  const std::vector<uint32_t> core = CoreNumbers(builder.Build());
  EXPECT_EQ(core, (std::vector<uint32_t>{1, 1, 1, 1, 1}));
}

TEST(CoreNumbersTest, TwoCliquesBridged) {
  // Two K4s joined by one edge: the bridge cannot raise anyone's core.
  GraphBuilder builder(8);
  for (uint32_t base : {0u, 4u})
    for (uint32_t u = 0; u < 4; ++u)
      for (uint32_t v = u + 1; v < 4; ++v)
        builder.AddEdge(base + u, base + v);
  builder.AddEdge(3, 4);
  const std::vector<uint32_t> core = CoreNumbers(builder.Build());
  for (uint32_t v = 0; v < 8; ++v) EXPECT_EQ(core[v], 3u);
}

TEST(TrianglesTest, CountsMatchClosedForms) {
  EXPECT_EQ(CountTriangles(Clique(4)), 4u);
  EXPECT_EQ(CountTriangles(Clique(5)), 10u);
  EXPECT_EQ(CountTriangles(Path(10)), 0u);
}

TEST(TrianglesTest, PerVertexCountsOnClique) {
  // In K4 every vertex lies on C(3,2) = 3 triangles.
  const std::vector<uint32_t> counts = VertexTriangleCounts(Clique(4));
  EXPECT_EQ(counts, (std::vector<uint32_t>{3, 3, 3, 3}));
}

TEST(TrussNumbersTest, CliquesAndPendants) {
  // K4 is a 4-truss; a pendant edge hanging off it has no triangles.
  GraphBuilder builder(5);
  for (uint32_t u = 0; u < 4; ++u)
    for (uint32_t v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  builder.AddEdge(3, 4);
  const Graph g = builder.Build();
  const std::vector<uint32_t> truss = TrussNumbers(g);
  const auto edges = EdgeList(g);
  ASSERT_EQ(truss.size(), edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    const uint32_t expected = edges[e].second == 4 ? 2u : 4u;
    EXPECT_EQ(truss[e], expected) << "edge " << edges[e].first << "-"
                                  << edges[e].second;
  }
  const std::vector<uint32_t> k5 = TrussNumbers(Clique(5));
  for (const uint32_t t : k5) EXPECT_EQ(t, 5u);
}

TEST(PageRankTest, SumsToOneAndUniformOnCycle) {
  GraphBuilder builder(8);
  for (uint32_t v = 0; v < 8; ++v) builder.AddEdge(v, (v + 1) % 8);
  const std::vector<double> pr = PageRank(builder.Build());
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (const double r : pr) EXPECT_NEAR(r, 1.0 / 8.0, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  GraphBuilder builder(6);
  for (uint32_t v = 1; v < 6; ++v) builder.AddEdge(0, v);
  const std::vector<double> pr = PageRank(builder.Build());
  for (uint32_t v = 1; v < 6; ++v) EXPECT_GT(pr[0], pr[v]);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
}

TEST(BetweennessTest, ExactOnPathMatchesPairCounts) {
  // On a path, betweenness(v) = (#vertices left of v) * (#right of v).
  BetweennessOptions options;
  options.num_samples = 100;  // >= n, so exact
  const std::vector<double> bc = BetweennessCentrality(Path(5), options);
  EXPECT_NEAR(bc[0], 0.0, 1e-9);
  EXPECT_NEAR(bc[1], 3.0, 1e-9);
  EXPECT_NEAR(bc[2], 4.0, 1e-9);
  EXPECT_NEAR(bc[3], 3.0, 1e-9);
  EXPECT_NEAR(bc[4], 0.0, 1e-9);
}

TEST(BetweennessTest, SampledEstimateIsFiniteAndNonNegative) {
  BetweennessOptions options;
  options.num_samples = 3;
  const std::vector<double> bc = BetweennessCentrality(Path(20), options);
  for (const double b : bc) EXPECT_GE(b, 0.0);
}

TEST(Nucleus34Test, CliqueTrianglesShareUniformSupport) {
  // K5: C(5,3) = 10 triangles, each completed to a 4-clique by 2 vertices.
  const NucleusDecomposition k5 = Nucleus34(Clique(5));
  ASSERT_EQ(k5.triangles.size(), 10u);
  for (const uint32_t s : k5.nucleus_numbers) EXPECT_EQ(s, 2u);

  const NucleusDecomposition k4 = Nucleus34(Clique(4));
  ASSERT_EQ(k4.triangles.size(), 4u);
  for (const uint32_t s : k4.nucleus_numbers) EXPECT_EQ(s, 1u);
}

TEST(Nucleus34Test, TriangleFreeGraphIsEmpty) {
  const NucleusDecomposition d = Nucleus34(Path(6));
  EXPECT_TRUE(d.triangles.empty());
  EXPECT_TRUE(d.nucleus_numbers.empty());
}

TEST(Nucleus34Test, RejectsGraphsBeyondKeyPacking) {
  // The 3x21-bit triangle keys cap the vertex count; the guard must hold
  // in Release builds too, not just under assert().
  GraphBuilder builder(1u << 21);
  EXPECT_THROW(Nucleus34(builder.Build()), std::invalid_argument);
}

}  // namespace
}  // namespace graphscape
