// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Corruption fuzzing of the TreeArtifact parser: >= 10k seeded mutations
// (bit flips, truncations, extensions, byte splices, section swaps) of
// valid artifacts, every one of which must come back as a structured
// Status — kInvalidArgument for malformed layout, kDataLoss for a
// checksum that catches payload damage — with zero crashes, hangs, or
// accepted corruption. CI runs this under ASan/UBSan, where any
// out-of-bounds read in the bounds-checked Reader would abort.

#include "scalar/tree_io.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

std::string BaseArtifactBytes(bool edge) {
  Rng rng(edge ? 31 : 29);
  const Graph g = BarabasiAlbert(120, 3, &rng);
  TreeArtifact artifact;
  if (edge) {
    const auto kt = EdgeScalarField::FromCounts("KT", TrussNumbers(g));
    artifact.tree = SuperTree(BuildEdgeScalarTree(g, kt));
    artifact.field_name = kt.Name();
    artifact.field_values = kt.Values();
  } else {
    const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
    artifact.tree = SuperTree(BuildVertexScalarTree(g, kc));
    artifact.field_name = kc.Name();
    artifact.field_values = kc.Values();
  }
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  EXPECT_TRUE(bytes.ok());
  return std::move(bytes).value();
}

std::string Mutate(const std::string& base, Rng* rng) {
  std::string bytes = base;
  switch (rng->UniformInt(5)) {
    case 0: {  // single bit flip
      const uint32_t offset = rng->UniformInt(
          static_cast<uint32_t>(bytes.size()));
      bytes[offset] =
          static_cast<char>(bytes[offset] ^ (1u << rng->UniformInt(8)));
      break;
    }
    case 1: {  // truncate anywhere (including to empty)
      bytes.resize(rng->UniformInt(
          static_cast<uint32_t>(bytes.size())));
      break;
    }
    case 2: {  // append random garbage
      const uint32_t extra = 1 + rng->UniformInt(64);
      for (uint32_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng->UniformInt(256)));
      }
      break;
    }
    case 3: {  // splice a random span with random bytes
      const uint32_t start = rng->UniformInt(
          static_cast<uint32_t>(bytes.size()));
      const uint32_t len = 1 + rng->UniformInt(32);
      for (uint32_t i = start; i < bytes.size() && i < start + len; ++i) {
        bytes[i] = static_cast<char>(rng->UniformInt(256));
      }
      break;
    }
    default: {  // swap two spans (header vs payload shear)
      const uint32_t half =
          static_cast<uint32_t>(bytes.size()) / 2;
      const uint32_t a = rng->UniformInt(half);
      const uint32_t b = half + rng->UniformInt(half);
      const uint32_t len = 1 + rng->UniformInt(16);
      for (uint32_t i = 0; i < len && a + i < half && b + i < bytes.size();
           ++i) {
        std::swap(bytes[a + i], bytes[b + i]);
      }
      break;
    }
  }
  return bytes;
}

void FuzzArtifact(const std::string& base, uint64_t seed, int rounds) {
  Rng rng(seed);
  int mutated_count = 0;
  for (int round = 0; round < rounds; ++round) {
    const std::string bytes = Mutate(base, &rng);
    if (bytes == base) continue;  // a swap can be a no-op; skip those
    ++mutated_count;
    const StatusOr<TreeArtifact> result = DeserializeTreeArtifact(bytes);
    // Acceptance would mean a 2^-64 FNV collision AND a structurally
    // valid tree — any hit here is a parser hole, not luck.
    ASSERT_FALSE(result.ok()) << "round " << round << " accepted "
                              << bytes.size() << " mutated bytes";
    const StatusCode code = result.status().code();
    ASSERT_TRUE(code == StatusCode::kInvalidArgument ||
                code == StatusCode::kDataLoss)
        << "round " << round << ": " << result.status().ToString();
  }
  // The skip branch must not hollow out the run.
  EXPECT_GT(mutated_count, rounds - rounds / 8);
}

TEST(TreeIoFuzzTest, VertexArtifactSurvivesTenThousandMutations) {
  FuzzArtifact(BaseArtifactBytes(/*edge=*/false), 0xfeedface, 6000);
}

TEST(TreeIoFuzzTest, EdgeArtifactSurvivesTenThousandMutations) {
  FuzzArtifact(BaseArtifactBytes(/*edge=*/true), 0xdeadbeef, 6000);
}

}  // namespace
}  // namespace graphscape
