// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Retry backoff (exact schedule under an injected sleeper, deterministic
// jitter, retry-only-the-retryable), ResourceBudget accounting (charge /
// release / refusal / injected clock deadline), the budget-guarded tree
// builds, and the degrading render ladder rung by rung.

#include "common/budget.h"
#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "terrain/guarded_render.h"

namespace graphscape {
namespace {

RetryOptions FastRetry(std::vector<double>* slept) {
  RetryOptions options;
  options.max_attempts = 4;
  options.jitter_fraction = 0.0;
  options.sleeper = [slept](double seconds) {
    if (slept != nullptr) slept->push_back(seconds);
  };
  return options;
}

TEST(RetryTest, BackoffDoublesUpToTheCap) {
  RetryOptions options;
  options.initial_backoff_seconds = 0.005;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 0.025;
  options.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 1, &rng), 0.005);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 2, &rng), 0.010);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 3, &rng), 0.020);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 4, &rng), 0.025);  // capped
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 9, &rng), 0.025);
}

TEST(RetryTest, JitterIsSeededDeterministicAndBounded) {
  RetryOptions options;
  options.initial_backoff_seconds = 0.1;
  options.jitter_fraction = 0.25;
  Rng a(7), b(7), c(8);
  const double first = RetryBackoffSeconds(options, 1, &a);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(options, 1, &b), first);
  EXPECT_NE(RetryBackoffSeconds(options, 1, &c), first);
  EXPECT_GE(first, 0.1 * 0.75);
  EXPECT_LT(first, 0.1 * 1.25);
}

TEST(RetryTest, RetriesTransientFailuresThenSucceeds) {
  std::vector<double> slept;
  int calls = 0;
  const Status status = RetryWithBackoff(FastRetry(&slept), [&]() {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);  // one backoff per failed attempt
}

TEST(RetryTest, DoesNotRetryDeterministicFailures) {
  for (const Status& terminal :
       {Status::InvalidArgument("bad"), Status::NotFound("gone"),
        Status::DataLoss("torn"), Status::ResourceExhausted("cap")}) {
    int calls = 0;
    const Status status = RetryWithBackoff(FastRetry(nullptr), [&]() {
      ++calls;
      return terminal;
    });
    EXPECT_EQ(status.code(), terminal.code());
    EXPECT_EQ(calls, 1) << terminal.ToString();
  }
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  const Status status = RetryWithBackoff(FastRetry(nullptr), [&]() {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, StatusOrFlavorRetriesAndReturnsTheValue) {
  int calls = 0;
  const StatusOr<int> result =
      RetryWithBackoffOr<int>(FastRetry(nullptr), [&]() -> StatusOr<int> {
        if (++calls < 2) return Status::Unavailable("flaky");
        return 41 + 1;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2);
}

TEST(BudgetTest, ChargesReleasesAndTracksPeak) {
  ResourceBudget budget(1000);
  EXPECT_TRUE(budget.ChargeBytes(600, "a").ok());
  EXPECT_TRUE(budget.ChargeBytes(400, "b").ok());
  EXPECT_EQ(budget.charged_bytes(), 1000u);
  EXPECT_EQ(budget.remaining_bytes(), 0u);
  budget.ReleaseBytes(500);
  EXPECT_EQ(budget.charged_bytes(), 500u);
  EXPECT_EQ(budget.peak_bytes(), 1000u);
  budget.ReleaseBytes(9999);  // clamped, never underflows
  EXPECT_EQ(budget.charged_bytes(), 0u);
}

TEST(BudgetTest, OverCapChargeRefusesAndLeavesLedgerUnchanged) {
  ResourceBudget budget(100);
  ASSERT_TRUE(budget.ChargeBytes(80, "base").ok());
  const Status refused = budget.ChargeBytes(21, "overflow");
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.charged_bytes(), 80u);  // the refusal charged nothing
  EXPECT_TRUE(budget.ChargeBytes(20, "fits").ok());
}

TEST(BudgetTest, DefaultBudgetAndNullptrNeverRefuse) {
  ResourceBudget unlimited;
  EXPECT_TRUE(unlimited.ChargeBytes(~0ull >> 1, "huge").ok());
  EXPECT_TRUE(unlimited.CheckDeadline("never").ok());
  EXPECT_TRUE(ChargeBudget(nullptr, ~0ull >> 1, "huge").ok());
  EXPECT_TRUE(CheckBudgetDeadline(nullptr, "never").ok());
  ReleaseBudget(nullptr, 1);  // must not crash
}

TEST(BudgetTest, DeadlineExpiresOnTheInjectedClock) {
  double now = 0.0;
  ResourceBudget budget(ResourceBudget::kUnlimitedBytes, /*max_seconds=*/2.0,
                        [&now]() { return now; });
  EXPECT_TRUE(budget.CheckDeadline("early").ok());
  now = 1.9;
  EXPECT_TRUE(budget.CheckDeadline("almost").ok());
  now = 2.1;
  const Status expired = budget.CheckDeadline("late");
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetTest, FailpointSeamsInjectCapHitAndExpiry) {
  ResourceBudget budget(ResourceBudget::kUnlimitedBytes);
  {
    failpoint::ScopedFailpoint charge("budget/charge",
                                      failpoint::Spec::Once());
    EXPECT_EQ(budget.ChargeBytes(1, "x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_TRUE(budget.ChargeBytes(1, "x").ok());
  }
  {
    failpoint::ScopedFailpoint deadline("budget/deadline",
                                        failpoint::Spec::Once());
    EXPECT_EQ(budget.CheckDeadline("x").code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(budget.CheckDeadline("x").ok());
  }
}

// ---- Guarded builds ----

Graph TestGraph() {
  Rng rng(17);
  return BarabasiAlbert(300, 3, &rng);
}

TEST(GuardedBuildTest, VertexBuildMatchesUnguardedAndChargesExactly) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  ResourceBudget budget(1ull << 30);
  const StatusOr<ScalarTree> guarded =
      BuildVertexScalarTreeGuarded(g, kc, &budget);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  EXPECT_EQ(budget.charged_bytes(),
            VertexScalarTreeBuildBytes(g.NumVertices()));
  const ScalarTree plain = BuildVertexScalarTree(g, kc);
  EXPECT_EQ(guarded.value().Parents(), plain.Parents());
  EXPECT_EQ(guarded.value().Values(), plain.Values());
  EXPECT_EQ(guarded.value().NumRoots(), plain.NumRoots());
}

TEST(GuardedBuildTest, EdgeBuildMatchesUnguardedAndChargesExactly) {
  const Graph g = TestGraph();
  EdgeScalarField weights(
      "W", std::vector<double>(g.NumEdges(), 1.0));
  ResourceBudget budget(1ull << 30);
  const StatusOr<ScalarTree> guarded =
      BuildEdgeScalarTreeGuarded(g, weights, &budget);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  EXPECT_EQ(budget.charged_bytes(),
            EdgeScalarTreeBuildBytes(g.NumVertices(), g.NumEdges()));
  const ScalarTree plain = BuildEdgeScalarTree(g, weights);
  EXPECT_EQ(guarded.value().Parents(), plain.Parents());
}

TEST(GuardedBuildTest, RefusesOverBudgetAndBadArguments) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  ResourceBudget tiny(16);
  EXPECT_EQ(BuildVertexScalarTreeGuarded(g, kc, &tiny).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.charged_bytes(), 0u);  // refusal leaves the ledger clean

  const VertexScalarField short_field("KC", {1.0, 2.0});
  EXPECT_EQ(
      BuildVertexScalarTreeGuarded(g, short_field, nullptr).status().code(),
      StatusCode::kInvalidArgument);
}

// ---- The degrading render ladder ----

GuardedRenderOptions SmallRender() {
  GuardedRenderOptions options;
  options.raster.width = 256;
  options.raster.height = 256;
  options.image_width = 320;
  options.image_height = 240;
  options.min_raster_dim = 32;
  return options;
}

TEST(GuardedRenderTest, UnlimitedBudgetRendersFullDetail) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  const auto result =
      RenderVertexTerrainGuarded(g, kc, nullptr, SmallRender());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().tree_simplified);
  EXPECT_EQ(result.value().halvings, 0u);
  EXPECT_EQ(result.value().raster_width, 256u);
  EXPECT_EQ(result.value().image.width, 320u);
  EXPECT_GT(result.value().tree_nodes, 0u);
}

TEST(GuardedRenderTest, GenerousBudgetRetainsOnlyTheImage) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  ResourceBudget budget(1ull << 30);
  const auto result =
      RenderVertexTerrainGuarded(g, kc, &budget, SmallRender());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().tree_simplified);
  // Everything except the returned image went back to the budget.
  EXPECT_EQ(budget.charged_bytes(), result.value().retained_bytes);
  EXPECT_EQ(result.value().retained_bytes, 320ull * 240 * 3);
}

TEST(GuardedRenderTest, TightBudgetDegradesToSimplifiedHalvedRender) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  const GuardedRenderOptions options = SmallRender();

  // First learn the full tree size, then cap the budget at exactly the
  // halved-resolution rung (full-node count is an upper bound on the
  // simplified count, so the cap provably refuses rungs 1 and 2 — their
  // pixel terms alone exceed it — and provably admits the halved rung).
  const auto probe = RenderVertexTerrainGuarded(g, kc, nullptr, options);
  ASSERT_TRUE(probe.ok());
  const uint32_t full_nodes = probe.value().tree_nodes;
  const uint64_t cap =
      VertexScalarTreeBuildBytes(g.NumVertices()) +
      TerrainRenderWorkingBytes(full_nodes, 128, 128, 160, 120);

  ResourceBudget budget(cap);
  const auto result = RenderVertexTerrainGuarded(g, kc, &budget, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().tree_simplified);
  EXPECT_EQ(result.value().halvings, 1u);
  EXPECT_EQ(result.value().raster_width, 128u);
  EXPECT_EQ(result.value().image.width, 160u);
  EXPECT_LE(result.value().tree_nodes, full_nodes);
}

TEST(GuardedRenderTest, ExhaustsTheLadderWhenNothingFits) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  // Enough for the tree build, nowhere near any render rung.
  ResourceBudget budget(VertexScalarTreeBuildBytes(g.NumVertices()) + 64);
  const auto result =
      RenderVertexTerrainGuarded(g, kc, &budget, SmallRender());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The ladder released the build charge on the way out.
  EXPECT_EQ(budget.charged_bytes(), 0u);
}

TEST(GuardedRenderTest, ExpiredDeadlineFailsFastBetweenRungs) {
  const Graph g = TestGraph();
  const auto kc = VertexScalarField::FromCounts("KC", CoreNumbers(g));
  // Injected clock: 0.6s per Now() call. Construction reads it once, the
  // build's deadline check passes at 0.6s elapsed, the first ladder
  // check sees 1.2s > 1.0s and refuses.
  double now = 0.0;
  ResourceBudget budget(ResourceBudget::kUnlimitedBytes, 1.0, [&now]() {
    now += 0.6;
    return now;
  });
  const auto result =
      RenderVertexTerrainGuarded(g, kc, &budget, SmallRender());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GuardedRenderTest, EdgeLadderDegradesLikeTheVertexOne) {
  const Graph g = TestGraph();
  EdgeScalarField weights("W", std::vector<double>(g.NumEdges(), 1.0));
  const auto full =
      RenderEdgeTerrainGuarded(g, weights, nullptr, SmallRender());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full.value().tree_simplified);

  const uint64_t cap =
      EdgeScalarTreeBuildBytes(g.NumVertices(), g.NumEdges()) +
      TerrainRenderWorkingBytes(full.value().tree_nodes, 128, 128, 160, 120);
  ResourceBudget budget(cap);
  const auto degraded =
      RenderEdgeTerrainGuarded(g, weights, &budget, SmallRender());
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().tree_simplified);
  EXPECT_EQ(degraded.value().halvings, 1u);
}

}  // namespace
}  // namespace graphscape
