// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "common/string_util.h"

#include <gtest/gtest.h>

#include <string>

namespace graphscape {
namespace {

TEST(StrPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StrPrintf("plain"), "plain");
  EXPECT_EQ(StrPrintf("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
  EXPECT_EQ(StrPrintf("%-6s|%8.3f", "ab", 1.5), "ab    |   1.500");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

TEST(StrPrintfTest, OutputLongerThanStackBufferIsExact) {
  const std::string long_arg(1000, 'x');
  const std::string result = StrPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(result.size(), 1002u);
  EXPECT_EQ(result.front(), '[');
  EXPECT_EQ(result.back(), ']');
  EXPECT_EQ(result.substr(1, 1000), long_arg);
}

TEST(HumanSecondsTest, PicksTheReadableUnitPerBand) {
  EXPECT_EQ(HumanSeconds(0.0), "0s");
  EXPECT_EQ(HumanSeconds(-1.0), "0s");
  EXPECT_EQ(HumanSeconds(2e-9), "2ns");
  EXPECT_EQ(HumanSeconds(4.56e-5), "45.60us");
  EXPECT_EQ(HumanSeconds(0.0123), "12.30ms");
  EXPECT_EQ(HumanSeconds(1.5), "1.50s");
  EXPECT_EQ(HumanSeconds(59.994), "59.99s");
  EXPECT_EQ(HumanSeconds(90.0), "1m30s");
  EXPECT_EQ(HumanSeconds(3723.0), "1h02m");
  EXPECT_EQ(HumanSeconds(7322.0), "2h02m");
}

}  // namespace
}  // namespace graphscape
