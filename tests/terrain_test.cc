// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The terrain pipeline's contract with the tree: footprints nest exactly
// like the super tree (children strictly inside parents, siblings
// disjoint), the rasterized landscape's summit is the tree's maximum,
// and flood-filling the height field at any level t finds exactly
// CountComponentsAtLevel(tree, t) islands — the geometric restatement
// of the superlevel-set component count on small oracle graphs. Plus
// header round-trips for the PPM/SVG artifact writers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "layout/spring_layout.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_layout.h"
#include "terrain/terrain_raster.h"

namespace graphscape {
namespace {

// Two triangles bridged through a path vertex, plus a disjoint triangle:
// two graph components, three dense cores.
Graph OracleGraph() {
  GraphBuilder builder(10);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  builder.AddEdge(2, 6);
  builder.AddEdge(6, 3);
  builder.AddEdge(7, 8);
  builder.AddEdge(8, 9);
  builder.AddEdge(9, 7);
  return builder.Build();
}

// Explicit two-level field (the bridge vertex 6 sits below the cores —
// note a K-Core field could NOT express this oracle: every vertex here
// has degree >= 2, so the whole bridged component is one 2-core).
SuperTree OracleTree(const Graph& g) {
  const VertexScalarField field(
      "f", {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 1.0, 2.0, 2.0, 2.0});
  return SuperTree(BuildVertexScalarTree(g, field));
}

SuperTree CollabTree(uint32_t n) {
  CollaborationOptions options;
  options.num_vertices = n;
  options.num_groups = n / 8;
  Rng rng(11);
  const Graph g = CollaborationNetwork(options, &rng);
  return SuperTree(BuildVertexScalarTree(
      g, VertexScalarField::FromCounts("KC", CoreNumbers(g))));
}

// 4-connected components of {pixels : height >= level}.
uint32_t CountRasterIslands(const HeightField& field, double level) {
  const uint32_t w = field.width, h = field.height;
  std::vector<char> visited(static_cast<size_t>(w) * h, 0);
  std::vector<uint32_t> stack;
  uint32_t islands = 0;
  for (uint32_t start = 0; start < w * h; ++start) {
    if (visited[start] || field.height_at[start] < level) continue;
    ++islands;
    visited[start] = 1;
    stack.assign(1, start);
    while (!stack.empty()) {
      const uint32_t p = stack.back();
      stack.pop_back();
      const uint32_t x = p % w, y = p / w;
      const uint32_t neighbors[4] = {x > 0 ? p - 1 : p,
                                     x + 1 < w ? p + 1 : p,
                                     y > 0 ? p - w : p,
                                     y + 1 < h ? p + w : p};
      for (const uint32_t q : neighbors) {
        if (q != p && !visited[q] && field.height_at[q] >= level) {
          visited[q] = 1;
          stack.push_back(q);
        }
      }
    }
  }
  return islands;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    content.append(buffer, got);
  std::fclose(f);
  return content;
}

TEST(TerrainLayoutTest, ChildFootprintsStrictlyInsideParents) {
  for (const SplitPolicy policy :
       {SplitPolicy::kSliceDice, SplitPolicy::kBalanced}) {
    TerrainLayoutOptions options;
    options.split = policy;
    for (const SuperTree& tree : {OracleTree(OracleGraph()), CollabTree(512)}) {
      const TerrainLayout layout = BuildTerrainLayout(tree, options);
      ASSERT_EQ(layout.NumNodes(), tree.NumNodes());
      for (uint32_t node = 0; node < layout.NumNodes(); ++node) {
        const uint32_t parent = layout.parents[node];
        if (parent == kNoParent) continue;
        EXPECT_TRUE(
            layout.rects[parent].StrictlyContains(layout.rects[node]))
            << "node " << node << " escapes parent " << parent;
      }
    }
  }
}

TEST(TerrainLayoutTest, SiblingFootprintsAreDisjoint) {
  for (const SplitPolicy policy :
       {SplitPolicy::kSliceDice, SplitPolicy::kBalanced}) {
    TerrainLayoutOptions options;
    options.split = policy;
    const SuperTree tree = CollabTree(512);
    const TerrainLayout layout = BuildTerrainLayout(tree, options);
    const TreeMemberIndex& index = tree.MemberIndex();
    for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
      const MemberRange children = index.Children(node);
      for (uint32_t i = 0; i < children.size(); ++i) {
        for (uint32_t j = i + 1; j < children.size(); ++j) {
          EXPECT_TRUE(layout.rects[children[i]].Disjoint(
              layout.rects[children[j]]))
              << "children " << children[i] << " and " << children[j]
              << " of " << node << " overlap";
        }
      }
    }
    // Roots (distinct components) never share land either.
    std::vector<uint32_t> roots;
    for (uint32_t node = 0; node < tree.NumNodes(); ++node)
      if (tree.Parent(node) == kNoParent) roots.push_back(node);
    for (uint32_t i = 0; i < roots.size(); ++i)
      for (uint32_t j = i + 1; j < roots.size(); ++j)
        EXPECT_TRUE(layout.rects[roots[i]].Disjoint(layout.rects[roots[j]]));
  }
}

TEST(TerrainLayoutTest, FootprintAreaTracksSubtreeMass) {
  const SuperTree tree = CollabTree(512);
  const TerrainLayout layout = BuildTerrainLayout(tree);
  // Heavier subtrees get more land: compare every sibling pair.
  const TreeMemberIndex& index = tree.MemberIndex();
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    const MemberRange children = index.Children(node);
    for (uint32_t i = 0; i < children.size(); ++i) {
      for (uint32_t j = 0; j < children.size(); ++j) {
        if (index.SubtreeMemberCount(children[i]) >
            2 * index.SubtreeMemberCount(children[j])) {
          EXPECT_GT(layout.rects[children[i]].Area(),
                    layout.rects[children[j]].Area());
        }
      }
    }
  }
}

TEST(TerrainRasterTest, HeightFieldMaxEqualsTreeMax) {
  const SuperTree tree = OracleTree(OracleGraph());
  double tree_max = tree.Value(0);
  for (uint32_t node = 0; node < tree.NumNodes(); ++node)
    tree_max = std::max(tree_max, tree.Value(node));
  RasterOptions options;
  options.width = options.height = 256;
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree), options);
  const double raster_max =
      *std::max_element(field.height_at.begin(), field.height_at.end());
  EXPECT_DOUBLE_EQ(raster_max, tree_max);
  EXPECT_LT(field.sea_level, field.min_value);
}

TEST(TerrainRasterTest, IslandsMatchComponentCountOnOracle) {
  const Graph g = OracleGraph();
  const SuperTree tree = OracleTree(g);
  RasterOptions options;
  options.width = options.height = 256;
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree), options);
  // Three dense cores at K=2 (two bridged, one disjoint), two components
  // at K=1 — checked against the flood fill at levels between, at, and
  // below the field's two K values.
  for (const double level : {2.0, 1.5, 1.0}) {
    EXPECT_EQ(CountRasterIslands(field, level),
              CountComponentsAtLevel(tree, level))
        << "at level " << level;
  }
  EXPECT_EQ(CountRasterIslands(field, 2.0), 3u);
  EXPECT_EQ(CountRasterIslands(field, 1.0), 2u);
}

TEST(TerrainRasterTest, IslandsMatchComponentCountOnCollab) {
  const SuperTree tree = CollabTree(256);
  RasterOptions options;
  options.width = options.height = 512;
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree), options);
  double max_value = tree.Value(0);
  for (uint32_t node = 0; node < tree.NumNodes(); ++node)
    max_value = std::max(max_value, tree.Value(node));
  EXPECT_EQ(CountRasterIslands(field, max_value),
            CountComponentsAtLevel(tree, max_value));
}

TEST(RenderTest, FourBandMatchesIndexAndEndpoints) {
  EXPECT_EQ(FourBandIndex(0.0), 0u);
  EXPECT_EQ(FourBandIndex(0.26), 1u);
  EXPECT_EQ(FourBandIndex(0.51), 2u);
  EXPECT_EQ(FourBandIndex(1.0), 3u);
  EXPECT_EQ(FourBandColor(0.0), ContinuousColor(0.0));  // both start blue
  EXPECT_EQ(FourBandColor(1.0), ContinuousColor(1.0));  // both end red
  EXPECT_DOUBLE_EQ(NormalizeValue(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(NormalizeValue(-3.0, 0.0, 10.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(NormalizeValue(7.0, 7.0, 7.0), 0.5);    // degenerate
}

TEST(RenderTest, SuperNodeColorsAverageMemberValues) {
  // Path 0-1-2 with distinct scalars: three singleton super nodes.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  const VertexScalarField field("f", {3.0, 2.0, 1.0});
  const SuperTree tree(BuildVertexScalarTree(g, field));
  const std::vector<double> element_values = {10.0, 0.0, 5.0};
  const auto colors = SuperNodeColors(tree, element_values);
  ASSERT_EQ(colors.size(), tree.NumNodes());
  EXPECT_EQ(colors[tree.NodeOf(0)], FourBandColor(1.0));  // mean 10 -> red
  EXPECT_EQ(colors[tree.NodeOf(1)], FourBandColor(0.0));  // mean 0 -> blue
  EXPECT_EQ(colors[tree.NodeOf(2)], FourBandColor(0.5));  // mean 5 -> mid
}

TEST(RenderTest, ObliqueAndTopDownDimensions) {
  const SuperTree tree = OracleTree(OracleGraph());
  RasterOptions options;
  options.width = options.height = 64;
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree), options);
  const auto colors = HeightColors(tree);
  const Image oblique = RenderOblique(field, colors, Camera{}, 320, 200);
  EXPECT_EQ(oblique.width, 320u);
  EXPECT_EQ(oblique.height, 200u);
  EXPECT_EQ(oblique.pixels.size(), 320u * 200u);
  const Image top = RenderTopDown(field, colors);
  EXPECT_EQ(top.width, field.width);
  EXPECT_EQ(top.height, field.height);
}

TEST(RenderTest, PpmHeaderRoundTrips) {
  const SuperTree tree = OracleTree(OracleGraph());
  RasterOptions options;
  options.width = options.height = 32;
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree), options);
  const Image image =
      RenderOblique(field, HeightColors(tree), Camera{}, 96, 64);
  const std::string path = TempPath("graphscape_render_test.ppm");
  ASSERT_TRUE(WritePpm(image, path));
  const std::string content = ReadFile(path);
  unsigned w = 0, h = 0, maxval = 0;
  int header_len = 0;
  ASSERT_EQ(std::sscanf(content.c_str(), "P6\n%u %u\n%u\n%n", &w, &h,
                        &maxval, &header_len),
            3);
  EXPECT_EQ(w, image.width);
  EXPECT_EQ(h, image.height);
  EXPECT_EQ(maxval, 255u);
  EXPECT_EQ(content.size() - static_cast<size_t>(header_len),
            static_cast<size_t>(w) * h * 3);
  std::filesystem::remove(path);
}

TEST(SvgTest, WritersEmitParsableSvgDocuments) {
  const Graph g = OracleGraph();
  const SuperTree tree = OracleTree(g);
  SpringLayoutOptions spring;
  spring.iterations = 10;
  const Positions pos = SpringLayout(g, spring);
  const std::vector<Rgb> vertex_colors(g.NumVertices(), Rgb{59, 130, 246});

  const std::string node_link = TempPath("graphscape_nodelink_test.svg");
  ASSERT_TRUE(WriteNodeLinkSvg(g, pos, vertex_colors, node_link, 300.0, 2.0));
  const std::string node_link_content = ReadFile(node_link);
  EXPECT_EQ(node_link_content.rfind("<svg", 0), 0u);
  EXPECT_NE(node_link_content.find("<circle"), std::string::npos);
  EXPECT_NE(node_link_content.find("</svg>"), std::string::npos);
  std::filesystem::remove(node_link);

  const std::string treemap = TempPath("graphscape_treemap_test.svg");
  ASSERT_TRUE(WriteTreemapSvg(BuildTerrainLayout(tree), HeightColors(tree),
                              treemap));
  const std::string treemap_content = ReadFile(treemap);
  EXPECT_EQ(treemap_content.rfind("<svg", 0), 0u);
  EXPECT_NE(treemap_content.find("<rect"), std::string::npos);
  EXPECT_NE(treemap_content.find("</svg>"), std::string::npos);
  std::filesystem::remove(treemap);
}

TEST(SvgTest, WritersRejectSizeMismatches) {
  const Graph g = OracleGraph();
  const Positions wrong_size(3);
  const std::vector<Rgb> colors(g.NumVertices());
  EXPECT_FALSE(WriteNodeLinkSvg(g, wrong_size, colors,
                                TempPath("graphscape_bad.svg"), 100, 1.0));
  const SuperTree tree = OracleTree(g);
  const std::vector<Rgb> wrong_colors(1);
  EXPECT_FALSE(WriteTreemapSvg(BuildTerrainLayout(tree), wrong_colors,
                               TempPath("graphscape_bad.svg")));
}

}  // namespace
}  // namespace graphscape
