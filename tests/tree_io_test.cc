// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tree artifact serialization: save -> load -> save must be
// byte-identical for vertex and edge trees (the CI cross-compiler
// contract), loaded trees must answer queries like the originals, and
// every corruption mode — bad magic, foreign version, truncation, bit
// flips, structurally invalid trees — must be rejected with
// InvalidArgument, never accepted.

#include "scalar/tree_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

TreeArtifact VertexArtifact(uint64_t seed) {
  Rng rng(seed);
  CollaborationOptions options;
  options.num_vertices = 200;
  options.num_planted_cores = 1;
  options.planted_core_size = 8;
  const Graph g = CollaborationNetwork(options, &rng);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildVertexScalarTree(g, kc));
  artifact.field_name = kc.Name();
  artifact.field_values = kc.Values();
  return artifact;
}

TreeArtifact EdgeArtifact(uint64_t seed) {
  Rng rng(seed);
  const Graph g = BarabasiAlbert(150, 3, &rng);
  const EdgeScalarField kt =
      EdgeScalarField::FromCounts("KT", TrussNumbers(g));
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildEdgeScalarTree(g, kt));
  artifact.field_name = kt.Name();
  artifact.field_values = kt.Values();
  return artifact;
}

void ExpectTreesEqual(const SuperTree& a, const SuperTree& b) {
  EXPECT_EQ(a.NodeValues(), b.NodeValues());
  EXPECT_EQ(a.NodeParents(), b.NodeParents());
  EXPECT_EQ(a.MemberCounts(), b.MemberCounts());
  EXPECT_EQ(a.ElementNodes(), b.ElementNodes());
  EXPECT_EQ(a.NumRoots(), b.NumRoots());
}

std::string MustSerialize(const TreeArtifact& artifact) {
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

void ExpectRoundtripByteEqual(const TreeArtifact& artifact) {
  const std::string bytes = MustSerialize(artifact);
  const auto loaded = DeserializeTreeArtifact(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(MustSerialize(loaded.value()), bytes);
  ExpectTreesEqual(loaded.value().tree, artifact.tree);
  EXPECT_EQ(loaded.value().field_name, artifact.field_name);
  EXPECT_EQ(loaded.value().field_values, artifact.field_values);
}

TEST(TreeIoTest, VertexTreeRoundtripIsByteIdentical) {
  ExpectRoundtripByteEqual(VertexArtifact(3));
}

TEST(TreeIoTest, EdgeTreeRoundtripIsByteIdentical) {
  ExpectRoundtripByteEqual(EdgeArtifact(5));
}

TEST(TreeIoTest, FieldSectionIsOptional) {
  TreeArtifact artifact = VertexArtifact(7);
  artifact.field_name.clear();
  artifact.field_values.clear();
  ExpectRoundtripByteEqual(artifact);
}

TEST(TreeIoTest, SerializeRejectsWrongLengthField) {
  // The write side enforces the one-value-per-element contract the read
  // side validates; a short field must come back as a structured Status
  // (never an exception, never a checksummed corrupt artifact).
  TreeArtifact artifact = VertexArtifact(7);
  artifact.field_values.resize(artifact.field_values.size() / 2);
  const StatusOr<std::string> result = SerializeTreeArtifact(artifact);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, LoadedTreeAnswersQueriesLikeTheOriginal) {
  const TreeArtifact artifact = VertexArtifact(9);
  const auto loaded = DeserializeTreeArtifact(MustSerialize(artifact));
  ASSERT_TRUE(loaded.ok());
  const SuperTree& original = artifact.tree;
  const SuperTree& copy = loaded.value().tree;
  const double top = *std::max_element(original.NodeValues().begin(),
                                       original.NodeValues().end());
  EXPECT_EQ(CountComponentsAtLevel(copy, top),
            CountComponentsAtLevel(original, top));
  const auto original_peaks = PeaksAtLevel(original, top);
  const auto copy_peaks = PeaksAtLevel(copy, top);
  ASSERT_EQ(copy_peaks.size(), original_peaks.size());
  for (size_t i = 0; i < copy_peaks.size(); ++i) {
    EXPECT_EQ(copy_peaks[i].super_node, original_peaks[i].super_node);
    EXPECT_EQ(copy_peaks[i].member_count, original_peaks[i].member_count);
  }
}

TEST(TreeIoTest, SaveAndLoadRoundtripThroughAFile) {
  const TreeArtifact artifact = EdgeArtifact(11);
  const std::string path =
      ::testing::TempDir() + "/graphscape_tree_io_test.gsta";
  ASSERT_TRUE(SaveTreeArtifact(artifact, path).ok());
  const auto loaded = LoadTreeArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(MustSerialize(loaded.value()), MustSerialize(artifact));
  std::remove(path.c_str());
}

TEST(TreeIoTest, LoadDistinguishesNotFoundFromCorruption) {
  const std::string missing =
      ::testing::TempDir() + "/graphscape_no_such_artifact.gsta";
  const auto not_found = LoadTreeArtifact(missing);
  ASSERT_FALSE(not_found.ok());
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);

  // A stored-then-flipped byte is data loss, not an argument error: the
  // caller's recovery is rebuild, not retry.
  const TreeArtifact artifact = VertexArtifact(13);
  std::string bytes = MustSerialize(artifact);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  const auto corrupt = DeserializeTreeArtifact(bytes);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);
}

TEST(TreeIoTest, RejectsBadMagicAndForeignVersion) {
  const std::string bytes = MustSerialize(VertexArtifact(3));
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeTreeArtifact(bad_magic).ok());

  std::string future = bytes;
  future[4] = static_cast<char>(kTreeIoVersion + 1);
  EXPECT_FALSE(DeserializeTreeArtifact(future).ok());

  EXPECT_FALSE(DeserializeTreeArtifact("").ok());
  EXPECT_FALSE(DeserializeTreeArtifact("GST").ok());
}

TEST(TreeIoTest, RejectsTruncationAndBitFlips) {
  const std::string bytes = MustSerialize(VertexArtifact(3));
  for (const size_t keep :
       {bytes.size() - 1, bytes.size() / 2, size_t{16}}) {
    EXPECT_FALSE(DeserializeTreeArtifact(bytes.substr(0, keep)).ok())
        << "kept " << keep;
  }
  // A flipped bit anywhere in the payload must trip the checksum (or an
  // earlier structural check) — sample a few offsets across sections.
  for (const size_t offset :
       {size_t{20}, bytes.size() / 3, bytes.size() / 2,
        bytes.size() - 9}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    EXPECT_FALSE(DeserializeTreeArtifact(corrupt).ok())
        << "offset " << offset;
  }
}

TEST(TreeIoTest, RejectsStructurallyInvalidTrees) {
  // A well-formed file (magic, sizes, checksum all fine) whose tree
  // breaks a contraction invariant must still be refused.
  const auto reject = [](SuperTree tree) {
    TreeArtifact artifact;
    artifact.tree = std::move(tree);
    const auto result =
        DeserializeTreeArtifact(MustSerialize(artifact));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  };
  // Parent value not strictly below the child's (orientation violation).
  reject(SuperTree({2.0, 2.0}, {kInvalidSuperNode, 0u}, {1, 1}, {0, 1}, 1));
  // Parent id after the child's (ordering violation -> cycles possible).
  reject(SuperTree({2.0, 1.0}, {1u, kInvalidSuperNode}, {1, 1}, {0, 1}, 1));
  // Member counts that do not partition the elements.
  reject(SuperTree({2.0, 1.0}, {kInvalidSuperNode, 0u}, {2, 1}, {0, 1}, 1));
  // node_of disagreeing with member_counts.
  reject(SuperTree({2.0, 1.0}, {kInvalidSuperNode, 0u}, {1, 1}, {0, 0}, 1));
  // Wrong root count.
  reject(SuperTree({2.0, 1.0}, {kInvalidSuperNode, 0u}, {1, 1}, {0, 1}, 2));
}

}  // namespace
}  // namespace graphscape
