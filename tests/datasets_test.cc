// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "gen/datasets.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "metrics/clustering.h"

namespace graphscape {
namespace {

// Tests run every dataset a few sizes below its CI default so the whole
// file stays fast even on the Debug+ASan matrix leg.
DatasetOptions ShrunkOptions(DatasetId id, uint32_t extra_divisor) {
  DatasetOptions options;
  options.scale_divisor = GetDatasetSpec(id).default_divisor * extra_divisor;
  return options;
}

TEST(DatasetsTest, RegistryCoversTableOneRows) {
  const std::vector<DatasetId>& ids = AllDatasetIds();
  EXPECT_EQ(ids.size(), 8u);
  std::set<DatasetId> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), ids.size());
  for (const DatasetId id : ids) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    EXPECT_EQ(spec.id, id);
    EXPECT_NE(spec.name, nullptr);
    EXPECT_NE(spec.snap_name, nullptr);
    EXPECT_GT(spec.paper_nodes, 0u);
    EXPECT_GT(spec.paper_edges, 0u);
    EXPECT_GE(spec.default_divisor, 1u);
  }
}

TEST(DatasetsTest, SameOptionsSameGraph) {
  for (const DatasetId id : AllDatasetIds()) {
    const DatasetOptions options = ShrunkOptions(id, 2);
    const Dataset a = MakeDataset(id, options);
    const Dataset b = MakeDataset(id, options);
    EXPECT_EQ(a.graph.Offsets(), b.graph.Offsets())
        << GetDatasetSpec(id).name;
    EXPECT_EQ(a.graph.Adjacency(), b.graph.Adjacency())
        << GetDatasetSpec(id).name;
  }
}

TEST(DatasetsTest, SeedChangesTheGraph) {
  DatasetOptions reseeded = ShrunkOptions(DatasetId::kGrQc, 2);
  reseeded.seed = 99;
  const Dataset a = MakeDataset(DatasetId::kGrQc,
                                ShrunkOptions(DatasetId::kGrQc, 2));
  const Dataset b = MakeDataset(DatasetId::kGrQc, reseeded);
  EXPECT_NE(a.graph.Adjacency(), b.graph.Adjacency());
}

TEST(DatasetsTest, ScaleDivisorShrinksMonotonically) {
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset big = MakeDataset(id, ShrunkOptions(id, 2));
    const Dataset small = MakeDataset(id, ShrunkOptions(id, 8));
    EXPECT_LT(small.graph.NumVertices(), big.graph.NumVertices())
        << GetDatasetSpec(id).name;
    EXPECT_LT(small.graph.NumEdges(), big.graph.NumEdges())
        << GetDatasetSpec(id).name;
    EXPECT_EQ(big.scale_divisor, GetDatasetSpec(id).default_divisor * 2);
  }
}

TEST(DatasetsTest, EveryDatasetBuildsSimpleAndUndirected) {
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset ds = MakeDataset(id, ShrunkOptions(id, 2));
    const Graph& g = ds.graph;
    ASSERT_GT(g.NumVertices(), 0u) << ds.spec.name;
    ASSERT_GT(g.NumEdges(), 0u) << ds.spec.name;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const Graph::NeighborRange r = g.Neighbors(v);
      for (uint32_t i = 0; i < r.size(); ++i) {
        EXPECT_NE(r[i], v) << ds.spec.name << ": self loop at " << v;
        if (i > 0) {
          // Strictly ascending runs = sorted and duplicate-free.
          EXPECT_LT(r[i - 1], r[i]) << ds.spec.name;
        }
        EXPECT_TRUE(g.HasEdge(r[i], v))
            << ds.spec.name << ": missing twin " << v << "-" << r[i];
      }
    }
  }
}

TEST(DatasetsTest, AverageDegreeTracksPaperRow) {
  // Scaling holds average degree constant, so the generated graph's
  // average degree should sit near the paper network's at any divisor.
  for (const DatasetId id : AllDatasetIds()) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const Dataset ds = MakeDataset(id, ShrunkOptions(id, 2));
    const double paper_deg = 2.0 * static_cast<double>(spec.paper_edges) /
                             static_cast<double>(spec.paper_nodes);
    const double gen_deg = 2.0 * static_cast<double>(ds.graph.NumEdges()) /
                           static_cast<double>(ds.graph.NumVertices());
    EXPECT_GT(gen_deg, 0.5 * paper_deg) << spec.name;
    EXPECT_LT(gen_deg, 2.0 * paper_deg) << spec.name;
  }
}

TEST(DatasetsTest, ClusteringSeparatesNetworkClasses) {
  // The structural fingerprint Table I encodes: collaboration stand-ins
  // are triangle-rich, preferential-attachment stand-ins are not.
  const double collab = AverageClusteringCoefficient(
      MakeDataset(DatasetId::kGrQc, ShrunkOptions(DatasetId::kGrQc, 2))
          .graph);
  const double astro = AverageClusteringCoefficient(
      MakeDataset(DatasetId::kAstro, ShrunkOptions(DatasetId::kAstro, 2))
          .graph);
  const double wiki = AverageClusteringCoefficient(
      MakeDataset(DatasetId::kWikipedia,
                  ShrunkOptions(DatasetId::kWikipedia, 2))
          .graph);
  EXPECT_GT(collab, 0.25);
  EXPECT_GT(astro, 0.25);
  EXPECT_LT(wiki, 0.15);
  EXPECT_GT(collab, wiki);
}

}  // namespace
}  // namespace graphscape
