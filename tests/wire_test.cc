// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The wire protocol's pure layer (service/wire.h), held to the
// tree_io_fuzz_test standard: every grammar rule pinned, the status-code
// translation table exhaustive in both directions, and thousands of
// seeded mutations of valid request lines and response frames — all of
// which must come back as a structured Status (or a clean parse), never
// a crash. CI runs this under ASan/UBSan and TSan.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "scalar/tree_io.h"

namespace graphscape {
namespace service {
namespace {

// ------------------------------------------------------- code mapping --

TEST(WireCodeTest, EveryStatusCodeMapsAndRoundTrips) {
  const StatusCode all[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kResourceExhausted, StatusCode::kNotFound,
      StatusCode::kDataLoss,     StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : all) {
    const uint32_t wire = WireCodeFromStatus(code);
    const StatusOr<StatusCode> back = StatusCodeFromWire(wire);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), code);
  }
}

TEST(WireCodeTest, WireIntegersAreProtocolStable) {
  // The table in docs/SERVICE.md — renumbering is a protocol break, so
  // the exact integers are pinned here.
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kOk), 0u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kInvalidArgument), 1u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kResourceExhausted), 2u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kNotFound), 3u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kDataLoss), 4u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kUnavailable), 5u);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kDeadlineExceeded), 6u);
}

TEST(WireCodeTest, UnknownWireCodeIsInvalidArgument) {
  for (const uint32_t bogus : {7u, 42u, 0xffffffffu}) {
    const StatusOr<StatusCode> code = StatusCodeFromWire(bogus);
    ASSERT_FALSE(code.ok());
    EXPECT_EQ(code.status().code(), StatusCode::kInvalidArgument);
  }
}

// ------------------------------------------------------ request lines --

TEST(RequestGrammarTest, EveryVerbRoundTripsThroughFormat) {
  std::vector<Request> requests;
  {
    Request r;
    r.verb = Verb::kTree;
    r.dataset = "ba-demo";
    r.field = "KC";
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kPeaks;
    r.dataset = "er-demo";
    r.field = "KC";
    r.level = 0.1;  // not exactly representable: %.17g must round-trip
    requests.push_back(r);
    r.level = -3.25e-17;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kTopPeaks;
    r.dataset = "d";
    r.field = "f";
    r.k = 0xffffffffu;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kMembers;
    r.dataset = "d";
    r.field = "f";
    r.node = 7;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kCorrelation;
    r.dataset = "d";
    r.field = "KC";
    r.field_b = "DEG";
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kTile;
    r.dataset = "d";
    r.field = "f";
    r.azimuth_deg = 225.0;
    r.elevation_deg = 42.5;
    r.width = 960;
    r.height = 720;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::kStats;
    requests.push_back(r);
  }

  for (const Request& request : requests) {
    const std::string line = FormatRequestLine(request);
    SCOPED_TRACE(line);
    const StatusOr<Request> parsed = ParseRequestLine(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const Request& back = parsed.value();
    EXPECT_EQ(back.verb, request.verb);
    EXPECT_EQ(back.dataset, request.dataset);
    EXPECT_EQ(back.field, request.field);
    EXPECT_EQ(back.field_b, request.field_b);
    EXPECT_EQ(back.level, request.level);  // exact: %.17g
    EXPECT_EQ(back.k, request.k);
    EXPECT_EQ(back.node, request.node);
    EXPECT_EQ(back.azimuth_deg, request.azimuth_deg);
    EXPECT_EQ(back.elevation_deg, request.elevation_deg);
    EXPECT_EQ(back.width, request.width);
    EXPECT_EQ(back.height, request.height);
  }
}

TEST(RequestGrammarTest, TrailingNewlineAndCrlfAreAccepted) {
  EXPECT_TRUE(ParseRequestLine("STATS\n").ok());
  EXPECT_TRUE(ParseRequestLine("STATS\r\n").ok());
  EXPECT_TRUE(ParseRequestLine("TREE a b\n").ok());
}

TEST(RequestGrammarTest, GrammarViolationsAreInvalidArgument) {
  const char* kBad[] = {
      "",                          // empty
      "\n",                        // empty after strip
      " TREE a b",                 // leading space
      "TREE a b ",                 // trailing space
      "TREE  a b",                 // double space
      "FROB a b",                  // unknown verb
      "tree a b",                  // verbs are case-sensitive
      "TREE a",                    // arity low
      "TREE a b c",                // arity high
      "STATS now",                 // STATS takes nothing
      "TREE a/b KC",               // '/' in a key token
      "TREE a \tKC",               // control byte in a key token
      "PEAKS a b high",            // non-numeric level
      "PEAKS a b inf",             // non-finite level
      "PEAKS a b nan",             // non-finite level
      "PEAKS a b 1.5x",            // unconsumed suffix
      "TOPPEAKS a b -1",           // k must be unsigned digits
      "TOPPEAKS a b 4294967296",   // k beyond u32
      "TOPPEAKS a b 1.5",          // k must be an integer
      "MEMBERS a b ten",           // node must be numeric
      "TILE a b 1 2 3",            // TILE arity low
      "TILE a b 0 0 64 nope",      // height not numeric
      "CORRELATION a b",           // missing fieldB
  };
  for (const char* line : kBad) {
    SCOPED_TRACE(line);
    const StatusOr<Request> parsed = ParseRequestLine(line);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RequestGrammarTest, OversizedLineIsRejected) {
  std::string line = "TREE a ";
  line += std::string(kMaxRequestLine, 'x');
  const StatusOr<Request> parsed = ParseRequestLine(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- response frames --

TEST(ResponseFrameTest, RoundTripsIncludingBinaryPayloads) {
  const std::string payloads[] = {
      "",
      "peaks 0\n",
      std::string("\x00\x01\xff binary \x00", 10),
      std::string(100000, 'z'),
  };
  for (const std::string& payload : payloads) {
    const std::string frame = EncodeResponseFrame(kWireOk, payload);
    EXPECT_EQ(frame.size(), kResponseOverheadBytes + payload.size());
    const StatusOr<ResponseFrame> decoded = DecodeResponseFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().wire_code, kWireOk);
    EXPECT_EQ(decoded.value().payload, payload);
  }
}

TEST(ResponseFrameTest, ErrorFrameCarriesCodeAndMessage) {
  const Status status = Status::NotFound("no artifact ba-demo/KC");
  const StatusOr<ResponseFrame> decoded =
      DecodeResponseFrame(EncodeErrorFrame(status));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().wire_code, kWireNotFound);
  EXPECT_EQ(decoded.value().payload, status.message());
}

TEST(ResponseFrameTest, HeaderLayoutViolationsAreInvalidArgument) {
  const std::string good = EncodeResponseFrame(kWireOk, "payload");

  // Truncated header.
  EXPECT_EQ(DecodeResponseFrame(good.substr(0, kResponseHeaderBytes - 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeResponseFrame(bad_magic).status().code(),
            StatusCode::kInvalidArgument);
  // Version 0 and a version from the future.
  std::string bad_version = good;
  bad_version[4] = 0;
  EXPECT_EQ(DecodeResponseFrame(bad_version).status().code(),
            StatusCode::kInvalidArgument);
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(DecodeResponseFrame(bad_version).status().code(),
            StatusCode::kInvalidArgument);
  // Unknown wire code.
  std::string bad_code = good;
  bad_code[8] = 99;
  EXPECT_EQ(DecodeResponseFrame(bad_code).status().code(),
            StatusCode::kInvalidArgument);
  // Length that disagrees with the actual frame size.
  std::string bad_len = good;
  bad_len[12] = static_cast<char>(bad_len[12] + 1);
  EXPECT_EQ(DecodeResponseFrame(bad_len).status().code(),
            StatusCode::kInvalidArgument);
  // A header advertising a payload beyond the sanity cap must be
  // refused at the header stage — before any buffer is sized by it.
  std::string huge = good.substr(0, kResponseHeaderBytes);
  for (int i = 12; i < 20; ++i) huge[i] = static_cast<char>(0xff);
  EXPECT_EQ(ParseResponseHeader(huge).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResponseFrameTest, PayloadCorruptionIsDataLoss) {
  std::string frame = EncodeResponseFrame(kWireOk, "the payload bytes");
  frame[kResponseHeaderBytes + 3] ^= 0x20;  // flip a payload bit
  const StatusOr<ResponseFrame> decoded = DecodeResponseFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------------- fuzzing --

std::string MutateBytes(const std::string& base, Rng* rng) {
  std::string bytes = base;
  switch (rng->UniformInt(5)) {
    case 0: {  // single bit flip
      if (bytes.empty()) break;
      const uint32_t offset =
          rng->UniformInt(static_cast<uint32_t>(bytes.size()));
      bytes[offset] =
          static_cast<char>(bytes[offset] ^ (1u << rng->UniformInt(8)));
      break;
    }
    case 1: {  // truncate anywhere (including to empty)
      bytes.resize(rng->UniformInt(static_cast<uint32_t>(bytes.size() + 1)));
      break;
    }
    case 2: {  // append junk
      const uint32_t extra = 1 + rng->UniformInt(64);
      for (uint32_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng->UniformInt(256)));
      }
      break;
    }
    case 3: {  // splice a random byte
      if (bytes.empty()) break;
      const uint32_t offset =
          rng->UniformInt(static_cast<uint32_t>(bytes.size()));
      bytes[offset] = static_cast<char>(rng->UniformInt(256));
      break;
    }
    case 4: {  // swap two ranges' worth of a byte each
      if (bytes.size() < 2) break;
      const uint32_t a =
          rng->UniformInt(static_cast<uint32_t>(bytes.size()));
      const uint32_t b =
          rng->UniformInt(static_cast<uint32_t>(bytes.size()));
      std::swap(bytes[a], bytes[b]);
      break;
    }
  }
  return bytes;
}

TEST(WireFuzzTest, MutatedRequestLinesNeverCrashTheParser) {
  const std::string seeds[] = {
      "TREE ba-demo KC",
      "PEAKS er-demo KC 3.5",
      "TOPPEAKS ba-demo KC 10",
      "MEMBERS ba-demo KC 0",
      "CORRELATION ba-demo KC DEG",
      "TILE ba-demo KC 225 42 128 96",
      "STATS",
  };
  Rng rng(20260807);
  uint64_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const std::string& seed = seeds[rng.UniformInt(7)];
    const std::string line = MutateBytes(seed, &rng);
    const StatusOr<Request> parsed = ParseRequestLine(line);
    if (!parsed.ok()) {
      ++rejected;
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Most single-byte mutations break the grammar; if almost nothing was
  // rejected the mutator (or the parser) is broken.
  EXPECT_GT(rejected, 1000u);
}

TEST(WireFuzzTest, MutatedResponseFramesAlwaysYieldStructuredStatus) {
  const std::string base_frames[] = {
      EncodeResponseFrame(kWireOk, "peaks 2\n4 10 3.5\n7 2 3\n"),
      EncodeResponseFrame(kWireNotFound, "no artifact x/y"),
      EncodeResponseFrame(kWireOk, std::string(4096, '\x5a')),
  };
  Rng rng(777);
  uint64_t rejected = 0;
  for (int round = 0; round < 6000; ++round) {
    const std::string frame =
        MutateBytes(base_frames[rng.UniformInt(3)], &rng);
    const StatusOr<ResponseFrame> decoded = DecodeResponseFrame(frame);
    if (!decoded.ok()) {
      ++rejected;
      const StatusCode code = decoded.status().code();
      EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kDataLoss)
          << decoded.status().ToString();
    }
  }
  EXPECT_GT(rejected, 2000u);
}

// The frame checksum must be the same FNV-1a the artifact format uses —
// one hash across the whole storage + wire stack (docs/SERVICE.md).
TEST(ResponseFrameTest, ChecksumMatchesTreeIoFnv1a) {
  const std::string payload = "shared checksum convention";
  const std::string frame = EncodeResponseFrame(kWireOk, payload);
  uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<uint8_t>(
                 frame[kResponseHeaderBytes + payload.size() + i]);
  }
  EXPECT_EQ(stored, Fnv1aChecksum(payload));
}

}  // namespace
}  // namespace service
}  // namespace graphscape
