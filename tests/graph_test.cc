// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace graphscape {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder;
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, PacksTriangleIntoCsr) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);  // duplicate, reversed
  builder.AddEdge(0, 1);  // duplicate
  builder.AddEdge(2, 2);  // self-loop
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
}

TEST(GraphBuilderTest, GrowsVertexCountFromEndpoints) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 7);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(GraphTest, NeighborsAreSortedAscending) {
  GraphBuilder builder(5);
  builder.AddEdge(2, 4);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build();
  const Graph::NeighborRange r = g.Neighbors(2);
  ASSERT_EQ(r.size(), 4u);
  for (uint32_t i = 0; i + 1 < r.size(); ++i) EXPECT_LT(r[i], r[i + 1]);
}

TEST(GraphTest, EdgeEndpointsFollowEdgeListOrder) {
  GraphBuilder builder(4);
  builder.AddEdge(2, 1);
  builder.AddEdge(3, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  // EdgeList order: ascending smaller endpoint, then larger.
  ASSERT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.EdgeEndpoints(0), (std::pair<VertexId, VertexId>{0, 1}));
  EXPECT_EQ(g.EdgeEndpoints(1), (std::pair<VertexId, VertexId>{0, 3}));
  EXPECT_EQ(g.EdgeEndpoints(2), (std::pair<VertexId, VertexId>{1, 2}));
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

}  // namespace
}  // namespace graphscape
