// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Oracle-grade coverage for the community subsystem: the planted
// overlapping-community generator's structural guarantees, BigCLAM-lite
// recovery scored against the planted partition (best-match Jaccard),
// and the ReFeX/RolX role layer checked on hand-computable graphs (star,
// path, clique) plus the planted role community.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "community/bigclam.h"
#include "community/roles.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

CommunityGraphResult SmallCommunities(uint64_t seed = 2017) {
  OverlappingCommunityOptions options;
  options.num_communities = 4;
  options.vertices_per_community = 150;
  options.subclusters = 2;
  Rng rng(seed);
  return OverlappingCommunities(options, &rng);
}

TEST(OverlappingCommunitiesTest, ShapeMatchesOptions) {
  const CommunityGraphResult result = SmallCommunities();
  const uint32_t n = result.graph.NumVertices();
  EXPECT_EQ(n, 600u);
  ASSERT_EQ(result.scores.size(), 4u);
  for (const auto& scores : result.scores) EXPECT_EQ(scores.size(), n);
  ASSERT_EQ(result.primary_community.size(), n);
  ASSERT_EQ(result.subcluster.size(), n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(result.primary_community[v], v / 150) << v;
    EXPECT_GT(result.scores[result.primary_community[v]][v], 0.0) << v;
  }
}

TEST(OverlappingCommunitiesTest, ScoresRespectDocumentedBands) {
  const CommunityGraphResult result = SmallCommunities();
  const uint32_t n = result.graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t home = result.primary_community[v];
    const double primary = result.scores[home][v];
    EXPECT_GT(primary, 0.0);
    EXPECT_LE(primary, 1.0);
    if (result.subcluster[v] != kInvalidVertex) {
      EXPECT_GE(primary, kCommunityCoreScore)
          << "core member below the core band at vertex " << v;
    } else {
      EXPECT_LE(primary, kCommunityBridgeScore)
          << "mid-band member above the bridge level at vertex " << v;
    }
    for (uint32_t c = 0; c < 4; ++c) {
      if (c == home) continue;
      EXPECT_LT(result.scores[c][v], 0.5)
          << "overlap affiliation must stay below 0.5 at vertex " << v;
    }
  }
}

TEST(OverlappingCommunitiesTest, EachCommunityShowsTwinCorePeaks) {
  const CommunityGraphResult result = SmallCommunities();
  for (uint32_t c = 0; c < 4; ++c) {
    const VertexScalarField field("score", result.scores[c]);
    const SuperTree tree(BuildVertexScalarTree(result.graph, field));
    EXPECT_EQ(PeaksAtLevel(tree, kCommunityCoreScore).size(), 2u)
        << "community " << c
        << ": sub-cores must be disconnected at the core level";
    // Below the bridge level the two sub-cores merge into one peak.
    EXPECT_EQ(CountComponentsAtLevel(tree, kCommunityBridgeScore - 0.02), 1u)
        << "community " << c;
  }
}

TEST(OverlappingCommunitiesTest, MaxScoreFieldHasOnePeakPerCommunity) {
  const CommunityGraphResult result = SmallCommunities();
  const uint32_t n = result.graph.NumVertices();
  std::vector<double> best(n, 0.0);
  for (uint32_t c = 0; c < 4; ++c)
    for (VertexId v = 0; v < n; ++v)
      best[v] = std::max(best[v], result.scores[c][v]);
  const VertexScalarField field("max_score", best);
  const SuperTree tree(BuildVertexScalarTree(result.graph, field));
  EXPECT_EQ(CountComponentsAtLevel(tree, 0.5), 4u);
}

TEST(OverlappingCommunitiesTest, DeterministicInSeed) {
  const CommunityGraphResult a = SmallCommunities(7);
  const CommunityGraphResult b = SmallCommunities(7);
  const CommunityGraphResult c = SmallCommunities(8);
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.graph.Adjacency(), b.graph.Adjacency());
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_NE(a.scores, c.scores);
}

// ------------------------------------------------------------- BigCLAM --

/// Best-match Jaccard between the fitted community (normalized score >
/// 0.3) and each planted member set (score > 0.2) — the partition
/// recovery oracle.
double MeanBestJaccard(const CommunityGraphResult& planted,
                       const BigClamAffiliations& fitted) {
  const uint32_t n = planted.graph.NumVertices();
  double total = 0.0;
  for (uint32_t p = 0; p < planted.scores.size(); ++p) {
    double best = 0.0;
    for (uint32_t f = 0; f < fitted.num_communities; ++f) {
      const VertexScalarField fit = CommunityScoreField(fitted, f);
      uint32_t both = 0, either = 0;
      for (VertexId v = 0; v < n; ++v) {
        const bool in_planted = planted.scores[p][v] > 0.2;
        const bool in_fitted = fit[v] > 0.3;
        both += in_planted && in_fitted;
        either += in_planted || in_fitted;
      }
      if (either > 0)
        best = std::max(best, static_cast<double>(both) / either);
    }
    total += best;
  }
  return total / planted.scores.size();
}

TEST(BigClamTest, RecoversPlantedPartition) {
  const CommunityGraphResult planted = SmallCommunities();
  BigClamOptions options;
  options.num_communities = 4;
  options.iterations = 80;
  const BigClamAffiliations fitted = BigClamFit(planted.graph, options);
  EXPECT_GE(MeanBestJaccard(planted, fitted), 0.6)
      << "fit lost the planted 4-community structure";
}

TEST(BigClamTest, FitIsDeterministic) {
  const CommunityGraphResult planted = SmallCommunities();
  BigClamOptions options;
  options.iterations = 20;
  const BigClamAffiliations a = BigClamFit(planted.graph, options);
  const BigClamAffiliations b = BigClamFit(planted.graph, options);
  EXPECT_EQ(a.factors, b.factors) << "same inputs must refit identically";
  options.seed = 15;
  const BigClamAffiliations c = BigClamFit(planted.graph, options);
  EXPECT_NE(a.factors, c.factors) << "the seed must reach the jitter";
}

TEST(BigClamTest, FactorsStayInsideTheBox) {
  const CommunityGraphResult planted = SmallCommunities();
  BigClamOptions options;
  options.iterations = 40;
  options.max_factor = 2.0;
  const BigClamAffiliations fitted = BigClamFit(planted.graph, options);
  ASSERT_EQ(fitted.factors.size(),
            static_cast<size_t>(fitted.num_vertices) *
                fitted.num_communities);
  for (const double f : fitted.factors) {
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 2.0);
  }
}

TEST(BigClamTest, IsolatedVerticesDecayToZero) {
  // Two vertices, no edges: the only force is the lambda pull, so a
  // long-enough budget drains every factor to exactly 0 (clamped).
  const Graph g = GraphBuilder(2).Build();
  BigClamOptions options;
  options.num_communities = 3;
  options.iterations = 500;
  const BigClamAffiliations fitted = BigClamFit(g, options);
  for (const double f : fitted.factors) EXPECT_EQ(f, 0.0);
}

TEST(BigClamTest, EmptyGraphYieldsEmptyFit) {
  const Graph g = GraphBuilder(0).Build();
  const BigClamAffiliations fitted = BigClamFit(g);
  EXPECT_EQ(fitted.num_vertices, 0u);
  EXPECT_TRUE(fitted.factors.empty());
}

TEST(BigClamTest, ScoreFieldsAreNormalizedAndNamed) {
  const CommunityGraphResult planted = SmallCommunities();
  BigClamOptions options;
  options.iterations = 30;
  const BigClamAffiliations fitted = BigClamFit(planted.graph, options);
  for (uint32_t c = 0; c < fitted.num_communities; ++c) {
    const VertexScalarField field = CommunityScoreField(fitted, c);
    EXPECT_EQ(field.Name(), "bigclam" + std::to_string(c));
    EXPECT_EQ(field.Size(), planted.graph.NumVertices());
    EXPECT_DOUBLE_EQ(field.MaxValue(), 1.0);
    EXPECT_GE(field.MinValue(), 0.0);
  }
  const VertexScalarField max_field = MaxMembershipField(fitted);
  EXPECT_EQ(max_field.Name(), "bigclam_max");
  for (VertexId v = 0; v < planted.graph.NumVertices(); ++v) {
    double expected = 0.0;
    for (uint32_t c = 0; c < fitted.num_communities; ++c)
      expected = std::max(expected, CommunityScoreField(fitted, c)[v]);
    EXPECT_DOUBLE_EQ(max_field[v], expected) << v;
  }
}

// ---------------------------------------------------------------- roles --

Graph StarGraph(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t leaf = 1; leaf <= leaves; ++leaf) builder.AddEdge(0, leaf);
  return builder.Build();
}

Graph PathGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph CliqueGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t a = 0; a < n; ++a)
    for (uint32_t b = a + 1; b < n; ++b) builder.AddEdge(a, b);
  return builder.Build();
}

std::vector<VertexId> AllVertices(const Graph& g) {
  std::vector<VertexId> vertices(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) vertices[v] = v;
  return vertices;
}

TEST(RoleFeatureTest, FeatureCountGrowsGeometrically) {
  const Graph g = PathGraph(5);
  for (uint32_t depth : {0u, 1u, 2u, 3u}) {
    RoleFeatureOptions options;
    options.depth = depth;
    const RoleFeatureMatrix m = RecursiveFeatures(g, options);
    uint32_t expected = kBaseRoleFeatures;
    for (uint32_t level = 0; level < depth; ++level) expected *= 3;
    EXPECT_EQ(m.num_features, expected);
    EXPECT_EQ(m.num_vertices, 5u);
    EXPECT_EQ(m.values.size(), static_cast<size_t>(5) * expected);
  }
}

TEST(RoleFeatureTest, BaseBlockMatchesHandComputation) {
  // Triangle {0,1,2} with a tail 2-3.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  RoleFeatureOptions options;
  options.depth = 0;
  const RoleFeatureMatrix m = RecursiveFeatures(g, options);

  // Vertex 0: degree 2, 1 triangle, clustering 1, egonet {0,1,2} has 3
  // internal edges, boundary = only 2-3.
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(m.At(0, 4), 1.0);
  // Vertex 2: degree 3, 1 triangle, clustering 1/3, egonet = whole graph
  // (4 internal edges), no boundary.
  EXPECT_DOUBLE_EQ(m.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 4.0);
  EXPECT_DOUBLE_EQ(m.At(2, 4), 0.0);
  // Vertex 3: degree 1, no triangles, egonet {2,3} has 1 internal edge,
  // boundary = 2's other two edges.
  EXPECT_DOUBLE_EQ(m.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.At(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.At(3, 4), 2.0);
}

TEST(RoleFeatureTest, RecursiveAggregatesMatchHandComputationOnPath) {
  const Graph g = PathGraph(3);  // 0 - 1 - 2
  RoleFeatureOptions options;
  options.depth = 1;
  const RoleFeatureMatrix m = RecursiveFeatures(g, options);
  ASSERT_EQ(m.num_features, 15u);
  // Columns [5, 10) are neighbor means, [10, 15) neighbor sums of the
  // base block. Vertex 1's neighbors are the two degree-1 endpoints.
  EXPECT_DOUBLE_EQ(m.At(1, 5), 1.0);   // mean neighbor degree
  EXPECT_DOUBLE_EQ(m.At(1, 10), 2.0);  // sum of neighbor degrees
  // Endpoint 0's single neighbor is the degree-2 center.
  EXPECT_DOUBLE_EQ(m.At(0, 5), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 10), 2.0);
}

TEST(ClassifyRolesTest, StarCenterIsHubLeavesAreWhiskers) {
  const Graph g = StarGraph(12);
  const std::vector<VertexRole> roles = ClassifyRoles(g, AllVertices(g));
  EXPECT_EQ(roles[0], VertexRole::kHub);
  for (VertexId leaf = 1; leaf < g.NumVertices(); ++leaf)
    EXPECT_EQ(roles[leaf], VertexRole::kWhisker) << leaf;
}

TEST(ClassifyRolesTest, PathIsAllWhisker) {
  const Graph g = PathGraph(8);
  for (const VertexRole role : ClassifyRoles(g, AllVertices(g)))
    EXPECT_EQ(role, VertexRole::kWhisker);
}

TEST(ClassifyRolesTest, CliqueIsAllDense) {
  const Graph g = CliqueGraph(6);
  for (const VertexRole role : ClassifyRoles(g, AllVertices(g)))
    EXPECT_EQ(role, VertexRole::kDense);
}

TEST(ClassifyRolesTest, OutsideCommunityIsBackground) {
  const Graph g = CliqueGraph(6);
  const std::vector<VertexRole> roles = ClassifyRoles(g, {0, 1, 2});
  for (VertexId v = 3; v < 6; ++v)
    EXPECT_EQ(roles[v], VertexRole::kBackground) << v;
  EXPECT_TRUE(ClassifyRoles(g, {}).size() == 6 &&
              ClassifyRoles(g, {})[0] == VertexRole::kBackground);
}

TEST(ClassifyRolesTest, RecoversPlantedRoleCommunity) {
  RoleCommunityOptions options;
  Rng rng(9);
  const RoleCommunityResult planted = RoleCommunityGraph(options, &rng);
  const std::vector<VertexRole> roles =
      ClassifyRoles(planted.graph, planted.community_vertices);
  EXPECT_GE(RoleAccuracy(roles, planted.roles), 0.9);
  // The terrain layering the figure claims: mean community score per
  // recovered role must strictly decrease hub -> dense -> periphery ->
  // whisker.
  double height[4] = {0, 0, 0, 0};
  uint32_t count[4] = {0, 0, 0, 0};
  for (const VertexId v : planted.community_vertices) {
    const auto r = static_cast<uint32_t>(roles[v]);
    ASSERT_LT(r, 4u);
    height[r] += planted.community_score[v];
    ++count[r];
  }
  for (int r = 0; r < 4; ++r) ASSERT_GT(count[r], 0u) << "role " << r;
  for (int r = 0; r + 1 < 4; ++r)
    EXPECT_GT(height[r] / count[r], height[r + 1] / count[r + 1])
        << "role " << r << " must sit above role " << r + 1;
}

TEST(RoleAccuracyTest, ScoresOnlyPlantedNonBackground) {
  using R = VertexRole;
  const std::vector<R> planted = {R::kHub, R::kDense, R::kBackground};
  EXPECT_DOUBLE_EQ(
      RoleAccuracy({R::kHub, R::kWhisker, R::kDense}, planted), 0.5);
  EXPECT_DOUBLE_EQ(RoleAccuracy({R::kHub, R::kDense, R::kHub}, planted), 1.0);
  EXPECT_DOUBLE_EQ(
      RoleAccuracy({R::kHub}, {R::kBackground}), 1.0);  // vacuous
}

TEST(RoleMembershipTest, DeterministicOrderedAndNormalized) {
  RoleCommunityOptions community_options;
  community_options.num_background = 100;
  Rng rng(3);
  const RoleCommunityResult planted =
      RoleCommunityGraph(community_options, &rng);
  RoleOptions options;
  options.num_roles = 4;
  const RoleMemberships a = FitRoleMemberships(planted.graph, options);
  const RoleMemberships b = FitRoleMemberships(planted.graph, options);
  EXPECT_EQ(a.fields, b.fields);
  EXPECT_EQ(a.role_of, b.role_of);
  ASSERT_EQ(a.num_roles, 4u);

  const uint32_t n = planted.graph.NumVertices();
  std::vector<double> degree_sum(4, 0.0);
  std::vector<uint32_t> count(4, 0);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_LT(a.role_of[v], 4u);
    // The assigned role is the membership-1 role; all memberships in
    // (0, 1].
    EXPECT_DOUBLE_EQ(a.fields[a.role_of[v]][v], 1.0) << v;
    for (uint32_t r = 0; r < 4; ++r) {
      EXPECT_GT(a.fields[r][v], 0.0);
      EXPECT_LE(a.fields[r][v], 1.0);
    }
    degree_sum[a.role_of[v]] += planted.graph.Degree(v);
    ++count[a.role_of[v]];
  }
  // Role ids are ordered by descending mean member degree.
  double previous = std::numeric_limits<double>::max();
  for (uint32_t r = 0; r < 4; ++r) {
    if (count[r] == 0) continue;
    const double mean = degree_sum[r] / count[r];
    EXPECT_LE(mean, previous) << "role " << r;
    previous = mean;
  }
  const VertexScalarField field = RoleMembershipField(a, 2);
  EXPECT_EQ(field.Name(), "role2_membership");
  EXPECT_EQ(field.Size(), n);
}

TEST(RoleVocabularyTest, NamesAndColorsAreDistinct) {
  using R = VertexRole;
  const R all[] = {R::kHub, R::kDense, R::kPeriphery, R::kWhisker,
                   R::kBackground};
  std::set<std::string> names;
  std::set<std::tuple<int, int, int>> colors;
  for (const R role : all) {
    names.insert(RoleName(role));
    const Rgb rgb = RoleColor(role);
    colors.insert({rgb.r, rgb.g, rgb.b});
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(colors.size(), 5u);
  EXPECT_STREQ(RoleName(R::kHub), "hub");
  EXPECT_STREQ(RoleName(R::kWhisker), "whisker");
}

}  // namespace
}  // namespace graphscape
