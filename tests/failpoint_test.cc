// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The failpoint registry: every trigger mode fires exactly per spec,
// counters account for each decision, arming is all-or-nothing from the
// env grammar, and the disarmed fast path stays inert.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

namespace graphscape {
namespace failpoint {
namespace {

// Every test disarms what it arms; this fixture backstops a failing test
// so a leaked armed seam can't fault the rest of the binary.
class FailpointTest : public ::testing::Test {
 protected:
  ~FailpointTest() override { DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  EXPECT_FALSE(Fire("test/never_armed"));
  EXPECT_EQ(HitCount("test/never_armed"), 0u);
  EXPECT_EQ(FireCount("test/never_armed"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  Arm("test/always", Spec::Always());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(Fire("test/always"));
  EXPECT_EQ(HitCount("test/always"), 5u);
  EXPECT_EQ(FireCount("test/always"), 5u);
}

TEST_F(FailpointTest, OnceFiresTheFirstHitOnly) {
  Arm("test/once", Spec::Once());
  EXPECT_TRUE(Fire("test/once"));
  EXPECT_FALSE(Fire("test/once"));
  EXPECT_FALSE(Fire("test/once"));
  EXPECT_EQ(FireCount("test/once"), 1u);
  EXPECT_EQ(HitCount("test/once"), 3u);
}

TEST_F(FailpointTest, OnceNthSkipsThenFiresExactlyOnce) {
  Arm("test/once_nth", Spec::Once(2));
  EXPECT_FALSE(Fire("test/once_nth"));  // hit 0
  EXPECT_FALSE(Fire("test/once_nth"));  // hit 1
  EXPECT_TRUE(Fire("test/once_nth"));   // hit 2
  EXPECT_FALSE(Fire("test/once_nth"));  // capped
  EXPECT_EQ(FireCount("test/once_nth"), 1u);
}

TEST_F(FailpointTest, AfterFiresEveryHitFromN) {
  Arm("test/after", Spec::After(3));
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(Fire("test/after"));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(Fire("test/after"));
  EXPECT_EQ(FireCount("test/after"), 4u);
}

TEST_F(FailpointTest, ProbabilityZeroAndOneAreDegenerate) {
  Arm("test/p0", Spec::Probability(0.0));
  Arm("test/p1", Spec::Probability(1.0));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(Fire("test/p0"));
    EXPECT_TRUE(Fire("test/p1"));
  }
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  // The same seed must reproduce the same fire pattern; re-arming resets
  // the stream.
  const auto pattern = [](uint64_t seed) {
    Arm("test/prob", Spec::Probability(0.5, seed));
    std::string fired;
    for (int i = 0; i < 64; ++i) fired += Fire("test/prob") ? '1' : '0';
    return fired;
  };
  const std::string first = pattern(42);
  EXPECT_EQ(pattern(42), first);
  EXPECT_NE(pattern(43), first);
  // 64 draws at p=0.5 land strictly inside (0, 64) for any sane stream.
  const uint64_t ones = std::count(first.begin(), first.end(), '1');
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, 64u);
}

TEST_F(FailpointTest, ReArmingReplacesSpecAndResetsCounters) {
  Arm("test/rearm", Spec::Always());
  EXPECT_TRUE(Fire("test/rearm"));
  Arm("test/rearm", Spec::Once(5));
  EXPECT_EQ(HitCount("test/rearm"), 0u);
  EXPECT_FALSE(Fire("test/rearm"));
}

TEST_F(FailpointTest, DisarmKeepsCountersReadable) {
  Arm("test/disarm", Spec::Always());
  EXPECT_TRUE(Fire("test/disarm"));
  Disarm("test/disarm");
  EXPECT_FALSE(Fire("test/disarm"));
  EXPECT_EQ(FireCount("test/disarm"), 1u);
  EXPECT_EQ(HitCount("test/disarm"), 1u);  // disarmed hits don't count
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint scoped("test/scoped", Spec::Always());
    EXPECT_TRUE(Fire("test/scoped"));
    EXPECT_EQ(scoped.fire_count(), 1u);
  }
  EXPECT_FALSE(Fire("test/scoped"));
}

TEST_F(FailpointTest, ArmFromStringArmsEveryClause) {
  ASSERT_TRUE(ArmFromString("test/a=always;test/b=once(1);test/c=after(2)")
                  .ok());
  EXPECT_TRUE(Fire("test/a"));
  EXPECT_FALSE(Fire("test/b"));
  EXPECT_TRUE(Fire("test/b"));
  EXPECT_FALSE(Fire("test/c"));
  EXPECT_FALSE(Fire("test/c"));
  EXPECT_TRUE(Fire("test/c"));
}

TEST_F(FailpointTest, ArmFromStringParsesProbabilityClauses) {
  ASSERT_TRUE(ArmFromString("test/pz=prob(0);test/po=prob(1.0,9)").ok());
  EXPECT_FALSE(Fire("test/pz"));
  EXPECT_TRUE(Fire("test/po"));
}

TEST_F(FailpointTest, ArmFromStringRejectsBadSpecsWithoutPartialArming) {
  // The bad clause comes AFTER a good one: nothing may arm.
  const Status status =
      ArmFromString("test/good=always;test/bad=sometimes");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(Fire("test/good"));

  EXPECT_FALSE(ArmFromString("noequals").ok());
  EXPECT_FALSE(ArmFromString("test/x=once(").ok());
  EXPECT_FALSE(ArmFromString("test/x=once(abc)").ok());
  EXPECT_FALSE(ArmFromString("test/x=after()").ok());
  EXPECT_FALSE(ArmFromString("test/x=prob(1.5)").ok());
  EXPECT_FALSE(ArmFromString("test/x=prob(0.5,)").ok());
}

TEST_F(FailpointTest, InjectedFaultIsRetryableAndNamesTheSeam) {
  const Status fault = InjectedFault("cache/manifest_write");
  EXPECT_EQ(fault.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(fault));
  EXPECT_NE(fault.message().find("cache/manifest_write"), std::string::npos);
}

TEST_F(FailpointTest, EnvArmedFailpointIsLive) {
  // CI's fault-injection job runs this binary with
  // GRAPHSCAPE_FAILPOINTS="test/env_armed=always" to prove the env path
  // arms before main; without that env there is nothing to assert.
  const char* env = std::getenv("GRAPHSCAPE_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("test/env_armed=always") == std::string::npos) {
    GTEST_SKIP() << "GRAPHSCAPE_FAILPOINTS does not arm test/env_armed";
  }
  EXPECT_TRUE(Fire("test/env_armed"));
}

}  // namespace
}  // namespace failpoint
}  // namespace graphscape
