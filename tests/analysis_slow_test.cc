// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dataset-scale checks of the analysis layer (ctest label "slow",
// excluded from the tier-1 CI matrix; the bench-smoke job runs them
// under its job-level timeout). Everything here re-verifies at GrQc /
// WikiVote registry scale what the tier-1 suite pins on toy graphs:
// member-index consistency, BFS-oracle agreement for level queries,
// persistence invariants, and byte-identical artifact roundtrips.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/persistence.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"
#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

// BFS component count of the vertex superlevel subgraph — the oracle.
uint32_t OracleComponents(const Graph& g, const std::vector<double>& values,
                          double level) {
  std::vector<char> seen(g.NumVertices(), 0);
  uint32_t components = 0;
  std::vector<VertexId> frontier;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if (values[s] < level || seen[s]) continue;
    ++components;
    seen[s] = 1;
    frontier.assign(1, s);
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      for (const VertexId u : g.Neighbors(v)) {
        if (values[u] >= level && !seen[u]) {
          seen[u] = 1;
          frontier.push_back(u);
        }
      }
    }
  }
  return components;
}

TEST(AnalysisSlowTest, GrQcKcoreQueriesMatchOracleAtRegistryScale) {
  const Dataset ds = MakeDataset(DatasetId::kGrQc);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
  const SuperTree tree(BuildVertexScalarTree(ds.graph, kc));

  // Member index partitions the vertices.
  uint64_t total = 0;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    for (const uint32_t v : tree.Members(node)) {
      EXPECT_EQ(tree.NodeOf(v), node);
    }
    total += tree.Members(node).size();
  }
  EXPECT_EQ(total, ds.graph.NumVertices());

  // Level queries match BFS at every distinct core number.
  std::set<double> levels(kc.Values().begin(), kc.Values().end());
  for (const double level : levels) {
    EXPECT_EQ(CountComponentsAtLevel(tree, level),
              OracleComponents(ds.graph, kc.Values(), level))
        << "level " << level;
  }

  // Peaks at the max level are the densest cores; their subtree members
  // all sit at the max.
  for (const Peak& peak : PeaksAtLevel(tree, kc.MaxValue())) {
    for (const uint32_t v : tree.SubtreeMembers(peak.super_node)) {
      EXPECT_DOUBLE_EQ(kc[v], kc.MaxValue());
    }
  }
}

TEST(AnalysisSlowTest, PersistenceInvariantsAtRegistryScale) {
  const Dataset ds = MakeDataset(DatasetId::kWikiVote);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
  const ScalarTree tree = BuildVertexScalarTree(ds.graph, kc);
  const auto pairs = PersistencePairs(tree);
  uint32_t essential = 0;
  for (const auto& pair : pairs) {
    EXPECT_GE(pair.Persistence(), 0.0);
    essential += pair.essential;
  }
  EXPECT_EQ(essential, tree.NumRoots());

  // Simplification at a quarter of the range keeps the dominant peak.
  const double tau = 0.25 * (kc.MaxValue() - kc.MinValue());
  const SuperTree simplified = SimplifyByPersistence(ds.graph, kc, tau);
  EXPECT_GE(CountComponentsAtLevel(simplified, kc.MaxValue()), 1u);
  EXPECT_LE(TopPeaks(simplified, 1u << 20).size(),
            TopPeaks(SuperTree(tree), 1u << 20).size());
}

TEST(AnalysisSlowTest, ArtifactRoundtripsAtRegistryScale) {
  for (const DatasetId id : {DatasetId::kGrQc, DatasetId::kWikiVote}) {
    const Dataset ds = MakeDataset(id);
    TreeArtifact vertex_artifact;
    const VertexScalarField kc =
        VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
    vertex_artifact.tree = SuperTree(BuildVertexScalarTree(ds.graph, kc));
    vertex_artifact.field_name = kc.Name();
    vertex_artifact.field_values = kc.Values();

    TreeArtifact edge_artifact;
    const EdgeScalarField kt =
        EdgeScalarField::FromCounts("KT", TrussNumbers(ds.graph));
    edge_artifact.tree = SuperTree(BuildEdgeScalarTree(ds.graph, kt));
    edge_artifact.field_name = kt.Name();
    edge_artifact.field_values = kt.Values();

    for (const TreeArtifact* artifact :
         {&vertex_artifact, &edge_artifact}) {
      const auto bytes = SerializeTreeArtifact(*artifact);
      ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
      const auto loaded = DeserializeTreeArtifact(bytes.value());
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      const auto again = SerializeTreeArtifact(loaded.value());
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(again.value(), bytes.value());
    }
  }
}

}  // namespace
}  // namespace graphscape
