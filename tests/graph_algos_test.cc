// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/graph_algos.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"

namespace graphscape {
namespace {

Graph ThreeComponents() {
  // {0,1,2} path, {3,4} edge, {5} isolated.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  return builder.Build();
}

TEST(ConnectedComponentsTest, LabelsAreDenseAndConsistent) {
  const Graph g = ThreeComponents();
  const ComponentLabeling comps = ConnectedComponents(g);
  EXPECT_EQ(comps.num_components, 3u);
  EXPECT_EQ(comps.ComponentOf(0), comps.ComponentOf(1));
  EXPECT_EQ(comps.ComponentOf(1), comps.ComponentOf(2));
  EXPECT_EQ(comps.ComponentOf(3), comps.ComponentOf(4));
  EXPECT_NE(comps.ComponentOf(0), comps.ComponentOf(3));
  EXPECT_NE(comps.ComponentOf(0), comps.ComponentOf(5));
  EXPECT_NE(comps.ComponentOf(3), comps.ComponentOf(5));
  // Dense ids in order of smallest member: 0 -> 0, 3 -> 1, 5 -> 2.
  EXPECT_EQ(comps.ComponentOf(0), 0u);
  EXPECT_EQ(comps.ComponentOf(3), 1u);
  EXPECT_EQ(comps.ComponentOf(5), 2u);
}

TEST(ConnectedComponentsTest, BarabasiAlbertIsOneComponent) {
  Rng rng(1);
  const Graph g = BarabasiAlbert(1000, 3, &rng);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(BfsDistancesTest, PathDistancesAndUnreachable) {
  GraphBuilder builder(6);
  for (uint32_t v = 0; v + 1 < 5; ++v) builder.AddEdge(v, v + 1);
  const Graph g = builder.Build();  // path 0..4, vertex 5 isolated
  const std::vector<uint32_t> d = BfsDistances(g, 0);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
  EXPECT_EQ(d[5], kUnreachable);
}

TEST(EccentricityTest, PathEndpointsVsCenter) {
  GraphBuilder builder(5);
  for (uint32_t v = 0; v + 1 < 5; ++v) builder.AddEdge(v, v + 1);
  const Graph g = builder.Build();
  EXPECT_EQ(Eccentricity(g, 0), 4u);
  EXPECT_EQ(Eccentricity(g, 2), 2u);
  EXPECT_EQ(Eccentricity(g, 4), 4u);
}

TEST(EccentricityTest, IsolatedVertexIsZero) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  EXPECT_EQ(Eccentricity(builder.Build(), 2), 0u);
}

TEST(KHopNeighborhoodTest, CenterFirstThenRings) {
  // Star center 0 with leaves 1..4, plus a tail 4-5.
  GraphBuilder builder(6);
  for (uint32_t v = 1; v <= 4; ++v) builder.AddEdge(0, v);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();

  const std::vector<VertexId> one = KHopNeighborhood(g, 5, 1);
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one[0], 5u);  // center first — callers color index 0
  EXPECT_EQ(one[1], 4u);

  const std::vector<VertexId> two = KHopNeighborhood(g, 5, 2);
  EXPECT_EQ(two.size(), 3u);  // 5, 4, 0
  const std::vector<VertexId> three = KHopNeighborhood(g, 5, 3);
  EXPECT_EQ(three.size(), 6u);  // everything
}

TEST(InducedSubgraphTest, PreservesOrderAndKeepsInternalEdgesOnly) {
  const Graph g = ThreeComponents();
  const Subgraph sub = InducedSubgraph(g, {2, 0, 1, 3, 2});
  // Duplicates ignored; local ids follow first-occurrence order.
  ASSERT_EQ(sub.to_parent_vertex.size(), 4u);
  EXPECT_EQ(sub.to_parent_vertex[0], 2u);
  EXPECT_EQ(sub.to_parent_vertex[1], 0u);
  EXPECT_EQ(sub.to_parent_vertex[2], 1u);
  EXPECT_EQ(sub.to_parent_vertex[3], 3u);
  // Edges 0-1 and 1-2 survive (locals 1-2 and 2-0); 3-4 dropped (4 absent).
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 2u);
  EXPECT_TRUE(sub.graph.HasEdge(1, 2));
  EXPECT_TRUE(sub.graph.HasEdge(0, 2));
  EXPECT_FALSE(sub.graph.HasEdge(0, 1));
  EXPECT_EQ(sub.graph.Degree(3), 0u);
}

TEST(InducedSubgraphTest, DegreesMatchParentOnFullSelection) {
  Rng rng(4);
  const Graph g = ErdosRenyi(80, 0.05, &rng);
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  const Subgraph sub = InducedSubgraph(g, all);
  ASSERT_EQ(sub.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(sub.graph.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v)
    EXPECT_EQ(sub.graph.Degree(v), g.Degree(v));
}

}  // namespace
}  // namespace graphscape
