// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Behavioral pins for the 2D layout subsystem: spring layouts are
// deterministic, stay in the unit square, and actually pull adjacent
// clusters together; LaNet-vi rings order shells densest-innermost over
// the exact CoreNumbers decomposition; the CSV plot keeps dense cores
// contiguous; OpenOrd's multilevel wrapper agrees with the spring core
// on the basics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "layout/csv_plot.h"
#include "layout/lanetvi_layout.h"
#include "layout/openord_layout.h"
#include "layout/spring_layout.h"
#include "metrics/kcore.h"

namespace graphscape {
namespace {

// Two 6-cliques joined by a single bridge edge.
Graph TwoCliques() {
  GraphBuilder builder(12);
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = a + 1; b < 6; ++b) {
      builder.AddEdge(a, b);
      builder.AddEdge(a + 6, b + 6);
    }
  }
  builder.AddEdge(5, 6);
  return builder.Build();
}

double Distance(const Point2& a, const Point2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

bool InUnitSquare(const Positions& pos) {
  for (const Point2& p : pos) {
    if (!(p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0)) return false;
  }
  return true;
}

TEST(SpringLayoutTest, DeterministicAndInsideUnitSquare) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(256, 3, &rng);
  SpringLayoutOptions options;
  options.iterations = 30;
  const Positions a = SpringLayout(g, options);
  const Positions b = SpringLayout(g, options);
  ASSERT_EQ(a.size(), g.NumVertices());
  EXPECT_TRUE(InUnitSquare(a));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_DOUBLE_EQ(a[v].x, b[v].x);
    EXPECT_DOUBLE_EQ(a[v].y, b[v].y);
  }
}

TEST(SpringLayoutTest, PullsCliquesTogether) {
  const Graph g = TwoCliques();
  SpringLayoutOptions options;
  options.iterations = 200;
  const Positions pos = SpringLayout(g, options);
  double intra = 0.0, inter = 0.0;
  uint32_t intra_pairs = 0, inter_pairs = 0;
  for (VertexId a = 0; a < 12; ++a) {
    for (VertexId b = a + 1; b < 12; ++b) {
      const bool same = (a < 6) == (b < 6);
      (same ? intra : inter) += Distance(pos[a], pos[b]);
      ++(same ? intra_pairs : inter_pairs);
    }
  }
  EXPECT_LT(intra / intra_pairs, inter / inter_pairs)
      << "clique members should sit closer to each other than to the "
         "other clique";
}

TEST(SpringLayoutTest, RefineKeepsSizeAndCentersSingleton) {
  GraphBuilder builder(1);
  const Graph g = builder.Build();
  Positions pos(1, Point2{0.1, 0.9});
  RefineSpringLayout(g, SpringLayoutOptions{}, &pos);
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_DOUBLE_EQ(pos[0].x, 0.5);
  EXPECT_DOUBLE_EQ(pos[0].y, 0.5);
}

TEST(LanetViTest, ReportsCoreDecompositionAndRingOrder) {
  const Graph g = TwoCliques();
  const LanetViLayoutResult result = LanetViLayout(g);
  EXPECT_EQ(result.core_of, CoreNumbers(g));
  uint32_t expected_max = 0;
  for (const uint32_t c : result.core_of)
    expected_max = std::max(expected_max, c);
  EXPECT_EQ(result.max_core, expected_max);
  EXPECT_TRUE(InUnitSquare(result.positions));

  // Heterogeneous shells (a BA graph with m attachments is all one
  // m-core): an 8-clique with a pendant chain spans cores 1..7.
  GraphBuilder shells(12);
  for (VertexId a = 0; a < 8; ++a)
    for (VertexId b = a + 1; b < 8; ++b) shells.AddEdge(a, b);
  shells.AddEdge(7, 8);
  shells.AddEdge(8, 9);
  shells.AddEdge(9, 10);
  shells.AddEdge(10, 11);
  const Graph ba = shells.Build();
  const LanetViLayoutResult lanetvi = LanetViLayout(ba);
  // Densest shell innermost: mean distance from center must grow as the
  // core number drops.
  const std::vector<uint32_t> cores = CoreNumbers(ba);
  uint32_t kmax = 0, kmin = 0xffffffffu;
  for (const uint32_t c : cores) {
    kmax = std::max(kmax, c);
    kmin = std::min(kmin, c);
  }
  ASSERT_GT(kmax, kmin);
  double top_radius = 0.0, bottom_radius = 0.0;
  uint32_t top_count = 0, bottom_count = 0;
  for (VertexId v = 0; v < ba.NumVertices(); ++v) {
    const double r = Distance(lanetvi.positions[v], Point2{0.5, 0.5});
    if (cores[v] == kmax) {
      top_radius += r;
      ++top_count;
    } else if (cores[v] == kmin) {
      bottom_radius += r;
      ++bottom_count;
    }
  }
  ASSERT_GT(top_count, 0u);
  ASSERT_GT(bottom_count, 0u);
  EXPECT_LT(top_radius / top_count, bottom_radius / bottom_count);
}

TEST(CsvPlotTest, OrderIsPermutationCarryingDensities) {
  Rng rng(5);
  const Graph g = BarabasiAlbert(128, 3, &rng);
  std::vector<double> density(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v)
    density[v] = static_cast<double>(g.Degree(v));
  const CsvPlot plot = BuildCsvPlot(g, density);
  ASSERT_EQ(plot.order.size(), g.NumVertices());
  ASSERT_EQ(plot.heights.size(), g.NumVertices());
  const std::set<VertexId> unique(plot.order.begin(), plot.order.end());
  EXPECT_EQ(unique.size(), g.NumVertices());
  for (uint32_t i = 0; i < plot.order.size(); ++i)
    EXPECT_DOUBLE_EQ(plot.heights[i], density[plot.order[i]]);
  EXPECT_DOUBLE_EQ(
      plot.max_height,
      *std::max_element(density.begin(), density.end()));
}

TEST(CsvPlotTest, DenseCoreDrainsContiguously) {
  // Clique {0..5} at density 2, everything else at 1: the greedy
  // densest-first expansion must emit the whole clique as one prefix.
  const Graph g = TwoCliques();
  std::vector<double> density(g.NumVertices(), 1.0);
  for (VertexId v = 0; v < 6; ++v) density[v] = 2.0;
  const CsvPlot plot = BuildCsvPlot(g, density);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_LT(plot.order[i], 6u)
        << "dense clique interrupted at curve position " << i;
  }
}

TEST(OpenOrdTest, DeterministicUnitSquareLayoutAtEveryScale) {
  // Small graphs skip coarsening entirely; larger ones exercise the
  // multilevel path (coarsen -> spring -> project -> refine).
  Rng rng(7);
  for (const uint32_t n : {32u, 600u}) {
    const Graph g = BarabasiAlbert(n, 3, &rng);
    OpenOrdOptions options;
    options.coarse_iterations = 40;
    options.refine_iterations = 10;
    options.min_coarse_vertices = 64;
    const Positions a = OpenOrdLayout(g, options);
    const Positions b = OpenOrdLayout(g, options);
    ASSERT_EQ(a.size(), g.NumVertices());
    EXPECT_TRUE(InUnitSquare(a));
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_DOUBLE_EQ(a[v].x, b[v].x);
      EXPECT_DOUBLE_EQ(a[v].y, b[v].y);
    }
  }
}

TEST(OpenOrdTest, MultilevelSeparatesCliquesLikeSpringCore) {
  const Graph g = TwoCliques();
  const Positions pos = OpenOrdLayout(g);
  double intra = 0.0, inter = 0.0;
  uint32_t intra_pairs = 0, inter_pairs = 0;
  for (VertexId a = 0; a < 12; ++a) {
    for (VertexId b = a + 1; b < 12; ++b) {
      const bool same = (a < 6) == (b < 6);
      (same ? intra : inter) += Distance(pos[a], pos[b]);
      ++(same ? intra_pairs : inter_pairs);
    }
  }
  EXPECT_LT(intra / intra_pairs, inter / inter_pairs);
}

}  // namespace
}  // namespace graphscape
