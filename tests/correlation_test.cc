// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Field-vs-field comparison: Pearson/Spearman against hand-computed
// values (including tie handling), the LCI/GCI neighborhood conventions,
// the outlier field's sign contract, top-peak Jaccard overlap, and the
// edge-to-vertex lift that gives KC-vs-KT pairs a shared support.

#include "scalar/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

Graph Star(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

TEST(CorrelationTest, PearsonMatchesHandComputation) {
  // Exact linear relations hit ±1; an affine shift changes nothing.
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{10.0, 30.0, 50.0, 70.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, up), 1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, down), -1.0);

  // Hand-computed non-trivial case: x = {1,2,3}, y = {1,3,2}:
  // cov = 1, var_x = 2, var_y = 2 -> r = 0.5.
  EXPECT_DOUBLE_EQ(
      PearsonCorrelation({1.0, 2.0, 3.0}, {1.0, 3.0, 2.0}), 0.5);
}

TEST(CorrelationTest, DegenerateWindowsAreNeutral) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 2.0}, {3.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(
      PearsonCorrelation({5.0, 5.0, 5.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0, 2.0}, {3.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(CorrelationTest, SpearmanSeesMonotoneThroughNonlinearity) {
  // Exponential growth is far from linear but perfectly rank-correlated.
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 10.0, 100.0, 1000.0, 10000.0};
  EXPECT_LT(PearsonCorrelation(x, y), 0.95);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(x, y), 1.0);
  // Ties get average ranks: x = {1,1,2}, y = {2,2,7} agree exactly.
  EXPECT_DOUBLE_EQ(
      SpearmanCorrelation({1.0, 1.0, 2.0}, {2.0, 2.0, 7.0}), 1.0);
}

TEST(CorrelationTest, LciFollowsNeighborhoodConventions) {
  // Star: the center's closed neighborhood is the whole graph; each
  // spoke's window has only 2 points -> neutral 0.
  const Graph g = Star(4);
  const VertexScalarField a("a", {0.0, 1.0, 2.0, 3.0, 4.0});
  const VertexScalarField b("b", {0.0, 10.0, 30.0, 50.0, 70.0});
  const std::vector<double> lci = LocalCorrelationIndices(g, a, b);
  ASSERT_EQ(lci.size(), 5u);
  EXPECT_DOUBLE_EQ(lci[0], PearsonCorrelation(a.Values(), b.Values()));
  for (VertexId v = 1; v <= 4; ++v) EXPECT_DOUBLE_EQ(lci[v], 0.0);

  // GCI is the mean LCI, and the outlier field is its negation.
  double mean = 0.0;
  for (const double v : lci) mean += v;
  mean /= lci.size();
  EXPECT_DOUBLE_EQ(Gci(g, a, b), mean);
  const VertexScalarField outlier = OutlierScoreField(g, a, b);
  for (VertexId v = 0; v < 5; ++v)
    EXPECT_DOUBLE_EQ(outlier[v], -lci[v]);
}

TEST(CorrelationTest, BridgeBetweenCliquesIsTheLciOutlier) {
  // Two 5-cliques joined through a low-degree bridge vertex: degree and
  // a clique-indicator field agree inside the cliques but disagree at
  // the bridge, so the bridge carries the lowest LCI — the paper's
  // outlier-terrain story in miniature.
  GraphBuilder builder(11);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(u, v);
  for (VertexId u = 5; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) builder.AddEdge(u, v);
  builder.AddEdge(4, 10);
  builder.AddEdge(10, 5);
  const Graph g = builder.Build();

  std::vector<double> degree(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) degree[v] = g.Degree(v);
  // High inside cliques, highest at the bridge: anti-correlated with
  // degree only around the bridge.
  std::vector<double> betweenness_proxy(g.NumVertices(), 1.0);
  betweenness_proxy[10] = 10.0;
  betweenness_proxy[4] = 5.0;
  betweenness_proxy[5] = 5.0;

  const VertexScalarField da("deg", degree);
  const VertexScalarField bb("btw", betweenness_proxy);
  const std::vector<double> lci = LocalCorrelationIndices(g, da, bb);
  uint32_t argmin = 0;
  for (VertexId v = 1; v < g.NumVertices(); ++v)
    if (lci[v] < lci[argmin]) argmin = v;
  EXPECT_EQ(argmin, 10u);
  EXPECT_LT(lci[10], 0.0);
}

TEST(CorrelationTest, GciOnMatchingStructuralFieldsIsStronglyPositive) {
  CollaborationOptions options;
  options.num_vertices = 400;
  options.num_planted_cores = 2;
  options.planted_core_size = 10;
  Rng rng(7);
  const Graph g = CollaborationNetwork(options, &rng);
  std::vector<double> degree(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) degree[v] = g.Degree(v);
  const VertexScalarField deg_field("degree", degree);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  const double gci = Gci(g, deg_field, kc);
  EXPECT_GT(gci, 0.3);  // degree and coreness rank neighborhoods alike
  EXPECT_LE(gci, 1.0);
}

TEST(CorrelationTest, TopPeakJaccardBoundsAndIdentity) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(300, 3, &rng);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(10));
  const VertexScalarField field("f", values);
  const SuperTree tree(BuildVertexScalarTree(g, field));
  EXPECT_DOUBLE_EQ(TopPeakJaccard(tree, tree, 5), 1.0);

  // Disjoint peak sets: shift which vertices peak.
  std::vector<double> shifted(values);
  for (VertexId v = 0; v < g.NumVertices(); ++v)
    shifted[v] = 9.0 - shifted[v];
  const SuperTree flipped(
      BuildVertexScalarTree(g, VertexScalarField("g", shifted)));
  const double j = TopPeakJaccard(tree, flipped, 3);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);

  // Mixing element spaces (a vertex tree vs an edge tree) is refused in
  // every build type — the ids would index the wrong space.
  std::vector<double> edge_values(static_cast<size_t>(g.NumEdges()), 1.0);
  const SuperTree edge_tree(
      BuildEdgeScalarTree(g, EdgeScalarField("e", edge_values)));
  EXPECT_THROW(TopPeakJaccard(tree, edge_tree, 3), std::invalid_argument);
}

TEST(CorrelationTest, LiftEdgeFieldTakesMaxIncidentValue) {
  // Path 0-1-2-3 with edge values {5, 1, 3} plus an isolated vertex 4.
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const EdgeScalarField kt("KT", {5.0, 1.0, 3.0});
  const VertexScalarField lifted = LiftEdgeFieldToVertices(g, kt);
  ASSERT_EQ(lifted.Size(), 5u);
  EXPECT_DOUBLE_EQ(lifted[0], 5.0);
  EXPECT_DOUBLE_EQ(lifted[1], 5.0);
  EXPECT_DOUBLE_EQ(lifted[2], 3.0);
  EXPECT_DOUBLE_EQ(lifted[3], 3.0);
  EXPECT_DOUBLE_EQ(lifted[4], 1.0);  // edge-free: the field minimum
}

}  // namespace
}  // namespace graphscape
