// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// QueryService + ServiceServer, both layers:
//
//   * HandleLine directly (no sockets) — every verb's payload against
//     the library call it wraps, with TREE byte-compared against
//     SerializeTreeArtifact, plus the full error taxonomy.
//   * The loopback integration — a real daemon on an ephemeral port,
//     real BlockingClients, concurrent traffic, oversized-line hangup,
//     and both service/* failpoint seams observed from the client side.

#include "service/service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/artifact_cache.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"
#include "scalar/tree_queries.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"

namespace graphscape {
namespace service {
namespace {

// Fresh, empty cache root per test (clears leftovers from a previous
// run of the same test) — the artifact_cache_test idiom.
std::string FreshRoot(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gs_service_" + name;
  for (const char* sub : {"/entries", "/quarantine", ""}) {
    const std::string dir = root + sub;
    const StatusOr<std::vector<std::string>> names = ListDir(dir);
    if (!names.ok()) continue;
    for (const std::string& file : names.value()) {
      (void)RemoveFile(dir + "/" + file);
    }
    ::rmdir(dir.c_str());
  }
  return root;
}

// One dataset ("ba-test") with a KC and a DEG field — two fields over
// the same element space, so CORRELATION has a legal pair.
TreeArtifact BuildArtifact(const Graph& g, const VertexScalarField& field) {
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildVertexScalarTree(g, field));
  artifact.field_name = field.Name();
  artifact.field_values = field.Values();
  return artifact;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = FreshRoot(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    Rng rng(7);
    const Graph g = BarabasiAlbert(150, 3, &rng);
    std::vector<uint32_t> degrees(g.NumVertices());
    for (uint32_t v = 0; v < g.NumVertices(); ++v) degrees[v] = g.Degree(v);
    kc_ = BuildArtifact(g, VertexScalarField::FromCounts("KC", CoreNumbers(g)));
    deg_ = BuildArtifact(g, VertexScalarField::FromCounts("DEG", degrees));

    StatusOr<ArtifactCache> cache = ArtifactCache::Open(root_);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    ASSERT_TRUE(cache.value().Put(ArtifactKey{"ba-test", "KC"}, kc_).ok());
    ASSERT_TRUE(cache.value().Put(ArtifactKey{"ba-test", "DEG"}, deg_).ok());

    StatusOr<std::unique_ptr<QueryService>> opened = QueryService::Open(root_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    service_ = std::move(opened).value();
  }

  // HandleLine always returns a complete frame; decode or die.
  ResponseFrame Answer(const std::string& line) {
    StatusOr<ResponseFrame> frame =
        DecodeResponseFrame(service_->HandleLine(line));
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok() ? std::move(frame).value() : ResponseFrame{};
  }

  std::string root_;
  TreeArtifact kc_;
  TreeArtifact deg_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(ServiceTest, TreeIsByteIdenticalToSerializeTreeArtifact) {
  const ResponseFrame frame = Answer("TREE ba-test KC");
  ASSERT_EQ(frame.wire_code, kWireOk);
  StatusOr<std::string> expected = SerializeTreeArtifact(kc_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(frame.payload, expected.value());
  // And the payload must round-trip back through the artifact parser.
  EXPECT_TRUE(DeserializeTreeArtifact(frame.payload).ok());
}

TEST_F(ServiceTest, PeaksMatchesPeaksAtLevel) {
  const double level = 2.5;
  const ResponseFrame frame = Answer("PEAKS ba-test KC 2.5");
  ASSERT_EQ(frame.wire_code, kWireOk);
  const std::vector<Peak> peaks = PeaksAtLevel(kc_.tree, level);
  std::string expected = StrPrintf("peaks %u",
                                   static_cast<unsigned>(peaks.size()));
  for (const Peak& peak : peaks) {
    expected += StrPrintf("\n%u %u %.17g", peak.super_node,
                          peak.member_count, peak.max_scalar);
  }
  expected += '\n';
  EXPECT_EQ(frame.payload, expected);
}

TEST_F(ServiceTest, TopPeaksMatchesTopPeaks) {
  const ResponseFrame frame = Answer("TOPPEAKS ba-test KC 5");
  ASSERT_EQ(frame.wire_code, kWireOk);
  const std::vector<Peak> peaks = TopPeaks(kc_.tree, 5);
  EXPECT_NE(frame.payload.find(StrPrintf(
                "peaks %u", static_cast<unsigned>(peaks.size()))),
            std::string::npos);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NE(frame.payload.find(StrPrintf("%u %u", peaks[0].super_node,
                                         peaks[0].member_count)),
            std::string::npos);
}

TEST_F(ServiceTest, MembersMatchesTreeMembers) {
  const ResponseFrame frame = Answer("MEMBERS ba-test KC 0");
  ASSERT_EQ(frame.wire_code, kWireOk);
  const MemberRange members = kc_.tree.Members(0);
  std::string expected = StrPrintf("members %u", members.size());
  for (uint32_t element : members) expected += StrPrintf("\n%u", element);
  expected += '\n';
  EXPECT_EQ(frame.payload, expected);
}

TEST_F(ServiceTest, MembersOutOfRangeIsInvalidArgument) {
  const std::string line =
      StrPrintf("MEMBERS ba-test KC %u", kc_.tree.NumNodes());
  const ResponseFrame frame = Answer(line);
  EXPECT_EQ(frame.wire_code, kWireInvalidArgument);
  EXPECT_NE(frame.payload.find("out of range"), std::string::npos);
}

TEST_F(ServiceTest, CorrelationOfAFieldWithItselfIsOne) {
  // DEG, not KC: BA(n, m) graphs are one solid m-core, so the KC field
  // is constant and its self-correlation is the degenerate 0, not 1.
  const ResponseFrame frame = Answer("CORRELATION ba-test DEG DEG");
  ASSERT_EQ(frame.wire_code, kWireOk);
  EXPECT_NE(frame.payload.find("pearson 1\n"), std::string::npos)
      << frame.payload;
  EXPECT_NE(frame.payload.find("spearman 1\n"), std::string::npos);
  EXPECT_NE(frame.payload.find("top_peak_jaccard10 1\n"), std::string::npos);
}

TEST_F(ServiceTest, CorrelationAcrossFieldsProducesAllThreeRows) {
  const ResponseFrame frame = Answer("CORRELATION ba-test KC DEG");
  ASSERT_EQ(frame.wire_code, kWireOk);
  for (const char* row : {"pearson ", "spearman ", "top_peak_jaccard10 "}) {
    EXPECT_NE(frame.payload.find(row), std::string::npos) << row;
  }
}

TEST_F(ServiceTest, MissingArtifactIsNotFound) {
  EXPECT_EQ(Answer("TREE nope KC").wire_code, kWireNotFound);
  EXPECT_EQ(Answer("PEAKS ba-test KT 1").wire_code, kWireNotFound);
}

TEST_F(ServiceTest, MalformedLineIsInvalidArgumentFrame) {
  EXPECT_EQ(Answer("FROB ba-test KC").wire_code, kWireInvalidArgument);
  EXPECT_EQ(Answer("TREE ba-test").wire_code, kWireInvalidArgument);
  EXPECT_EQ(Answer("PEAKS ba-test KC nan").wire_code, kWireInvalidArgument);
}

TEST_F(ServiceTest, TileRendersPpmAndSecondRequestHitsTheLru) {
  const ResponseFrame first = Answer("TILE ba-test KC 225 42 128 96");
  ASSERT_EQ(first.wire_code, kWireOk) << first.payload;
  EXPECT_EQ(first.payload.rfind("P6\n128 96\n255\n", 0), 0u);
  EXPECT_EQ(first.payload.size(),
            std::string("P6\n128 96\n255\n").size() + 3u * 128u * 96u);
  EXPECT_EQ(service_->stats().tiles_rendered, 1u);

  const ResponseFrame second = Answer("TILE ba-test KC 225 42 128 96");
  ASSERT_EQ(second.wire_code, kWireOk);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(service_->stats().tiles_rendered, 1u);  // served from the LRU
  EXPECT_GE(service_->tile_stats().hits, 1u);

  // A different camera is a different tile.
  const ResponseFrame third = Answer("TILE ba-test KC 45 42 128 96");
  ASSERT_EQ(third.wire_code, kWireOk);
  EXPECT_EQ(service_->stats().tiles_rendered, 2u);
}

TEST_F(ServiceTest, TileDimensionLimitsAreInvalidArgument) {
  EXPECT_EQ(Answer("TILE ba-test KC 225 42 0 96").wire_code,
            kWireInvalidArgument);
  EXPECT_EQ(Answer("TILE ba-test KC 225 42 128 99999").wire_code,
            kWireInvalidArgument);
}

TEST_F(ServiceTest, RenderFailpointSurfacesAsUnavailable) {
  failpoint::ScopedFailpoint armed("service/render", failpoint::Spec::Always());
  const ResponseFrame frame = Answer("TILE ba-test KC 135 42 128 96");
  EXPECT_EQ(frame.wire_code, kWireUnavailable);
  EXPECT_EQ(service_->stats().tiles_rendered, 0u);
}

TEST_F(ServiceTest, StatsReportsCountersAndCorpusKeys) {
  (void)Answer("TREE ba-test KC");
  (void)Answer("TREE nope KC");
  const ResponseFrame frame = Answer("STATS");
  ASSERT_EQ(frame.wire_code, kWireOk);
  EXPECT_NE(frame.payload.find("requests 3"), std::string::npos)
      << frame.payload;
  EXPECT_NE(frame.payload.find("errors 1"), std::string::npos);
  EXPECT_NE(frame.payload.find("artifacts_loaded 1"), std::string::npos);
  // The corpus-discovery lines the load generator depends on.
  EXPECT_NE(frame.payload.find("key ba-test/KC"), std::string::npos);
  EXPECT_NE(frame.payload.find("key ba-test/DEG"), std::string::npos);
}

// ------------------------------------------------- loopback transport --

class ServiceLoopbackTest : public ServiceTest {
 protected:
  void SetUp() override {
    ServiceTest::SetUp();
    ServiceServer::Options options;
    options.port = 0;  // ephemeral
    options.num_threads = 4;
    server_ = std::make_unique<ServiceServer>(service_.get(), options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<ServiceServer> server_;
};

TEST_F(ServiceLoopbackTest, TreeOverTheSocketIsByteIdentical) {
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<ResponseFrame> frame = client.Roundtrip("TREE ba-test KC");
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame.value().wire_code, kWireOk);
  StatusOr<std::string> expected = SerializeTreeArtifact(kc_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(frame.value().payload, expected.value());
}

TEST_F(ServiceLoopbackTest, OneConnectionServesManySequentialRequests) {
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (const char* line : {"STATS", "PEAKS ba-test KC 1.5",
                           "TOPPEAKS ba-test DEG 3", "MEMBERS ba-test KC 0",
                           "CORRELATION ba-test KC DEG"}) {
    StatusOr<ResponseFrame> frame = client.Roundtrip(line);
    ASSERT_TRUE(frame.ok()) << line << ": " << frame.status().ToString();
    EXPECT_EQ(frame.value().wire_code, kWireOk) << line;
  }
}

TEST_F(ServiceLoopbackTest, ServerErrorsDoNotPoisonTheConnection) {
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<ResponseFrame> bad = client.Roundtrip("TREE nope KC");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().wire_code, kWireNotFound);
  // The very same connection keeps working afterwards.
  StatusOr<ResponseFrame> good = client.Roundtrip("STATS");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().wire_code, kWireOk);
}

TEST_F(ServiceLoopbackTest, OversizedLineGetsOneErrorFrameThenHangup) {
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<ResponseFrame> frame =
      client.Roundtrip(std::string(kMaxRequestLine + 10, 'x'));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().wire_code, kWireInvalidArgument);
  // The oversized line cannot be resynchronized, so the server hung up.
  StatusOr<ResponseFrame> after = client.Roundtrip("STATS");
  EXPECT_FALSE(after.ok());
}

TEST_F(ServiceLoopbackTest, AcceptFailpointAnswersUnavailableAndCloses) {
  failpoint::ScopedFailpoint armed("service/accept", failpoint::Spec::Always());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<ResponseFrame> frame = client.Roundtrip("STATS");
  // The server wrote one UNAVAILABLE frame at accept time and closed;
  // depending on timing the client sees that frame or the hangup.
  if (frame.ok()) {
    EXPECT_EQ(frame.value().wire_code, kWireUnavailable);
  }
  EXPECT_GE(armed.fire_count(), 1u);
}

TEST_F(ServiceLoopbackTest, ConcurrentClientsAllGetConsistentAnswers) {
  StatusOr<std::string> expected_bytes = SerializeTreeArtifact(kc_);
  ASSERT_TRUE(expected_bytes.ok());
  const std::string& expected = expected_bytes.value();

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 25; ++i) {
        const int pick = (t + i) % 3;
        const std::string line = pick == 0   ? "TREE ba-test KC"
                                 : pick == 1 ? "PEAKS ba-test DEG 2"
                                             : "TILE ba-test KC 225 42 96 64";
        StatusOr<ResponseFrame> frame = client.Roundtrip(line);
        if (!frame.ok() || frame.value().wire_code != kWireOk) {
          ++failures;
          continue;
        }
        if (pick == 0 && frame.value().payload != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  const ServiceStats stats = service_->stats();
  EXPECT_EQ(stats.requests, 6u * 25u);
  EXPECT_EQ(stats.errors, 0u);
  // All 150 requests touched one artifact pair loaded exactly once each.
  EXPECT_LE(stats.artifacts_loaded, 2u);
}

}  // namespace
}  // namespace service
}  // namespace graphscape
