// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// TileLruCache semantics, pinned exactly as service/tile_cache.h
// promises them: MRU/LRU ordering (Get bumps, Put inserts at front),
// byte-ledger accounting through insert/replace/evict, the
// oversize-rejection rule, and key canonicalization.

#include "service/tile_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace graphscape {
namespace service {
namespace {

std::string Tile(size_t bytes, char fill) { return std::string(bytes, fill); }

TEST(TileKeyTest, CanonicalIsDeterministicAndCollisionResistant) {
  TileKey key;
  key.dataset = "ba-demo";
  key.field = "KC";
  key.azimuth_deg = 225.0;
  key.elevation_deg = 42.0;
  key.width = 128;
  key.height = 96;
  EXPECT_EQ(key.Canonical(), key.Canonical());

  TileKey other = key;
  other.azimuth_deg = 225.5;
  EXPECT_NE(key.Canonical(), other.Canonical());
  other = key;
  other.width = 129;
  EXPECT_NE(key.Canonical(), other.Canonical());
  other = key;
  other.field = "DEG";
  EXPECT_NE(key.Canonical(), other.Canonical());

  // Doubles that differ below float precision must still key apart
  // (%.17g round-trips every distinct double).
  other = key;
  other.elevation_deg = 42.0 + 1e-13;
  EXPECT_NE(key.Canonical(), other.Canonical());
}

TEST(TileLruCacheTest, GetMissThenHitAndByteLedger) {
  TileLruCache cache(1024);
  std::string out;
  EXPECT_FALSE(cache.Get("a", &out));
  cache.Put("a", Tile(100, 'a'));
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, Tile(100, 'a'));

  const TileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.current_bytes, 100u);
  EXPECT_EQ(stats.current_tiles, 1u);
}

TEST(TileLruCacheTest, PutEvictsFromLruEndUntilBudgetFits) {
  TileLruCache cache(300);
  cache.Put("a", Tile(100, 'a'));
  cache.Put("b", Tile(100, 'b'));
  cache.Put("c", Tile(100, 'c'));
  EXPECT_EQ(cache.KeysMruToLru(),
            (std::vector<std::string>{"c", "b", "a"}));

  // A fourth tile exceeds the budget by exactly one entry: "a" (the LRU
  // tail) goes, nothing else.
  cache.Put("d", Tile(100, 'd'));
  EXPECT_EQ(cache.KeysMruToLru(),
            (std::vector<std::string>{"d", "c", "b"}));
  std::string out;
  EXPECT_FALSE(cache.Get("a", &out));

  const TileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.current_bytes, 300u);
  EXPECT_EQ(stats.current_tiles, 3u);
}

TEST(TileLruCacheTest, OneLargePutCanEvictSeveralSmallEntries) {
  TileLruCache cache(300);
  cache.Put("a", Tile(100, 'a'));
  cache.Put("b", Tile(100, 'b'));
  cache.Put("c", Tile(100, 'c'));
  cache.Put("big", Tile(150, 'x'));
  // 150 fits only after both "a" and "b" leave (oldest first).
  EXPECT_EQ(cache.KeysMruToLru(),
            (std::vector<std::string>{"big", "c"}));
  const TileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.current_bytes, 250u);
}

TEST(TileLruCacheTest, GetBumpsToMruAndChangesEvictionVictim) {
  TileLruCache cache(300);
  cache.Put("a", Tile(100, 'a'));
  cache.Put("b", Tile(100, 'b'));
  cache.Put("c", Tile(100, 'c'));
  std::string out;
  ASSERT_TRUE(cache.Get("a", &out));  // "a" is now MRU; "b" is the tail
  EXPECT_EQ(cache.KeysMruToLru(),
            (std::vector<std::string>{"a", "c", "b"}));
  cache.Put("d", Tile(100, 'd'));
  EXPECT_EQ(cache.KeysMruToLru(),
            (std::vector<std::string>{"d", "a", "c"}));
  EXPECT_FALSE(cache.Get("b", &out));
}

TEST(TileLruCacheTest, ReplacingAKeyUpdatesBytesNotTileCount) {
  TileLruCache cache(1024);
  cache.Put("a", Tile(100, 'a'));
  cache.Put("a", Tile(250, 'A'));
  std::string out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, Tile(250, 'A'));
  const TileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.current_bytes, 250u);
  EXPECT_EQ(stats.current_tiles, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(TileLruCacheTest, OversizeTileIsRejectedAndEvictsNothing) {
  TileLruCache cache(200);
  cache.Put("a", Tile(100, 'a'));
  cache.Put("huge", Tile(201, 'h'));
  std::string out;
  EXPECT_FALSE(cache.Get("huge", &out));
  ASSERT_TRUE(cache.Get("a", &out));  // the resident entry survived
  const TileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected_oversize, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.current_bytes, 100u);
  EXPECT_EQ(stats.current_tiles, 1u);
}

TEST(TileLruCacheTest, ExactBudgetFitIsNotOversize) {
  TileLruCache cache(200);
  cache.Put("exact", Tile(200, 'e'));
  std::string out;
  EXPECT_TRUE(cache.Get("exact", &out));
  EXPECT_EQ(cache.stats().rejected_oversize, 0u);
}

// The service renders outside the cache lock, so concurrent Get/Put on
// overlapping keys is the normal case, not an edge case. This is a
// smoke test for TSan (the CI matrix runs tier1 under -fsanitize=thread).
TEST(TileLruCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  TileLruCache cache(10 * 1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 16);
        std::string out;
        if (!cache.Get(key, &out)) {
          cache.Put(key, Tile(512, static_cast<char>('a' + (i % 26))));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TileCacheStats stats = cache.stats();
  EXPECT_LE(stats.current_bytes, 10u * 1024u);
  EXPECT_EQ(stats.current_tiles, cache.KeysMruToLru().size());
  EXPECT_EQ(stats.hits + stats.misses, 4u * 500u);
}

}  // namespace
}  // namespace service
}  // namespace graphscape
