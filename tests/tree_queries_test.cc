// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Analysis queries vs brute-force oracles. Members/SubtreeMembers are
// checked against NodeOf/ancestor-walk scans; CountComponentsAtLevel and
// PeaksAtLevel against BFS over the superlevel subgraph — on ER, BA and
// collaboration graphs, for vertex AND edge trees. The hand-built cases
// pin the orientation-critical behavior: disconnected dense cores must
// stay distinct peaks (the query a minima-rooted tree cannot answer).

#include "scalar/tree_queries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/edge_index.h"
#include "graph/graph_builder.h"
#include "metrics/kcore.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"

namespace graphscape {
namespace {

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

VertexScalarField RandomField(uint32_t n, uint64_t seed, uint32_t distinct) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(distinct));
  return VertexScalarField("f", std::move(values));
}

// Oracle: components of the superlevel subgraph {v : f(v) >= level} via
// BFS, as sorted member sets.
std::vector<std::vector<uint32_t>> VertexSuperlevelComponents(
    const Graph& g, const std::vector<double>& values, double level) {
  std::vector<char> in(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) in[v] = values[v] >= level;
  std::vector<char> seen(g.NumVertices(), 0);
  std::vector<std::vector<uint32_t>> components;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if (!in[s] || seen[s]) continue;
    std::vector<uint32_t> component, frontier{s};
    seen[s] = 1;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      component.push_back(v);
      for (const VertexId u : g.Neighbors(v)) {
        if (in[u] && !seen[u]) {
          seen[u] = 1;
          frontier.push_back(u);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

// Oracle for edge trees: components of {e : f(e) >= level} where two
// edges are adjacent iff they share an endpoint.
std::vector<std::vector<uint32_t>> EdgeSuperlevelComponents(
    const Graph& g, const std::vector<double>& values, double level) {
  const EdgeIndex index(g);
  const uint32_t m = index.NumEdges();
  std::vector<std::vector<uint32_t>> incident(g.NumVertices());
  for (uint32_t e = 0; e < m; ++e) {
    incident[index.U(e)].push_back(e);
    incident[index.V(e)].push_back(e);
  }
  std::vector<char> seen(m, 0);
  std::vector<std::vector<uint32_t>> components;
  for (uint32_t s = 0; s < m; ++s) {
    if (values[s] < level || seen[s]) continue;
    std::vector<uint32_t> component, frontier{s};
    seen[s] = 1;
    while (!frontier.empty()) {
      const uint32_t e = frontier.back();
      frontier.pop_back();
      component.push_back(e);
      for (const VertexId endpoint : {index.U(e), index.V(e)}) {
        for (const uint32_t other : incident[endpoint]) {
          if (values[other] >= level && !seen[other]) {
            seen[other] = 1;
            frontier.push_back(other);
          }
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::vector<std::vector<uint32_t>> PeakMemberSets(const SuperTree& tree,
                                                  double level) {
  std::vector<std::vector<uint32_t>> sets;
  for (const Peak& peak : PeaksAtLevel(tree, level)) {
    const MemberRange range = tree.SubtreeMembers(peak.super_node);
    std::vector<uint32_t> members(range.begin(), range.end());
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members.size(), peak.member_count);
    sets.push_back(std::move(members));
  }
  std::sort(sets.begin(), sets.end());
  return sets;
}

void ExpectQueriesMatchOracle(const Graph& g, const SuperTree& tree,
                              const std::vector<double>& element_values,
                              bool edge_tree) {
  // Members == the NodeOf fibration, ascending.
  std::vector<std::vector<uint32_t>> expected_members(tree.NumNodes());
  for (uint32_t e = 0; e < tree.NumElements(); ++e)
    expected_members[tree.NodeOf(e)].push_back(e);
  uint64_t total = 0;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    const MemberRange range = tree.Members(node);
    ASSERT_EQ(range.size(), expected_members[node].size()) << "node " << node;
    for (uint32_t i = 0; i < range.size(); ++i)
      EXPECT_EQ(range[i], expected_members[node][i]);
    total += range.size();
  }
  EXPECT_EQ(total, tree.NumElements());

  // SubtreeMembers == union of Members over the ancestor-closed set.
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    std::set<uint32_t> expected;
    for (uint32_t e = 0; e < tree.NumElements(); ++e) {
      for (uint32_t walk = tree.NodeOf(e); walk != kNoParent;
           walk = tree.Parent(walk)) {
        if (walk == node) {
          expected.insert(e);
          break;
        }
      }
    }
    const MemberRange range = tree.SubtreeMembers(node);
    std::set<uint32_t> actual(range.begin(), range.end());
    EXPECT_EQ(actual, expected) << "node " << node;
  }

  // Level queries vs BFS over the superlevel subgraph, at every distinct
  // value plus a level above the maximum (empty superlevel set).
  std::set<double> levels(element_values.begin(), element_values.end());
  double above = levels.empty() ? 1.0 : (*levels.rbegin() + 1.0);
  levels.insert(above);
  for (const double level : levels) {
    const std::vector<std::vector<uint32_t>> oracle =
        edge_tree ? EdgeSuperlevelComponents(g, element_values, level)
                  : VertexSuperlevelComponents(g, element_values, level);
    EXPECT_EQ(CountComponentsAtLevel(tree, level), oracle.size())
        << "level " << level;
    std::vector<std::vector<uint32_t>> sorted_oracle(oracle);
    std::sort(sorted_oracle.begin(), sorted_oracle.end());
    EXPECT_EQ(PeakMemberSets(tree, level), sorted_oracle)
        << "level " << level;
  }
}

TEST(TreeQueriesTest, VertexQueriesMatchOraclesOnThreeGraphFamilies) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Graph ba = BarabasiAlbert(80, 3, &rng);
    const Graph er = ErdosRenyi(90, 0.05, &rng);
    CollaborationOptions options;
    options.num_vertices = 100;
    options.num_planted_cores = 2;
    options.planted_core_size = 8;
    const Graph collab = CollaborationNetwork(options, &rng);
    for (const Graph* g : {&ba, &er, &collab}) {
      const VertexScalarField field =
          RandomField(g->NumVertices(), seed * 13, 6);
      const SuperTree tree(BuildVertexScalarTree(*g, field));
      ExpectQueriesMatchOracle(*g, tree, field.Values(), false);
    }
  }
}

TEST(TreeQueriesTest, EdgeQueriesMatchOraclesOnThreeGraphFamilies) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    Rng rng(seed);
    const Graph ba = BarabasiAlbert(60, 3, &rng);
    const Graph er = ErdosRenyi(70, 0.05, &rng);
    CollaborationOptions options;
    options.num_vertices = 80;
    options.num_planted_cores = 1;
    options.planted_core_size = 6;
    const Graph collab = CollaborationNetwork(options, &rng);
    for (const Graph* g : {&ba, &er, &collab}) {
      Rng field_rng(seed * 17);
      std::vector<double> values(static_cast<size_t>(g->NumEdges()));
      for (auto& v : values)
        v = static_cast<double>(field_rng.UniformInt(5));
      const EdgeScalarField field("f", values);
      const SuperTree tree(BuildEdgeScalarTree(*g, field));
      ExpectQueriesMatchOracle(*g, tree, values, true);
    }
  }
}

TEST(TreeQueriesTest, DisconnectedDenseCoresStayDistinctPeaks) {
  // The orientation-critical case: two vertices at the maximum separated
  // by a valley. A minima-rooted (join) tree contracts both maxima into
  // one same-value chain; the superlevel tree must report two peaks.
  const Graph g = Path(3);
  const VertexScalarField field("f", {1.0, 0.0, 1.0});
  const SuperTree tree(BuildVertexScalarTree(g, field));
  EXPECT_EQ(CountComponentsAtLevel(tree, 1.0), 2u);
  const auto peaks = PeaksAtLevel(tree, 1.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].member_count, 1u);
  EXPECT_EQ(peaks[1].member_count, 1u);
  EXPECT_EQ(CountComponentsAtLevel(tree, 0.0), 1u);
}

TEST(TreeQueriesTest, PlantedCoresShowUpAsTopPeaks) {
  // Two disjoint 12-cliques joined only through a sparse path drive the
  // K-Core maximum; both must surface as separate peaks at the top
  // level, each resting on the sparser foundation (a parent below the
  // level). This is Fig. 6(c)'s structural readout in miniature.
  GraphBuilder builder(26);
  for (VertexId u = 0; u < 12; ++u)
    for (VertexId v = u + 1; v < 12; ++v) builder.AddEdge(u, v);
  for (VertexId u = 12; u < 24; ++u)
    for (VertexId v = u + 1; v < 24; ++v) builder.AddEdge(u, v);
  builder.AddEdge(11, 24);
  builder.AddEdge(24, 25);
  builder.AddEdge(25, 12);
  const Graph g = builder.Build();
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  EXPECT_DOUBLE_EQ(kc.MaxValue(), 11.0);
  const SuperTree tree(BuildVertexScalarTree(g, kc));
  const auto peaks = PeaksAtLevel(tree, kc.MaxValue());
  ASSERT_EQ(peaks.size(), 2u);
  for (const Peak& peak : peaks) {
    EXPECT_EQ(peak.member_count, 12u);
    EXPECT_EQ(peak.max_scalar, kc.MaxValue());
    EXPECT_NE(tree.Parent(peak.super_node), kNoParent);
  }
  EXPECT_EQ(CountComponentsAtLevel(tree, 2.0), 1u);
}

TEST(TreeQueriesTest, PeaksAreSortedBySummitThenSize) {
  // Path with three plateaus at heights 3, 2, 3 (sizes 1, 2, 3) above a
  // ground level of 0.
  const Graph g = Path(9);
  const VertexScalarField field(
      "f", {3.0, 0.0, 2.0, 2.0, 0.0, 3.0, 3.0, 3.0, 0.0});
  const SuperTree tree(BuildVertexScalarTree(g, field));
  const auto peaks = PeaksAtLevel(tree, 2.0);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].max_scalar, 3.0);
  EXPECT_EQ(peaks[0].member_count, 3u);  // summit ties: bigger first
  EXPECT_EQ(peaks[1].max_scalar, 3.0);
  EXPECT_EQ(peaks[1].member_count, 1u);
  EXPECT_EQ(peaks[2].max_scalar, 2.0);
  EXPECT_EQ(peaks[2].member_count, 2u);
}

TEST(TreeQueriesTest, TopPeaksRanksLeavesByValue) {
  const Graph g = Path(9);
  const VertexScalarField field(
      "f", {3.0, 0.0, 2.0, 2.0, 0.0, 5.0, 5.0, 5.0, 0.0});
  const SuperTree tree(BuildVertexScalarTree(g, field));
  const auto top = TopPeaks(tree, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].max_scalar, 5.0);
  EXPECT_EQ(top[0].member_count, 3u);
  EXPECT_EQ(top[1].max_scalar, 3.0);
  EXPECT_EQ(top[1].member_count, 1u);
  // k beyond the leaf count returns every leaf.
  EXPECT_EQ(TopPeaks(tree, 100).size(), 3u);
  EXPECT_TRUE(TopPeaks(tree, 0).empty());
}

TEST(TreeQueriesTest, MemberIndexIsSharedAcrossCopies) {
  Rng rng(11);
  const Graph g = BarabasiAlbert(200, 3, &rng);
  const VertexScalarField field = RandomField(g.NumVertices(), 3, 8);
  const SuperTree tree(BuildVertexScalarTree(g, field));
  const TreeMemberIndex* index = &tree.MemberIndex();
  const SuperTree copy = tree;  // copies share the built index
  EXPECT_EQ(&copy.MemberIndex(), index);
}

}  // namespace
}  // namespace graphscape
