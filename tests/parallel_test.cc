// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The determinism contract of the parallel construction engine
// (docs/PARALLELISM.md), pinned:
//
//  * pool primitives — every index visited exactly once, lane ids dense,
//    fixed-order reduction;
//  * parallel tree builds — byte-identical TreeArtifact serialization vs
//    the sequential builds for thread counts {1, 2, 4, 7} on the oracle
//    graph families, including adversarial chunkings (ties pinned at
//    chunk edges, single-chunk, more requested chunks than elements);
//  * parallel metrics / layout / raster — exactly equal to their
//    sequential counterparts for every width.
//
// Everything here runs under the CI TSan leg with GRAPHSCAPE_THREADS=4,
// which is what actually exercises the pool's publication/completion
// protocol under instrumentation.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "community/bigclam.h"
#include "community/roles.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "layout/spring_layout.h"
#include "query/nn_graph.h"
#include "query/table.h"
#include "metrics/clustering.h"
#include "metrics/ktruss.h"
#include "metrics/pagerank.h"
#include "metrics/triangles.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "scalar/tree_core.h"
#include "scalar/tree_io.h"
#include "terrain/terrain_layout.h"
#include "terrain/terrain_raster.h"

namespace graphscape {
namespace {

// The thread counts the acceptance criteria pin: sequential fallback, a
// power of two, and an odd width that never divides n evenly.
const uint32_t kWidths[] = {1, 2, 4, 7};

// ---------------------------------------------------------------- pool --

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr uint64_t kCount = 10007;  // prime: never divides into blocks
  for (const uint32_t width : kWidths) {
    std::vector<std::atomic<uint32_t>> hits(kCount);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, kCount, {width, 64},
                [&](uint64_t i) { hits[i].fetch_add(1); });
    for (uint64_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " width " << width;
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  uint32_t calls = 0;
  ParallelFor(5, 5, {4, 0}, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // grain far above count: collapses to one inline block.
  std::atomic<uint32_t> hits{0};
  ParallelFor(0, 3, {4, 1024}, [&](uint64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3u);
}

TEST(ParallelForBlocksTest, LaneIdsAreDense) {
  constexpr uint64_t kBlocks = 64;
  const uint32_t width = 4;
  const uint32_t lanes = EffectiveLanes({width, 1}, kBlocks);
  ASSERT_GE(lanes, 1u);
  ASSERT_LE(lanes, width);
  std::vector<std::atomic<uint32_t>> blocks_run(kBlocks);
  for (auto& b : blocks_run) b.store(0);
  std::atomic<uint32_t> max_lane{0};
  ParallelForBlocks(kBlocks, {width, 0}, [&](uint64_t block, uint32_t lane) {
    blocks_run[block].fetch_add(1);
    uint32_t seen = max_lane.load();
    while (lane > seen && !max_lane.compare_exchange_weak(seen, lane)) {
    }
  });
  for (uint64_t b = 0; b < kBlocks; ++b) ASSERT_EQ(blocks_run[b].load(), 1u);
  EXPECT_LT(max_lane.load(), lanes);
}

TEST(ParallelReduceTest, SumMatchesSequentialForEveryWidth) {
  constexpr uint64_t kCount = 4999;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kCount; ++i) expected += i * i;
  for (const uint32_t width : kWidths) {
    const uint64_t got = ParallelReduce<uint64_t>(
        0, kCount, {width, 128}, 0,
        [](uint64_t i, uint64_t* acc) { *acc += i * i; },
        [](uint64_t total, uint64_t partial) { return total + partial; });
    EXPECT_EQ(got, expected) << "width " << width;
  }
}

TEST(EffectiveLanesTest, ClampsToBlocksAndCeiling) {
  EXPECT_EQ(EffectiveLanes({1, 1}, 100), 1u);
  EXPECT_EQ(EffectiveLanes({8, 1}, 3), 3u);   // never more lanes than blocks
  EXPECT_EQ(EffectiveLanes({8, 1}, 0), 0u);   // empty range: no lanes
  EXPECT_LE(EffectiveLanes({0, 1}, 1u << 20), kMaxThreads);
}

TEST(ParallelSortTest, MatchesSequentialSortSweepOrder) {
  // Above the parallel-sort threshold, with heavy ties to stress the
  // id tie-break through the co-rank merges.
  constexpr uint32_t kCount = 40000;
  Rng rng(123);
  std::vector<double> values(kCount);
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(97));
  std::vector<uint32_t> seq_order, seq_rank;
  tree_core::SortSweepOrder(values, &seq_order, &seq_rank);
  for (const uint32_t width : kWidths) {
    std::vector<uint32_t> order, rank;
    tree_core::ParallelSortSweepOrder(values, &order, &rank, {width, 0});
    EXPECT_EQ(order, seq_order) << "width " << width;
    EXPECT_EQ(rank, seq_rank) << "width " << width;
  }
}

TEST(MakeSweepChunksTest, BoundsAreMonotoneAndClamped) {
  const std::vector<uint64_t> one = tree_core::MakeSweepChunks(10, 4, 100);
  ASSERT_EQ(one.size(), 2u);  // min_chunk caps the count at 1
  EXPECT_EQ(one.front(), 0u);
  EXPECT_EQ(one.back(), 10u);
  // More requested chunks than elements: clamped to n single-element
  // chunks, never an empty-range crash.
  const std::vector<uint64_t> tiny = tree_core::MakeSweepChunks(3, 7, 1);
  ASSERT_EQ(tiny.size(), 4u);
  for (size_t i = 0; i + 1 < tiny.size(); ++i) EXPECT_LE(tiny[i], tiny[i + 1]);
  const std::vector<uint64_t> empty = tree_core::MakeSweepChunks(0, 7, 1);
  ASSERT_EQ(empty.size(), 2u);
  EXPECT_EQ(empty.back(), 0u);
}

// ------------------------------------------------- oracle graph families --

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph Star(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

Graph Collab(uint32_t n) {
  CollaborationOptions opts;
  opts.num_vertices = n;
  opts.num_planted_cores = 2;
  opts.planted_core_size = 12;
  Rng rng(11);
  return CollaborationNetwork(opts, &rng);
}

std::vector<double> DistinctField(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble();
  return values;
}

std::vector<double> PlateauField(uint32_t n, uint32_t levels, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(levels));
  return values;
}

// Serialized bytes of the full artifact (SuperTree + field), the same
// byte-identity oracle the cross-compiler CI job uses.
std::string ArtifactBytes(const ScalarTree& tree, const std::string& name,
                          const std::vector<double>& field_values) {
  TreeArtifact artifact;
  artifact.tree = SuperTree(tree);
  artifact.field_name = name;
  artifact.field_values = field_values;
  const auto bytes = SerializeTreeArtifact(artifact);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

// Asserts BuildVertexScalarTreeParallel == BuildVertexScalarTree at the
// TreeArtifact byte level for all pinned widths, plus raw parent/order/
// root equality (sharper failure messages than a byte diff).
void ExpectVertexTreeIdentical(const Graph& g,
                               const std::vector<double>& values,
                               uint64_t grain) {
  const VertexScalarField field("f", values);
  const ScalarTree seq = BuildVertexScalarTree(g, field);
  const std::string seq_bytes = ArtifactBytes(seq, "f", values);
  for (const uint32_t width : kWidths) {
    const ScalarTree par =
        BuildVertexScalarTreeParallel(g, field, {width, grain});
    EXPECT_EQ(par.Parents(), seq.Parents()) << "width " << width;
    EXPECT_EQ(par.SweepOrder(), seq.SweepOrder()) << "width " << width;
    EXPECT_EQ(par.NumRoots(), seq.NumRoots()) << "width " << width;
    EXPECT_EQ(ArtifactBytes(par, "f", values), seq_bytes)
        << "width " << width << " grain " << grain;
  }
}

void ExpectEdgeTreeIdentical(const Graph& g,
                             const std::vector<double>& values,
                             uint64_t grain) {
  const EdgeScalarField field("f", values);
  const ScalarTree seq = BuildEdgeScalarTree(g, field);
  const std::string seq_bytes = ArtifactBytes(seq, "f", values);
  for (const uint32_t width : kWidths) {
    const ScalarTree par =
        BuildEdgeScalarTreeParallel(g, field, {width, grain});
    EXPECT_EQ(par.Parents(), seq.Parents()) << "width " << width;
    EXPECT_EQ(par.SweepOrder(), seq.SweepOrder()) << "width " << width;
    EXPECT_EQ(par.NumRoots(), seq.NumRoots()) << "width " << width;
    EXPECT_EQ(ArtifactBytes(par, "f", values), seq_bytes)
        << "width " << width << " grain " << grain;
  }
}

// ------------------------------------ vertex tree thread-sweep identity --

TEST(ParallelVertexTreeTest, PathFamilies) {
  const Graph g = Path(257);
  // Two-peak profile: merges happen at a saddle mid-path.
  std::vector<double> two_peak(257);
  for (uint32_t v = 0; v < 257; ++v) {
    const double a = 100.0 - std::abs(60.0 - static_cast<double>(v));
    const double b = 95.0 - std::abs(190.0 - static_cast<double>(v));
    two_peak[v] = a > b ? a : b;
  }
  ExpectVertexTreeIdentical(g, two_peak, 16);
  ExpectVertexTreeIdentical(g, DistinctField(257, 5), 16);
}

TEST(ParallelVertexTreeTest, StarFamilies) {
  const Graph g = Star(64);
  ExpectVertexTreeIdentical(g, DistinctField(65, 9), 8);
  ExpectVertexTreeIdentical(g, PlateauField(65, 3, 9), 8);
}

TEST(ParallelVertexTreeTest, BarabasiAlbertDistinctAndPlateau) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(4096, 4, &rng);
  ExpectVertexTreeIdentical(g, DistinctField(4096, 7), 0);  // default grain
  ExpectVertexTreeIdentical(g, DistinctField(4096, 7), 256);
  // Integer plateau field — the K-Core-like shape with massive ties.
  ExpectVertexTreeIdentical(g, PlateauField(4096, 5, 13), 256);
}

TEST(ParallelVertexTreeTest, ErdosRenyiWithIsolatedVertices) {
  Rng rng(3);
  // Sparse: multiple components and isolated vertices (several roots).
  const Graph g = ErdosRenyi(2048, 0.0008, &rng);
  ExpectVertexTreeIdentical(g, DistinctField(2048, 21), 128);
}

TEST(ParallelVertexTreeTest, CollaborationNetwork) {
  const Graph g = Collab(2000);
  ExpectVertexTreeIdentical(g, DistinctField(g.NumVertices(), 17), 200);
  ExpectVertexTreeIdentical(g, PlateauField(g.NumVertices(), 4, 17), 200);
}

// ------------------------------------------- adversarial chunk shapes --

TEST(ParallelVertexTreeTest, AdversarialChunkBoundaries) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(331, 3, &rng);  // prime vertex count
  // Constant field: EVERY boundary is a tie boundary; the rank order is
  // pure id order and plateaus span every chunk edge.
  ExpectVertexTreeIdentical(g, std::vector<double>(331, 1.0), 1);
  // Two-value field with grain 1: maximal chunk count, ties everywhere.
  ExpectVertexTreeIdentical(g, PlateauField(331, 2, 29), 1);
  // grain 3 on a prime-sized graph: ragged last chunk.
  ExpectVertexTreeIdentical(g, DistinctField(331, 31), 3);
}

TEST(ParallelVertexTreeTest, DegenerateSizes) {
  // Empty graph.
  ExpectVertexTreeIdentical(GraphBuilder(0).Build(), {}, 1);
  // Single vertex (no edges).
  ExpectVertexTreeIdentical(GraphBuilder(1).Build(), {0.5}, 1);
  // Fewer elements than any requested width: 7 threads, 3 vertices.
  ExpectVertexTreeIdentical(Path(3), {1.0, 3.0, 2.0}, 1);
}

TEST(ParallelVertexTreeTest, SingleChunkDegradesToSequentialSweep) {
  // min_chunk far above n forces exactly one chunk for every width.
  Rng rng(42);
  const Graph g = BarabasiAlbert(512, 4, &rng);
  ExpectVertexTreeIdentical(g, DistinctField(512, 41), 1u << 20);
}

// -------------------------------------- edge tree thread-sweep identity --

TEST(ParallelEdgeTreeTest, OracleFamilies) {
  {
    const Graph g = Path(129);
    ExpectEdgeTreeIdentical(g, DistinctField(g.NumEdges(), 5), 16);
    // Constant field: the whole sweep is one plateau chain.
    ExpectEdgeTreeIdentical(g, std::vector<double>(g.NumEdges(), 2.0), 1);
  }
  {
    Rng rng(1);
    const Graph g = BarabasiAlbert(2048, 4, &rng);
    ExpectEdgeTreeIdentical(g, DistinctField(g.NumEdges(), 2), 0);
    ExpectEdgeTreeIdentical(g, PlateauField(g.NumEdges(), 6, 2), 64);
  }
}

TEST(ParallelEdgeTreeTest, TrussnessFieldOnCollaborationGraph) {
  const Graph g = Collab(1200);
  const EdgeScalarField field = TrussnessEdgeField(g);
  ExpectEdgeTreeIdentical(g, field.Values(), 128);
}

// ------------------------------------------------------ parallel metrics --

TEST(ParallelMetricsTest, TriangleCountsMatchExactly) {
  const Graph g = Collab(3000);
  const uint64_t seq_total = CountTriangles(g);
  const std::vector<uint32_t> seq_counts = VertexTriangleCounts(g);
  ASSERT_GT(seq_total, 0u);
  for (const uint32_t width : kWidths) {
    EXPECT_EQ(CountTrianglesParallel(g, {width, 0}), seq_total)
        << "width " << width;
    EXPECT_EQ(VertexTriangleCountsParallel(g, {width, 0}), seq_counts)
        << "width " << width;
    // Tiny grain: many more blocks than lanes, ragged boundaries.
    EXPECT_EQ(VertexTriangleCountsParallel(g, {width, 7}), seq_counts)
        << "width " << width;
  }
}

TEST(ParallelMetricsTest, ClusteringBitIdentical) {
  const Graph g = Collab(2000);
  const std::vector<double> seq_cc = LocalClusteringCoefficients(g);
  const double seq_avg = AverageClusteringCoefficient(g);
  for (const uint32_t width : kWidths) {
    EXPECT_EQ(LocalClusteringCoefficientsParallel(g, {width, 0}), seq_cc)
        << "width " << width;
    EXPECT_EQ(AverageClusteringCoefficientParallel(g, {width, 0}), seq_avg)
        << "width " << width;
  }
}

TEST(ParallelMetricsTest, PageRankBitIdentical) {
  // Includes isolated vertices so the dangling-mass path is exercised.
  Rng rng(19);
  const Graph g = ErdosRenyi(3000, 0.002, &rng);
  const std::vector<double> seq = PageRank(g);
  for (const uint32_t width : kWidths) {
    const std::vector<double> par = PageRankParallel(g, {}, {width, 0});
    ASSERT_EQ(par.size(), seq.size());
    for (size_t v = 0; v < seq.size(); ++v) {
      ASSERT_EQ(par[v], seq[v]) << "v " << v << " width " << width;
    }
  }
}

TEST(ParallelMetricsTest, TrussNumbersMatchExactly) {
  const Graph g = Collab(1500);
  const std::vector<uint32_t> seq = TrussNumbers(g);
  for (const uint32_t width : kWidths) {
    EXPECT_EQ(TrussNumbersParallel(g, {width, 0}), seq) << "width " << width;
  }
}

// ------------------------------------------------- layout / raster --

TEST(ParallelLayoutTest, SpringLayoutBitIdenticalAcrossWidths) {
  Rng rng(23);
  const Graph g = BarabasiAlbert(600, 3, &rng);
  SpringLayoutOptions options;
  options.iterations = 30;
  const Positions seq = SpringLayout(g, options);
  for (const uint32_t width : kWidths) {
    options.num_threads = width;
    const Positions par = SpringLayout(g, options);
    ASSERT_EQ(par.size(), seq.size());
    for (size_t v = 0; v < seq.size(); ++v) {
      ASSERT_EQ(par[v].x, seq[v].x) << "v " << v << " width " << width;
      ASSERT_EQ(par[v].y, seq[v].y) << "v " << v << " width " << width;
    }
  }
}

TEST(ParallelRasterTest, HeightFieldBitIdenticalAcrossWidths) {
  Rng rng(42);
  const Graph g = BarabasiAlbert(1024, 4, &rng);
  const VertexScalarField field("f", DistinctField(1024, 3));
  const SuperTree tree(BuildVertexScalarTree(g, field));
  const TerrainLayout layout = BuildTerrainLayout(tree);
  RasterOptions options;
  options.width = 193;   // odd sizes: ragged row bands
  options.height = 117;
  const HeightField seq = RasterizeTerrain(layout, options);
  for (const uint32_t width : kWidths) {
    options.num_threads = width;
    const HeightField par = RasterizeTerrain(layout, options);
    EXPECT_EQ(par.height_at, seq.height_at) << "width " << width;
    EXPECT_EQ(par.node_at, seq.node_at) << "width " << width;
    EXPECT_EQ(par.sea_level, seq.sea_level);
  }
}

// --------------------------------------- community / query thread sweep --

TEST(ParallelCommunityTest, BigClamFitBitIdenticalAcrossWidths) {
  OverlappingCommunityOptions gen;
  gen.num_communities = 3;
  gen.vertices_per_community = 120;
  Rng rng(77);
  const CommunityGraphResult planted = OverlappingCommunities(gen, &rng);
  BigClamOptions options;
  options.num_communities = 3;
  options.iterations = 25;
  options.num_threads = 1;
  const BigClamAffiliations seq = BigClamFit(planted.graph, options);
  for (const uint32_t width : kWidths) {
    options.num_threads = width;
    const BigClamAffiliations par = BigClamFit(planted.graph, options);
    ASSERT_EQ(par.factors.size(), seq.factors.size());
    for (size_t i = 0; i < seq.factors.size(); ++i) {
      ASSERT_EQ(par.factors[i], seq.factors[i])
          << "entry " << i << " width " << width;
    }
  }
}

TEST(ParallelCommunityTest, RecursiveFeaturesBitIdenticalAcrossWidths) {
  const Graph g = Collab(1500);
  RoleFeatureOptions options;
  options.depth = 2;
  options.num_threads = 1;
  const RoleFeatureMatrix seq = RecursiveFeatures(g, options);
  for (const uint32_t width : kWidths) {
    options.num_threads = width;
    const RoleFeatureMatrix par = RecursiveFeatures(g, options);
    ASSERT_EQ(par.num_features, seq.num_features);
    for (size_t i = 0; i < seq.values.size(); ++i) {
      ASSERT_EQ(par.values[i], seq.values[i])
          << "entry " << i << " width " << width;
    }
  }
}

TEST(ParallelQueryTest, NnGraphIdenticalAcrossWidths) {
  Rng rng(31);
  Table table = MakePlantGenusTable(700, &rng);
  NnGraphOptions options;
  options.max_neighbors = 6;
  options.num_threads = 1;
  const Graph seq = BuildNnGraph(table, options);
  for (const uint32_t width : kWidths) {
    options.num_threads = width;
    const Graph par = BuildNnGraph(table, options);
    ASSERT_EQ(par.Adjacency(), seq.Adjacency()) << "width " << width;
    ASSERT_EQ(par.Offsets(), seq.Offsets()) << "width " << width;
  }
}

// Randomized cross-check: many independent (graph, field, grain, width)
// draws through the full vertex path. Seeds are fixed, so failures
// reproduce; this is the chunked sweep's fuzz net under ASan/TSan.
TEST(ParallelVertexTreeTest, RandomizedStress) {
  Rng meta(777);
  for (uint32_t trial = 0; trial < 12; ++trial) {
    const uint32_t n = 64 + meta.UniformInt(1024);
    Rng graph_rng(1000 + trial);
    const Graph g = trial % 2 == 0
                        ? BarabasiAlbert(n, 2 + trial % 3, &graph_rng)
                        : ErdosRenyi(n, 0.01, &graph_rng);
    const uint32_t levels = 1 + meta.UniformInt(8);
    const std::vector<double> values =
        levels == 1 ? DistinctField(n, 2000 + trial)
                    : PlateauField(n, levels, 2000 + trial);
    const uint64_t grain = 1 + meta.UniformInt(64);
    const VertexScalarField field("f", values);
    const ScalarTree seq = BuildVertexScalarTree(g, field);
    const uint32_t width = kWidths[meta.UniformInt(4)];
    const ScalarTree par =
        BuildVertexScalarTreeParallel(g, field, {width, grain});
    ASSERT_EQ(par.Parents(), seq.Parents())
        << "trial " << trial << " n " << n << " width " << width << " grain "
        << grain;
    ASSERT_EQ(par.NumRoots(), seq.NumRoots()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace graphscape
