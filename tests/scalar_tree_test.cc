// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 1 correctness on the paper's small hand-computable examples.
// Orientation reminder (superlevel sweep): values are non-increasing
// toward the root, leaves are local maxima, each component's root is its
// sweep-order minimum.

#include "scalar/scalar_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"

namespace graphscape {
namespace {

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph Star(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

TEST(ScalarTreeTest, MonotonePathIsAChain) {
  const Graph g = Path(5);
  const VertexScalarField field("f", {1.0, 2.0, 3.0, 4.0, 5.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  ASSERT_EQ(tree.NumNodes(), 5u);
  EXPECT_EQ(tree.Parent(4), 3u);
  EXPECT_EQ(tree.Parent(3), 2u);
  EXPECT_EQ(tree.Parent(2), 1u);
  EXPECT_EQ(tree.Parent(1), 0u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 1u);
}

TEST(ScalarTreeTest, StarWithLowCenterFansIn) {
  // Leaves are all local maxima; the low-valued hub is the root.
  const Graph g = Star(4);
  const VertexScalarField field("f", {0.0, 1.0, 2.0, 3.0, 4.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  for (VertexId v = 1; v <= 4; ++v) EXPECT_EQ(tree.Parent(v), 0u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
}

TEST(ScalarTreeTest, StarWithHighCenterIsAChain) {
  // Only the hub is a local maximum; leaves chain through it in value
  // order because each leaf's component head moves down the sweep.
  const Graph g = Star(4);
  const VertexScalarField field("f", {10.0, 1.0, 2.0, 3.0, 4.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(tree.Parent(0), 4u);
  EXPECT_EQ(tree.Parent(4), 3u);
  EXPECT_EQ(tree.Parent(3), 2u);
  EXPECT_EQ(tree.Parent(2), 1u);
  EXPECT_EQ(tree.Parent(1), kInvalidVertex);
}

TEST(ScalarTreeTest, TwoPeakPathMergesAtTheSaddleSweep) {
  // Path 0-1-2-3-4 with peaks at vertices 1 and 3: both are leaves
  // (local maxima); the saddle vertex 2 merges their components, and the
  // component minimum (vertex 0) is the root.
  const Graph g = Path(5);
  const VertexScalarField field("f", {1.0, 5.0, 2.0, 6.0, 3.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(tree.Parent(3), 4u);
  EXPECT_EQ(tree.Parent(1), 2u);
  EXPECT_EQ(tree.Parent(4), 2u);
  EXPECT_EQ(tree.Parent(2), 0u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 1u);
}

TEST(ScalarTreeTest, DuplicateValuesTieBreakById) {
  // A constant field must still produce a deterministic chain: the id
  // tie-break makes vertex ids the sweep order.
  const Graph g = Path(4);
  const VertexScalarField field("f", {7.0, 7.0, 7.0, 7.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(tree.Parent(0), 1u);
  EXPECT_EQ(tree.Parent(1), 2u);
  EXPECT_EQ(tree.Parent(2), 3u);
  EXPECT_EQ(tree.Parent(3), kInvalidVertex);
}

TEST(ScalarTreeTest, DisconnectedGraphYieldsForest) {
  // Components {0,1} and {2,3}; each gets its own root at its minimum.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const VertexScalarField field("f", {1.0, 2.0, 4.0, 3.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(tree.Parent(1), 0u);
  EXPECT_EQ(tree.Parent(0), kInvalidVertex);
  EXPECT_EQ(tree.Parent(2), 3u);
  EXPECT_EQ(tree.Parent(3), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 2u);
}

TEST(ScalarTreeTest, IsolatedVertexIsItsOwnRoot) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  const VertexScalarField field("f", {1.0, 2.0, 5.0});
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  EXPECT_EQ(tree.Parent(2), kInvalidVertex);
  EXPECT_EQ(tree.NumRoots(), 2u);
}

TEST(ScalarTreeTest, FieldRejectsNonFiniteValues) {
  // NaN would break the sort's strict weak ordering (UB in std::sort) and
  // infinities break quantization, so the field guards at construction.
  const std::vector<double> with_nan{1.0, std::nan(""), 2.0};
  EXPECT_THROW(VertexScalarField("f", with_nan), std::invalid_argument);
  const std::vector<double> with_inf{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(VertexScalarField("f", with_inf), std::invalid_argument);
}

TEST(ScalarTreeTest, RandomGraphsSatisfyTreeInvariants) {
  // Property check over random graphs and fields: values non-increasing
  // toward the root, exactly one root per connected component, and the
  // sweep order lists every child before its parent.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = BarabasiAlbert(400, 3, &rng);
    std::vector<double> values(g.NumVertices());
    for (auto& v : values) v = static_cast<double>(rng.UniformInt(17));
    const VertexScalarField field("f", values);
    const ScalarTree tree = BuildVertexScalarTree(g, field);

    ASSERT_EQ(tree.NumNodes(), g.NumVertices());
    EXPECT_EQ(tree.NumRoots(), 1u);  // BA graphs are connected
    std::vector<uint32_t> position(g.NumVertices());
    for (uint32_t i = 0; i < g.NumVertices(); ++i)
      position[tree.SweepOrder()[i]] = i;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const VertexId p = tree.Parent(v);
      if (p == kInvalidVertex) continue;
      EXPECT_LE(tree.Value(p), tree.Value(v));
      EXPECT_GT(position[p], position[v]);
    }
  }
}

}  // namespace
}  // namespace graphscape
