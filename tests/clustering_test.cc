// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/clustering.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"

namespace graphscape {
namespace {

Graph Clique(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t u = 0; u < n; ++u)
    for (uint32_t v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  return builder.Build();
}

Graph Path(uint32_t n) {
  GraphBuilder builder(n);
  for (uint32_t v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph Star(uint32_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (uint32_t v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

// O(n * deg^2) oracle: for every vertex, count adjacent neighbor pairs
// directly with HasEdge. Same integer triangle count, same formula, so
// the kernels must agree bit-for-bit.
std::vector<double> BruteForceLocalClustering(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<double> cc(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const Graph::NeighborRange r = g.Neighbors(v);
    const uint32_t d = r.size();
    if (d < 2) continue;
    uint64_t closed = 0;
    for (uint32_t i = 0; i < d; ++i)
      for (uint32_t j = i + 1; j < d; ++j)
        if (g.HasEdge(r[i], r[j])) ++closed;
    cc[v] = 2.0 * static_cast<double>(closed) /
            (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return cc;
}

TEST(ClusteringTest, CliqueIsFullyClustered) {
  const Graph g = Clique(6);
  for (const double c : LocalClusteringCoefficients(g)) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  }
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, TriangleFreeGraphsScoreZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Path(10)), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Star(10)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Star(10)), 0.0);
}

TEST(ClusteringTest, LowDegreeVerticesReportZero) {
  // Triangle with a pendant: the pendant (degree 1) and an isolated
  // vertex both report 0 by convention; the attachment vertex has one
  // closed pair out of three.
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
  EXPECT_DOUBLE_EQ(cc[4], 0.0);
}

TEST(ClusteringTest, EmptyGraphIsZero) {
  const Graph g = GraphBuilder(0).Build();
  EXPECT_TRUE(LocalClusteringCoefficients(g).empty());
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(SampledAverageClusteringCoefficient(g, 16, &rng), 0.0);
}

TEST(ClusteringTest, MatchesBruteForceOracleOnRandomGraphs) {
  for (const uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const Graph er = ErdosRenyi(60, 0.15, &rng);
    const Graph ba = BarabasiAlbert(60, 4, &rng);
    for (const Graph* g : {&er, &ba}) {
      const std::vector<double> expected = BruteForceLocalClustering(*g);
      const std::vector<double> actual = LocalClusteringCoefficients(*g);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t v = 0; v < expected.size(); ++v) {
        EXPECT_DOUBLE_EQ(actual[v], expected[v]) << "vertex " << v;
      }
    }
  }
}

TEST(ClusteringTest, FullSampleDegradesToExactAverage) {
  Rng gen_rng(21);
  CollaborationOptions options;
  options.num_vertices = 300;
  const Graph g = CollaborationNetwork(options, &gen_rng);
  const double exact = AverageClusteringCoefficient(g);
  ASSERT_GT(exact, 0.1);  // the generator must produce triangles
  Rng sample_rng(22);
  // k >= n visits every vertex exactly once; only summation order differs.
  EXPECT_NEAR(
      SampledAverageClusteringCoefficient(g, g.NumVertices(), &sample_rng),
      exact, 1e-9);
}

TEST(ClusteringTest, HalfSampleIsWithinToleranceOfExact) {
  Rng gen_rng(23);
  CollaborationOptions options;
  options.num_vertices = 600;
  const Graph g = CollaborationNetwork(options, &gen_rng);
  const double exact = AverageClusteringCoefficient(g);
  Rng sample_rng(24);
  const double estimate =
      SampledAverageClusteringCoefficient(g, g.NumVertices() / 2, &sample_rng);
  // Deterministic given the fixed seeds; the bound is loose on purpose so
  // tuning the generator doesn't flake this test.
  EXPECT_NEAR(estimate, exact, 0.1);
}

TEST(ClusteringTest, GlobalBelowAverageOnStarPlusTriangle) {
  // Transitivity weights hubs by their wedge count: a big open star drags
  // the global coefficient far below the average local one.
  GraphBuilder builder(12);
  for (uint32_t v = 1; v <= 8; ++v) builder.AddEdge(0, v);
  builder.AddEdge(9, 10);
  builder.AddEdge(10, 11);
  builder.AddEdge(9, 11);
  const Graph g = builder.Build();
  EXPECT_GT(AverageClusteringCoefficient(g), GlobalClusteringCoefficient(g));
}

}  // namespace
}  // namespace graphscape
