// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Coverage for the simulated user study: the response model's exact
// determinism and monotonicity guarantees (common random numbers make
// "easier evidence never scores lower" hold exactly, not just in
// expectation), a hand-replicated aggregation cross-check against the
// Rng draws, the evidence extractors' direction (crowding and smear
// degrade 2D tools, terrain stays explicit), and the Tables IV-VI
// accumulator.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "userstudy/evidence.h"
#include "userstudy/simulated_user.h"

namespace graphscape {
namespace {

TaskEvidence Evidence(double strength, double distractors = 1.0,
                      double load = 0.5,
                      StudyTask task = StudyTask::kDensestCore) {
  TaskEvidence evidence;
  evidence.task = task;
  evidence.answer_strength = strength;
  evidence.distractors = distractors;
  evidence.visual_load = load;
  return evidence;
}

TEST(SimulateTaskTest, DeterministicAndRecordsProvenance) {
  const TaskEvidence evidence =
      Evidence(0.7, 2.0, 0.8, StudyTask::kSecondDensestCore);
  const TaskOutcome a = SimulateTask(StudyTool::kLaNetVi, evidence);
  const TaskOutcome b = SimulateTask(StudyTool::kLaNetVi, evidence);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.mean_seconds, b.mean_seconds);
  EXPECT_EQ(a.tool, StudyTool::kLaNetVi);
  EXPECT_EQ(a.task, StudyTask::kSecondDensestCore);
  EXPECT_EQ(a.num_participants, 20u);
}

TEST(SimulateTaskTest, StrengthExtremesAreExact) {
  EXPECT_DOUBLE_EQ(SimulateTask(StudyTool::kTerrain, Evidence(1.0)).accuracy,
                   1.0);
  EXPECT_DOUBLE_EQ(SimulateTask(StudyTool::kTerrain, Evidence(0.0)).accuracy,
                   0.0);
}

TEST(SimulateTaskTest, AccuracyExactlyMonotoneInStrength) {
  // Common random numbers: the SAME participants face every strength, so
  // the correct set can only grow — accuracy is monotone pointwise.
  double previous = -1.0;
  for (double strength = 0.0; strength <= 1.0; strength += 0.05) {
    const double accuracy =
        SimulateTask(StudyTool::kOpenOrd, Evidence(strength)).accuracy;
    EXPECT_GE(accuracy, previous) << "strength " << strength;
    previous = accuracy;
  }
}

TEST(SimulateTaskTest, TimeMonotoneInLoadDistractorsAndWeakness) {
  const double base =
      SimulateTask(StudyTool::kTerrain, Evidence(0.8, 1.0, 0.5)).mean_seconds;
  EXPECT_GT(SimulateTask(StudyTool::kTerrain, Evidence(0.8, 3.0, 0.5))
                .mean_seconds,
            base);
  EXPECT_GT(SimulateTask(StudyTool::kTerrain, Evidence(0.8, 1.0, 1.2))
                .mean_seconds,
            base);
  // Weaker evidence adds hesitation.
  EXPECT_GT(SimulateTask(StudyTool::kTerrain, Evidence(0.3, 1.0, 0.5))
                .mean_seconds,
            base);
}

TEST(SimulateTaskTest, HandComputedAggregationCrossCheck) {
  // Replicate the model by hand for 3 participants: draws come in
  // (care, speed) pairs from Rng(seed).
  SimulatedUserOptions options;
  options.num_participants = 3;
  options.seed = 99;
  const TaskEvidence evidence = Evidence(0.6, 2.0, 1.0);
  Rng rng(99);
  const double task_seconds =
      (options.base_seconds + options.seconds_per_distractor * 2.0 +
       options.seconds_per_load * 1.0) *
      (1.0 + options.hesitation_factor * (1.0 - 0.6));
  uint32_t correct = 0;
  double total = 0.0;
  for (uint32_t p = 0; p < 3; ++p) {
    const double care = rng.UniformDouble();
    const double speed = rng.UniformDouble();
    if (care < 0.6) ++correct;
    total += task_seconds * (0.8 + 0.4 * speed);
  }
  const TaskOutcome outcome =
      SimulateTask(StudyTool::kTreemap, evidence, options);
  EXPECT_DOUBLE_EQ(outcome.accuracy, correct / 3.0);
  EXPECT_DOUBLE_EQ(outcome.mean_seconds, total / 3.0);
}

TEST(SimulateTaskTest, ZeroParticipantsIsWellDefined) {
  SimulatedUserOptions options;
  options.num_participants = 0;
  const TaskOutcome outcome =
      SimulateTask(StudyTool::kTerrain, Evidence(1.0), options);
  EXPECT_EQ(outcome.num_participants, 0u);
  EXPECT_DOUBLE_EQ(outcome.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(outcome.mean_seconds, 0.0);
}

TEST(VocabularyTest, TaskAndToolNames) {
  EXPECT_STREQ(TaskName(StudyTask::kDensestCore), "densest-core");
  EXPECT_STREQ(TaskName(StudyTask::kCorrelationEstimate),
               "correlation-estimate");
  EXPECT_STREQ(ToolName(StudyTool::kTerrain), "terrain");
  EXPECT_STREQ(ToolName(StudyTool::kLaNetVi), "lanet-vi");
}

// --------------------------------------------------------------- evidence --

TEST(TerrainEvidenceTest, CoreTasksAreExplicit) {
  // Two planted peaks: values 3-3-3 and 2-2, joined through a valley.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);  // valley vertex 3
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  const VertexScalarField field("f", {3.0, 3.0, 3.0, 1.0, 2.0, 2.0});
  const SuperTree tree(BuildVertexScalarTree(g, field));

  const TaskEvidence task1 =
      TerrainCoreEvidence(g, tree, StudyTask::kDensestCore);
  EXPECT_DOUBLE_EQ(task1.answer_strength, 1.0);
  EXPECT_EQ(task1.task, StudyTask::kDensestCore);
  // One peak at the top level: no rivals for task 1.
  EXPECT_DOUBLE_EQ(task1.distractors, 0.0);

  const TaskEvidence task2 =
      TerrainCoreEvidence(g, tree, StudyTask::kSecondDensestCore);
  EXPECT_DOUBLE_EQ(task2.answer_strength, 1.0) << "terrain stays explicit";
  EXPECT_GT(task2.distractors, task1.distractors);

  const TaskEvidence treemap =
      TreemapCoreEvidence(g, tree, StudyTask::kDensestCore);
  EXPECT_DOUBLE_EQ(treemap.answer_strength, 1.0);
  EXPECT_GT(treemap.distractors, task1.distractors);
}

LanetViLayoutResult SyntheticShells(uint32_t n, uint32_t core_members,
                                    double intruder_radius) {
  // `core_members` vertices at radius 0.1, the rest at intruder_radius.
  LanetViLayoutResult layout;
  layout.max_core = 5;
  layout.core_of.assign(n, 1);
  layout.positions.assign(n, Point2{0.5, 0.5});
  for (uint32_t v = 0; v < n; ++v) {
    const bool member = v < core_members;
    if (member) layout.core_of[v] = 5;
    const double radius = member ? 0.1 : intruder_radius;
    const double angle = 2.0 * 3.14159265358979 * v / n;
    layout.positions[v] =
        Point2{0.5 + radius * std::cos(angle), 0.5 + radius * std::sin(angle)};
  }
  return layout;
}

TEST(LanetViEvidenceTest, CrowdingDegradesStrength) {
  GraphBuilder builder(40);
  for (uint32_t v = 1; v < 40; ++v) builder.AddEdge(0, v);
  const Graph g = builder.Build();
  // Clean: non-members far outside the members' radius. Crowded: they
  // sit right on top of the core.
  const TaskEvidence clean = LanetViCoreEvidence(
      g, SyntheticShells(40, 10, 0.45), StudyTask::kDensestCore);
  const TaskEvidence crowded = LanetViCoreEvidence(
      g, SyntheticShells(40, 10, 0.1), StudyTask::kDensestCore);
  EXPECT_DOUBLE_EQ(clean.answer_strength, 1.0);
  EXPECT_LT(crowded.answer_strength, clean.answer_strength);
  // Task 2 (connectivity) halves whatever the artifact offers.
  const TaskEvidence task2 = LanetViCoreEvidence(
      g, SyntheticShells(40, 10, 0.45), StudyTask::kSecondDensestCore);
  EXPECT_DOUBLE_EQ(task2.answer_strength, 0.5 * clean.answer_strength);
}

TEST(OpenOrdEvidenceTest, SpatialSmearDegradesStrength) {
  const uint32_t n = 30;
  GraphBuilder builder(n);
  for (uint32_t v = 1; v < n; ++v) builder.AddEdge(0, v);
  const Graph g = builder.Build();
  std::vector<uint32_t> cores(n, 1);
  for (uint32_t v = 0; v < 10; ++v) cores[v] = 4;

  Positions compact(n), smeared(n);
  Rng rng(5);
  for (uint32_t v = 0; v < n; ++v) {
    const Point2 anywhere{rng.UniformDouble(), rng.UniformDouble()};
    smeared[v] = anywhere;
    // Compact: the densest core collapses to one corner cluster.
    compact[v] = cores[v] == 4
                     ? Point2{0.05 + 0.02 * rng.UniformDouble(),
                              0.05 + 0.02 * rng.UniformDouble()}
                     : anywhere;
  }
  const TaskEvidence easy =
      OpenOrdCoreEvidence(g, compact, cores, StudyTask::kDensestCore);
  const TaskEvidence hard =
      OpenOrdCoreEvidence(g, smeared, cores, StudyTask::kDensestCore);
  EXPECT_GT(easy.answer_strength, hard.answer_strength);
  const TaskEvidence task2 =
      OpenOrdCoreEvidence(g, compact, cores, StudyTask::kSecondDensestCore);
  EXPECT_DOUBLE_EQ(task2.answer_strength, 0.5 * easy.answer_strength);
}

TEST(CorrelationEvidenceTest, StrengthGrowsWithGciAndFavorsTerrain) {
  const Positions positions(500);
  double previous_terrain = -1.0, previous_openord = -1.0;
  for (const double gci : {0.0, 0.3, 0.6, 0.9}) {
    const TaskEvidence terrain = TerrainCorrelationEvidence(gci);
    const TaskEvidence openord = OpenOrdCorrelationEvidence(gci, positions);
    EXPECT_EQ(terrain.task, StudyTask::kCorrelationEstimate);
    EXPECT_GE(terrain.answer_strength, previous_terrain);
    EXPECT_GE(openord.answer_strength, previous_openord);
    EXPECT_GT(terrain.answer_strength, openord.answer_strength) << gci;
    previous_terrain = terrain.answer_strength;
    previous_openord = openord.answer_strength;
  }
  // Sign does not matter: anti-correlation reads just as easily.
  EXPECT_DOUBLE_EQ(TerrainCorrelationEvidence(-0.8).answer_strength,
                   TerrainCorrelationEvidence(0.8).answer_strength);
}

// ----------------------------------------------------------- EvidenceTable --

TaskOutcome Outcome(StudyTool tool, double accuracy, double seconds) {
  TaskOutcome outcome;
  outcome.tool = tool;
  outcome.accuracy = accuracy;
  outcome.mean_seconds = seconds;
  outcome.num_participants = 20;
  return outcome;
}

TEST(EvidenceTableTest, CellsRowsAndOverwrite) {
  EvidenceTable table;
  EXPECT_TRUE(table.Rows().empty());
  table.Add("GrQc", Outcome(StudyTool::kTerrain, 1.0, 10.0));
  table.Add("GrQc", Outcome(StudyTool::kOpenOrd, 0.6, 25.0));
  table.Add("PPI", Outcome(StudyTool::kTerrain, 1.0, 12.0));
  ASSERT_EQ(table.Rows().size(), 2u);
  EXPECT_EQ(table.Rows()[0], "GrQc");
  ASSERT_NE(table.Cell("GrQc", StudyTool::kOpenOrd), nullptr);
  EXPECT_DOUBLE_EQ(table.Cell("GrQc", StudyTool::kOpenOrd)->accuracy, 0.6);
  EXPECT_EQ(table.Cell("GrQc", StudyTool::kLaNetVi), nullptr);
  EXPECT_EQ(table.Cell("DBLP", StudyTool::kTerrain), nullptr);
  table.Add("GrQc", Outcome(StudyTool::kOpenOrd, 0.7, 20.0));
  EXPECT_DOUBLE_EQ(table.Cell("GrQc", StudyTool::kOpenOrd)->accuracy, 0.7);
  EXPECT_EQ(table.Rows().size(), 2u) << "overwrite must not duplicate rows";
}

TEST(EvidenceTableTest, DominanceRequiresBothMetricsInEveryRow) {
  EvidenceTable table;
  EXPECT_TRUE(table.Dominates(StudyTool::kTerrain)) << "vacuous";
  table.Add("GrQc", Outcome(StudyTool::kTerrain, 1.0, 10.0));
  table.Add("GrQc", Outcome(StudyTool::kOpenOrd, 0.8, 20.0));
  table.Add("PPI", Outcome(StudyTool::kTerrain, 1.0, 12.0));
  table.Add("PPI", Outcome(StudyTool::kLaNetVi, 1.0, 12.0));  // exact tie
  EXPECT_TRUE(table.Dominates(StudyTool::kTerrain)) << "weak dominance";
  EXPECT_FALSE(table.Dominates(StudyTool::kOpenOrd));
  // A single faster rival anywhere breaks dominance.
  table.Add("DBLP", Outcome(StudyTool::kTerrain, 1.0, 15.0));
  table.Add("DBLP", Outcome(StudyTool::kOpenOrd, 0.5, 14.0));
  EXPECT_FALSE(table.Dominates(StudyTool::kTerrain));
}

}  // namespace
}  // namespace graphscape
