// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Synthetic graph generators for the microbenches and tests. All are
// deterministic given the caller's Rng, so bench trajectories are
// reproducible run to run.

#ifndef GRAPHSCAPE_GEN_GENERATORS_H_
#define GRAPHSCAPE_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "community/vertex_role.h"
#include "graph/graph.h"

namespace graphscape {

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Produces the heavy-tailed degree distributions the paper's terrains are
/// rendered over. Connected by construction.
Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     Rng* rng);

/// Erdős–Rényi G(n, p) via geometric edge skipping — O(n + m) regardless of
/// how small p is.
Graph ErdosRenyi(uint32_t num_vertices, double edge_probability, Rng* rng);

/// Clustered "collaboration network": vertices join small groups wired as
/// near-cliques (triangle-rich, community structure) with sparse random
/// cross-links, plus optional planted cliques so K-Core / K-Truss peeling
/// has dense structures to find — the shape of the paper's DBLP/GrQc data.
struct CollaborationOptions {
  uint32_t num_vertices = 0;
  uint32_t num_groups = 0;          ///< 0 means num_vertices / 8.
  uint32_t num_planted_cores = 0;   ///< dense cliques planted on top
  uint32_t planted_core_size = 0;
  double within_group_probability = 0.6;
  uint32_t random_links_per_vertex = 1;
};

Graph CollaborationNetwork(const CollaborationOptions& options, Rng* rng);

/// The DBLP-like network behind Fig. 1(b)/Fig. 8: `num_communities`
/// planted overlapping communities, each split into `subclusters` dense
/// sub-cores (the paper's US-vs-China twin research groups). Every
/// community carries a continuous affiliation score in [0, 1] per vertex
/// — the stand-in for ref [14]'s (BigCLAM) output — and the graph is
/// wired so the score's scalar tree has the figure's structure BY
/// CONSTRUCTION:
///
///  * inside one sub-core, every vertex links to a strictly higher-score
///    vertex of the same sub-core, so every superlevel set of a sub-core
///    is connected — exactly one peak per sub-core at core level (>=
///    kCommunityCoreScore);
///  * sub-cores of one community are bridged only through mid-band
///    vertices (score in [kCommunityBridgeScore, kCommunityCoreScore)),
///    so the community merges into ONE peak below the core level but
///    shows `subclusters` disconnected core peaks above it;
///  * communities touch each other only through low-score overlap
///    members (score < 0.5 in both), so the max-score field shows
///    exactly `num_communities` major peaks at level 0.5.
struct OverlappingCommunityOptions {
  uint32_t num_communities = 4;
  uint32_t vertices_per_community = 300;
  /// Dense sub-cores per community (the twin-peak count of Fig. 8).
  uint32_t subclusters = 2;
  /// Fraction of a community's members inside its sub-cores.
  double core_fraction = 0.25;
  /// Edge probability inside one sub-core.
  double core_probability = 0.3;
  /// Extra random mid-band edges per mid-band vertex.
  uint32_t mid_links_per_vertex = 2;
  /// Fraction of members that also affiliate with the next community.
  double overlap_fraction = 0.1;
};

/// Score band boundaries the generator guarantees (and the figure
/// benches read levels against): core members score in
/// [kCommunityCoreScore, 1], bridge vertices at kCommunityBridgeScore,
/// overlap affiliations stay below 0.5.
inline constexpr double kCommunityCoreScore = 0.8;
inline constexpr double kCommunityBridgeScore = 0.7;

struct CommunityGraphResult {
  Graph graph;
  /// scores[c][v] in [0, 1]: community c's affiliation strength at v
  /// (0 outside the community, < 0.5 for overlap-only members).
  std::vector<std::vector<double>> scores;
  /// Planted primary community per vertex — the oracle labels the
  /// community tests score BigCLAM recovery against.
  std::vector<uint32_t> primary_community;
  /// Planted sub-core id per vertex within its primary community, or
  /// kInvalidVertex for mid-band members.
  std::vector<uint32_t> subcluster;
};

CommunityGraphResult OverlappingCommunities(
    const OverlappingCommunityOptions& options, Rng* rng);

/// The Amazon-like community behind Fig. 9 / Table III: one community
/// with planted roles — hubs wired to most members, a near-clique dense
/// band, loosely attached periphery, degree-1/2 whisker chains — embedded
/// in a sparse preferential-attachment background. `community_score` is
/// the terrain height: hubs highest, then dense, periphery, whiskers,
/// background near zero, so the paper's layering claim is checkable.
struct RoleCommunityOptions {
  uint32_t num_hubs = 2;
  uint32_t num_dense = 40;
  uint32_t num_periphery = 80;
  uint32_t num_whiskers = 30;
  /// Background vertices outside the community.
  uint32_t num_background = 400;
  /// Edge probability inside the dense band.
  double dense_probability = 0.5;
  /// Fraction of non-hub community members each hub links to.
  double hub_coverage = 0.7;
  /// Edges from each periphery vertex into the dense band / hubs.
  uint32_t periphery_links = 2;
};

struct RoleCommunityResult {
  Graph graph;
  /// The community under study (hubs, dense band, periphery, whiskers).
  std::vector<VertexId> community_vertices;
  /// Planted role per vertex (kBackground outside the community).
  std::vector<VertexRole> roles;
  /// Community-affiliation score per vertex, one value per graph vertex.
  std::vector<double> community_score;
};

RoleCommunityResult RoleCommunityGraph(const RoleCommunityOptions& options,
                                       Rng* rng);

}  // namespace graphscape

#endif  // GRAPHSCAPE_GEN_GENERATORS_H_
