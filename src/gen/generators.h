// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Synthetic graph generators for the microbenches and tests. All are
// deterministic given the caller's Rng, so bench trajectories are
// reproducible run to run.

#ifndef GRAPHSCAPE_GEN_GENERATORS_H_
#define GRAPHSCAPE_GEN_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/graph.h"

namespace graphscape {

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Produces the heavy-tailed degree distributions the paper's terrains are
/// rendered over. Connected by construction.
Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     Rng* rng);

/// Erdős–Rényi G(n, p) via geometric edge skipping — O(n + m) regardless of
/// how small p is.
Graph ErdosRenyi(uint32_t num_vertices, double edge_probability, Rng* rng);

/// Clustered "collaboration network": vertices join small groups wired as
/// near-cliques (triangle-rich, community structure) with sparse random
/// cross-links, plus optional planted cliques so K-Core / K-Truss peeling
/// has dense structures to find — the shape of the paper's DBLP/GrQc data.
struct CollaborationOptions {
  uint32_t num_vertices = 0;
  uint32_t num_groups = 0;          ///< 0 means num_vertices / 8.
  uint32_t num_planted_cores = 0;   ///< dense cliques planted on top
  uint32_t planted_core_size = 0;
  double within_group_probability = 0.6;
  uint32_t random_links_per_vertex = 1;
};

Graph CollaborationNetwork(const CollaborationOptions& options, Rng* rng);

}  // namespace graphscape

#endif  // GRAPHSCAPE_GEN_GENERATORS_H_
