// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The dataset registry behind Tables I–II and the figure benches: one
// deterministic synthetic stand-in per network the paper evaluates on.
// We cannot redistribute the SNAP downloads, so each DatasetId names a
// generator recipe tuned so the degree distribution and average local
// clustering qualitatively match its Table I row — collaboration
// networks (GrQc, PPI, Astro, DBLP, Amazon) come out triangle-rich and
// community-structured, vote/link/citation graphs (WikiVote, Wikipedia,
// CitPatent) come out heavy-tailed with low clustering.
//
// Scaling: every recipe holds the paper network's *average degree*
// constant and divides the vertex count by `scale_divisor`, so node and
// edge counts both shrink by ~1/divisor while the per-vertex structure
// (degree, clustering) is preserved. scale_divisor == 1 is paper scale
// (bench::FullScale()); the per-dataset defaults keep every graph CI-fast
// (a few thousand vertices). Same id + divisor + seed => bit-identical
// graph on every platform (common/rng.h).

#ifndef GRAPHSCAPE_GEN_DATASETS_H_
#define GRAPHSCAPE_GEN_DATASETS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

/// The paper's evaluation networks, Table I order.
enum class DatasetId : uint8_t {
  kGrQc,       ///< ca-GrQc collaboration net
  kWikiVote,   ///< wiki-Vote who-votes-on-whom
  kPPI,        ///< protein-protein interaction net
  kAstro,      ///< ca-AstroPh collaboration net
  kDBLP,       ///< com-DBLP collaboration net
  kAmazon,     ///< com-Amazon co-purchase net
  kWikipedia,  ///< Wikipedia communication net (the paper's hub-degree
               ///< stress case: naive edge trees blow up here)
  kCitPatent,  ///< cit-Patents citation net
};

/// Every registered id, Table I order — the row set Tables I/II iterate.
const std::vector<DatasetId>& AllDatasetIds();

/// Provenance and generator tuning for one dataset. `paper_nodes` /
/// `paper_edges` / `paper_avg_cc` are the public stats of the SNAP
/// network the stand-in mimics; generated counts approach
/// paper_counts / divisor.
struct DatasetSpec {
  DatasetId id;
  const char* name;       ///< short row label ("GrQc", "WikiVote", ...)
  const char* snap_name;  ///< the network this stands in for ("ca-GrQc")
  uint64_t paper_nodes;
  uint64_t paper_edges;
  double paper_avg_cc;       ///< average local clustering (approximate)
  uint32_t default_divisor;  ///< applied when DatasetOptions is defaulted
  uint64_t default_seed;
};

const DatasetSpec& GetDatasetSpec(DatasetId id);

struct DatasetOptions {
  /// 1 = paper scale; k shrinks nodes and edges by ~1/k at constant
  /// average degree; 0 picks the spec's CI-sized default_divisor.
  uint32_t scale_divisor = 0;
  /// 0 picks the spec's default seed. Any other value reseeds the
  /// generator (same divisor + seed => identical graph).
  uint64_t seed = 0;
};

struct Dataset {
  DatasetSpec spec;
  uint32_t scale_divisor;  ///< the divisor actually applied
  Graph graph;
};

/// Builds the synthetic stand-in for `id`. Deterministic in (id,
/// options); the result is always simple and undirected (CSR invariants
/// of graph/graph.h).
Dataset MakeDataset(DatasetId id, const DatasetOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_GEN_DATASETS_H_
