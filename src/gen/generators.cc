// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"

namespace graphscape {

Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     Rng* rng) {
  const uint32_t m = std::max(1u, edges_per_vertex);
  const uint32_t n = std::max(num_vertices, m + 1);
  GraphBuilder builder(n);
  builder.Reserve(static_cast<size_t>(n) * m);

  // `targets` holds one entry per edge endpoint; sampling it uniformly is
  // sampling vertices proportionally to degree (the classic repeated-nodes
  // trick, O(1) per attachment).
  std::vector<VertexId> targets;
  targets.reserve(2 * static_cast<size_t>(n) * m);

  // Seed clique on the first m + 1 vertices.
  for (uint32_t u = 0; u <= m; ++u) {
    for (uint32_t v = u + 1; v <= m; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<VertexId> picked(m);
  for (uint32_t v = m + 1; v < n; ++v) {
    // Sample m distinct endpoints by degree; retry collisions (rare for
    // m << n) with a linear dedup over the m picks.
    uint32_t count = 0;
    while (count < m) {
      const VertexId t =
          targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
      bool seen = false;
      for (uint32_t i = 0; i < count; ++i) seen |= (picked[i] == t);
      if (!seen) picked[count++] = t;
    }
    for (uint32_t i = 0; i < m; ++i) {
      builder.AddEdge(v, picked[i]);
      targets.push_back(v);
      targets.push_back(picked[i]);
    }
  }
  return builder.Build();
}

Graph ErdosRenyi(uint32_t num_vertices, double edge_probability, Rng* rng) {
  GraphBuilder builder(num_vertices);
  const double p = std::min(std::max(edge_probability, 0.0), 1.0);
  if (p <= 0.0 || num_vertices < 2) return builder.Build();
  if (p >= 1.0) {
    for (uint32_t u = 0; u < num_vertices; ++u)
      for (uint32_t v = u + 1; v < num_vertices; ++v) builder.AddEdge(u, v);
    return builder.Build();
  }

  // Walk the flattened upper triangle with geometric jumps: the gap to the
  // next present edge is floor(log(U) / log(1 - p)).
  const double log_q = std::log1p(-p);
  const uint64_t total =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  uint64_t index = 0;
  while (true) {
    const double u = std::max(rng->UniformDouble(), 1e-300);
    index += 1 + static_cast<uint64_t>(std::log(u) / log_q);
    if (index > total) break;
    // Map 1-based flat index back to (row, col) in the upper triangle.
    const uint64_t i = index - 1;
    const double nf = static_cast<double>(num_vertices);
    uint64_t row = static_cast<uint64_t>(
        nf - 2 - std::floor(std::sqrt(-8.0 * static_cast<double>(i) +
                                      4.0 * nf * (nf - 1) - 7.0) /
                                2.0 -
                            0.5));
    // Float round-off can land one row off; nudge into place.
    auto row_start = [num_vertices](uint64_t r) {
      return r * num_vertices - r * (r + 1) / 2;
    };
    while (row > 0 && row_start(row) > i) --row;
    while (row_start(row + 1) <= i) ++row;
    const uint64_t col = row + 1 + (i - row_start(row));
    builder.AddEdge(static_cast<VertexId>(row), static_cast<VertexId>(col));
  }
  return builder.Build();
}

Graph CollaborationNetwork(const CollaborationOptions& options, Rng* rng) {
  const uint32_t n = options.num_vertices;
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();
  const uint32_t groups =
      options.num_groups > 0 ? options.num_groups : std::max(1u, n / 8);

  // Group membership: every vertex joins one primary group, and a third of
  // vertices moonlight in a second one (overlapping communities).
  std::vector<std::vector<VertexId>> members(groups);
  for (VertexId v = 0; v < n; ++v) {
    members[rng->UniformInt(groups)].push_back(v);
    if (rng->UniformInt(3) == 0) members[rng->UniformInt(groups)].push_back(v);
  }

  // Near-clique wiring inside each group — this is where the triangles and
  // community structure come from.
  for (const auto& group : members) {
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (rng->UniformDouble() < options.within_group_probability) {
          builder.AddEdge(group[i], group[j]);
        }
      }
    }
  }

  // Sparse random cross-links keep the graph (mostly) connected.
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t k = 0; k < options.random_links_per_vertex; ++k) {
      builder.AddEdge(v, rng->UniformInt(n));
    }
  }

  // Planted cliques: guaranteed dense subgraphs for the peeling metrics.
  const uint32_t core_size = std::min(options.planted_core_size, n);
  for (uint32_t c = 0; c < options.num_planted_cores && core_size >= 2; ++c) {
    std::vector<VertexId> core(core_size);
    for (auto& v : core) v = rng->UniformInt(n);
    for (uint32_t i = 0; i + 1 < core_size; ++i)
      for (uint32_t j = i + 1; j < core_size; ++j)
        builder.AddEdge(core[i], core[j]);
  }
  return builder.Build();
}

}  // namespace graphscape
