// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"

namespace graphscape {

Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     Rng* rng) {
  const uint32_t m = std::max(1u, edges_per_vertex);
  const uint32_t n = std::max(num_vertices, m + 1);
  GraphBuilder builder(n);
  builder.Reserve(static_cast<size_t>(n) * m);

  // `targets` holds one entry per edge endpoint; sampling it uniformly is
  // sampling vertices proportionally to degree (the classic repeated-nodes
  // trick, O(1) per attachment).
  std::vector<VertexId> targets;
  targets.reserve(2 * static_cast<size_t>(n) * m);

  // Seed clique on the first m + 1 vertices.
  for (uint32_t u = 0; u <= m; ++u) {
    for (uint32_t v = u + 1; v <= m; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<VertexId> picked(m);
  for (uint32_t v = m + 1; v < n; ++v) {
    // Sample m distinct endpoints by degree; retry collisions (rare for
    // m << n) with a linear dedup over the m picks.
    uint32_t count = 0;
    while (count < m) {
      const VertexId t =
          targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
      bool seen = false;
      for (uint32_t i = 0; i < count; ++i) seen |= (picked[i] == t);
      if (!seen) picked[count++] = t;
    }
    for (uint32_t i = 0; i < m; ++i) {
      builder.AddEdge(v, picked[i]);
      targets.push_back(v);
      targets.push_back(picked[i]);
    }
  }
  return builder.Build();
}

Graph ErdosRenyi(uint32_t num_vertices, double edge_probability, Rng* rng) {
  GraphBuilder builder(num_vertices);
  const double p = std::min(std::max(edge_probability, 0.0), 1.0);
  if (p <= 0.0 || num_vertices < 2) return builder.Build();
  if (p >= 1.0) {
    for (uint32_t u = 0; u < num_vertices; ++u)
      for (uint32_t v = u + 1; v < num_vertices; ++v) builder.AddEdge(u, v);
    return builder.Build();
  }

  // Walk the flattened upper triangle with geometric jumps: the gap to the
  // next present edge is floor(log(U) / log(1 - p)).
  const double log_q = std::log1p(-p);
  const uint64_t total =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  uint64_t index = 0;
  while (true) {
    const double u = std::max(rng->UniformDouble(), 1e-300);
    index += 1 + static_cast<uint64_t>(std::log(u) / log_q);
    if (index > total) break;
    // Map 1-based flat index back to (row, col) in the upper triangle.
    const uint64_t i = index - 1;
    const double nf = static_cast<double>(num_vertices);
    uint64_t row = static_cast<uint64_t>(
        nf - 2 - std::floor(std::sqrt(-8.0 * static_cast<double>(i) +
                                      4.0 * nf * (nf - 1) - 7.0) /
                                2.0 -
                            0.5));
    // Float round-off can land one row off; nudge into place.
    auto row_start = [num_vertices](uint64_t r) {
      return r * num_vertices - r * (r + 1) / 2;
    };
    while (row > 0 && row_start(row) > i) --row;
    while (row_start(row + 1) <= i) ++row;
    const uint64_t col = row + 1 + (i - row_start(row));
    builder.AddEdge(static_cast<VertexId>(row), static_cast<VertexId>(col));
  }
  return builder.Build();
}

Graph CollaborationNetwork(const CollaborationOptions& options, Rng* rng) {
  const uint32_t n = options.num_vertices;
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();
  const uint32_t groups =
      options.num_groups > 0 ? options.num_groups : std::max(1u, n / 8);

  // Group membership: every vertex joins one primary group, and a third of
  // vertices moonlight in a second one (overlapping communities).
  std::vector<std::vector<VertexId>> members(groups);
  for (VertexId v = 0; v < n; ++v) {
    members[rng->UniformInt(groups)].push_back(v);
    if (rng->UniformInt(3) == 0) members[rng->UniformInt(groups)].push_back(v);
  }

  // Near-clique wiring inside each group — this is where the triangles and
  // community structure come from.
  for (const auto& group : members) {
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (rng->UniformDouble() < options.within_group_probability) {
          builder.AddEdge(group[i], group[j]);
        }
      }
    }
  }

  // Sparse random cross-links keep the graph (mostly) connected.
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t k = 0; k < options.random_links_per_vertex; ++k) {
      builder.AddEdge(v, rng->UniformInt(n));
    }
  }

  // Planted cliques: guaranteed dense subgraphs for the peeling metrics.
  const uint32_t core_size = std::min(options.planted_core_size, n);
  for (uint32_t c = 0; c < options.num_planted_cores && core_size >= 2; ++c) {
    std::vector<VertexId> core(core_size);
    for (auto& v : core) v = rng->UniformInt(n);
    for (uint32_t i = 0; i + 1 < core_size; ++i)
      for (uint32_t j = i + 1; j < core_size; ++j)
        builder.AddEdge(core[i], core[j]);
  }
  return builder.Build();
}

namespace {

/// `count` strictly descending draws in (lo, hi), highest first. Sorting
/// the raw draws keeps the band guarantees while the descending order is
/// what makes every superlevel prefix of a sub-cluster connected through
/// the link-to-an-earlier-vertex backbone below.
std::vector<double> DescendingScores(uint32_t count, double lo, double hi,
                                     Rng* rng) {
  std::vector<double> scores(count);
  for (auto& s : scores) s = lo + (hi - lo) * rng->UniformDouble();
  std::sort(scores.begin(), scores.end(), std::greater<double>());
  return scores;
}

}  // namespace

CommunityGraphResult OverlappingCommunities(
    const OverlappingCommunityOptions& options, Rng* rng) {
  const uint32_t k = std::max(1u, options.num_communities);
  const uint32_t s = std::max(4u, options.vertices_per_community);
  const uint32_t subclusters = std::max(1u, options.subclusters);
  const uint32_t n = k * s;

  CommunityGraphResult result;
  result.scores.assign(k, std::vector<double>(n, 0.0));
  result.primary_community.assign(n, 0);
  result.subcluster.assign(n, kInvalidVertex);

  GraphBuilder builder(n);
  // Per community: subcluster membership in contiguous blocks, scores
  // strictly descending inside each sub-cluster (core band first, then
  // the mid band opening just below the bridge level).
  const uint32_t sub_size = s / subclusters;
  for (uint32_t c = 0; c < k; ++c) {
    const uint32_t base = c * s;
    std::vector<uint32_t> first_mid(subclusters, kInvalidVertex);
    for (uint32_t j = 0; j < subclusters; ++j) {
      const uint32_t sub_begin = base + j * sub_size;
      const uint32_t sub_end = j + 1 == subclusters ? base + s
                                                    : sub_begin + sub_size;
      const uint32_t size = sub_end - sub_begin;
      const uint32_t core =
          std::min(size, std::max(2u, static_cast<uint32_t>(
                                          size * options.core_fraction)));
      const std::vector<double> core_scores =
          DescendingScores(core, kCommunityCoreScore, 1.0, rng);
      // The mid band starts at the bridge level and decays toward the
      // community's low-score fringe.
      std::vector<double> mid_scores =
          DescendingScores(size - core, 0.3, kCommunityBridgeScore - 0.05,
                           rng);
      if (!mid_scores.empty()) mid_scores[0] = kCommunityBridgeScore;

      for (uint32_t i = 0; i < size; ++i) {
        const VertexId v = sub_begin + i;
        result.primary_community[v] = c;
        if (i < core) result.subcluster[v] = j;
        result.scores[c][v] =
            i < core ? core_scores[i] : mid_scores[i - core];
        // Backbone: every vertex links to a strictly higher-score vertex
        // of its own sub-cluster, so every superlevel prefix is
        // connected — exactly one peak per sub-cluster at any level.
        if (i > 0) builder.AddEdge(v, sub_begin + rng->UniformInt(i));
      }
      if (size > core) first_mid[j] = sub_begin + core;

      // Dense core wiring (the peak's near-clique body).
      for (uint32_t a = 0; a < core; ++a)
        for (uint32_t b = a + 1; b < core; ++b)
          if (rng->UniformDouble() < options.core_probability)
            builder.AddEdge(sub_begin + a, sub_begin + b);

      // Extra mid-band links inside the community (same or other
      // sub-cluster — all below the core level, so core peaks stay
      // disconnected).
      for (uint32_t i = core; i < size; ++i) {
        for (uint32_t l = 0; l < options.mid_links_per_vertex; ++l) {
          const VertexId w = base + rng->UniformInt(s);
          if (result.subcluster[w] == kInvalidVertex)
            builder.AddEdge(sub_begin + i, w);
        }
      }
    }
    // Bridges: consecutive sub-clusters meet at their highest mid-band
    // vertices (score == kCommunityBridgeScore), merging the community
    // into one peak below the core level.
    for (uint32_t j = 0; j + 1 < subclusters; ++j) {
      if (first_mid[j] != kInvalidVertex && first_mid[j + 1] != kInvalidVertex)
        builder.AddEdge(first_mid[j], first_mid[j + 1]);
    }
  }

  // Overlap members: the low-score tail of each community also
  // affiliates (below 0.5) with the next community and links into its
  // mid band — communities touch only through sub-threshold vertices.
  const uint32_t overlap = static_cast<uint32_t>(s * options.overlap_fraction);
  for (uint32_t c = 0; c < k && k > 1; ++c) {
    const uint32_t partner = (c + 1) % k;
    for (uint32_t i = 0; i < overlap; ++i) {
      const VertexId v = c * s + (s - 1 - i);
      result.scores[partner][v] = 0.2 + 0.2 * rng->UniformDouble();
      for (uint32_t l = 0; l < 2; ++l) {
        const VertexId w = partner * s + rng->UniformInt(s);
        if (result.subcluster[w] == kInvalidVertex) builder.AddEdge(v, w);
      }
    }
  }

  result.graph = builder.Build();
  return result;
}

RoleCommunityResult RoleCommunityGraph(const RoleCommunityOptions& options,
                                       Rng* rng) {
  const uint32_t hubs = options.num_hubs;
  const uint32_t dense = options.num_dense;
  const uint32_t periphery = options.num_periphery;
  const uint32_t whiskers = options.num_whiskers;
  const uint32_t community = hubs + dense + periphery + whiskers;
  const uint32_t n = community + options.num_background;
  const uint32_t dense_begin = hubs;
  const uint32_t periphery_begin = hubs + dense;
  const uint32_t whisker_begin = hubs + dense + periphery;

  RoleCommunityResult result;
  result.roles.assign(n, VertexRole::kBackground);
  result.community_score.assign(n, 0.0);
  result.community_vertices.resize(community);
  for (uint32_t v = 0; v < community; ++v) result.community_vertices[v] = v;

  GraphBuilder builder(n);

  // Hubs: wired to each other and to most of the dense band plus a
  // slice of the periphery (never to whiskers — whiskers must stay on
  // the core-1 fringe).
  for (uint32_t h = 0; h < hubs; ++h) {
    result.roles[h] = VertexRole::kHub;
    result.community_score[h] = 0.9 + 0.1 * rng->UniformDouble();
    for (uint32_t h2 = h + 1; h2 < hubs; ++h2) builder.AddEdge(h, h2);
    for (uint32_t d = dense_begin; d < periphery_begin; ++d)
      if (rng->UniformDouble() < options.hub_coverage) builder.AddEdge(h, d);
    for (uint32_t p = periphery_begin; p < whisker_begin; ++p)
      if (rng->UniformDouble() < options.hub_coverage * 0.5)
        builder.AddEdge(h, p);
  }

  // Dense band: a near-clique.
  for (uint32_t a = dense_begin; a < periphery_begin; ++a) {
    result.roles[a] = VertexRole::kDense;
    result.community_score[a] = 0.6 + 0.25 * rng->UniformDouble();
    for (uint32_t b = a + 1; b < periphery_begin; ++b)
      if (rng->UniformDouble() < options.dense_probability)
        builder.AddEdge(a, b);
  }

  // Periphery: a few links into the dense band each.
  for (uint32_t p = periphery_begin; p < whisker_begin; ++p) {
    result.roles[p] = VertexRole::kPeriphery;
    result.community_score[p] = 0.3 + 0.25 * rng->UniformDouble();
    for (uint32_t l = 0; l < std::max(1u, options.periphery_links); ++l)
      builder.AddEdge(p, dense_begin + rng->UniformInt(std::max(1u, dense)));
  }

  // Whiskers: length-1/2 chains hanging off the community body — every
  // whisker vertex sits in the 1-core fringe.
  VertexId chain_tail = kInvalidVertex;
  for (uint32_t w = whisker_begin; w < community; ++w) {
    result.roles[w] = VertexRole::kWhisker;
    result.community_score[w] = 0.08 + 0.17 * rng->UniformDouble();
    if (chain_tail != kInvalidVertex && rng->UniformDouble() < 0.4) {
      builder.AddEdge(w, chain_tail);  // extend the previous chain
      chain_tail = kInvalidVertex;
    } else {
      const uint32_t body = periphery > 0 ? periphery : dense;
      const uint32_t body_begin = periphery > 0 ? periphery_begin
                                                : dense_begin;
      builder.AddEdge(w, body_begin + rng->UniformInt(std::max(1u, body)));
      chain_tail = w;
    }
  }

  // Background: a sparse random-recursive-tree style fringe (each vertex
  // links to two earlier ones), loosely touching the periphery.
  for (uint32_t b = community; b < n; ++b) {
    result.community_score[b] = 0.05 * rng->UniformDouble();
    if (b == community) continue;
    const uint32_t span = b - community;
    builder.AddEdge(b, community + rng->UniformInt(span));
    builder.AddEdge(b, community + rng->UniformInt(span));
    if (periphery > 0 && rng->UniformDouble() < 0.05)
      builder.AddEdge(b, periphery_begin + rng->UniformInt(periphery));
  }

  result.graph = builder.Build();
  return result;
}

}  // namespace graphscape
