// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "gen/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"

namespace graphscape {

namespace {

// Provenance rows (Table I order). paper_* are the public SNAP stats of
// the mimicked network; paper_avg_cc values are approximate, recorded to
// one's place of the published figures.
const DatasetSpec kSpecs[] = {
    {DatasetId::kGrQc, "GrQc", "ca-GrQc", 5242, 14496, 0.53, 1, 1001},
    {DatasetId::kWikiVote, "WikiVote", "wiki-Vote", 7115, 103689, 0.14, 2,
     1002},
    {DatasetId::kPPI, "PPI", "bio-PPI", 3890, 76584, 0.15, 1, 1003},
    {DatasetId::kAstro, "Astro", "ca-AstroPh", 18772, 198110, 0.63, 8, 1004},
    {DatasetId::kDBLP, "DBLP", "com-DBLP", 317080, 1049866, 0.63, 64, 1005},
    {DatasetId::kAmazon, "Amazon", "com-Amazon", 334863, 925872, 0.40, 64,
     1006},
    {DatasetId::kWikipedia, "Wikipedia", "wiki-Talk", 2394385, 5021410, 0.05,
     512, 1007},
    {DatasetId::kCitPatent, "CitPatent", "cit-Patents", 3774768, 16518948,
     0.08, 1024, 1008},
};

// Scaling holds average degree constant while dividing the vertex count,
// so edges shrink by ~1/divisor alongside nodes.
uint32_t ScaledVertexCount(const DatasetSpec& spec, uint32_t divisor) {
  const uint64_t n = spec.paper_nodes / std::max(1u, divisor);
  return static_cast<uint32_t>(std::max<uint64_t>(n, 64));
}

double TargetAverageDegree(const DatasetSpec& spec) {
  return 2.0 * static_cast<double>(spec.paper_edges) /
         static_cast<double>(spec.paper_nodes);
}

// Collaboration-class stand-in (GrQc/Astro/DBLP/Amazon): near-clique
// groups sized so that expected within-group degree plus 2·random_links
// hits the target. Each vertex holds ~4/3 group memberships
// (gen/generators.cc), hence the 3/(4p) inversion. The high-clustering
// networks pass random_links = 0 — every random cross-link dilutes
// triangle density, and the overlapping memberships already provide the
// inter-group connectivity.
Graph MakeCollaborationStandIn(uint32_t n, double target_deg, double within_p,
                               uint32_t planted_cores, uint32_t random_links,
                               Rng* rng) {
  CollaborationOptions options;
  options.num_vertices = n;
  const double within_deg = std::max(0.5, target_deg - 2.0 * random_links);
  const double group_size = 1.0 + 3.0 * within_deg / (4.0 * within_p);
  options.num_groups = std::max(
      1u, static_cast<uint32_t>(std::lround(4.0 * n / (3.0 * group_size))));
  options.within_group_probability = within_p;
  options.random_links_per_vertex = random_links;
  options.num_planted_cores = planted_cores;
  options.planted_core_size = std::min(16u, std::max(4u, n / 64));
  return CollaborationNetwork(options, rng);
}

// Vote/citation-class stand-in: preferential attachment with bursty
// per-vertex attachment counts. One vertex in `kBurstEvery` attaches
// `kBurstFactor`x as many edges, which fattens the degree tail beyond
// uniform BA (hub-heavy, low clustering — the wiki-Vote / cit-Patents
// shape) while keeping E[degree] = 2 * m_base * (1 + (factor-1)/every).
Graph MakeSkewedPreferentialStandIn(uint32_t n, double target_deg, Rng* rng) {
  constexpr uint32_t kBurstEvery = 8;
  constexpr uint32_t kBurstFactor = 8;
  constexpr double kMeanMultiplier =
      1.0 + static_cast<double>(kBurstFactor - 1) / kBurstEvery;
  const double mean_m = target_deg / 2.0 / kMeanMultiplier;
  const uint32_t m_base =
      std::max(1u, static_cast<uint32_t>(std::lround(mean_m)));

  GraphBuilder builder(n);
  std::vector<VertexId> targets;  // degree-proportional sampling pool
  targets.reserve(static_cast<size_t>(2.0 * kMeanMultiplier * m_base * n));

  // Seed clique large enough that even a burst vertex can find distinct
  // attachment targets right away.
  const uint32_t seed_size = std::min(n, 2 * m_base * kBurstFactor + 2);
  for (uint32_t u = 0; u < seed_size; ++u) {
    for (uint32_t v = u + 1; v < seed_size; ++v) {
      if (v == u + 1 || rng->UniformInt(seed_size) < 2) {
        builder.AddEdge(u, v);
        targets.push_back(u);
        targets.push_back(v);
      }
    }
  }

  std::vector<VertexId> picked;
  for (uint32_t v = seed_size; v < n; ++v) {
    uint32_t m = m_base;
    if (rng->UniformInt(kBurstEvery) == 0) m *= kBurstFactor;
    m = std::min(m, v / 2 + 1);
    picked.assign(m, kInvalidVertex);
    uint32_t count = 0;
    while (count < m) {
      const VertexId t =
          targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
      bool seen = false;
      for (uint32_t i = 0; i < count; ++i) seen |= (picked[i] == t);
      if (!seen) picked[count++] = t;
    }
    for (uint32_t i = 0; i < m; ++i) {
      builder.AddEdge(v, picked[i]);
      targets.push_back(v);
      targets.push_back(picked[i]);
    }
  }
  return builder.Build();
}

// PPI-class stand-in: an Erdős–Rényi backbone carrying ~60% of the
// target degree, overlaid with one near-clique community per vertex
// carrying the rest — random interaction background plus protein
// complexes, which is where PPI clustering comes from.
Graph MakeErWithCommunitiesStandIn(uint32_t n, double target_deg, Rng* rng) {
  constexpr double kErFraction = 0.5;
  constexpr double kWithinProbability = 0.5;
  const double p_er =
      std::min(1.0, kErFraction * target_deg / std::max(1u, n - 1));
  const Graph er = ErdosRenyi(n, p_er, rng);

  GraphBuilder builder(n);
  builder.Reserve(static_cast<size_t>(target_deg * n));
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : er.Neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }

  // Members needed so p_within of them supply the non-ER degree share.
  const double size_target =
      (1.0 - kErFraction) * target_deg / kWithinProbability + 1.0;
  const uint32_t community_size =
      std::max(3u, static_cast<uint32_t>(std::lround(size_target)));
  const uint32_t num_communities = std::max(1u, n / community_size);
  std::vector<std::vector<VertexId>> members(num_communities);
  for (VertexId v = 0; v < n; ++v) {
    members[rng->UniformInt(num_communities)].push_back(v);
  }
  for (const auto& community : members) {
    for (size_t i = 0; i + 1 < community.size(); ++i) {
      for (size_t j = i + 1; j < community.size(); ++j) {
        if (rng->UniformDouble() < kWithinProbability) {
          builder.AddEdge(community[i], community[j]);
        }
      }
    }
  }
  return builder.Build();
}

}  // namespace

const std::vector<DatasetId>& AllDatasetIds() {
  static const std::vector<DatasetId> kIds = [] {
    std::vector<DatasetId> ids;
    for (const DatasetSpec& spec : kSpecs) ids.push_back(spec.id);
    return ids;
  }();
  return kIds;
}

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  throw std::invalid_argument("GetDatasetSpec: unknown DatasetId");
}

Dataset MakeDataset(DatasetId id, const DatasetOptions& options) {
  const DatasetSpec& spec = GetDatasetSpec(id);
  const uint32_t divisor =
      options.scale_divisor != 0 ? options.scale_divisor : spec.default_divisor;
  const uint64_t seed = options.seed != 0 ? options.seed : spec.default_seed;
  const uint32_t n = ScaledVertexCount(spec, divisor);
  const double target_deg = TargetAverageDegree(spec);
  Rng rng(seed);

  Graph graph;
  switch (id) {
    case DatasetId::kGrQc:
      graph = MakeCollaborationStandIn(n, target_deg, 0.7, 2, 0, &rng);
      break;
    case DatasetId::kAstro:
      graph = MakeCollaborationStandIn(n, target_deg, 0.7, 3, 0, &rng);
      break;
    case DatasetId::kDBLP:
      graph = MakeCollaborationStandIn(n, target_deg, 0.7, 2, 0, &rng);
      break;
    case DatasetId::kAmazon:
      graph = MakeCollaborationStandIn(n, target_deg, 0.5, 1, 0, &rng);
      break;
    case DatasetId::kPPI:
      graph = MakeErWithCommunitiesStandIn(n, target_deg, &rng);
      break;
    case DatasetId::kWikiVote:
    case DatasetId::kCitPatent:
      graph = MakeSkewedPreferentialStandIn(n, target_deg, &rng);
      break;
    case DatasetId::kWikipedia: {
      // Plain preferential attachment: the hub tail is the point (this is
      // the dataset whose naive edge-tree cell the paper clocks at 16334s).
      const uint32_t m =
          std::max(1u, static_cast<uint32_t>(std::lround(target_deg / 2.0)));
      graph = BarabasiAlbert(n, m, &rng);
      break;
    }
  }
  return Dataset{spec, divisor, std::move(graph)};
}

}  // namespace graphscape
