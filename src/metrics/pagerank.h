// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// PageRank over the undirected graph (each edge walked both ways) by power
// iteration on two flat double arrays. Isolated vertices act as dangling
// nodes: their mass is redistributed uniformly so the vector keeps summing
// to 1.

#ifndef GRAPHSCAPE_METRICS_PAGERANK_H_
#define GRAPHSCAPE_METRICS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace graphscape {

struct PageRankOptions {
  double damping = 0.85;
  uint32_t max_iterations = 50;
  double tolerance = 1e-10;  ///< L1 change threshold for early exit.
};

std::vector<double> PageRank(const Graph& g,
                             const PageRankOptions& options = {});

/// PageRank with the per-iteration gather parallelized — BIT-IDENTICAL
/// to PageRank for every thread count. The sequential kernel pushes
/// `damping * rank[v] / deg(v)` from each v in ascending order, so
/// next[u] accumulates its neighbors' shares in ascending neighbor
/// order; the pull form computes next[u] by iterating u's (sorted) CSR
/// run — the exact same additions in the exact same order, with u's
/// independent of each other. The dangling-mass and L1-delta folds stay
/// sequential (O(n), and a tree reduction would reorder them).
std::vector<double> PageRankParallel(const Graph& g,
                                     const PageRankOptions& options = {},
                                     const ParallelOptions& parallel = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_PAGERANK_H_
