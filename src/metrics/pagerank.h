// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// PageRank over the undirected graph (each edge walked both ways) by power
// iteration on two flat double arrays. Isolated vertices act as dangling
// nodes: their mass is redistributed uniformly so the vector keeps summing
// to 1.

#ifndef GRAPHSCAPE_METRICS_PAGERANK_H_
#define GRAPHSCAPE_METRICS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

struct PageRankOptions {
  double damping = 0.85;
  uint32_t max_iterations = 50;
  double tolerance = 1e-10;  ///< L1 change threshold for early exit.
};

std::vector<double> PageRank(const Graph& g,
                             const PageRankOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_PAGERANK_H_
