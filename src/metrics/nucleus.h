// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// (3,4)-nucleus decomposition (Sariyuce et al.), the top rung of the
// paper's dense-subgraph ladder: triangles are the cells, 4-cliques supply
// the support. Peeling mirrors K-Truss one level up — remove the
// minimum-support triangle, demote the other three triangles of every
// 4-clique it completed, provided that clique is still intact.

#ifndef GRAPHSCAPE_METRICS_NUCLEUS_H_
#define GRAPHSCAPE_METRICS_NUCLEUS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

struct NucleusDecomposition {
  /// Each triangle as an ascending vertex triple.
  std::vector<std::array<VertexId, 3>> triangles;
  /// nucleus_numbers[t] = 4-clique support of triangle t when peeled.
  std::vector<uint32_t> nucleus_numbers;
};

/// Requires g.NumVertices() < 2^21 (triple keys pack into 64 bits);
/// throws std::invalid_argument otherwise, in every build type.
NucleusDecomposition Nucleus34(const Graph& g);

/// Nucleus values lifted from triangles to edges: for each edge (in
/// EdgeList order), the maximum nucleus number over the triangles that
/// contain it, 0 for triangle-free edges. This is the per-edge scalar
/// field the paper's Fig. 7 dense-subgraph terrains consume.
std::vector<uint32_t> NucleusEdgeNumbers(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_NUCLEUS_H_
