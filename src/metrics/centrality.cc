// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/centrality.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace graphscape {

std::vector<double> BetweennessCentrality(const Graph& g,
                                          const BetweennessOptions& options) {
  const uint32_t n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;

  const bool exact = options.num_samples >= n;
  const uint32_t samples = exact ? n : options.num_samples;
  const double scale =
      (exact ? 1.0 : static_cast<double>(n) / samples) * 0.5;

  // Sources: all vertices when exact, otherwise a uniform sample without
  // replacement (partial Fisher-Yates over the id array).
  std::vector<VertexId> sources(n);
  std::iota(sources.begin(), sources.end(), 0u);
  if (!exact) {
    Rng rng(options.seed);
    for (uint32_t i = 0; i < samples; ++i) {
      const uint32_t j = i + rng.UniformInt(n - i);
      std::swap(sources[i], sources[j]);
    }
    sources.resize(samples);
  }

  // Flat per-BFS state, reused across sources.
  std::vector<VertexId> queue(n);
  std::vector<VertexId> stack_order(n);
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);

  for (const VertexId s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    dist[s] = 0;
    sigma[s] = 1.0;
    uint32_t head = 0, tail = 0;
    queue[tail++] = s;
    uint32_t visited = 0;
    while (head < tail) {
      const VertexId v = queue[head++];
      stack_order[visited++] = v;
      for (const VertexId u : g.Neighbors(v)) {
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          queue[tail++] = u;
        }
        if (dist[u] == dist[v] + 1) sigma[u] += sigma[v];
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (uint32_t i = visited; i-- > 0;) {
      const VertexId v = stack_order[i];
      for (const VertexId u : g.Neighbors(v)) {
        if (dist[u] == dist[v] + 1) {
          delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
        }
      }
      if (v != s) centrality[v] += delta[v] * scale;
    }
  }
  return centrality;
}

std::vector<double> DegreeCentrality(const Graph& g) {
  std::vector<double> degree(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v)
    degree[v] = static_cast<double>(g.Degree(v));
  return degree;
}

}  // namespace graphscape
