// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/nucleus.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/bucket_peel.h"
#include "graph/edge_index.h"
#include "graph/intersect.h"

namespace graphscape {
namespace {

inline uint64_t PackTriple(VertexId a, VertexId b, VertexId c) {
  // Callers pass ascending triples; 3 x 21 bits.
  return (static_cast<uint64_t>(a) << 42) | (static_cast<uint64_t>(b) << 21) |
         static_cast<uint64_t>(c);
}

}  // namespace

NucleusDecomposition Nucleus34(const Graph& g) {
  // Hard precondition, enforced in every build type: beyond 2^21 vertices
  // the packed triple keys would overlap and silently corrupt the
  // decomposition.
  if (g.NumVertices() >= (1u << 21)) {
    throw std::invalid_argument(
        "Nucleus34: graph has >= 2^21 vertices; triangle keys would "
        "overflow their 3x21-bit packing");
  }
  NucleusDecomposition result;

  // Enumerate and index all triangles (ascending triples).
  std::unordered_map<uint64_t, uint32_t> id_of;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (v <= u) continue;
      ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
        if (w > v) {
          const uint32_t id = static_cast<uint32_t>(result.triangles.size());
          result.triangles.push_back({u, v, w});
          id_of.emplace(PackTriple(u, v, w), id);
        }
      });
    }
  }

  // Support = 4-cliques per triangle: a count-only 3-way intersection,
  // so the tally skips the per-element callback entirely.
  const uint32_t t = static_cast<uint32_t>(result.triangles.size());
  std::vector<uint32_t> support(t, 0);
  for (uint32_t i = 0; i < t; ++i) {
    const auto& tri = result.triangles[i];
    support[i] = CountCommonNeighbors(g, tri[0], tri[1], tri[2]);
  }

  BucketPeeler peeler(&support);
  std::vector<char> peeled(t, 0);
  result.nucleus_numbers.assign(t, 0);
  auto triangle_id = [&](VertexId a, VertexId b, VertexId c) {
    VertexId x = a, y = b, z = c;
    if (x > y) std::swap(x, y);
    if (y > z) std::swap(y, z);
    if (x > y) std::swap(x, y);
    return id_of.find(PackTriple(x, y, z))->second;
  };

  for (uint32_t k = 0; k < t; ++k) {
    const uint32_t i = peeler.ItemAt(k);
    const uint32_t level = support[i];
    result.nucleus_numbers[i] = level;
    peeled[i] = 1;
    const auto& tri = result.triangles[i];
    ForEachCommonNeighbor(g, tri[0], tri[1], tri[2], [&](VertexId d) {
      // 4-clique {tri, d}: demote its other three triangles iff all are
      // still present (otherwise the clique was already destroyed).
      const uint32_t t1 = triangle_id(tri[0], tri[1], d);
      const uint32_t t2 = triangle_id(tri[0], tri[2], d);
      const uint32_t t3 = triangle_id(tri[1], tri[2], d);
      if (peeled[t1] || peeled[t2] || peeled[t3]) return;
      peeler.Demote(t1, level);
      peeler.Demote(t2, level);
      peeler.Demote(t3, level);
    });
  }
  return result;
}

std::vector<uint32_t> NucleusEdgeNumbers(const Graph& g) {
  const NucleusDecomposition decomposition = Nucleus34(g);
  const EdgeIndex index(g);
  std::vector<uint32_t> edge_values(index.NumEdges(), 0);
  for (size_t i = 0; i < decomposition.triangles.size(); ++i) {
    const auto& tri = decomposition.triangles[i];
    const uint32_t value = decomposition.nucleus_numbers[i];
    for (const uint32_t e : {index.EdgeId(tri[0], tri[1]),
                             index.EdgeId(tri[0], tri[2]),
                             index.EdgeId(tri[1], tri[2])}) {
      edge_values[e] = std::max(edge_values[e], value);
    }
  }
  return edge_values;
}

}  // namespace graphscape
