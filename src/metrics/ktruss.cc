// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/ktruss.h"

#include <algorithm>

#include "common/bucket_peel.h"
#include "common/parallel.h"
#include "graph/edge_index.h"
#include "graph/intersect.h"

namespace graphscape {

std::vector<std::pair<VertexId, VertexId>> EdgeList(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(g.NumEdges());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

namespace {

// The peel proper, after the support-counting pass. Order-serial: each
// peel demotes surviving edges, which decides who peels next.
std::vector<uint32_t> PeelBySupport(const Graph& g, const EdgeIndex& index,
                                    std::vector<uint32_t>* support_in);

// Support = triangles per edge; one independent count-only sorted-run
// intersection per edge (SIMD/galloping, no callback), so the parallel
// variant reuses this body verbatim.
std::vector<uint32_t> CountSupport(const Graph& g, const EdgeIndex& index,
                                   const ParallelOptions& options) {
  std::vector<uint32_t> support(index.NumEdges(), 0);
  ParallelFor(0, support.size(), options, [&](uint64_t e) {
    support[e] = CountCommonNeighbors(g, index.U(static_cast<uint32_t>(e)),
                                      index.V(static_cast<uint32_t>(e)));
  });
  return support;
}

}  // namespace

std::vector<uint32_t> TrussNumbers(const Graph& g) {
  const EdgeIndex index(g);
  std::vector<uint32_t> support = CountSupport(g, index, {1, 0});
  return PeelBySupport(g, index, &support);
}

std::vector<uint32_t> TrussNumbersParallel(const Graph& g,
                                           const ParallelOptions& options) {
  const EdgeIndex index(g);
  std::vector<uint32_t> support = CountSupport(g, index, options);
  return PeelBySupport(g, index, &support);
}

namespace {

std::vector<uint32_t> PeelBySupport(const Graph& g, const EdgeIndex& index,
                                    std::vector<uint32_t>* support_in) {
  std::vector<uint32_t>& support = *support_in;
  const uint32_t m = index.NumEdges();
  BucketPeeler peeler(&support);
  std::vector<char> peeled(m, 0);
  std::vector<uint32_t> truss(m, 2);
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t e = peeler.ItemAt(i);
    const uint32_t level = support[e];
    truss[e] = level + 2;
    peeled[e] = 1;
    const VertexId u = index.U(e), v = index.V(e);
    ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
      const uint32_t e1 = index.EdgeId(u, w);
      const uint32_t e2 = index.EdgeId(v, w);
      // The triangle {u, v, w} only still supports e1/e2 if neither has
      // been peeled away already.
      if (!peeled[e1] && !peeled[e2]) {
        peeler.Demote(e1, level);
        peeler.Demote(e2, level);
      }
    });
  }
  return truss;
}

}  // namespace

}  // namespace graphscape
