// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/ktruss.h"

#include <algorithm>

#include "common/bucket_peel.h"
#include "graph/intersect.h"

namespace graphscape {
namespace {

// Edge ids live on the directed CSR slots: slot_eid[s] is the undirected
// edge id of the s-th adjacency entry. Built in one forward pass (u < v
// mints the id) plus a binary-search copy for the reverse direction.
std::vector<uint32_t> SlotEdgeIds(const Graph& g, uint32_t* num_edges) {
  const uint32_t n = g.NumVertices();
  const std::vector<uint32_t>& offsets = g.Offsets();
  const std::vector<VertexId>& adj = g.Adjacency();
  std::vector<uint32_t> slot_eid(adj.size());
  uint32_t next = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t s = offsets[u]; s < offsets[u + 1]; ++s) {
      const VertexId v = adj[s];
      if (u < v) {
        slot_eid[s] = next++;
      } else {
        // v < u, so v's run already minted the id; find u's slot in it.
        const VertexId* lo = adj.data() + offsets[v];
        const VertexId* hi = adj.data() + offsets[v + 1];
        const VertexId* it = std::lower_bound(lo, hi, u);
        slot_eid[s] = slot_eid[static_cast<uint32_t>(it - adj.data())];
      }
    }
  }
  *num_edges = next;
  return slot_eid;
}

}  // namespace

std::vector<std::pair<VertexId, VertexId>> EdgeList(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(g.NumEdges());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<uint32_t> TrussNumbers(const Graph& g) {
  const uint32_t n = g.NumVertices();
  const std::vector<uint32_t>& offsets = g.Offsets();
  const std::vector<VertexId>& adj = g.Adjacency();
  uint32_t m = 0;
  const std::vector<uint32_t> slot_eid = SlotEdgeIds(g, &m);

  // Endpoints per edge id.
  std::vector<VertexId> eu(m), ev(m);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t s = offsets[u]; s < offsets[u + 1]; ++s) {
      if (u < adj[s]) {
        eu[slot_eid[s]] = u;
        ev[slot_eid[s]] = adj[s];
      }
    }
  }

  auto edge_id = [&](VertexId a, VertexId b) {
    const VertexId x = std::min(a, b), y = std::max(a, b);
    const VertexId* lo = adj.data() + offsets[x];
    const VertexId* hi = adj.data() + offsets[x + 1];
    const VertexId* it = std::lower_bound(lo, hi, y);
    return slot_eid[static_cast<uint32_t>(it - adj.data())];
  };

  // Support = triangles per edge.
  std::vector<uint32_t> support(m, 0);
  for (uint32_t e = 0; e < m; ++e) {
    uint32_t s = 0;
    ForEachCommonNeighbor(g, eu[e], ev[e], [&s](VertexId) { ++s; });
    support[e] = s;
  }

  BucketPeeler peeler(&support);
  std::vector<char> peeled(m, 0);
  std::vector<uint32_t> truss(m, 2);
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t e = peeler.ItemAt(i);
    const uint32_t level = support[e];
    truss[e] = level + 2;
    peeled[e] = 1;
    const VertexId u = eu[e], v = ev[e];
    ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
      const uint32_t e1 = edge_id(u, w);
      const uint32_t e2 = edge_id(v, w);
      // The triangle {u, v, w} only still supports e1/e2 if neither has
      // been peeled away already.
      if (!peeled[e1] && !peeled[e2]) {
        peeler.Demote(e1, level);
        peeler.Demote(e2, level);
      }
    });
  }
  return truss;
}

}  // namespace graphscape
