// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/kcore.h"

#include "common/bucket_peel.h"

namespace graphscape {

std::vector<uint32_t> CoreNumbers(const Graph& g) {
  const uint32_t n = g.NumVertices();
  // Degrees double as the live support array; core[v] is v's degree at the
  // moment it is peeled.
  std::vector<uint32_t> degree(n);
  for (uint32_t v = 0; v < n; ++v) degree[v] = g.Degree(v);
  BucketPeeler peeler(&degree);

  std::vector<uint32_t> core(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = peeler.ItemAt(i);
    const uint32_t level = degree[v];
    core[v] = level;
    // Already-peeled neighbors sit at their (lower) peel level, so the
    // floor makes demotion skip them.
    for (const VertexId u : g.Neighbors(v)) peeler.Demote(u, level);
  }
  return core;
}

}  // namespace graphscape
