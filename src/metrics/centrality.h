// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Betweenness centrality via Brandes' dependency accumulation on sampled
// BFS sources (unweighted). With num_samples >= n it degenerates to the
// exact algorithm; otherwise each sampled source's contribution is scaled
// by n / num_samples, the standard unbiased estimator.

#ifndef GRAPHSCAPE_METRICS_CENTRALITY_H_
#define GRAPHSCAPE_METRICS_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

struct BetweennessOptions {
  uint32_t num_samples = 64;  ///< >= NumVertices() means exact (all sources).
  uint64_t seed = 1;
};

/// Undirected betweenness (each unordered pair counted once).
std::vector<double> BetweennessCentrality(
    const Graph& g, const BetweennessOptions& options = {});

/// Degree centrality as a double field — the comparison column of the
/// paper's Fig. 10/13 correlation study (§III-C).
std::vector<double> DegreeCentrality(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_CENTRALITY_H_
