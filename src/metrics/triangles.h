// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Triangle counting via degree-ordered forward intersection: each triangle
// {a, b, c} is found exactly once from its lowest-order vertex, and every
// intersection is a merge of two sorted CSR runs — sequential reads only.

#ifndef GRAPHSCAPE_METRICS_TRIANGLES_H_
#define GRAPHSCAPE_METRICS_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

/// Total number of triangles in g.
uint64_t CountTriangles(const Graph& g);

/// Per-vertex triangle participation counts.
std::vector<uint32_t> VertexTriangleCounts(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_TRIANGLES_H_
