// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Triangle counting via degree-ordered forward intersection: each triangle
// {a, b, c} is found exactly once from its lowest-order vertex, and every
// intersection is a merge of two sorted CSR runs — sequential reads only.

#ifndef GRAPHSCAPE_METRICS_TRIANGLES_H_
#define GRAPHSCAPE_METRICS_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace graphscape {

/// Total number of triangles in g.
uint64_t CountTriangles(const Graph& g);

/// Per-vertex triangle participation counts.
std::vector<uint32_t> VertexTriangleCounts(const Graph& g);

/// CountTriangles over the pool: pivot vertices are enumerated in
/// parallel blocks whose integer partials are summed in fixed block
/// order — EQUAL to CountTriangles for every thread count (integer
/// addition has no rounding to reorder).
uint64_t CountTrianglesParallel(const Graph& g,
                                const ParallelOptions& options = {});

/// VertexTriangleCounts over the pool: each lane accumulates into its
/// own n-sized count arena (a triangle's three increments land wherever
/// the pivot's lane is), then the arenas are reduced per vertex in fixed
/// lane order. EQUAL to VertexTriangleCounts for every thread count.
/// Memory: lanes x n uint32 scratch.
std::vector<uint32_t> VertexTriangleCountsParallel(
    const Graph& g, const ParallelOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_TRIANGLES_H_
