// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// K-Core decomposition — the paper's workhorse vertex scalar field (§III).
//
// Batagelj–Zaversnik bucket peeling: vertices bin-sorted by degree, peeled
// in nondecreasing order, each neighbor demotion is an O(1) swap inside the
// flat position/bucket arrays. O(n + m) total, four uint32 arrays, no heap
// traffic after setup.

#ifndef GRAPHSCAPE_METRICS_KCORE_H_
#define GRAPHSCAPE_METRICS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

/// core[v] = largest k such that v belongs to the k-core.
std::vector<uint32_t> CoreNumbers(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_KCORE_H_
