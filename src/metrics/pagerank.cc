// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/pagerank.h"

#include <cmath>

namespace graphscape {

std::vector<double> PageRank(const Graph& g, const PageRankOptions& options) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return {};
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) dangling += rank[v];
    }
    const double base = (1.0 - options.damping) * inv_n +
                        options.damping * dangling * inv_n;
    for (uint32_t v = 0; v < n; ++v) next[v] = base;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t d = g.Degree(v);
      if (d == 0) continue;
      const double share = options.damping * rank[v] / d;
      for (const VertexId u : g.Neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (uint32_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace graphscape
