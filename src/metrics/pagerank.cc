// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/pagerank.h"

#include <cmath>

namespace graphscape {

std::vector<double> PageRank(const Graph& g, const PageRankOptions& options) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return {};
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) dangling += rank[v];
    }
    const double base = (1.0 - options.damping) * inv_n +
                        options.damping * dangling * inv_n;
    for (uint32_t v = 0; v < n; ++v) next[v] = base;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t d = g.Degree(v);
      if (d == 0) continue;
      const double share = options.damping * rank[v] / d;
      for (const VertexId u : g.Neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (uint32_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

std::vector<double> PageRankParallel(const Graph& g,
                                     const PageRankOptions& options,
                                     const ParallelOptions& parallel) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return {};
  if (EffectiveLanes(parallel, n) <= 1) return PageRank(g, options);
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);
  double* rank_data = rank.data();
  double* next_data = next.data();

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) dangling += rank_data[v];
    }
    const double base = (1.0 - options.damping) * inv_n +
                        options.damping * dangling * inv_n;
    // Pull form of the push loop above: next[u] receives the same
    // `damping * rank[v] / deg(v)` terms in the same ascending-neighbor
    // order (CSR runs are sorted), so each sum is bit-identical — and
    // the u's are independent, hence the parallel loop.
    ParallelFor(0, n, parallel, [&, base](uint64_t u) {
      double acc = base;
      for (const VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
        acc += options.damping * rank_data[v] / g.Degree(v);
      }
      next_data[u] = acc;
    });
    double delta = 0.0;
    for (uint32_t v = 0; v < n; ++v)
      delta += std::abs(next_data[v] - rank_data[v]);
    rank.swap(next);
    std::swap(rank_data, next_data);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace graphscape
