// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Local clustering coefficients — the structural fingerprint Table I keys
// its dataset rows by, and a vertex scalar field in its own right (fig10).
//
// cc(v) = 2·t(v) / (deg(v)·(deg(v)−1)) where t(v) is the number of
// triangles through v; vertices of degree < 2 report 0 (the networkx
// convention, so averages are comparable). The exact path reuses the
// degree-ordered CSR intersection kernel behind VertexTriangleCounts —
// O(Σ deg²) worst case, sequential sorted-run merges in practice. The
// sampled path bounds that cost for huge graphs: it computes cc exactly
// on a uniform without-replacement vertex sample, an unbiased estimator
// of the exact average.

#ifndef GRAPHSCAPE_METRICS_CLUSTERING_H_
#define GRAPHSCAPE_METRICS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace graphscape {

/// cc(v) for every vertex, exact.
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Exact average of cc(v) over all vertices (0 for an empty graph).
double AverageClusteringCoefficient(const Graph& g);

/// LocalClusteringCoefficients over the pool — BIT-IDENTICAL to the
/// sequential result for every thread count: triangle counts come from
/// VertexTriangleCountsParallel (exact integers) and each cc(v) is a
/// pure function of (t(v), deg(v)).
std::vector<double> LocalClusteringCoefficientsParallel(
    const Graph& g, const ParallelOptions& options = {});

/// Average over the parallel coefficients. The final fold stays a
/// sequential left-to-right accumulate over v — the same op order as
/// AverageClusteringCoefficient, hence bit-identical to it.
double AverageClusteringCoefficientParallel(
    const Graph& g, const ParallelOptions& options = {});

/// Unbiased estimate of AverageClusteringCoefficient from cc computed
/// exactly on `num_samples` vertices drawn uniformly without replacement
/// (partial Fisher–Yates). num_samples >= NumVertices() degrades to the
/// exact average.
double SampledAverageClusteringCoefficient(const Graph& g,
                                           uint32_t num_samples, Rng* rng);

/// Transitivity: 3·(#triangles) / (#wedges). Not the same statistic as
/// the average local coefficient — hub-heavy graphs typically score much
/// lower here. 0 if the graph has no wedges.
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_CLUSTERING_H_
