// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// K-Truss decomposition — the paper's edge scalar field for dense-subgraph
// terrains (§III, Fig. 7).
//
// Support counting via sorted-run intersection, then the same bucket-peel
// discipline as kcore.h applied to edges: peel the minimum-support edge,
// demote the two surviving edges of each of its triangles with O(1) bucket
// swaps. truss[e] = (support when peeled) + 2, so an edge in a k-truss but
// no (k+1)-truss reports k.

#ifndef GRAPHSCAPE_METRICS_KTRUSS_H_
#define GRAPHSCAPE_METRICS_KTRUSS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace graphscape {

/// Unique undirected edges {u < v} in CSR order (ascending u, then v).
/// Defines the edge indexing shared by TrussNumbers and EdgeScalarField.
std::vector<std::pair<VertexId, VertexId>> EdgeList(const Graph& g);

/// truss[e] for every edge in EdgeList order; values are >= 2.
std::vector<uint32_t> TrussNumbers(const Graph& g);

/// TrussNumbers with the support-counting pass (the dominant cost — one
/// sorted-run intersection per edge, disjoint writes) on the pool; the
/// bucket peel itself is inherently order-serial and stays sequential.
/// EQUAL output to TrussNumbers for every thread count.
std::vector<uint32_t> TrussNumbersParallel(const Graph& g,
                                           const ParallelOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_METRICS_KTRUSS_H_
