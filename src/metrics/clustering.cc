// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/clustering.h"

#include <algorithm>
#include <numeric>

#include "graph/intersect.h"
#include "metrics/triangles.h"

namespace graphscape {

namespace {

double Coefficient(uint64_t triangles, uint64_t degree) {
  if (degree < 2) return 0.0;
  return 2.0 * static_cast<double>(triangles) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

// Exact triangle count through one vertex: every triangle {v, u, w}
// contributes w to the common-neighbor intersection of two sorted CSR
// runs, and is seen twice (once from each of v's two incident edges in
// it). Count-only, so it rides the SIMD/galloping kernels.
uint64_t TrianglesThrough(const Graph& g, VertexId v) {
  uint64_t twice = 0;
  for (const VertexId u : g.Neighbors(v)) {
    twice += CountCommonNeighbors(g, v, u);
  }
  return twice / 2;
}

}  // namespace

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  const std::vector<uint32_t> triangles = VertexTriangleCounts(g);
  const uint32_t n = g.NumVertices();
  std::vector<double> cc(n);
  for (VertexId v = 0; v < n; ++v) {
    cc[v] = Coefficient(triangles[v], g.Degree(v));
  }
  return cc;
}

double AverageClusteringCoefficient(const Graph& g) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return 0.0;
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  return std::accumulate(cc.begin(), cc.end(), 0.0) / n;
}

std::vector<double> LocalClusteringCoefficientsParallel(
    const Graph& g, const ParallelOptions& options) {
  const std::vector<uint32_t> triangles =
      VertexTriangleCountsParallel(g, options);
  const uint32_t n = g.NumVertices();
  std::vector<double> cc(n);
  ParallelFor(0, n, options, [&](uint64_t v) {
    cc[v] = Coefficient(triangles[v], g.Degree(static_cast<VertexId>(v)));
  });
  return cc;
}

double AverageClusteringCoefficientParallel(const Graph& g,
                                            const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return 0.0;
  const std::vector<double> cc =
      LocalClusteringCoefficientsParallel(g, options);
  // Sequential fold in v order — the exact op order of the sequential
  // average, so the two are bit-identical.
  return std::accumulate(cc.begin(), cc.end(), 0.0) / n;
}

double SampledAverageClusteringCoefficient(const Graph& g,
                                           uint32_t num_samples, Rng* rng) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return 0.0;
  const uint32_t k = std::min(num_samples, n);
  if (k == 0) return 0.0;

  // Partial Fisher–Yates: after i swaps, pool[0..i) is a uniform
  // without-replacement sample.
  std::vector<VertexId> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  double sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + rng->UniformInt(n - i);
    std::swap(pool[i], pool[j]);
    const VertexId v = pool[i];
    sum += Coefficient(TrianglesThrough(g, v), g.Degree(v));
  }
  return sum / k;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    if (d >= 2) wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

}  // namespace graphscape
