// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/triangles.h"

#include "graph/intersect.h"

namespace graphscape {
namespace {

// Degree order with id tie-break; orienting edges low -> high makes the
// out-degree of every vertex O(sqrt(m)) on any graph.
inline bool Before(const std::vector<uint32_t>& deg, VertexId a, VertexId b) {
  return deg[a] < deg[b] || (deg[a] == deg[b] && a < b);
}

// All triangles whose degree-least (pivot) vertex is u. The parallel
// variants partition work by pivot: every triangle fires exactly once,
// in the block containing its pivot.
template <typename OnTriangle>
void TrianglesFromPivot(const Graph& g, const std::vector<uint32_t>& deg,
                        VertexId u, OnTriangle&& on_triangle) {
  for (const VertexId v : g.Neighbors(u)) {
    if (!Before(deg, u, v)) continue;
    // Keep only w "after" v so each triangle fires once, from its
    // degree-least vertex u.
    ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
      if (Before(deg, v, w)) on_triangle(u, v, w);
    });
  }
}

template <typename OnTriangle>
void ForEachTriangle(const Graph& g, OnTriangle&& on_triangle) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (uint32_t v = 0; v < n; ++v) deg[v] = g.Degree(v);
  for (VertexId u = 0; u < n; ++u) TrianglesFromPivot(g, deg, u, on_triangle);
}

std::vector<uint32_t> Degrees(const Graph& g, const ParallelOptions& options) {
  std::vector<uint32_t> deg(g.NumVertices());
  ParallelFor(0, deg.size(), options,
              [&](uint64_t v) { deg[v] = g.Degree(static_cast<VertexId>(v)); });
  return deg;
}

}  // namespace

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&count](VertexId, VertexId, VertexId) { ++count; });
  return count;
}

std::vector<uint32_t> VertexTriangleCounts(const Graph& g) {
  std::vector<uint32_t> counts(g.NumVertices(), 0);
  ForEachTriangle(g, [&counts](VertexId a, VertexId b, VertexId c) {
    ++counts[a];
    ++counts[b];
    ++counts[c];
  });
  return counts;
}

uint64_t CountTrianglesParallel(const Graph& g,
                                const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  const std::vector<uint32_t> deg = Degrees(g, options);
  // Fixed-order sum of per-block integer partials: exact, so the
  // blocking (and therefore the thread count) cannot show through.
  return ParallelReduce<uint64_t>(
      0, n, options, 0,
      [&](uint64_t u, uint64_t* acc) {
        TrianglesFromPivot(g, deg, static_cast<VertexId>(u),
                           [acc](VertexId, VertexId, VertexId) { ++*acc; });
      },
      [](uint64_t total, uint64_t partial) { return total + partial; });
}

std::vector<uint32_t> VertexTriangleCountsParallel(
    const Graph& g, const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  const uint32_t threads =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  const uint64_t grain = options.grain == 0 ? 512 : options.grain;
  const uint64_t num_blocks = (n + grain - 1) / grain;
  // Must match what ParallelForBlocks below resolves to, so every lane
  // id the body sees has an arena.
  const uint32_t lanes = EffectiveLanes({threads, 1}, num_blocks);
  if (lanes <= 1) return VertexTriangleCounts(g);
  const std::vector<uint32_t> deg = Degrees(g, options);

  // Per-lane count arenas, allocated up front on the calling thread; a
  // pivot's three increments go to its lane's arena, so lanes never
  // share mutable state. Which arena a triangle lands in varies run to
  // run (blocks are claimed dynamically), but the per-vertex SUM over
  // arenas is an integer and therefore partition-invariant — still
  // exactly equal to the sequential counts.
  std::vector<std::vector<uint32_t>> arenas(lanes);
  for (std::vector<uint32_t>& arena : arenas) arena.assign(n, 0);
  ParallelForBlocks(num_blocks, {threads, 0},
                    [&](uint64_t block, uint32_t lane) {
                      const uint64_t lo = block * grain;
                      const uint64_t hi = lo + grain < n ? lo + grain : n;
                      uint32_t* const arena = arenas[lane].data();
                      for (uint64_t u = lo; u < hi; ++u) {
                        TrianglesFromPivot(
                            g, deg, static_cast<VertexId>(u),
                            [arena](VertexId a, VertexId b, VertexId c) {
                              ++arena[a];
                              ++arena[b];
                              ++arena[c];
                            });
                      }
                    });

  // Fixed lane-order reduction (integer, so order is moot — kept fixed
  // anyway to match the documented contract).
  std::vector<uint32_t> counts(n, 0);
  ParallelFor(0, n, options, [&](uint64_t v) {
    uint32_t total = 0;
    for (uint32_t lane = 0; lane < lanes; ++lane) total += arenas[lane][v];
    counts[v] = total;
  });
  return counts;
}

}  // namespace graphscape
