// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/triangles.h"

#include "graph/intersect.h"

namespace graphscape {
namespace {

// Degree order with id tie-break; orienting edges low -> high makes the
// out-degree of every vertex O(sqrt(m)) on any graph.
inline bool Before(const std::vector<uint32_t>& deg, VertexId a, VertexId b) {
  return deg[a] < deg[b] || (deg[a] == deg[b] && a < b);
}

// The degree-oriented DAG in CSR form: fwd run of u = neighbors v with u
// Before v, still sorted ascending by id (filtering a sorted CSR run
// keeps its order). Every triangle {u, v, w} has exactly one source —
// its degree-least vertex — and appears exactly once as w ∈ fwd(u) ∩
// fwd(v) for v ∈ fwd(u). The runs being sorted and duplicate-free is
// what lets the intersections go through the SIMD/galloping kernels
// (graph/intersect_simd.h).
struct ForwardAdjacency {
  std::vector<uint32_t> offsets;  // n + 1
  std::vector<VertexId> targets;  // m
  uint32_t max_out_degree = 0;    // scratch sizing for Into() callers

  const VertexId* Run(VertexId u) const { return targets.data() + offsets[u]; }
  uint32_t RunLength(VertexId u) const {
    return offsets[u + 1] - offsets[u];
  }
};

ForwardAdjacency BuildForward(const Graph& g,
                              const std::vector<uint32_t>& deg) {
  const uint32_t n = g.NumVertices();
  ForwardAdjacency fwd;
  fwd.offsets.assign(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    uint32_t out = 0;
    for (const VertexId v : g.Neighbors(u)) {
      if (Before(deg, u, v)) ++out;
    }
    fwd.offsets[u + 1] = fwd.offsets[u] + out;
    fwd.max_out_degree = std::max(fwd.max_out_degree, out);
  }
  fwd.targets.resize(fwd.offsets[n]);
  for (VertexId u = 0; u < n; ++u) {
    uint32_t next = fwd.offsets[u];
    for (const VertexId v : g.Neighbors(u)) {
      if (Before(deg, u, v)) fwd.targets[next++] = v;
    }
  }
  return fwd;
}

// Count-only per-pivot tally: triangles sourced at u. The parallel
// variants partition work by pivot; integer partial sums are
// partition-invariant, so thread count can never show through.
inline uint64_t TrianglesFromPivot(const ForwardAdjacency& fwd, VertexId u) {
  uint64_t count = 0;
  const VertexId* run = fwd.Run(u);
  const uint32_t len = fwd.RunLength(u);
  for (uint32_t k = 0; k < len; ++k) {
    const VertexId v = run[k];
    count += intersect::Count(run, len, fwd.Run(v), fwd.RunLength(v));
  }
  return count;
}

// Per-vertex tally from pivot u: each common neighbor w of (u, v ∈
// fwd(u)) closes one triangle touching u, v, and w. Needs the elements,
// so it goes through intersect::Into into the caller's reused scratch
// run (sized fwd.max_out_degree — never reallocated in the loop).
inline void VertexTrianglesFromPivot(const ForwardAdjacency& fwd, VertexId u,
                                     VertexId* scratch, uint32_t* counts) {
  const VertexId* run = fwd.Run(u);
  const uint32_t len = fwd.RunLength(u);
  for (uint32_t k = 0; k < len; ++k) {
    const VertexId v = run[k];
    const uint32_t hits =
        intersect::Into(run, len, fwd.Run(v), fwd.RunLength(v), scratch);
    counts[u] += hits;
    counts[v] += hits;
    for (uint32_t h = 0; h < hits; ++h) ++counts[scratch[h]];
  }
}

std::vector<uint32_t> Degrees(const Graph& g, const ParallelOptions& options) {
  std::vector<uint32_t> deg(g.NumVertices());
  ParallelFor(0, deg.size(), options,
              [&](uint64_t v) { deg[v] = g.Degree(static_cast<VertexId>(v)); });
  return deg;
}

}  // namespace

uint64_t CountTriangles(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (uint32_t v = 0; v < n; ++v) deg[v] = g.Degree(v);
  const ForwardAdjacency fwd = BuildForward(g, deg);
  uint64_t count = 0;
  for (VertexId u = 0; u < n; ++u) count += TrianglesFromPivot(fwd, u);
  return count;
}

std::vector<uint32_t> VertexTriangleCounts(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (uint32_t v = 0; v < n; ++v) deg[v] = g.Degree(v);
  const ForwardAdjacency fwd = BuildForward(g, deg);
  std::vector<uint32_t> counts(n, 0);
  std::vector<VertexId> scratch(fwd.max_out_degree);
  for (VertexId u = 0; u < n; ++u) {
    VertexTrianglesFromPivot(fwd, u, scratch.data(), counts.data());
  }
  return counts;
}

uint64_t CountTrianglesParallel(const Graph& g,
                                const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  const std::vector<uint32_t> deg = Degrees(g, options);
  const ForwardAdjacency fwd = BuildForward(g, deg);
  // Fixed-order sum of per-block integer partials: exact, so the
  // blocking (and therefore the thread count) cannot show through.
  return ParallelReduce<uint64_t>(
      0, n, options, 0,
      [&](uint64_t u, uint64_t* acc) {
        *acc += TrianglesFromPivot(fwd, static_cast<VertexId>(u));
      },
      [](uint64_t total, uint64_t partial) { return total + partial; });
}

std::vector<uint32_t> VertexTriangleCountsParallel(
    const Graph& g, const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  const uint32_t threads =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  const uint64_t grain = options.grain == 0 ? 512 : options.grain;
  const uint64_t num_blocks = (n + grain - 1) / grain;
  // Must match what ParallelForBlocks below resolves to, so every lane
  // id the body sees has an arena.
  const uint32_t lanes = EffectiveLanes({threads, 1}, num_blocks);
  if (lanes <= 1) return VertexTriangleCounts(g);
  const std::vector<uint32_t> deg = Degrees(g, options);
  const ForwardAdjacency fwd = BuildForward(g, deg);

  // Per-lane count arenas plus one Into() scratch run per lane, all
  // allocated up front on the calling thread; a pivot's tallies go to
  // its lane's arena, so lanes never share mutable state. Which arena a
  // triangle lands in varies run to run (blocks are claimed
  // dynamically), but the per-vertex SUM over arenas is an integer and
  // therefore partition-invariant — still exactly equal to the
  // sequential counts.
  std::vector<std::vector<uint32_t>> arenas(lanes);
  for (std::vector<uint32_t>& arena : arenas) arena.assign(n, 0);
  std::vector<std::vector<VertexId>> scratch(lanes);
  for (std::vector<VertexId>& s : scratch) s.assign(fwd.max_out_degree, 0);
  ParallelForBlocks(num_blocks, {threads, 0},
                    [&](uint64_t block, uint32_t lane) {
                      const uint64_t lo = block * grain;
                      const uint64_t hi = lo + grain < n ? lo + grain : n;
                      for (uint64_t u = lo; u < hi; ++u) {
                        VertexTrianglesFromPivot(
                            fwd, static_cast<VertexId>(u),
                            scratch[lane].data(), arenas[lane].data());
                      }
                    });

  // Fixed lane-order reduction (integer, so order is moot — kept fixed
  // anyway to match the documented contract).
  std::vector<uint32_t> counts(n, 0);
  ParallelFor(0, n, options, [&](uint64_t v) {
    uint32_t total = 0;
    for (uint32_t lane = 0; lane < lanes; ++lane) total += arenas[lane][v];
    counts[v] = total;
  });
  return counts;
}

}  // namespace graphscape
