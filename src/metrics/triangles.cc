// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "metrics/triangles.h"

#include "graph/intersect.h"

namespace graphscape {
namespace {

// Degree order with id tie-break; orienting edges low -> high makes the
// out-degree of every vertex O(sqrt(m)) on any graph.
inline bool Before(const std::vector<uint32_t>& deg, VertexId a, VertexId b) {
  return deg[a] < deg[b] || (deg[a] == deg[b] && a < b);
}

template <typename OnTriangle>
void ForEachTriangle(const Graph& g, OnTriangle&& on_triangle) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (uint32_t v = 0; v < n; ++v) deg[v] = g.Degree(v);

  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (!Before(deg, u, v)) continue;
      // Keep only w "after" v so each triangle fires once, from its
      // degree-least vertex u.
      ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
        if (Before(deg, v, w)) on_triangle(u, v, w);
      });
    }
  }
}

}  // namespace

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&count](VertexId, VertexId, VertexId) { ++count; });
  return count;
}

std::vector<uint32_t> VertexTriangleCounts(const Graph& g) {
  std::vector<uint32_t> counts(g.NumVertices(), 0);
  ForEachTriangle(g, [&counts](VertexId a, VertexId b, VertexId c) {
    ++counts[a];
    ++counts[b];
    ++counts[c];
  });
  return counts;
}

}  // namespace graphscape
