// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "terrain/guarded_render.h"

#include <functional>
#include <utility>
#include <vector>

#include "scalar/persistence.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"

namespace graphscape {
namespace {

// Per super node: LandRect (32) + value (8) + parent (4) + paint order
// (4) + the TreeMemberIndex children/offsets BuildTerrainLayout builds
// (~24) + an Rgb color. Rounded up; the pixel terms dominate real
// renders.
constexpr uint64_t kBytesPerSuperNode = 80;
constexpr uint64_t kBytesPerRasterPixel = 8 + 4;  // height + owning node
constexpr uint64_t kBytesPerImagePixel = 3;

struct Rung {
  bool simplified;
  uint32_t divisor;
};

// make_simplified may be null (the tree-only entry point: without the
// Graph there is no persistence rung); the ladder then degrades by
// resolution halving alone.
StatusOr<GuardedRenderResult> RenderLadder(
    const SuperTree& full_tree,
    const std::function<SuperTree()>& make_simplified,
    uint64_t build_charge, ResourceBudget* budget,
    const GuardedRenderOptions& options) {
  SuperTree simplified_tree;
  bool have_simplified = false;

  const bool can_simplify = static_cast<bool>(make_simplified);
  std::vector<Rung> rungs = {{false, 1}};
  if (can_simplify) rungs.push_back({true, 1});
  for (uint32_t divisor = 2;
       options.raster.width / divisor >= options.min_raster_dim &&
       options.raster.height / divisor >= options.min_raster_dim;
       divisor *= 2) {
    rungs.push_back({can_simplify, divisor});
  }

  for (const Rung& rung : rungs) {
    Status deadline = CheckBudgetDeadline(budget, "terrain render");
    if (!deadline.ok()) {
      ReleaseBudget(budget, build_charge);
      return deadline;
    }
    const SuperTree* tree = &full_tree;
    if (rung.simplified) {
      if (!have_simplified) {
        simplified_tree = make_simplified();
        have_simplified = true;
      }
      tree = &simplified_tree;
    }
    RasterOptions raster;
    raster.width = options.raster.width / rung.divisor;
    raster.height = options.raster.height / rung.divisor;
    const uint32_t image_w =
        options.image_width / rung.divisor > 0
            ? options.image_width / rung.divisor : 1;
    const uint32_t image_h =
        options.image_height / rung.divisor > 0
            ? options.image_height / rung.divisor : 1;
    const uint64_t working = TerrainRenderWorkingBytes(
        tree->NumNodes(), raster.width, raster.height, image_w, image_h);
    if (!ChargeBudget(budget, working, "terrain render working set").ok()) {
      continue;  // this rung doesn't fit; the next one is cheaper
    }

    const TerrainLayout layout = BuildTerrainLayout(*tree, options.layout);
    const HeightField height_field = RasterizeTerrain(layout, raster);
    GuardedRenderResult result;
    result.image = RenderOblique(height_field, HeightColors(*tree),
                                 options.camera, image_w, image_h);
    result.tree_simplified = rung.simplified;
    uint32_t halvings = 0;
    for (uint32_t d = rung.divisor; d > 1; d /= 2) ++halvings;
    result.halvings = halvings;
    result.raster_width = raster.width;
    result.raster_height = raster.height;
    result.tree_nodes = tree->NumNodes();
    result.retained_bytes =
        static_cast<uint64_t>(image_w) * image_h * kBytesPerImagePixel;
    // Everything but the image the caller keeps goes back to the budget.
    ReleaseBudget(budget, build_charge + working - result.retained_bytes);
    return result;
  }
  ReleaseBudget(budget, build_charge);
  return Status::ResourceExhausted(
      "terrain render: no ladder rung fits the budget (tried every "
      "degradation down to the minimum raster dimension)");
}

}  // namespace

uint64_t TerrainRenderWorkingBytes(uint32_t tree_nodes,
                                   uint32_t raster_width,
                                   uint32_t raster_height,
                                   uint32_t image_width,
                                   uint32_t image_height) {
  return static_cast<uint64_t>(tree_nodes) * kBytesPerSuperNode +
         static_cast<uint64_t>(raster_width) * raster_height *
             kBytesPerRasterPixel +
         static_cast<uint64_t>(image_width) * image_height *
             kBytesPerImagePixel;
}

StatusOr<GuardedRenderResult> RenderVertexTerrainGuarded(
    const Graph& g, const VertexScalarField& field, ResourceBudget* budget,
    const GuardedRenderOptions& options) {
  StatusOr<ScalarTree> built =
      BuildVertexScalarTreeGuarded(g, field, budget);
  if (!built.ok()) return built.status();
  const uint64_t build_charge = VertexScalarTreeBuildBytes(g.NumVertices());
  const ScalarTree scalar_tree = std::move(built).value();
  const SuperTree full_tree(scalar_tree);
  const double threshold = options.simplify_persistence_fraction *
                           (field.MaxValue() - field.MinValue());
  const auto make_simplified = [&]() {
    const VertexScalarField simplified_field(
        field.Name(), PersistenceSimplifiedValues(scalar_tree, threshold));
    return SuperTree(BuildVertexScalarTree(g, simplified_field));
  };
  return RenderLadder(full_tree, make_simplified, build_charge, budget,
                      options);
}

StatusOr<GuardedRenderResult> RenderEdgeTerrainGuarded(
    const Graph& g, const EdgeScalarField& field, ResourceBudget* budget,
    const GuardedRenderOptions& options) {
  StatusOr<ScalarTree> built = BuildEdgeScalarTreeGuarded(g, field, budget);
  if (!built.ok()) return built.status();
  const uint64_t build_charge =
      EdgeScalarTreeBuildBytes(g.NumVertices(), g.NumEdges());
  const ScalarTree scalar_tree = std::move(built).value();
  const SuperTree full_tree(scalar_tree);
  const double threshold = options.simplify_persistence_fraction *
                           (field.MaxValue() - field.MinValue());
  const auto make_simplified = [&]() {
    const EdgeScalarField simplified_field(
        field.Name(), PersistenceSimplifiedValues(scalar_tree, threshold));
    return SuperTree(BuildEdgeScalarTree(g, simplified_field));
  };
  return RenderLadder(full_tree, make_simplified, build_charge, budget,
                      options);
}

StatusOr<GuardedRenderResult> RenderTreeTerrainGuarded(
    const SuperTree& tree, ResourceBudget* budget,
    const GuardedRenderOptions& options) {
  // No Graph in hand, so no persistence rung: SimplifyByPersistence
  // needs the original field over the graph, and a cached TreeArtifact
  // deliberately does not carry the graph (docs/ARTIFACT_FORMAT.md).
  // The ladder degrades by resolution halving only, and there is no
  // build charge — the tree already exists and is owned by the caller.
  return RenderLadder(tree, nullptr, /*build_charge=*/0, budget, options);
}

}  // namespace graphscape
