// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "terrain/render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace graphscape {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr Rgb kSeaColor{30, 58, 95};
constexpr Rgb kSkyColor{255, 255, 255};

inline Rgb Shade(Rgb color, double factor) {
  const auto channel = [factor](uint8_t c) {
    return static_cast<uint8_t>(
        std::min(std::max(static_cast<double>(c) * factor, 0.0), 255.0));
  };
  return Rgb{channel(color.r), channel(color.g), channel(color.b)};
}

inline Rgb Lerp(Rgb a, Rgb b, double t) {
  const auto channel = [t](uint8_t x, uint8_t y) {
    return static_cast<uint8_t>(x + (static_cast<double>(y) - x) * t + 0.5);
  };
  return Rgb{channel(a.r, b.r), channel(a.g, b.g), channel(a.b, b.b)};
}

inline Rgb CellColor(const HeightField& field,
                     const std::vector<Rgb>& node_colors, size_t index) {
  const uint32_t node = field.node_at[index];
  if (node == kInvalidSuperNode) return kSeaColor;
  return node < node_colors.size() ? node_colors[node] : Rgb{128, 128, 128};
}

}  // namespace

double NormalizeValue(double value, double min_value, double max_value) {
  if (max_value <= min_value) return 0.5;
  const double t = (value - min_value) / (max_value - min_value);
  return std::min(std::max(t, 0.0), 1.0);
}

uint32_t FourBandIndex(double t) {
  if (t < 0.25) return 0;
  if (t < 0.5) return 1;
  if (t < 0.75) return 2;
  return 3;
}

Rgb FourBandColor(double t) {
  static constexpr Rgb kBands[4] = {
      Rgb{59, 130, 246},   // blue
      Rgb{46, 166, 76},    // green
      Rgb{250, 204, 21},   // yellow
      Rgb{220, 38, 38},    // red
  };
  return kBands[FourBandIndex(t)];
}

Rgb ContinuousColor(double t) {
  t = std::min(std::max(t, 0.0), 1.0);
  static constexpr Rgb kStops[4] = {
      Rgb{59, 130, 246},
      Rgb{46, 166, 76},
      Rgb{250, 204, 21},
      Rgb{220, 38, 38},
  };
  const double scaled = t * 3.0;
  const uint32_t lo = std::min(static_cast<uint32_t>(scaled), 2u);
  return Lerp(kStops[lo], kStops[lo + 1], scaled - lo);
}

std::vector<Rgb> HeightColors(const SuperTree& tree) {
  const uint32_t n = tree.NumNodes();
  std::vector<Rgb> colors(n);
  double min_value = 0.0, max_value = 0.0;
  if (n > 0) min_value = max_value = tree.Value(0);
  for (uint32_t node = 0; node < n; ++node) {
    min_value = std::min(min_value, tree.Value(node));
    max_value = std::max(max_value, tree.Value(node));
  }
  for (uint32_t node = 0; node < n; ++node) {
    colors[node] =
        FourBandColor(NormalizeValue(tree.Value(node), min_value, max_value));
  }
  return colors;
}

std::vector<Rgb> SuperNodeColors(const SuperTree& tree,
                                 const std::vector<double>& element_values) {
  const uint32_t n = tree.NumNodes();
  std::vector<Rgb> colors(n, Rgb{128, 128, 128});
  if (element_values.size() != tree.NumElements() || n == 0) return colors;
  std::vector<double> sum(n, 0.0);
  for (uint32_t e = 0; e < tree.NumElements(); ++e)
    sum[tree.NodeOf(e)] += element_values[e];
  double min_mean = 0.0, max_mean = 0.0;
  bool first = true;
  for (uint32_t node = 0; node < n; ++node) {
    sum[node] /= std::max(1u, tree.MemberCount(node));
    if (first || sum[node] < min_mean) min_mean = sum[node];
    if (first || sum[node] > max_mean) max_mean = sum[node];
    first = false;
  }
  for (uint32_t node = 0; node < n; ++node)
    colors[node] =
        FourBandColor(NormalizeValue(sum[node], min_mean, max_mean));
  return colors;
}

Image RenderOblique(const HeightField& field,
                    const std::vector<Rgb>& node_colors, const Camera& camera,
                    uint32_t width, uint32_t height) {
  Image image;
  image.width = std::max(width, 1u);
  image.height = std::max(height, 1u);
  image.pixels.assign(static_cast<size_t>(image.width) * image.height,
                      kSkyColor);
  if (field.width == 0 || field.height == 0) return image;

  const double az = camera.azimuth_deg * kPi / 180.0;
  const double el =
      std::min(std::max(camera.elevation_deg, 5.0), 89.0) * kPi / 180.0;
  const double cos_a = std::cos(az), sin_a = std::sin(az);
  const double sin_e = std::sin(el), cos_e = std::cos(el);
  const double range = field.max_value - field.sea_level;

  // Fit the rotated square (diagonal sqrt(2)) plus the tallest column
  // into a 92% viewport box.
  const double vertical_extent =
      std::sqrt(2.0) * sin_e + camera.height_scale * cos_e;
  const double scale = std::min(0.92 * image.width / std::sqrt(2.0),
                                0.92 * image.height / vertical_extent);
  const double cx = image.width * 0.5;
  const double cy = image.height * 0.55;

  // Back-to-front ordering by counting-sorting cells into depth buckets
  // of their rotated "toward the viewer" coordinate.
  const size_t cells = static_cast<size_t>(field.width) * field.height;
  const uint32_t num_buckets = 2 * std::max(field.width, field.height);
  std::vector<uint32_t> bucket_offsets(num_buckets + 1, 0);
  std::vector<uint32_t> bucket_of(cells);
  std::vector<uint32_t> bucket_items(cells);
  const double inv_w = 1.0 / field.width, inv_h = 1.0 / field.height;
  for (size_t i = 0; i < cells; ++i) {
    const double u = ((i % field.width) + 0.5) * inv_w - 0.5;
    const double v = ((i / field.width) + 0.5) * inv_h - 0.5;
    const double vr = u * sin_a + v * cos_a;  // depth: larger = nearer
    const double t = (vr + std::sqrt(2.0) * 0.5) / std::sqrt(2.0);
    bucket_of[i] = std::min(
        static_cast<uint32_t>(t * num_buckets), num_buckets - 1);
    ++bucket_offsets[bucket_of[i] + 1];
  }
  for (uint32_t b = 0; b < num_buckets; ++b)
    bucket_offsets[b + 1] += bucket_offsets[b];
  {
    std::vector<uint32_t> cursor(bucket_offsets.begin(),
                                 bucket_offsets.end() - 1);
    for (size_t i = 0; i < cells; ++i)
      bucket_items[cursor[bucket_of[i]]++] = static_cast<uint32_t>(i);
  }

  // Column width that leaves no holes after rotation.
  const int half_col = static_cast<int>(
      std::ceil(scale * std::max(inv_w, inv_h) * 0.75)) + 1;

  for (size_t idx = 0; idx < cells; ++idx) {
    const uint32_t i = bucket_items[idx];
    const uint32_t x = i % field.width;
    const uint32_t y = i / field.width;
    const double u = (x + 0.5) * inv_w - 0.5;
    const double v = (y + 0.5) * inv_h - 0.5;
    const double ur = u * cos_a - v * sin_a;
    const double vr = u * sin_a + v * cos_a;
    const double h_norm =
        range > 0.0 ? (field.height_at[i] - field.sea_level) / range : 0.0;

    const double sx = cx + ur * scale;
    const double base_y = cy + vr * scale * sin_e;
    const double top_y = base_y - h_norm * camera.height_scale * scale * cos_e;

    // Slope shading: compare against the next cell along +x in field
    // space (a fixed light direction keeps renders deterministic).
    double shade = 1.0;
    if (x + 1 < field.width && range > 0.0) {
      const double dh = (field.height_at[i] - field.height_at[i + 1]) / range;
      shade = std::min(std::max(1.0 + dh * 2.0, 0.55), 1.25);
    }
    const Rgb color = Shade(CellColor(field, node_colors, i), shade);
    const Rgb cliff = Shade(color, 0.62);

    const int ix = static_cast<int>(std::lround(sx));
    int iy_top = static_cast<int>(std::lround(top_y));
    const int iy_base = static_cast<int>(std::lround(base_y));
    iy_top = std::min(iy_top, iy_base);
    for (int px = ix - half_col; px <= ix + half_col; ++px) {
      if (px < 0 || px >= static_cast<int>(image.width)) continue;
      for (int py = iy_top; py <= iy_base; ++py) {
        if (py < 0 || py >= static_cast<int>(image.height)) continue;
        // The top few pixels read as the plateau surface, the rest as
        // the darker cliff face.
        const bool plateau = py - iy_top <= 1;
        image.pixels[static_cast<size_t>(py) * image.width + px] =
            plateau ? color : cliff;
      }
    }
  }
  return image;
}

Image RenderTopDown(const HeightField& field,
                    const std::vector<Rgb>& node_colors) {
  Image image;
  image.width = std::max(field.width, 1u);
  image.height = std::max(field.height, 1u);
  image.pixels.assign(static_cast<size_t>(image.width) * image.height,
                      kSeaColor);
  const double range = field.max_value - field.sea_level;
  const size_t cells = static_cast<size_t>(field.width) * field.height;
  for (size_t i = 0; i < cells; ++i) {
    const double h_norm =
        range > 0.0 ? (field.height_at[i] - field.sea_level) / range : 0.0;
    image.pixels[i] =
        Shade(CellColor(field, node_colors, i), 0.6 + 0.4 * h_norm);
  }
  return image;
}

std::string EncodePpm(const Image& image) {
  static_assert(sizeof(Rgb) == 3, "Rgb must be packed for PPM output");
  char header[64];
  const int header_len = std::snprintf(header, sizeof(header),
                                       "P6\n%u %u\n255\n", image.width,
                                       image.height);
  std::string out;
  out.reserve(static_cast<size_t>(header_len) + image.pixels.size() * 3);
  out.append(header, static_cast<size_t>(header_len));
  out.append(reinterpret_cast<const char*>(image.pixels.data()),
             image.pixels.size() * 3);
  return out;
}

bool WritePpm(const Image& image, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string bytes = EncodePpm(image);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace graphscape
