// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// SVG artifact writers for the 2D comparison views: node-link drawings
// over any layout/ Positions (Fig. 6(a,b,f), Fig. 10(b,c), Fig. 12–13)
// and the flat treemap of a terrain layout (Fig. 5(a) — heights zeroed,
// color as the only scalar channel, which is exactly the information
// loss the terrain comparison quantifies).

#ifndef GRAPHSCAPE_TERRAIN_SVG_H_
#define GRAPHSCAPE_TERRAIN_SVG_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "layout/positions.h"
#include "terrain/render.h"
#include "terrain/terrain_layout.h"

namespace graphscape {

/// Draws `g` with one circle per vertex (fill = colors[v]) and one line
/// per edge, positions scaled from [0, 1]^2 to a size x size viewport.
/// Requires positions/colors sized to NumVertices. Returns false on I/O
/// failure or size mismatch.
bool WriteNodeLinkSvg(const Graph& g, const Positions& positions,
                      const std::vector<Rgb>& colors, const std::string& path,
                      double size, double node_radius);

/// The terrain layout as a flat nested treemap: every footprint drawn in
/// paint order (parents under children) with fill = colors[node].
/// Requires colors sized to layout.NumNodes().
bool WriteTreemapSvg(const TerrainLayout& layout,
                     const std::vector<Rgb>& colors, const std::string& path);

}  // namespace graphscape

#endif  // GRAPHSCAPE_TERRAIN_SVG_H_
