// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Budget-guarded terrain rendering: the full field -> tree -> layout ->
// raster -> image pipeline behind a ResourceBudget, degrading
// deliberately instead of dying in the allocator when a paper-scale
// render would blow the cap. The ladder, tried in order until a rung's
// working set fits the budget:
//
//   1. the full-detail tree at the requested resolution;
//   2. a persistence-simplified tree (scalar/persistence.h — features
//      below a fraction of the field range are cancelled), same
//      resolution: fewer super nodes, smaller layout, less overdraw;
//   3. the simplified tree with raster AND image resolution halved,
//      then quartered, ... down to min_raster_dim;
//   4. ResourceExhausted — every rung refused.
//
// Each rung charges its estimated working set (the formula is public so
// tests pin the ladder exactly) BEFORE building anything; a refused
// charge costs nothing and the next rung is tried. On success everything
// except the returned image is released back to the budget. The deadline
// is checked between rungs; an expired budget fails fast with
// DeadlineExceeded rather than rendering a stale frame.

#ifndef GRAPHSCAPE_TERRAIN_GUARDED_RENDER_H_
#define GRAPHSCAPE_TERRAIN_GUARDED_RENDER_H_

#include <cstdint>

#include "common/budget.h"
#include "common/status.h"
#include "graph/graph.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_field.h"
#include "scalar/super_tree.h"
#include "terrain/render.h"
#include "terrain/terrain_layout.h"
#include "terrain/terrain_raster.h"

namespace graphscape {

struct GuardedRenderOptions {
  /// Full-resolution request; degradation halves from here.
  RasterOptions raster;
  uint32_t image_width = 960;
  uint32_t image_height = 720;
  Camera camera;
  TerrainLayoutOptions layout;
  /// Rung-2 persistence threshold as a fraction of the field's value
  /// range (the features a reader can't see at reduced budget anyway).
  double simplify_persistence_fraction = 0.02;
  /// Halving stops once either raster dimension would drop below this;
  /// the next refusal is final.
  uint32_t min_raster_dim = 64;
};

/// What was rendered and how degraded it is.
struct GuardedRenderResult {
  Image image;
  bool tree_simplified = false;  ///< rung 2+ (persistence-simplified)
  uint32_t halvings = 0;         ///< rung 3+: times the resolution halved
  uint32_t raster_width = 0;     ///< actual raster dims used
  uint32_t raster_height = 0;
  uint32_t tree_nodes = 0;       ///< super nodes in the rendered tree
  /// Bytes still charged against the budget on return (the image the
  /// caller now owns); release when the image is dropped.
  uint64_t retained_bytes = 0;
};

/// Estimated working-set bytes of one render rung: layout + member index
/// + node colors (per super node), the height field (12 bytes/pixel),
/// and the output image (3 bytes/pixel). This is exactly what a rung
/// charges, so tests can compute which rung a given cap lands on.
uint64_t TerrainRenderWorkingBytes(uint32_t tree_nodes,
                                   uint32_t raster_width,
                                   uint32_t raster_height,
                                   uint32_t image_width,
                                   uint32_t image_height);

/// Vertex-field pipeline: guarded Algorithm 1 build (its working set is
/// charged too, via BuildVertexScalarTreeGuarded), then the ladder.
/// InvalidArgument on a field/graph size mismatch; ResourceExhausted
/// when even the cheapest rung refuses; DeadlineExceeded between rungs.
/// The rung-2 rebuild reuses the standing tree-build charge (the
/// original sweep's arrays are dropped before it runs).
///
/// Thread safety: safe to call concurrently with distinct budgets (or a
/// shared ResourceBudget, which is internally synchronized). Reads the
/// graph and field without synchronization, so callers must not mutate
/// them during the call. Allocation: everything transient is freed on
/// return; only the returned image (result.retained_bytes) stays
/// charged to the budget.
StatusOr<GuardedRenderResult> RenderVertexTerrainGuarded(
    const Graph& g, const VertexScalarField& field, ResourceBudget* budget,
    const GuardedRenderOptions& options = {});

/// Edge-field twin (guarded Algorithm 3 + the same ladder). Same
/// thread-safety and allocation contract as the vertex entry point.
StatusOr<GuardedRenderResult> RenderEdgeTerrainGuarded(
    const Graph& g, const EdgeScalarField& field, ResourceBudget* budget,
    const GuardedRenderOptions& options = {});

/// Tree-only entry point for callers that already hold a built SuperTree
/// (the query service's TILE verb renders cached TreeArtifacts this
/// way). Without the Graph there is no persistence rung — the ladder is
/// the full tree at full resolution, then resolution halving down to
/// min_raster_dim; simplify_persistence_fraction is ignored. No build
/// charge is taken: the tree is the caller's standing allocation.
///
/// Thread safety: concurrent calls over the SAME tree are safe only if
/// tree.MemberIndex() has already been built (it is lazily constructed
/// and not internally synchronized — see scalar/super_tree.h). The
/// query service primes it at artifact-load time for exactly this
/// reason.
StatusOr<GuardedRenderResult> RenderTreeTerrainGuarded(
    const SuperTree& tree, ResourceBudget* budget,
    const GuardedRenderOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_TERRAIN_GUARDED_RENDER_H_
