// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "terrain/terrain_layout.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace graphscape {
namespace {

// Shrinks `rect` by `fraction` of its own side length on every side —
// the sibling gap. Strictly smaller for any fraction in (0, 0.5).
LandRect ShrinkByFraction(const LandRect& rect, double fraction) {
  const double dx = rect.Width() * fraction;
  const double dy = rect.Height() * fraction;
  return LandRect{rect.x0 + dx, rect.y0 + dy, rect.x1 - dx, rect.y1 - dy};
}

// Scales `rect` around its center so its area becomes `area_fraction` of
// the original, capped so a strict border always survives.
LandRect ScaleToAreaFraction(const LandRect& rect, double area_fraction,
                             double margin) {
  const double scale = std::min(std::sqrt(std::max(area_fraction, 0.01)),
                                1.0 - 2.0 * margin);
  const double cx = (rect.x0 + rect.x1) * 0.5;
  const double cy = (rect.y0 + rect.y1) * 0.5;
  const double hw = rect.Width() * 0.5 * scale;
  const double hh = rect.Height() * 0.5 * scale;
  return LandRect{cx - hw, cy - hh, cx + hw, cy + hh};
}

// Partitions `rect` among children[lo, hi) proportionally to their
// masses. kSliceDice cuts parallel strips (direction alternating with
// `depth`); kBalanced recursively halves the mass and cuts the longer
// side. Every assigned footprint is then shrunk by `margin` so siblings
// are separated and containment in `rect` is strict.
struct ChildSlice {
  const uint32_t* children;
  const double* masses;
};

void AssignChildRects(const ChildSlice& slice, uint32_t lo, uint32_t hi,
                      const LandRect& rect, double total_mass,
                      SplitPolicy policy, uint32_t depth, double margin,
                      std::vector<LandRect>* rects) {
  if (lo >= hi) return;
  if (hi - lo == 1) {
    (*rects)[slice.children[lo]] = ShrinkByFraction(rect, margin);
    return;
  }
  if (policy == SplitPolicy::kSliceDice) {
    const bool horizontal = (depth % 2) == 0;  // strips side by side in x
    double cursor = horizontal ? rect.x0 : rect.y0;
    const double extent = horizontal ? rect.Width() : rect.Height();
    for (uint32_t i = lo; i < hi; ++i) {
      const double share = extent * slice.masses[i] / total_mass;
      LandRect strip = rect;
      if (horizontal) {
        strip.x0 = cursor;
        strip.x1 = i + 1 == hi ? rect.x1 : cursor + share;
      } else {
        strip.y0 = cursor;
        strip.y1 = i + 1 == hi ? rect.y1 : cursor + share;
      }
      cursor += share;
      (*rects)[slice.children[i]] = ShrinkByFraction(strip, margin);
    }
    return;
  }
  // kBalanced: split [lo, hi) at the prefix closest to half the mass
  // (always leaving both halves nonempty), cut the longer side there.
  double prefix = 0.0;
  uint32_t mid = lo + 1;
  for (uint32_t i = lo; i + 1 < hi; ++i) {
    prefix += slice.masses[i];
    mid = i + 1;
    if (prefix * 2.0 >= total_mass) break;
  }
  double left_mass = 0.0;
  for (uint32_t i = lo; i < mid; ++i) left_mass += slice.masses[i];
  const double frac = left_mass / total_mass;
  LandRect a = rect, b = rect;
  if (rect.Width() >= rect.Height()) {
    const double cut = rect.x0 + rect.Width() * frac;
    a.x1 = cut;
    b.x0 = cut;
  } else {
    const double cut = rect.y0 + rect.Height() * frac;
    a.y1 = cut;
    b.y0 = cut;
  }
  AssignChildRects(slice, lo, mid, a, left_mass, policy, depth, margin, rects);
  AssignChildRects(slice, mid, hi, b, total_mass - left_mass, policy, depth,
                   margin, rects);
}

}  // namespace

TerrainLayout BuildTerrainLayout(const SuperTree& tree,
                                 const TerrainLayoutOptions& options) {
  TerrainLayout layout;
  const uint32_t n = tree.NumNodes();
  if (n == 0) return layout;
  const TreeMemberIndex& index = tree.MemberIndex();
  const double margin = std::min(std::max(options.margin, 1e-3), 0.49);

  layout.rects.resize(n);
  layout.values.resize(n);
  layout.parents.resize(n);
  layout.paint_order.reserve(n);
  layout.min_value = layout.max_value = tree.Value(0);
  for (uint32_t node = 0; node < n; ++node) {
    layout.values[node] = tree.Value(node);
    layout.parents[node] = tree.Parent(node);
    layout.min_value = std::min(layout.min_value, layout.values[node]);
    layout.max_value = std::max(layout.max_value, layout.values[node]);
  }

  // Scratch reused for every node's child partition.
  std::vector<double> masses;
  std::vector<uint32_t> roots;
  for (uint32_t node = 0; node < n; ++node) {
    if (tree.Parent(node) == kNoParent) roots.push_back(node);
  }

  // The virtual root: components share the unit square by subtree mass.
  {
    masses.clear();
    double total = 0.0;
    for (const uint32_t root : roots) {
      masses.push_back(static_cast<double>(index.SubtreeMemberCount(root)));
      total += masses.back();
    }
    const ChildSlice slice{roots.data(), masses.data()};
    AssignChildRects(slice, 0, static_cast<uint32_t>(roots.size()),
                     LandRect{0.0, 0.0, 1.0, 1.0}, total, options.split, 0,
                     margin, &layout.rects);
  }

  // Preorder descent with an explicit (node, depth) stack — no call
  // recursion over tree depth, so chain-heavy trees are safe.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  stack.reserve(n);
  for (size_t i = roots.size(); i-- > 0;) stack.push_back({roots[i], 1u});
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    layout.paint_order.push_back(node);
    const MemberRange children = index.Children(node);
    if (children.size() == 0) continue;

    const double node_mass =
        static_cast<double>(index.SubtreeMemberCount(node));
    masses.clear();
    double child_mass = 0.0;
    for (const uint32_t child : children) {
      masses.push_back(static_cast<double>(index.SubtreeMemberCount(child)));
      child_mass += masses.back();
    }
    // The annulus: children squeeze into an inner rect whose area share
    // is their mass share, so the parent keeps land proportional to its
    // own member count around them.
    const LandRect inner = ScaleToAreaFraction(
        layout.rects[node], child_mass / node_mass, margin);
    const ChildSlice slice{children.begin(), masses.data()};
    AssignChildRects(slice, 0, children.size(), inner, child_mass,
                     options.split, depth, margin, &layout.rects);
    for (uint32_t i = children.size(); i-- > 0;)
      stack.push_back({children[i], depth + 1});
  }
  return layout;
}

}  // namespace graphscape
