// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tree -> geometry: the load-bearing step of the terrain metaphor
// (paper Figs. 1, 5–7). Every super node of the scalar tree becomes a
// rectangular plot of land in the unit square:
//
//   * a node's footprint area is proportional to its SUBTREE member mass
//     (the whole superlevel-set component that peaks inside it);
//   * children are allocated strictly INSIDE their parent's footprint,
//     shrunk so the parent keeps a visible annulus of its own land —
//     proportional to the parent's own member count — around them;
//   * siblings are separated by gaps, so two peaks that merge only at a
//     lower level stay disjoint at every level above it.
//
// Those three invariants make the rendered landscape quote the tree
// exactly: the superlevel set {f >= t} rasterizes to one island per
// component (PeaksAtLevel/CountComponentsAtLevel agree with flood
// filling the height field — pinned by tests/terrain_test.cc), and a
// peak standing on a shared foundation is drawn inside it.
//
// The allocation runs over the cached TreeMemberIndex — Children() for
// the recursion, SubtreeMemberCount() for the masses — in one preorder
// pass with an explicit stack: O(nodes) after the index build, no
// recursion depth hazard on chain-heavy trees.
//
// Split policies (the DESIGN.md ablation, benchmarked by
// bench_micro_terrain): kSliceDice alternates horizontal/vertical strip
// splits by depth — trivially fast, but aspect ratios degrade with
// fan-out; kBalanced recursively halves the child list by mass and
// splits the longer side — near-square plots at a log(children) factor.

#ifndef GRAPHSCAPE_TERRAIN_TERRAIN_LAYOUT_H_
#define GRAPHSCAPE_TERRAIN_TERRAIN_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "scalar/super_tree.h"
#include "scalar/tree_queries.h"

namespace graphscape {

/// Axis-aligned footprint in layout space ([0, 1]^2).
struct LandRect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  double Width() const { return x1 - x0; }
  double Height() const { return y1 - y0; }
  double Area() const { return Width() * Height(); }
  bool StrictlyContains(const LandRect& inner) const {
    return inner.x0 > x0 && inner.y0 > y0 && inner.x1 < x1 && inner.y1 < y1;
  }
  bool Disjoint(const LandRect& other) const {
    return x1 <= other.x0 || other.x1 <= x0 || y1 <= other.y0 || other.y1 <= y0;
  }
};

enum class SplitPolicy : uint8_t {
  kSliceDice,  ///< alternate strip direction by depth
  kBalanced,   ///< binary mass-balanced splits along the longer side
};

struct TerrainLayoutOptions {
  SplitPolicy split = SplitPolicy::kBalanced;
  /// Fraction of each footprint's side length kept as the sibling gap +
  /// parent annulus floor. Must be in (0, 0.5).
  double margin = 0.04;
};

struct TerrainLayout {
  /// Per super node, indexed like the source tree.
  std::vector<LandRect> rects;
  std::vector<double> values;     ///< node scalar (the plot's height)
  std::vector<uint32_t> parents;  ///< kNoParent for roots
  /// All nodes in preorder (parents before children) — the painter's
  /// order for rasterization and the treemap SVG.
  std::vector<uint32_t> paint_order;
  double min_value = 0.0;
  double max_value = 0.0;

  uint32_t NumNodes() const { return static_cast<uint32_t>(rects.size()); }

  /// Height in [0, 1]; 0 for a constant field.
  double NormalizedHeight(uint32_t node) const {
    return max_value > min_value
               ? (values[node] - min_value) / (max_value - min_value)
               : 0.0;
  }
};

TerrainLayout BuildTerrainLayout(const SuperTree& tree,
                                 const TerrainLayoutOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_TERRAIN_TERRAIN_LAYOUT_H_
