// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Software renderer for terrain height fields — no GPU, no external
// image library; the artifacts are plain binary PPMs CI can diff and
// upload. Two projections:
//
//   * RenderOblique — the paper's 3D landscape view: the field is
//     rotated by the camera azimuth, tilted by its elevation, and drawn
//     back-to-front as vertical columns (classic heightfield voxel
//     painting), with slope shading along the light direction.
//   * RenderTopDown — one output pixel per field cell, the 2D map view.
//
// Color lives per SUPER NODE, not per pixel: a column is colored by the
// node that owns its footprint pixel. Two node->color mappers cover the
// paper's figures: HeightColors (the four-band elevation scheme of
// Fig. 5 — blue/green/yellow/red, the discretization whose information
// loss the treemap comparison quantifies) and SuperNodeColors (mean of
// an arbitrary element field over each node's members — degree in
// Fig. 10, community id in Fig. 1).

#ifndef GRAPHSCAPE_TERRAIN_RENDER_H_
#define GRAPHSCAPE_TERRAIN_RENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scalar/super_tree.h"
#include "terrain/terrain_raster.h"

namespace graphscape {

struct Rgb {
  uint8_t r = 0, g = 0, b = 0;

  bool operator==(const Rgb& other) const {
    return r == other.r && g == other.g && b == other.b;
  }
  bool operator!=(const Rgb& other) const { return !(*this == other); }
};

struct Camera {
  double azimuth_deg = 225.0;    ///< rotation of the field around "up"
  double elevation_deg = 42.0;   ///< 90 = top-down, 0 = horizon
  double height_scale = 0.22;    ///< peak height relative to field extent
};

struct Image {
  uint32_t width = 0;
  uint32_t height = 0;
  std::vector<Rgb> pixels;  ///< row-major

  Rgb At(uint32_t x, uint32_t y) const {
    return pixels[static_cast<size_t>(y) * width + x];
  }
};

/// Clamped (v - min) / (max - min); 0.5 for a degenerate range.
double NormalizeValue(double value, double min_value, double max_value);

/// Which of the four elevation bands t in [0, 1] falls into (0..3).
uint32_t FourBandIndex(double t);

/// The four-band elevation scheme: blue, green, yellow, red.
Rgb FourBandColor(double t);

/// Smooth blue->green->yellow->red ramp (the LaNet-vi style scale).
Rgb ContinuousColor(double t);

/// Four-band color per super node from its normalized scalar.
std::vector<Rgb> HeightColors(const SuperTree& tree);

/// Four-band color per super node from the MEAN of `element_values`
/// (one value per tree element) over the node's members, normalized
/// across nodes. Requires element_values.size() == tree.NumElements().
std::vector<Rgb> SuperNodeColors(const SuperTree& tree,
                                 const std::vector<double>& element_values);

Image RenderOblique(const HeightField& field,
                    const std::vector<Rgb>& node_colors, const Camera& camera,
                    uint32_t width, uint32_t height);

Image RenderTopDown(const HeightField& field,
                    const std::vector<Rgb>& node_colors);

/// Binary PPM (P6) as an in-memory byte string — the TILE verb of the
/// query service ships exactly these bytes as its payload, so the
/// encoding must stay deterministic for a given image.
std::string EncodePpm(const Image& image);

/// Binary PPM (P6). Returns false on I/O failure.
bool WritePpm(const Image& image, const std::string& path);

}  // namespace graphscape

#endif  // GRAPHSCAPE_TERRAIN_RENDER_H_
