// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "terrain/terrain_raster.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace graphscape {

HeightField RasterizeTerrain(const TerrainLayout& layout,
                             const RasterOptions& options) {
  HeightField field;
  field.width = std::max(options.width, 1u);
  field.height = std::max(options.height, 1u);
  field.min_value = layout.min_value;
  field.max_value = layout.max_value;
  const double range = layout.max_value - layout.min_value;
  field.sea_level = layout.min_value - (range > 0.0 ? 0.05 * range : 1.0);
  field.height_at.assign(static_cast<size_t>(field.width) * field.height,
                         field.sea_level);
  field.node_at.assign(static_cast<size_t>(field.width) * field.height,
                       kInvalidSuperNode);

  const double sx = static_cast<double>(field.width);
  const double sy = static_cast<double>(field.height);
  // Paint by row band: every band replays the full paint order clipped
  // to its rows [band_y0, band_y1), so bands write disjoint pixels and
  // each pixel's last writer is the same node as in a sequential paint —
  // the output is bit-identical for every band count / thread count.
  // The only cost of more bands is re-decoding each footprint per band.
  const uint32_t lanes = EffectiveLanes(
      {options.num_threads, /*grain=*/1}, field.height);
  const uint32_t bands = lanes == 0 ? 1 : lanes;
  ParallelForBlocks(bands, {options.num_threads, 1}, [&](uint64_t band,
                                                         uint32_t) {
    const uint32_t band_y0 =
        static_cast<uint32_t>(field.height * band / bands);
    const uint32_t band_y1 =
        static_cast<uint32_t>(field.height * (band + 1) / bands);
    for (const uint32_t node : layout.paint_order) {
      const LandRect& rect = layout.rects[node];
      // A pixel belongs to the footprint when its CENTER is inside; ceil
      // on the low edge / exclusive high edge keeps adjacent spans
      // disjoint.
      const uint32_t px0 = static_cast<uint32_t>(std::max(
          std::ceil(rect.x0 * sx - 0.5), 0.0));
      const uint32_t py0 = std::max(
          static_cast<uint32_t>(std::max(std::ceil(rect.y0 * sy - 0.5), 0.0)),
          band_y0);
      const uint32_t px1 = static_cast<uint32_t>(std::min(
          std::ceil(rect.x1 * sx - 0.5), static_cast<double>(field.width)));
      const uint32_t py1 = std::min(
          static_cast<uint32_t>(std::min(std::ceil(rect.y1 * sy - 0.5),
                                         static_cast<double>(field.height))),
          band_y1);
      const double value = layout.values[node];
      for (uint32_t y = py0; y < py1; ++y) {
        double* hrow = field.height_at.data() +
                       static_cast<size_t>(y) * field.width;
        uint32_t* nrow = field.node_at.data() +
                         static_cast<size_t>(y) * field.width;
        std::fill(hrow + px0, hrow + px1, value);
        std::fill(nrow + px0, nrow + px1, node);
      }
    }
  });
  return field;
}

}  // namespace graphscape
