// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "terrain/svg.h"

#include <cstdio>

namespace graphscape {
namespace {

// One decimal place keeps multi-megabyte node-link files in check
// without visible quantization at figure sizes.
void WriteSvgHeader(std::FILE* f, double width, double height) {
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.1f\" "
               "height=\"%.1f\" viewBox=\"0 0 %.1f %.1f\">\n",
               width, height, width, height);
  std::fprintf(f, "<rect width=\"%.1f\" height=\"%.1f\" fill=\"white\"/>\n",
               width, height);
}

}  // namespace

bool WriteNodeLinkSvg(const Graph& g, const Positions& positions,
                      const std::vector<Rgb>& colors, const std::string& path,
                      double size, double node_radius) {
  if (positions.size() != g.NumVertices() || colors.size() != g.NumVertices())
    return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  WriteSvgHeader(f, size, size);

  std::fprintf(f, "<g stroke=\"#9ca3af\" stroke-width=\"0.3\" "
                  "stroke-opacity=\"0.45\">\n");
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    std::fprintf(f,
                 "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>\n",
                 positions[u].x * size, positions[u].y * size,
                 positions[v].x * size, positions[v].y * size);
  }
  std::fprintf(f, "</g>\n");

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::fprintf(f,
                 "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.2f\" "
                 "fill=\"rgb(%u,%u,%u)\"/>\n",
                 positions[v].x * size, positions[v].y * size, node_radius,
                 static_cast<unsigned>(colors[v].r),
                 static_cast<unsigned>(colors[v].g),
                 static_cast<unsigned>(colors[v].b));
  }
  std::fprintf(f, "</svg>\n");
  return std::fclose(f) == 0;
}

bool WriteTreemapSvg(const TerrainLayout& layout,
                     const std::vector<Rgb>& colors, const std::string& path) {
  if (colors.size() != layout.NumNodes()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const double size = 720.0;
  WriteSvgHeader(f, size, size);
  for (const uint32_t node : layout.paint_order) {
    const LandRect& rect = layout.rects[node];
    std::fprintf(f,
                 "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                 "height=\"%.1f\" fill=\"rgb(%u,%u,%u)\" "
                 "stroke=\"#1f2937\" stroke-width=\"0.4\"/>\n",
                 rect.x0 * size, rect.y0 * size, rect.Width() * size,
                 rect.Height() * size, static_cast<unsigned>(colors[node].r),
                 static_cast<unsigned>(colors[node].g),
                 static_cast<unsigned>(colors[node].b));
  }
  std::fprintf(f, "</svg>\n");
  return std::fclose(f) == 0;
}

}  // namespace graphscape
