// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Layout -> height field. Footprints are painted into a pixel grid in
// preorder (painter's algorithm): every pixel ends up owned by the
// DEEPEST super node whose footprint covers it, carrying that node's
// scalar as its height. Pixels no footprint covers are sea — held
// strictly below the field minimum, so every superlevel set {f >= t}
// appears as islands against it.
//
// Because the layout keeps sibling footprints disjoint and children
// strictly inside parents, flood-filling the height field at level t
// yields exactly CountComponentsAtLevel(tree, t) islands (at sufficient
// resolution) — the invariant tests/terrain_test.cc pins.
//
// The paint loop is allocation-free after the two output arrays are
// sized (tests/allocation_test.cc): per node it clips the footprint to
// the grid and writes contiguous row spans — overdraw is bounded by the
// nesting depth, which Algorithm 2's contraction keeps at the number of
// distinct values on a root path.

#ifndef GRAPHSCAPE_TERRAIN_TERRAIN_RASTER_H_
#define GRAPHSCAPE_TERRAIN_TERRAIN_RASTER_H_

#include <cstdint>
#include <vector>

#include "terrain/terrain_layout.h"

namespace graphscape {

struct RasterOptions {
  uint32_t width = 512;
  uint32_t height = 512;
  /// Lanes for the paint loop (1 = sequential, 0 = GRAPHSCAPE_THREADS /
  /// hardware). Parallelism is by row band: each band walks the full
  /// paint order clipping footprints to its rows, so every pixel sees
  /// the same last writer as the sequential painter — the field is
  /// BIT-IDENTICAL for every value. A speed knob, not a result knob.
  uint32_t num_threads = 1;
};

struct HeightField {
  uint32_t width = 0;
  uint32_t height = 0;
  /// Row-major scalar height per pixel; sea pixels hold `sea_level`.
  std::vector<double> height_at;
  /// Row-major owning super node per pixel; kInvalidSuperNode for sea.
  std::vector<uint32_t> node_at;
  /// Strictly below the field minimum (min - 5% of range).
  double sea_level = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;

  double HeightAt(uint32_t x, uint32_t y) const {
    return height_at[static_cast<size_t>(y) * width + x];
  }
  uint32_t NodeAt(uint32_t x, uint32_t y) const {
    return node_at[static_cast<size_t>(y) * width + x];
  }
};

HeightField RasterizeTerrain(const TerrainLayout& layout,
                             const RasterOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_TERRAIN_TERRAIN_RASTER_H_
