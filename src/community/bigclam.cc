// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "community/bigclam.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"

namespace graphscape {
namespace {

/// Dot products are clamped below so the weight exp(-d)/(1-exp(-d))
/// stays bounded (~19.5 at the clamp) when both rows are near zero.
constexpr double kMinDot = 0.05;

/// Stateless splitmix64-style mix of (seed, v, c) -> [0, 1). Hash-based
/// rather than stream-order so init is a pure function of the vertex id
/// — the property the Jacobi pass needs to stay thread-count invariant.
double Jitter(uint64_t seed, uint64_t v, uint64_t c) {
  uint64_t x = seed ^ (v * 0x9E3779B97F4A7C15ull) ^
               ((c + 1) * 0xBF58476D1CE4E5B9ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

/// Multi-source BFS: dist[v] = hops to the nearest seed, owner[v] = the
/// seed index that reached v first (seeds enqueued in index order, FIFO,
/// so ties break toward the lower seed index — deterministic).
void NearestSeed(const Graph& g, const std::vector<VertexId>& seeds,
                 std::vector<uint32_t>* dist, std::vector<uint32_t>* owner,
                 std::vector<VertexId>* queue) {
  const uint32_t n = g.NumVertices();
  dist->assign(n, kInvalidVertex);
  owner->assign(n, kInvalidVertex);
  queue->clear();
  for (uint32_t s = 0; s < seeds.size(); ++s) {
    (*dist)[seeds[s]] = 0;
    (*owner)[seeds[s]] = s;
    queue->push_back(seeds[s]);
  }
  for (size_t head = 0; head < queue->size(); ++head) {
    const VertexId u = (*queue)[head];
    for (const VertexId v : g.Neighbors(u)) {
      if ((*dist)[v] != kInvalidVertex) continue;
      (*dist)[v] = (*dist)[u] + 1;
      (*owner)[v] = (*owner)[u];
      queue->push_back(v);
    }
  }
}

/// Farthest-point seeding: seed 0 is the max-degree vertex (ties to the
/// smallest id); each next seed maximizes the distance to all chosen
/// seeds, with unreachable counting as farthest so every component gets
/// a seed before any community shares one.
std::vector<VertexId> FarthestPointSeeds(const Graph& g, uint32_t k) {
  const uint32_t n = g.NumVertices();
  std::vector<VertexId> seeds;
  if (n == 0 || k == 0) return seeds;
  VertexId first = 0;
  for (VertexId v = 1; v < n; ++v)
    if (g.Degree(v) > g.Degree(first)) first = v;
  seeds.push_back(first);
  std::vector<uint32_t> dist, owner;
  std::vector<VertexId> queue;
  queue.reserve(n);
  while (seeds.size() < std::min(k, n)) {
    NearestSeed(g, seeds, &dist, &owner, &queue);
    VertexId best = 0;
    for (VertexId v = 1; v < n; ++v)
      if (dist[v] > dist[best]) best = v;  // kInvalidVertex == farthest
    seeds.push_back(best);
  }
  return seeds;
}

}  // namespace

BigClamAffiliations BigClamFit(const Graph& g, const BigClamOptions& options) {
  const uint32_t n = g.NumVertices();
  const uint32_t k = std::max(1u, options.num_communities);

  BigClamAffiliations result;
  result.num_vertices = n;
  result.num_communities = k;
  result.factors.assign(static_cast<size_t>(n) * k, 0.0);
  if (n == 0) return result;

  // Warm start: each vertex leans 0.6 toward its nearest seed's
  // community, plus a small hash jitter everywhere; seeds start at 1.
  const std::vector<VertexId> seeds = FarthestPointSeeds(g, k);
  std::vector<uint32_t> dist, owner;
  std::vector<VertexId> queue;
  NearestSeed(g, seeds, &dist, &owner, &queue);
  std::vector<double> current = std::move(result.factors);
  for (VertexId v = 0; v < n; ++v) {
    double* row = &current[static_cast<size_t>(v) * k];
    for (uint32_t c = 0; c < k; ++c)
      row[c] = 0.1 * Jitter(options.seed, v, c);
    if (owner[v] != kInvalidVertex) row[owner[v]] += dist[v] == 0 ? 1.0 : 0.6;
  }

  // Jacobi batch ascent: next[u] is a pure function of `current`, so the
  // ParallelFor is bit-identical for every thread count. All buffers are
  // preallocated — the loop below performs no heap allocation.
  std::vector<double> next(current.size(), 0.0);
  const ParallelOptions parallel{options.num_threads, /*grain=*/256};
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    ParallelFor(0, n, parallel, [&](uint64_t u) {
      const double* fu = &current[u * k];
      double* out = &next[u * k];
      for (uint32_t c = 0; c < k; ++c) out[c] = -options.lambda;
      for (const VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
        const double* fv = &current[static_cast<size_t>(v) * k];
        double d = 0.0;
        for (uint32_t c = 0; c < k; ++c) d += fu[c] * fv[c];
        if (d < kMinDot) d = kMinDot;
        const double e = std::exp(-d);
        const double w = e / (1.0 - e);
        for (uint32_t c = 0; c < k; ++c) out[c] += w * fv[c];
      }
      for (uint32_t c = 0; c < k; ++c) {
        double f = fu[c] + options.step * out[c];
        if (f < 0.0) f = 0.0;
        if (f > options.max_factor) f = options.max_factor;
        out[c] = f;
      }
    });
    current.swap(next);
  }
  result.factors = std::move(current);
  return result;
}

VertexScalarField CommunityScoreField(const BigClamAffiliations& affiliations,
                                      uint32_t community) {
  const uint32_t n = affiliations.num_vertices;
  std::vector<double> values(n, 0.0);
  double max = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    values[v] = affiliations.At(v, community);
    max = std::max(max, values[v]);
  }
  if (max > 0.0)
    for (double& value : values) value /= max;
  return VertexScalarField("bigclam" + std::to_string(community),
                           std::move(values));
}

VertexScalarField MaxMembershipField(const BigClamAffiliations& affiliations) {
  const uint32_t n = affiliations.num_vertices;
  const uint32_t k = affiliations.num_communities;
  // Column maxima first so every community is on the same [0, 1] scale.
  std::vector<double> column_max(k, 0.0);
  for (VertexId v = 0; v < n; ++v)
    for (uint32_t c = 0; c < k; ++c)
      column_max[c] = std::max(column_max[c], affiliations.At(v, c));
  std::vector<double> values(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t c = 0; c < k; ++c) {
      if (column_max[c] > 0.0)
        values[v] = std::max(values[v], affiliations.At(v, c) / column_max[c]);
    }
  }
  return VertexScalarField("bigclam_max", std::move(values));
}

}  // namespace graphscape
