// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// BigCLAM-lite (paper ref [14]): overlapping community affiliations by
// nonnegative factorization of the adjacency structure under the model
// P(u ~ v) = 1 - exp(-F_u . F_v). The fit is a fixed budget of Jacobi
// batch projected-gradient steps: every iteration computes the NEW factor
// row of each vertex purely from the OLD factor matrix, so the per-vertex
// pass parallelizes over common/parallel.h with bit-identical results for
// every thread count. Symmetry is broken deterministically by
// farthest-point BFS seeding plus a hash-based jitter — no stream-order
// randomness anywhere, so the fit is a pure function of (graph, options).
//
// The iteration loop is allocation-free in steady state: two factor
// buffers are preallocated and swapped (tests/community_test.cc pins the
// allocation count).

#ifndef GRAPHSCAPE_COMMUNITY_BIGCLAM_H_
#define GRAPHSCAPE_COMMUNITY_BIGCLAM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "scalar/scalar_field.h"

namespace graphscape {

struct BigClamOptions {
  uint32_t num_communities = 4;
  /// Gradient steps. The fit runs the full budget (no convergence test —
  /// a data-dependent early exit would make runtime, and with it bench
  /// trajectories, shape-dependent).
  uint32_t iterations = 80;
  double step = 0.05;
  /// Projection box: factors live in [0, max_factor].
  double max_factor = 8.0;
  /// L1 pull toward 0 — keeps non-members' factors decaying instead of
  /// drifting on the flat part of the likelihood.
  double lambda = 0.05;
  /// Seeds the jitter hash; the BFS seeding itself is seed-free.
  uint64_t seed = 14;
  /// Lanes for the per-vertex update pass (0 = DefaultThreads(),
  /// 1 = sequential). Bit-identical either way.
  uint32_t num_threads = 0;
};

/// Row-major nonnegative factor matrix F (num_vertices x num_communities).
struct BigClamAffiliations {
  uint32_t num_vertices = 0;
  uint32_t num_communities = 0;
  std::vector<double> factors;

  double At(VertexId v, uint32_t community) const {
    return factors[static_cast<size_t>(v) * num_communities + community];
  }
};

/// Deterministic in (g, options); identical for every num_threads.
BigClamAffiliations BigClamFit(const Graph& g,
                               const BigClamOptions& options = {});

/// One community's factor column scaled to [0, 1] (by the column max; an
/// all-zero column stays zero). Named "bigclam<c>".
VertexScalarField CommunityScoreField(const BigClamAffiliations& affiliations,
                                      uint32_t community);

/// Per-vertex max over all normalized columns — the "strongest
/// affiliation anywhere" terrain height. Named "bigclam_max".
VertexScalarField MaxMembershipField(const BigClamAffiliations& affiliations);

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMUNITY_BIGCLAM_H_
