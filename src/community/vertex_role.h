// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The role vocabulary alone, dependency-free: gen/generators.h plants
// these labels and community/roles.h recovers them, and neither side
// should drag the other's include graph along for an enum.

#ifndef GRAPHSCAPE_COMMUNITY_VERTEX_ROLE_H_
#define GRAPHSCAPE_COMMUNITY_VERTEX_ROLE_H_

#include <cstdint>

namespace graphscape {

/// The paper's Fig. 9 vocabulary. Values are the color-table indices the
/// figure benches vote with, so the order is load-bearing.
enum class VertexRole : uint8_t {
  kHub = 0,        ///< green summit: connects most of the community
  kDense = 1,      ///< blue band: the near-clique body
  kPeriphery = 2,  ///< red slope: loosely attached members
  kWhisker = 3,    ///< yellow fringe: tree-like appendages
  kBackground = 4  ///< not in the community under study
};

/// Row label for tables ("hub", "dense", ...).
const char* RoleName(VertexRole role);

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMUNITY_VERTEX_ROLE_H_
