// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "community/roles.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/graph_algos.h"
#include "metrics/kcore.h"
#include "metrics/triangles.h"

namespace graphscape {

const char* RoleName(VertexRole role) {
  switch (role) {
    case VertexRole::kHub:
      return "hub";
    case VertexRole::kDense:
      return "dense";
    case VertexRole::kPeriphery:
      return "periphery";
    case VertexRole::kWhisker:
      return "whisker";
    case VertexRole::kBackground:
      return "background";
  }
  return "background";
}

Rgb RoleColor(VertexRole role) {
  switch (role) {
    case VertexRole::kHub:
      return Rgb{46, 160, 67};  // green summit
    case VertexRole::kDense:
      return Rgb{58, 110, 220};  // blue band
    case VertexRole::kPeriphery:
      return Rgb{214, 57, 57};  // red slope
    case VertexRole::kWhisker:
      return Rgb{229, 192, 46};  // yellow fringe
    case VertexRole::kBackground:
      return Rgb{150, 150, 150};
  }
  return Rgb{150, 150, 150};
}

RoleFeatureMatrix RecursiveFeatures(const Graph& g,
                                    const RoleFeatureOptions& options) {
  const uint32_t n = g.NumVertices();
  uint32_t num_features = kBaseRoleFeatures;
  for (uint32_t level = 0; level < options.depth; ++level) num_features *= 3;

  RoleFeatureMatrix m;
  m.num_vertices = n;
  m.num_features = num_features;
  m.values.assign(static_cast<size_t>(n) * num_features, 0.0);
  if (n == 0) return m;

  const ParallelOptions parallel{options.num_threads, /*grain=*/512};
  const std::vector<uint32_t> triangles = VertexTriangleCounts(g);

  // Base block. Egonet internal edges = deg + triangles (every edge
  // among N(v) closes a triangle through v); boundary = degree mass of
  // the egonet minus both endpoints of each internal edge.
  ParallelFor(0, n, parallel, [&](uint64_t u) {
    const auto v = static_cast<VertexId>(u);
    const double deg = g.Degree(v);
    const double tri = triangles[v];
    double neighbor_degree = 0.0;
    for (const VertexId w : g.Neighbors(v)) neighbor_degree += g.Degree(w);
    const double internal = deg + tri;
    double* row = &m.values[u * num_features];
    row[0] = deg;
    row[1] = tri;
    row[2] = deg >= 2.0 ? 2.0 * tri / (deg * (deg - 1.0)) : 0.0;
    row[3] = internal;
    row[4] = (deg + neighbor_degree) - 2.0 * internal;
  });

  // Recursive widening: level L fills columns [width, 3 * width) with the
  // neighbor means and sums of columns [0, width). Each level reads only
  // already-final columns, so the pass is a pure function of the index.
  uint32_t width = kBaseRoleFeatures;
  for (uint32_t level = 0; level < options.depth; ++level) {
    ParallelFor(0, n, parallel, [&](uint64_t u) {
      const auto v = static_cast<VertexId>(u);
      double* row = &m.values[u * num_features];
      double* mean = row + width;
      double* sum = row + 2 * static_cast<size_t>(width);
      for (uint32_t f = 0; f < width; ++f) mean[f] = sum[f] = 0.0;
      for (const VertexId w : g.Neighbors(v)) {
        const double* other = &m.values[static_cast<size_t>(w) * num_features];
        for (uint32_t f = 0; f < width; ++f) sum[f] += other[f];
      }
      const double deg = g.Degree(v);
      if (deg > 0.0)
        for (uint32_t f = 0; f < width; ++f) mean[f] = sum[f] / deg;
    });
    width *= 3;
  }
  return m;
}

RoleMemberships FitRoleMemberships(const Graph& g,
                                   const RoleOptions& options) {
  const RoleFeatureMatrix features = RecursiveFeatures(g, options.features);
  const uint32_t n = features.num_vertices;
  const uint32_t d = features.num_features;
  const uint32_t k = std::min(std::max(1u, options.num_roles), std::max(n, 1u));

  RoleMemberships result;
  result.num_roles = k;
  result.fields.assign(k, std::vector<double>(n, 0.0));
  result.role_of.assign(n, 0);
  if (n == 0) return result;

  // Z-score the columns so degree (huge) cannot drown clustering (unit).
  std::vector<double> z = features.values;
  for (uint32_t f = 0; f < d; ++f) {
    double mean = 0.0;
    for (VertexId v = 0; v < n; ++v) mean += z[static_cast<size_t>(v) * d + f];
    mean /= n;
    double var = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const double x = z[static_cast<size_t>(v) * d + f] - mean;
      var += x * x;
    }
    const double stddev = std::sqrt(var / n);
    for (VertexId v = 0; v < n; ++v) {
      double& x = z[static_cast<size_t>(v) * d + f];
      x = stddev > 0.0 ? (x - mean) / stddev : 0.0;
    }
  }

  const auto row = [&](VertexId v) { return &z[static_cast<size_t>(v) * d]; };
  const auto sq_dist = [&](const double* a, const double* b) {
    double dist = 0.0;
    for (uint32_t f = 0; f < d; ++f) {
      const double x = a[f] - b[f];
      dist += x * x;
    }
    return dist;
  };

  // k-means++ seeding from the options seed.
  Rng rng(options.seed);
  std::vector<double> centers(static_cast<size_t>(k) * d);
  std::vector<double> nearest(n, std::numeric_limits<double>::max());
  const VertexId first = rng.UniformInt(n);
  std::copy(row(first), row(first) + d, centers.begin());
  for (uint32_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const double* prev = &centers[(c - 1) * static_cast<size_t>(d)];
      nearest[v] = std::min(nearest[v], sq_dist(row(v), prev));
      total += nearest[v];
    }
    VertexId pick = n - 1;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      for (VertexId v = 0; v < n; ++v) {
        target -= nearest[v];
        if (target <= 0.0) {
          pick = v;
          break;
        }
      }
    } else {
      pick = rng.UniformInt(n);
    }
    std::copy(row(pick), row(pick) + d,
              centers.begin() + c * static_cast<size_t>(d));
  }

  // Lloyd iterations; ties and empty clusters resolve to the lowest id /
  // the old center, so the fit is deterministic.
  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(static_cast<size_t>(k) * d);
  std::vector<uint32_t> counts(k);
  for (uint32_t iter = 0; iter < std::max(1u, options.kmeans_iterations);
       ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      uint32_t best = 0;
      double best_dist = sq_dist(row(v), &centers[0]);
      for (uint32_t c = 1; c < k; ++c) {
        const double dist =
            sq_dist(row(v), &centers[c * static_cast<size_t>(d)]);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      assign[v] = best;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (VertexId v = 0; v < n; ++v) {
      ++counts[assign[v]];
      const double* r = row(v);
      double* s = &sums[assign[v] * static_cast<size_t>(d)];
      for (uint32_t f = 0; f < d; ++f) s[f] += r[f];
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (uint32_t f = 0; f < d; ++f)
        centers[c * static_cast<size_t>(d) + f] =
            sums[c * static_cast<size_t>(d) + f] / counts[c];
    }
  }

  // Relabel by descending mean member degree: role 0 = hubbiest cluster.
  std::vector<double> degree_sum(k, 0.0);
  std::fill(counts.begin(), counts.end(), 0u);
  for (VertexId v = 0; v < n; ++v) {
    degree_sum[assign[v]] += g.Degree(v);
    ++counts[assign[v]];
  }
  std::vector<uint32_t> order(k);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const double da = counts[a] > 0 ? degree_sum[a] / counts[a] : -1.0;
    const double db = counts[b] > 0 ? degree_sum[b] / counts[b] : -1.0;
    return da > db;
  });
  std::vector<uint32_t> relabel(k);
  for (uint32_t rank = 0; rank < k; ++rank) relabel[order[rank]] = rank;

  // Membership: nearest-distance ratio, 1 on the assigned cluster.
  constexpr double kEps = 1e-9;
  for (VertexId v = 0; v < n; ++v) {
    result.role_of[v] = relabel[assign[v]];
    const double nearest_dist =
        sq_dist(row(v), &centers[assign[v] * static_cast<size_t>(d)]);
    for (uint32_t c = 0; c < k; ++c) {
      const double dist = sq_dist(row(v), &centers[c * static_cast<size_t>(d)]);
      result.fields[relabel[c]][v] = (nearest_dist + kEps) / (dist + kEps);
    }
  }
  return result;
}

VertexScalarField RoleMembershipField(const RoleMemberships& memberships,
                                      uint32_t role) {
  return VertexScalarField("role" + std::to_string(role) + "_membership",
                           memberships.fields[role]);
}

std::vector<VertexRole> ClassifyRoles(const Graph& g,
                                      const std::vector<VertexId>& community,
                                      const RoleOptions& options) {
  std::vector<VertexRole> roles(g.NumVertices(), VertexRole::kBackground);
  if (community.empty()) return roles;

  const Subgraph sub = InducedSubgraph(g, community);
  const uint32_t n = sub.graph.NumVertices();
  const std::vector<uint32_t> cores = CoreNumbers(sub.graph);
  const uint32_t max_core = *std::max_element(cores.begin(), cores.end());
  double mean_degree = 0.0;
  for (VertexId v = 0; v < n; ++v) mean_degree += sub.graph.Degree(v);
  mean_degree /= n;

  for (VertexId local = 0; local < n; ++local) {
    const double degree = sub.graph.Degree(local);
    VertexRole role;
    // Hub outranks whisker: a star center is 1-core yet unmistakably a
    // hub, so extreme degree is checked before the tree-fringe test.
    if (degree >= options.hub_degree_factor * mean_degree) {
      role = VertexRole::kHub;
    } else if (cores[local] <= 1) {
      role = VertexRole::kWhisker;
    } else if (cores[local] >= options.dense_core_fraction * max_core) {
      role = VertexRole::kDense;
    } else {
      role = VertexRole::kPeriphery;
    }
    roles[sub.to_parent_vertex[local]] = role;
  }
  return roles;
}

double RoleAccuracy(const std::vector<VertexRole>& predicted,
                    const std::vector<VertexRole>& planted) {
  uint32_t total = 0, hits = 0;
  const size_t n = std::min(predicted.size(), planted.size());
  for (size_t v = 0; v < n; ++v) {
    if (planted[v] == VertexRole::kBackground) continue;
    ++total;
    if (predicted[v] == planted[v]) ++hits;
  }
  return total == 0 ? 1.0 : static_cast<double>(hits) / total;
}

}  // namespace graphscape
