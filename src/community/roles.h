// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Structural roles (paper §III-B, Fig. 9 / Table III): which part a vertex
// plays inside its community — the paper's hub / dense-band / periphery /
// whisker reading of the Amazon co-purchase terrain. Two layers:
//
//  * RecursiveFeatures — ReFeX-style recursive structural features: a base
//    block of local measures (degree, triangle count, clustering, egonet
//    internal/boundary edges) recursively widened by mean- and
//    sum-aggregation over neighbors to a fixed depth. Every aggregation
//    level is a pure function of the previous matrix, so the parallel
//    pass is bit-identical for every thread count (common/parallel.h).
//
//  * FitRoleMemberships — RolX-style soft role discovery: seeded
//    k-means++ over the z-scored feature rows, fixed iteration budget,
//    clusters relabeled by descending mean degree so role ids are stable
//    across runs. Each role yields a per-vertex membership field in
//    [0, 1] — scalar fields the terrain pipeline renders directly.
//
// ClassifyRoles maps community members onto the paper's four named roles
// with deterministic structural thresholds (degree vs. community mean,
// core number within the community) — the semantic layer Fig. 9 colors
// by and RoleAccuracy scores against planted ground truth.

#ifndef GRAPHSCAPE_COMMUNITY_ROLES_H_
#define GRAPHSCAPE_COMMUNITY_ROLES_H_

#include <cstdint>
#include <vector>

#include "community/vertex_role.h"
#include "graph/graph.h"
#include "scalar/scalar_field.h"
#include "terrain/render.h"

namespace graphscape {

/// The Fig. 9 color scheme: green / blue / red / yellow / gray.
Rgb RoleColor(VertexRole role);

struct RoleFeatureOptions {
  /// Recursive aggregation depth: every level appends mean and sum
  /// neighbor aggregates of all current features, so the feature count is
  /// kBaseFeatures * 3^depth.
  uint32_t depth = 2;
  /// Lanes for the per-level aggregation passes (common/parallel.h);
  /// 0 = DefaultThreads(), 1 = sequential. Bit-identical either way.
  uint32_t num_threads = 0;
};

/// The base block: degree, triangles, clustering coefficient, egonet
/// internal edges, egonet boundary edges.
inline constexpr uint32_t kBaseRoleFeatures = 5;

/// Row-major per-vertex feature matrix.
struct RoleFeatureMatrix {
  uint32_t num_vertices = 0;
  uint32_t num_features = 0;
  std::vector<double> values;  ///< num_vertices x num_features

  double At(VertexId v, uint32_t feature) const {
    return values[static_cast<size_t>(v) * num_features + feature];
  }
};

/// ReFeX-style recursive features. Deterministic in (g, options.depth);
/// identical for every num_threads.
RoleFeatureMatrix RecursiveFeatures(const Graph& g,
                                    const RoleFeatureOptions& options = {});

struct RoleOptions {
  RoleFeatureOptions features;
  /// Soft role count for FitRoleMemberships (RolX's model-selection step
  /// replaced by a fixed budget; 4 matches the paper's reading).
  uint32_t num_roles = 4;
  uint32_t kmeans_iterations = 20;
  /// Seeds the k-means++ center choices.
  uint64_t seed = 19;
  /// ClassifyRoles: hub iff community degree >= factor * community mean.
  double hub_degree_factor = 3.5;
  /// ClassifyRoles: dense iff community core number >= fraction * max.
  double dense_core_fraction = 0.55;
};

/// Soft role memberships from seeded k-means over RecursiveFeatures.
struct RoleMemberships {
  uint32_t num_roles = 0;
  /// fields[r][v] in [0, 1]: 1 on vertices assigned to role r, decaying
  /// with relative feature-space distance elsewhere. Each inner vector is
  /// a ready VertexScalarField column.
  std::vector<std::vector<double>> fields;
  /// Hard assignment: argmax membership (== nearest center).
  std::vector<uint32_t> role_of;
};

/// Deterministic in (g, options); roles ordered by descending mean
/// degree of their members, so role 0 is always the hubbiest cluster.
RoleMemberships FitRoleMemberships(const Graph& g,
                                   const RoleOptions& options = {});

/// Membership field for one role, named "role<r>_membership".
VertexScalarField RoleMembershipField(const RoleMemberships& memberships,
                                      uint32_t role);

/// Names the part each community member plays; vertices outside
/// `community` map to kBackground. Thresholds (RoleOptions) are applied
/// to the subgraph induced by `community`: whiskers are its core-1
/// fringe, hubs its extreme-degree vertices, the dense band its deep
/// cores, periphery the rest.
std::vector<VertexRole> ClassifyRoles(const Graph& g,
                                      const std::vector<VertexId>& community,
                                      const RoleOptions& options = {});

/// Fraction of vertices planted as non-background whose predicted role
/// matches. 1.0 when there are no such vertices.
double RoleAccuracy(const std::vector<VertexRole>& predicted,
                    const std::vector<VertexRole>& planted);

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMUNITY_ROLES_H_
