// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Canonical undirected edge ids over the CSR structure, shared by every
// edge-indexed subsystem (K-Truss support peeling, nucleus lifting, edge
// scalar trees). Edge e's id is its position in EdgeList order: ascending
// smaller endpoint, then larger — exactly the order TrussNumbers and
// EdgeScalarField values are laid out in.
//
// This id space is the hinge between the paper's two tree algorithms
// (PAPER.md §II-C): Algorithm 3 builds an edge scalar tree whose NODES
// are these edge ids while its union-find runs over the ORIGINAL
// graph's vertices, and the resulting ScalarTree flows through the same
// Algorithm 2 contraction and §II-E simplification as Algorithm 1's
// vertex trees (scalar/tree_core.h). For that to be sound the mapping
// must satisfy two invariants: (1) twin consistency — both CSR slots of
// an undirected edge {u, v} carry the SAME id, so "the edge at this
// slot" is direction-free; (2) order agreement — ids are dense in
// EdgeList order, so a metric vector computed by edge peeling
// (TrussNumbers) indexes an EdgeScalarField with no permutation.
//
// Construction resolves the undirected-twin mapping once: one forward
// pass mints ids on the u < v slots, and each reverse slot finds its twin
// with a binary search in the already-minted run. After that every
// adjacency slot answers "which edge am I?" in O(1), which is what lets
// the naive dual-graph construction and the per-slot sweeps stay free of
// hashing.

#ifndef GRAPHSCAPE_GRAPH_EDGE_INDEX_H_
#define GRAPHSCAPE_GRAPH_EDGE_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

class EdgeIndex {
 public:
  explicit EdgeIndex(const Graph& g) : graph_(&g) {
    const uint32_t n = g.NumVertices();
    const std::vector<uint32_t>& offsets = g.Offsets();
    const std::vector<VertexId>& adj = g.Adjacency();
    slot_eid_.resize(adj.size());
    uint32_t next = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (uint32_t s = offsets[u]; s < offsets[u + 1]; ++s) {
        const VertexId v = adj[s];
        if (u < v) {
          slot_eid_[s] = next;
          ++next;
        } else {
          // v < u, so v's run already minted the id; find u's slot in it.
          const VertexId* lo = adj.data() + offsets[v];
          const VertexId* hi = adj.data() + offsets[v + 1];
          const VertexId* it = std::lower_bound(lo, hi, u);
          slot_eid_[s] = slot_eid_[static_cast<uint32_t>(it - adj.data())];
        }
      }
    }
  }

  uint32_t NumEdges() const {
    return static_cast<uint32_t>(graph_->NumEdges());
  }

  /// Endpoints of edge e, U(e) < V(e). Served by the graph's own
  /// EdgeList-order endpoint arrays — the ids minted here agree with
  /// Graph::EdgeEndpoints by construction (same CSR traversal order).
  VertexId U(uint32_t e) const { return graph_->EdgeSources()[e]; }
  VertexId V(uint32_t e) const { return graph_->EdgeTargets()[e]; }
  const std::vector<VertexId>& EndpointsU() const {
    return graph_->EdgeSources();
  }
  const std::vector<VertexId>& EndpointsV() const {
    return graph_->EdgeTargets();
  }

  /// Edge id of the s-th CSR adjacency slot.
  uint32_t EdgeAtSlot(uint32_t slot) const { return slot_eid_[slot]; }
  const std::vector<uint32_t>& SlotEdgeIds() const { return slot_eid_; }

  /// Edge id of existing edge {a, b}; O(log deg(min(a, b))).
  uint32_t EdgeId(VertexId a, VertexId b) const {
    const VertexId x = std::min(a, b), y = std::max(a, b);
    const std::vector<uint32_t>& offsets = graph_->Offsets();
    const std::vector<VertexId>& adj = graph_->Adjacency();
    const VertexId* lo = adj.data() + offsets[x];
    const VertexId* hi = adj.data() + offsets[x + 1];
    const VertexId* it = std::lower_bound(lo, hi, y);
    return slot_eid_[static_cast<uint32_t>(it - adj.data())];
  }

 private:
  const Graph* graph_;
  std::vector<uint32_t> slot_eid_;  // 2m: CSR slot -> edge id
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_EDGE_INDEX_H_
