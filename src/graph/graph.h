// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Immutable CSR-packed undirected graph.
//
// The whole adjacency structure is two flat uint32_t arrays: `offsets_`
// (n + 1 entries) and `neighbors_` (2m entries, both directions of every
// edge). Per-vertex adjacency lists are sorted ascending, which gives the
// metrics kernels (triangles, truss, nucleus) O(log d) membership tests and
// merge-style intersections with perfectly sequential access. There are no
// per-vertex containers anywhere — a neighborhood scan touches exactly one
// contiguous cache-line run.
//
// Edges additionally carry dense ids in EdgeList order (ascending smaller
// endpoint, then larger) with O(1) endpoint lookup — the id space every
// edge-indexed consumer shares (TrussNumbers, EdgeScalarField,
// graph/edge_index.h). The two m-sized endpoint arrays are derived from
// the CSR structure at construction in one pass.

#ifndef GRAPHSCAPE_GRAPH_GRAPH_H_
#define GRAPHSCAPE_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphscape {

using VertexId = uint32_t;
using EdgeId = uint32_t;
inline constexpr VertexId kInvalidVertex = 0xffffffffu;

class Graph {
 public:
  /// Contiguous, sorted view of one vertex's neighbors.
  struct NeighborRange {
    const VertexId* first;
    const VertexId* last;
    const VertexId* begin() const { return first; }
    const VertexId* end() const { return last; }
    uint32_t size() const { return static_cast<uint32_t>(last - first); }
    VertexId operator[](uint32_t i) const { return first[i]; }
  };

  Graph() = default;

  uint32_t NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each stored once per direction).
  uint64_t NumEdges() const { return neighbors_.size() / 2; }

  uint32_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  NeighborRange Neighbors(VertexId v) const {
    const VertexId* base = neighbors_.data();
    return NeighborRange{base + offsets_[v], base + offsets_[v + 1]};
  }

  /// True iff edge {u, v} exists; O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const {
    const NeighborRange r = Neighbors(u);
    return std::binary_search(r.begin(), r.end(), v);
  }

  /// Endpoints of edge `e` in EdgeList order, smaller endpoint first.
  std::pair<VertexId, VertexId> EdgeEndpoints(EdgeId e) const {
    return {edge_u_[e], edge_v_[e]};
  }

  /// Raw endpoint arrays (m each, edge_u_[e] < edge_v_[e]).
  const std::vector<VertexId>& EdgeSources() const { return edge_u_; }
  const std::vector<VertexId>& EdgeTargets() const { return edge_v_; }

  /// Raw CSR arrays, for kernels that index the structure directly.
  const std::vector<uint32_t>& Offsets() const { return offsets_; }
  const std::vector<VertexId>& Adjacency() const { return neighbors_; }

 private:
  friend class GraphBuilder;
  Graph(std::vector<uint32_t> offsets, std::vector<VertexId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
    edge_u_.resize(neighbors_.size() / 2);
    edge_v_.resize(neighbors_.size() / 2);
    EdgeId next = 0;
    for (VertexId u = 0; u < NumVertices(); ++u) {
      for (const VertexId v : Neighbors(u)) {
        if (u < v) {
          edge_u_[next] = u;
          edge_v_[next] = v;
          ++next;
        }
      }
    }
  }

  std::vector<uint32_t> offsets_;   // n + 1; offsets_[n] == neighbors_.size()
  std::vector<VertexId> neighbors_;  // 2m, each per-vertex run sorted
  std::vector<VertexId> edge_u_, edge_v_;  // m: EdgeList-order endpoints
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_GRAPH_H_
