// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Mutable edge accumulator that packs into an immutable CSR Graph.
//
// Build() is a two-pass counting sort over the accumulated edge list:
// degrees → prefix offsets → scatter, then per-vertex sort + dedup in place.
// Self-loops and duplicate edges are dropped, so algorithms downstream can
// assume a simple graph.

#ifndef GRAPHSCAPE_GRAPH_GRAPH_BUILDER_H_
#define GRAPHSCAPE_GRAPH_GRAPH_BUILDER_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

class GraphBuilder {
 public:
  /// `num_vertices` is a floor; AddEdge with a larger endpoint grows it.
  explicit GraphBuilder(uint32_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// Records undirected edge {u, v}. Self-loops are ignored.
  void AddEdge(VertexId u, VertexId v) {
    if (u == v) return;
    const VertexId hi = std::max(u, v);
    if (hi >= num_vertices_) num_vertices_ = hi + 1;
    edges_.emplace_back(u, v);
  }

  uint32_t NumVertices() const { return num_vertices_; }
  size_t NumAddedEdges() const { return edges_.size(); }

  /// Packs into CSR. The builder may be reused afterwards (edges kept).
  Graph Build() const {
    const uint32_t n = num_vertices_;
    std::vector<uint32_t> offsets(n + 1, 0);
    for (const auto& [u, v] : edges_) {
      ++offsets[u + 1];
      ++offsets[v + 1];
    }
    for (uint32_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

    std::vector<VertexId> neighbors(edges_.size() * 2);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [u, v] : edges_) {
      neighbors[cursor[u]++] = v;
      neighbors[cursor[v]++] = u;
    }

    // Sort each run and squeeze out duplicate edges in one compaction pass.
    uint32_t write = 0;
    uint32_t run_begin = 0;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t run_end = offsets[v + 1];
      std::sort(neighbors.begin() + run_begin, neighbors.begin() + run_end);
      const uint32_t new_begin = write;
      for (uint32_t i = run_begin; i < run_end; ++i) {
        if (write == new_begin || neighbors[write - 1] != neighbors[i]) {
          neighbors[write++] = neighbors[i];
        }
      }
      run_begin = run_end;
      offsets[v + 1] = write;
    }
    neighbors.resize(write);
    neighbors.shrink_to_fit();
    return Graph(std::move(offsets), std::move(neighbors));
  }

 private:
  uint32_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_GRAPH_BUILDER_H_
