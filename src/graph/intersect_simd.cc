// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Kernel implementations and runtime dispatch for graph/intersect_simd.h.
//
// The vector kernels are the classic shuffle-and-compare block algorithm:
// load one aligned-width block from each run, compare every lane of A
// against every rotation of B, OR the equality masks, popcount the
// movemask, then advance whichever block's maximum is smaller (both on a
// tie). Correctness of the advance: when max(A-block) <= max(B-block),
// every yet-unseen B element is > max(B-block) >= every A-block element,
// so the A block can never match again. Matches are therefore seen exactly
// once, and (runs being duplicate-free) each A lane matches at most one B
// element ever — per-compare emission in lane order is globally ascending
// (proved in tests/intersect_test.cc by differential fuzz against the
// scalar merge).
//
// AVX2 functions carry __attribute__((target("avx2"))) so this file
// compiles without -mavx2 and the instructions only execute after the
// runtime probe — the binary stays runnable on any x86-64.

#include "graph/intersect_simd.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#if !defined(GRAPHSCAPE_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define GRAPHSCAPE_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace graphscape {
namespace intersect {

namespace detail {

uint32_t CountMerge(const uint32_t* a, uint32_t na, const uint32_t* b,
                    uint32_t nb) {
  // The seed's branchy merge, verbatim: this IS the scalar kernel every
  // other path must agree with.
  const uint32_t* ea = a + na;
  const uint32_t* eb = b + nb;
  uint32_t count = 0;
  while (a != ea && b != eb) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

uint32_t IntoMerge(const uint32_t* a, uint32_t na, const uint32_t* b,
                   uint32_t nb, uint32_t* out) {
  const uint32_t* ea = a + na;
  const uint32_t* eb = b + nb;
  uint32_t count = 0;
  while (a != ea && b != eb) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      out[count++] = *a;
      ++a;
      ++b;
    }
  }
  return count;
}

uint32_t CountGallop(const uint32_t* small, uint32_t ns,
                     const uint32_t* large, uint32_t nl) {
  const uint32_t* end = large + nl;
  const uint32_t* p = large;
  uint32_t count = 0;
  for (uint32_t i = 0; i < ns; ++i) {
    p = GallopSeek(p, end, small[i]);
    if (p == end) break;
    if (*p == small[i]) {
      ++count;
      ++p;
    }
  }
  return count;
}

uint32_t IntoGallop(const uint32_t* small, uint32_t ns,
                    const uint32_t* large, uint32_t nl, uint32_t* out) {
  const uint32_t* end = large + nl;
  const uint32_t* p = large;
  uint32_t count = 0;
  for (uint32_t i = 0; i < ns; ++i) {
    p = GallopSeek(p, end, small[i]);
    if (p == end) break;
    if (*p == small[i]) {
      out[count++] = small[i];
      ++p;
    }
  }
  return count;
}

}  // namespace detail

namespace {

using detail::CountGallop;
using detail::CountMerge;
using detail::GallopSeek;
using detail::IntoGallop;
using detail::IntoMerge;

#ifdef GRAPHSCAPE_INTERSECT_X86

// ------------------------------------------------------------- SSE2 4x4 --
// SSE2 is x86-64 baseline, so these need no target attribute and no probe.

uint32_t CountSse2(const uint32_t* a, uint32_t na, const uint32_t* b,
                   uint32_t nb) {
  uint32_t i = 0, j = 0, count = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      __m128i eq = _mm_cmpeq_epi32(va, vb);
      eq = _mm_or_si128(
          eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // 0321
      eq = _mm_or_si128(
          eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));  // 1032
      eq = _mm_or_si128(
          eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // 2103
      count += static_cast<uint32_t>(
          __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(eq))));
      const uint32_t amax = a[i + 3], bmax = b[j + 3];
      if (amax <= bmax) {
        i += 4;
        if (i + 4 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (bmax <= amax) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  return count + CountMerge(a + i, na - i, b + j, nb - j);
}

uint32_t IntoSse2(const uint32_t* a, uint32_t na, const uint32_t* b,
                  uint32_t nb, uint32_t* out) {
  uint32_t i = 0, j = 0, count = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      __m128i eq = _mm_cmpeq_epi32(va, vb);
      eq = _mm_or_si128(eq,
                        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
      eq = _mm_or_si128(eq,
                        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));
      eq = _mm_or_si128(eq,
                        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
      uint32_t mask = static_cast<uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(eq)));
      while (mask != 0) {
        const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(mask));
        out[count++] = a[i + lane];
        mask &= mask - 1;
      }
      const uint32_t amax = a[i + 3], bmax = b[j + 3];
      if (amax <= bmax) {
        i += 4;
        if (i + 4 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (bmax <= amax) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  return count + IntoMerge(a + i, na - i, b + j, nb - j, out + count);
}

// ------------------------------------------------------------- AVX2 8x8 --

__attribute__((target("avx2"))) uint32_t CountAvx2(const uint32_t* a,
                                                   uint32_t na,
                                                   const uint32_t* b,
                                                   uint32_t nb) {
  uint32_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i r2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i r3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i r4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i r5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i r6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i r7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    while (true) {
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r1)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r2)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r3)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r4)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r5)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r6)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r7)));
      count += static_cast<uint32_t>(
          __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(eq))));
      const uint32_t amax = a[i + 7], bmax = b[j + 7];
      if (amax <= bmax) {
        i += 8;
        if (i + 8 > na) break;
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (bmax <= amax) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  return count + CountMerge(a + i, na - i, b + j, nb - j);
}

__attribute__((target("avx2"))) uint32_t IntoAvx2(const uint32_t* a,
                                                  uint32_t na,
                                                  const uint32_t* b,
                                                  uint32_t nb,
                                                  uint32_t* out) {
  uint32_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i r2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i r3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i r4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i r5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i r6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i r7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    while (true) {
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r1)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r2)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r3)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r4)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r5)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r6)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r7)));
      uint32_t mask = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
      while (mask != 0) {
        const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(mask));
        out[count++] = a[i + lane];
        mask &= mask - 1;
      }
      const uint32_t amax = a[i + 7], bmax = b[j + 7];
      if (amax <= bmax) {
        i += 8;
        if (i + 8 > na) break;
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (bmax <= amax) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  return count + IntoMerge(a + i, na - i, b + j, nb - j, out + count);
}

#endif  // GRAPHSCAPE_INTERSECT_X86

// --------------------------------------------------------------- dispatch --

using CountFn = uint32_t (*)(const uint32_t*, uint32_t, const uint32_t*,
                             uint32_t);
using IntoFn = uint32_t (*)(const uint32_t*, uint32_t, const uint32_t*,
                            uint32_t, uint32_t*);

struct Dispatch {
  Kernel kernel;
  CountFn count;
  IntoFn into;
};

Dispatch MakeDispatch(Kernel kernel) {
  switch (kernel) {
#ifdef GRAPHSCAPE_INTERSECT_X86
    case Kernel::kAvx2:
      return {Kernel::kAvx2, &CountAvx2, &IntoAvx2};
    case Kernel::kSse2:
      return {Kernel::kSse2, &CountSse2, &IntoSse2};
#endif
    default:
      return {Kernel::kScalar, &CountMerge, &IntoMerge};
  }
}

bool ProbeSupported(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return true;
#ifdef GRAPHSCAPE_INTERSECT_X86
    case Kernel::kSse2:
      return true;  // x86-64 baseline
    case Kernel::kAvx2:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") != 0;
#endif
    default:
      return false;
  }
}

// Env cap: GRAPHSCAPE_SIMD limits how wide dispatch may go (docs/SIMD.md).
// Unset or unrecognized means "best supported".
Kernel EnvKernelCap() {
  const char* env = std::getenv("GRAPHSCAPE_SIMD");
  if (env == nullptr) return Kernel::kAvx2;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "0") == 0) {
    return Kernel::kScalar;
  }
  if (std::strcmp(env, "sse2") == 0 || std::strcmp(env, "sse") == 0) {
    return Kernel::kSse2;
  }
  return Kernel::kAvx2;
}

Dispatch ResolveDispatch() {
  const Kernel cap = EnvKernelCap();
  for (const Kernel kernel : {Kernel::kAvx2, Kernel::kSse2}) {
    if (kernel <= cap && ProbeSupported(kernel)) return MakeDispatch(kernel);
  }
  return MakeDispatch(Kernel::kScalar);
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

Kernel ActiveKernel() { return ActiveDispatch().kernel; }

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kSse2:
      return "sse2";
    case Kernel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool KernelSupported(Kernel kernel) { return ProbeSupported(kernel); }

bool SetKernelForTesting(Kernel kernel) {
  if (!ProbeSupported(kernel)) return false;
  ActiveDispatch() = MakeDispatch(kernel);
  return true;
}

uint32_t Count(const uint32_t* a, uint32_t na, const uint32_t* b,
               uint32_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (static_cast<uint64_t>(nb) >=
      static_cast<uint64_t>(na) * kGallopSkewRatio) {
    return CountGallop(a, na, b, nb);
  }
  return ActiveDispatch().count(a, na, b, nb);
}

uint32_t Into(const uint32_t* a, uint32_t na, const uint32_t* b,
              uint32_t nb, uint32_t* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (static_cast<uint64_t>(nb) >=
      static_cast<uint64_t>(na) * kGallopSkewRatio) {
    return IntoGallop(a, na, b, nb, out);
  }
  return ActiveDispatch().into(a, na, b, nb, out);
}

uint32_t Count3(const uint32_t* a, uint32_t na, const uint32_t* b,
                uint32_t nb, const uint32_t* c, uint32_t nc) {
  // Order the runs shortest-first; the pair intersection runs over the two
  // shortest, and only its survivors probe the longest.
  const uint32_t* run[3] = {a, b, c};
  uint32_t len[3] = {na, nb, nc};
  for (int pass = 0; pass < 2; ++pass) {
    for (int k = 0; k < 2; ++k) {
      if (len[k] > len[k + 1]) {
        std::swap(len[k], len[k + 1]);
        std::swap(run[k], run[k + 1]);
      }
    }
  }
  if (len[0] == 0) return 0;

  // Chunked pair intersection through the dispatched kernel: fixed stack
  // scratch keeps the whole 3-way path allocation-free. After each chunk
  // of the shortest run, the second run's cursor gallops past everything
  // <= the chunk max (those elements can never match a later chunk), so
  // the pair pass stays linear overall.
  constexpr uint32_t kChunk = 256;
  uint32_t buf[kChunk];
  const uint32_t* s0 = run[0];
  const uint32_t* s1 = run[1];
  const uint32_t* e1 = run[1] + len[1];
  const uint32_t* s2 = run[2];
  const uint32_t* e2 = run[2] + len[2];
  uint32_t count = 0;
  for (uint32_t off = 0; off < len[0]; off += kChunk) {
    const uint32_t n0 = std::min(kChunk, len[0] - off);
    const uint32_t chunk_max = s0[off + n0 - 1];
    const uint32_t* hi1 = GallopSeek(s1, e1, chunk_max);
    if (hi1 != e1 && *hi1 == chunk_max) ++hi1;
    const uint32_t pair = Into(s0 + off, n0, s1,
                               static_cast<uint32_t>(hi1 - s1), buf);
    for (uint32_t k = 0; k < pair; ++k) {
      s2 = GallopSeek(s2, e2, buf[k]);
      if (s2 == e2) return count;
      if (*s2 == buf[k]) {
        ++count;
        ++s2;
      }
    }
    s1 = hi1;
    if (s1 == e1) break;
  }
  return count;
}

}  // namespace intersect
}  // namespace graphscape
