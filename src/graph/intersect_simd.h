// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Vectorized sorted-run intersection — the hardware-conscious core under
// every triangle-adjacent metric (triangles, clustering, K-Truss support,
// nucleus). Three execution strategies over the same contract:
//
//   * a dense block-compare kernel (AVX2 8x8 / SSE2 4x4 shuffle-and-compare,
//     with a portable scalar merge as the fallback), selected ONCE at
//     startup by runtime CPU dispatch;
//   * a galloping (exponential-search) path that kicks in automatically
//     when run lengths are skewed beyond kGallopSkewRatio — the hub-vs-leaf
//     adjacency case that dominates the BA/CitPatent datasets;
//   * count-only variants (2-way and 3-way) so callers that only tally
//     never pay a per-element callback.
//
// Preconditions shared by every entry point: runs are sorted ascending and
// duplicate-free (exactly the CSR adjacency invariant `graph/graph.h`
// guarantees). Violating either silently miscounts; debug builds assert.
//
// Determinism contract (docs/SIMD.md): for any dispatch choice — scalar,
// SSE2, AVX2, galloping, and any build of GRAPHSCAPE_SIMD — every entry
// point returns the same counts and emits the same elements in the same
// (ascending) order. Kernel selection is a pure speed knob, exactly like
// the thread count (docs/PARALLELISM.md). `tests/intersect_test.cc` pins
// all paths against each other and against brute-force oracles.
//
// Thread safety: all entry points are const over their inputs and safe to
// call concurrently. SetKernelForTesting mutates the process-wide dispatch
// and must not race with in-flight intersections (tests/benches only).

#ifndef GRAPHSCAPE_GRAPH_INTERSECT_SIMD_H_
#define GRAPHSCAPE_GRAPH_INTERSECT_SIMD_H_

#include <algorithm>
#include <cstdint>

namespace graphscape {
namespace intersect {

/// Dense-kernel flavors, ordered by preference. Dispatch resolves once, at
/// first use: AVX2 if the CPU has it, else SSE2 (x86-64 baseline), else
/// the portable scalar merge. The GRAPHSCAPE_SIMD environment variable
/// ("scalar"/"off", "sse2", "avx2") caps the choice; building with
/// -DGRAPHSCAPE_SIMD=OFF compiles the vector paths out entirely.
enum class Kernel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The dense kernel the process resolved to (after env cap + CPU probe).
Kernel ActiveKernel();

/// Human-readable kernel name ("scalar", "sse2", "avx2").
const char* KernelName(Kernel kernel);

/// True iff this build + CPU can execute `kernel`.
bool KernelSupported(Kernel kernel);

/// Forces the dense kernel; returns false (and leaves dispatch unchanged)
/// if the kernel is unsupported. Benches and the differential tests use
/// this to pin a path; production code never calls it.
bool SetKernelForTesting(Kernel kernel);

/// Runs whose longer side is at least this multiple of the shorter side
/// take the galloping path instead of the dense kernel. 32 is tuned on the
/// registry datasets: below ~16 the dense kernels still win on the merge's
/// linear scan; beyond ~64 galloping leaves easy wins on mid-skew pairs.
inline constexpr uint32_t kGallopSkewRatio = 32;

/// |a ∩ b| for sorted duplicate-free runs. Count-only: no callback, no
/// output buffer, no allocation.
uint32_t Count(const uint32_t* a, uint32_t na, const uint32_t* b,
               uint32_t nb);

/// |a ∩ b ∩ c|, count-only. Internally intersects the two shortest runs
/// block-wise through the dense kernel and filters survivors against the
/// longest run by galloping; allocation-free (fixed stack scratch).
uint32_t Count3(const uint32_t* a, uint32_t na, const uint32_t* b,
                uint32_t nb, const uint32_t* c, uint32_t nc);

/// Writes a ∩ b into `out` (ascending), returns the count. `out` must
/// have room for min(na, nb) elements and may not alias either input.
uint32_t Into(const uint32_t* a, uint32_t na, const uint32_t* b,
              uint32_t nb, uint32_t* out);

namespace detail {

/// First position in [first, last) with *pos >= target, found by
/// exponential probe + binary search over the final bracket. O(log gap),
/// monotone-pointer friendly: the header callback wrappers and the skewed
/// kernels all advance through runs with this.
inline const uint32_t* GallopSeek(const uint32_t* first,
                                  const uint32_t* last, uint32_t target) {
  if (first == last || *first >= target) return first;
  // Invariant: *lo < target.
  const uint32_t* lo = first;
  uint32_t step = 1;
  while (static_cast<size_t>(last - lo) > step && lo[step] < target) {
    lo += step;
    step <<= 1;
  }
  const uint32_t* hi =
      static_cast<size_t>(last - lo) > step ? lo + step + 1 : last;
  return std::lower_bound(lo + 1, hi, target);
}

// Non-dispatched reference paths, exposed for the differential tests and
// the microbench's before/after rows. `Count`/`Into` above route to one
// of these (or a vector kernel) — callers otherwise never pick a path by
// hand.
uint32_t CountMerge(const uint32_t* a, uint32_t na, const uint32_t* b,
                    uint32_t nb);
uint32_t CountGallop(const uint32_t* small, uint32_t ns,
                     const uint32_t* large, uint32_t nl);
uint32_t IntoMerge(const uint32_t* a, uint32_t na, const uint32_t* b,
                   uint32_t nb, uint32_t* out);
uint32_t IntoGallop(const uint32_t* small, uint32_t ns,
                    const uint32_t* large, uint32_t nl, uint32_t* out);

}  // namespace detail
}  // namespace intersect
}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_INTERSECT_SIMD_H_
