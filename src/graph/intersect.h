// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Common-neighbor intersection over CSR adjacency runs — the one inner
// loop all triangle-adjacent kernels share. The heavy lifting lives in
// graph/intersect_simd.h (runtime-dispatched SSE2/AVX2 block kernels, a
// galloping path for skewed run pairs, count-only variants); this header
// keeps the graph-level API every metric calls.
//
// Preconditions (inherited by every path, vector or scalar): per-vertex
// adjacency runs are sorted ascending and duplicate-free — exactly what
// `Graph`'s CSR constructor guarantees. Determinism: every entry point
// produces identical counts and fires callbacks on identical ascending
// element sequences for any dispatch choice (docs/SIMD.md).
//
// Who calls what (keep this current when rewiring a metric):
//
//   count-only (never pays a callback):
//     * metrics/triangles.cc  — CountTriangles* via intersect::Count over
//       forward (degree-oriented) runs; per-vertex tallies via
//       intersect::Into into a reused scratch run;
//     * metrics/ktruss.cc     — CountSupport: CountCommonNeighbors(u, v);
//     * metrics/clustering.cc — TrianglesThrough (sampled cc):
//       CountCommonNeighbors(v, u);
//     * metrics/nucleus.cc    — per-triangle 4-clique support:
//       CountCommonNeighbors(a, b, c).
//
//   callback (needs the elements, not just the tally):
//     * metrics/ktruss.cc  — the peel demotes both side edges of every
//       surviving triangle: ForEachCommonNeighbor(u, v, ...);
//     * metrics/nucleus.cc — triangle enumeration (w > v filter) and the
//       3-way peel: ForEachCommonNeighbor(a, b, c, ...).

#ifndef GRAPHSCAPE_GRAPH_INTERSECT_H_
#define GRAPHSCAPE_GRAPH_INTERSECT_H_

#include <algorithm>

#include "graph/graph.h"
#include "graph/intersect_simd.h"

namespace graphscape {

/// Calls on_vertex(w) for every w adjacent to both u and v, ascending.
/// Thin wrapper over the intersection layer: skewed run pairs gallop
/// (exponential search through the longer run), balanced pairs take the
/// scalar merge — the callback sequence is identical either way. Callers
/// that only count should use CountCommonNeighbors instead; it reaches
/// the vectorized count kernels.
template <typename OnVertex>
inline void ForEachCommonNeighbor(const Graph& g, VertexId u, VertexId v,
                                  OnVertex&& on_vertex) {
  const Graph::NeighborRange ru = g.Neighbors(u);
  const Graph::NeighborRange rv = g.Neighbors(v);
  const VertexId* a = ru.begin();
  const VertexId* ea = ru.end();
  const VertexId* b = rv.begin();
  const VertexId* eb = rv.end();
  if (ea - a > eb - b) {
    std::swap(a, b);
    std::swap(ea, eb);
  }
  const size_t na = static_cast<size_t>(ea - a);
  const size_t nb = static_cast<size_t>(eb - b);
  if (na == 0) return;
  if (nb >= na * intersect::kGallopSkewRatio) {
    // Hub-vs-leaf shape: walk the short run, gallop through the long one.
    for (; a != ea; ++a) {
      b = intersect::detail::GallopSeek(b, eb, *a);
      if (b == eb) return;
      if (*b == *a) {
        on_vertex(*a);
        ++b;
      }
    }
    return;
  }
  while (a != ea && b != eb) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      on_vertex(*a);
      ++a;
      ++b;
    }
  }
}

/// Calls on_vertex(d) for every d adjacent to all of a, b, and c,
/// ascending. Each round advances ONLY the pointers lagging behind the
/// current maximum (galloping through large gaps), so two runs already
/// sitting at the frontier are never rescanned — the shape the skewed
/// nucleus adjacencies need. Count-only callers should use the 3-way
/// CountCommonNeighbors below.
template <typename OnVertex>
inline void ForEachCommonNeighbor(const Graph& g, VertexId a, VertexId b,
                                  VertexId c, OnVertex&& on_vertex) {
  const Graph::NeighborRange ra = g.Neighbors(a);
  const Graph::NeighborRange rb = g.Neighbors(b);
  const Graph::NeighborRange rc = g.Neighbors(c);
  const VertexId* pa = ra.begin();
  const VertexId* pb = rb.begin();
  const VertexId* pc = rc.begin();
  while (pa != ra.end() && pb != rb.end() && pc != rc.end()) {
    if (*pa == *pb && *pb == *pc) {
      on_vertex(*pa);
      ++pa;
      ++pb;
      ++pc;
      continue;
    }
    const VertexId hi = std::max({*pa, *pb, *pc});
    if (*pa < hi) pa = intersect::detail::GallopSeek(pa, ra.end(), hi);
    if (*pb < hi) pb = intersect::detail::GallopSeek(pb, rb.end(), hi);
    if (*pc < hi) pc = intersect::detail::GallopSeek(pc, rc.end(), hi);
  }
}

/// |N(u) ∩ N(v)| without a callback: reaches the dispatched SIMD count
/// kernel (or the galloping path on skewed degrees). Allocation-free.
inline uint32_t CountCommonNeighbors(const Graph& g, VertexId u,
                                     VertexId v) {
  const Graph::NeighborRange ru = g.Neighbors(u);
  const Graph::NeighborRange rv = g.Neighbors(v);
  return intersect::Count(ru.begin(), ru.size(), rv.begin(), rv.size());
}

/// |N(a) ∩ N(b) ∩ N(c)| without a callback (nucleus 4-clique support).
/// Allocation-free: fixed stack scratch inside intersect::Count3.
inline uint32_t CountCommonNeighbors(const Graph& g, VertexId a, VertexId b,
                                     VertexId c) {
  const Graph::NeighborRange ra = g.Neighbors(a);
  const Graph::NeighborRange rb = g.Neighbors(b);
  const Graph::NeighborRange rc = g.Neighbors(c);
  return intersect::Count3(ra.begin(), ra.size(), rb.begin(), rb.size(),
                           rc.begin(), rc.size());
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_INTERSECT_H_
