// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Merge-intersections of sorted CSR adjacency runs — the one inner loop all
// triangle-adjacent kernels (triangles, K-Truss, nucleus) share. Sequential
// pointer walks only; no binary search, no allocation.

#ifndef GRAPHSCAPE_GRAPH_INTERSECT_H_
#define GRAPHSCAPE_GRAPH_INTERSECT_H_

#include <algorithm>

#include "graph/graph.h"

namespace graphscape {

/// Calls on_vertex(w) for every w adjacent to both u and v, ascending.
template <typename OnVertex>
inline void ForEachCommonNeighbor(const Graph& g, VertexId u, VertexId v,
                                  OnVertex&& on_vertex) {
  const Graph::NeighborRange ru = g.Neighbors(u);
  const Graph::NeighborRange rv = g.Neighbors(v);
  const VertexId* a = ru.begin();
  const VertexId* b = rv.begin();
  while (a != ru.end() && b != rv.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      on_vertex(*a);
      ++a;
      ++b;
    }
  }
}

/// Calls on_vertex(d) for every d adjacent to all of a, b, and c, ascending.
template <typename OnVertex>
inline void ForEachCommonNeighbor(const Graph& g, VertexId a, VertexId b,
                                  VertexId c, OnVertex&& on_vertex) {
  const Graph::NeighborRange ra = g.Neighbors(a);
  const Graph::NeighborRange rb = g.Neighbors(b);
  const Graph::NeighborRange rc = g.Neighbors(c);
  const VertexId* pa = ra.begin();
  const VertexId* pb = rb.begin();
  const VertexId* pc = rc.begin();
  while (pa != ra.end() && pb != rb.end() && pc != rc.end()) {
    if (*pa == *pb && *pb == *pc) {
      on_vertex(*pa);
      ++pa;
      ++pb;
      ++pc;
      continue;
    }
    const VertexId hi = std::max({*pa, *pb, *pc});
    while (pa != ra.end() && *pa < hi) ++pa;
    while (pb != rb.end() && *pb < hi) ++pb;
    while (pc != rc.end() && *pc < hi) ++pc;
  }
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_INTERSECT_H_
