// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/graph_algos.h"

#include "graph/graph_builder.h"

namespace graphscape {

ComponentLabeling ConnectedComponents(const Graph& g) {
  const uint32_t n = g.NumVertices();
  ComponentLabeling result;
  result.component.assign(n, kUnreachable);

  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId start = 0; start < n; ++start) {
    if (result.component[start] != kUnreachable) continue;
    const uint32_t label = result.num_components++;
    result.component[start] = label;
    queue.clear();
    queue.push_back(start);
    // The queue never pops; `cursor` walks it in place.
    for (size_t cursor = 0; cursor < queue.size(); ++cursor) {
      for (const VertexId u : g.Neighbors(queue[cursor])) {
        if (result.component[u] != kUnreachable) continue;
        result.component[u] = label;
        queue.push_back(u);
      }
    }
  }
  return result;
}

std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> distance(n, kUnreachable);
  distance[source] = 0;
  std::vector<VertexId> queue;
  queue.reserve(n);
  queue.push_back(source);
  for (size_t cursor = 0; cursor < queue.size(); ++cursor) {
    const VertexId v = queue[cursor];
    for (const VertexId u : g.Neighbors(v)) {
      if (distance[u] != kUnreachable) continue;
      distance[u] = distance[v] + 1;
      queue.push_back(u);
    }
  }
  return distance;
}

uint32_t Eccentricity(const Graph& g, VertexId source) {
  uint32_t ecc = 0;
  for (const uint32_t d : BfsDistances(g, source)) {
    if (d != kUnreachable && d > ecc) ecc = d;
  }
  return ecc;
}

std::vector<VertexId> KHopNeighborhood(const Graph& g, VertexId center,
                                       uint32_t hops) {
  std::vector<uint32_t> distance(g.NumVertices(), kUnreachable);
  distance[center] = 0;
  std::vector<VertexId> frontier;
  frontier.push_back(center);
  for (size_t cursor = 0; cursor < frontier.size(); ++cursor) {
    const VertexId v = frontier[cursor];
    if (distance[v] == hops) continue;
    for (const VertexId u : g.Neighbors(v)) {
      if (distance[u] != kUnreachable) continue;
      distance[u] = distance[v] + 1;
      frontier.push_back(u);
    }
  }
  return frontier;
}

Subgraph InducedSubgraph(const Graph& g,
                         const std::vector<VertexId>& vertices) {
  Subgraph result;
  // Parent -> local mapping; kInvalidVertex marks "not selected".
  std::vector<VertexId> local_of(g.NumVertices(), kInvalidVertex);
  result.to_parent_vertex.reserve(vertices.size());
  for (const VertexId v : vertices) {
    if (local_of[v] != kInvalidVertex) continue;  // duplicate
    local_of[v] = static_cast<VertexId>(result.to_parent_vertex.size());
    result.to_parent_vertex.push_back(v);
  }

  GraphBuilder builder(
      static_cast<uint32_t>(result.to_parent_vertex.size()));
  for (const VertexId v : result.to_parent_vertex) {
    for (const VertexId u : g.Neighbors(v)) {
      // Each kept edge is seen from both endpoints; add it once.
      if (local_of[u] != kInvalidVertex && v < u) {
        builder.AddEdge(local_of[v], local_of[u]);
      }
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace graphscape
