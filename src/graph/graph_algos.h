// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Traversal primitives over the CSR graph: connected components, BFS
// distances/eccentricity, k-hop neighborhoods, and induced subgraph
// extraction. These back the figure benches (component counts in fig11,
// the outlier drill-downs in fig10) and serve as oracles for the
// scalar-tree property tests — a scalar tree has exactly one root per
// connected component.

#ifndef GRAPHSCAPE_GRAPH_GRAPH_ALGOS_H_
#define GRAPHSCAPE_GRAPH_GRAPH_ALGOS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

/// Distance marker for vertices outside the BFS source's component.
inline constexpr uint32_t kUnreachable = 0xffffffffu;

struct ComponentLabeling {
  /// component[v] in [0, num_components); ids are dense, assigned in
  /// order of each component's smallest vertex.
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  uint32_t ComponentOf(VertexId v) const { return component[v]; }
};

/// Single BFS pass over all vertices; O(n + m).
ComponentLabeling ConnectedComponents(const Graph& g);

/// BFS hop counts from `source`; kUnreachable outside its component.
std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source);

/// Max finite BFS distance from `source` (0 for an isolated vertex).
uint32_t Eccentricity(const Graph& g, VertexId source);

/// Vertices within `hops` of `center` in BFS discovery order, `center`
/// first — callers that highlight the center rely on it being index 0.
std::vector<VertexId> KHopNeighborhood(const Graph& g, VertexId center,
                                       uint32_t hops);

struct Subgraph {
  Graph graph;
  /// Local vertex id -> vertex id in the parent graph.
  std::vector<VertexId> to_parent_vertex;
};

/// Subgraph induced by `vertices`, preserving their order as local ids
/// (duplicates after the first occurrence are ignored).
Subgraph InducedSubgraph(const Graph& g,
                         const std::vector<VertexId>& vertices);

}  // namespace graphscape

#endif  // GRAPHSCAPE_GRAPH_GRAPH_ALGOS_H_
