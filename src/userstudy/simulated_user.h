// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Simulated participants for the paper's §IV user study (DESIGN.md
// substitution 4): Tables IV-VI compare terrain, LaNet-vi, OpenOrd (and
// treemap) on three tasks, and since we cannot rerun the human study, a
// seeded response model stands in. The split of responsibilities:
//
//  * userstudy/evidence.h MEASURES a TaskEvidence from the actual
//    rendered artifact — how unambiguous the correct answer is in that
//    picture, how many competing elements distract, how cluttered it is.
//
//  * SimulateTask below turns evidence into accuracy/time via common
//    random numbers: participant p's care quantile u_p comes from
//    Rng(options.seed) and depends ONLY on (p, seed) — never on the tool
//    or evidence — so comparisons across tools are paired, and easier
//    evidence can never score a lower accuracy (the monotonicity the
//    user-study tests pin exactly, not just in expectation).
//
// A participant answers correctly iff u_p < answer_strength (strict, and
// UniformDouble() < 1, so strength 1 means accuracy exactly 1.0 and
// strength 0 exactly 0.0). Time scales with clutter, distractors, and
// hesitation on weak evidence.

#ifndef GRAPHSCAPE_USERSTUDY_SIMULATED_USER_H_
#define GRAPHSCAPE_USERSTUDY_SIMULATED_USER_H_

#include <cstdint>

namespace graphscape {

enum class StudyTask : uint8_t {
  kDensestCore = 0,        ///< Task 1: identify the densest K-Core
  kSecondDensestCore = 1,  ///< Task 2: densest core disconnected from it
  kCorrelationEstimate = 2 ///< Task 3: estimate measure correlation
};

enum class StudyTool : uint8_t {
  kTerrain = 0,
  kLaNetVi = 1,
  kOpenOrd = 2,
  kTreemap = 3
};

const char* TaskName(StudyTask task);
const char* ToolName(StudyTool tool);

/// What one artifact offers a participant for one task — measured by
/// userstudy/evidence.h, never guessed.
struct TaskEvidence {
  StudyTask task = StudyTask::kDensestCore;
  /// [0, 1]: the fraction of careful participants who read the correct
  /// answer off this artifact (1 = the answer is explicit in the
  /// encoding, 0 = unrecoverable).
  double answer_strength = 1.0;
  /// Competing visual elements a participant must rule out (extra
  /// peaks, sibling shells, rival clusters). >= 0.
  double distractors = 0.0;
  /// Overall clutter, roughly [0, 1.5] (edge soup, occlusion). >= 0.
  double visual_load = 0.0;
};

struct SimulatedUserOptions {
  uint32_t num_participants = 20;
  /// Seeds the participant pool. The same seed yields the same
  /// participants for every tool — the paired-comparison design.
  uint64_t seed = 456;
  double base_seconds = 8.0;
  double seconds_per_distractor = 3.0;
  double seconds_per_load = 14.0;
  /// Weak evidence adds hesitation: time scales by
  /// 1 + hesitation_factor * (1 - answer_strength).
  double hesitation_factor = 0.6;
};

struct TaskOutcome {
  StudyTool tool = StudyTool::kTerrain;
  StudyTask task = StudyTask::kDensestCore;
  double accuracy = 0.0;      ///< fraction of correct participants
  double mean_seconds = 0.0;  ///< mean completion time
  uint32_t num_participants = 0;
};

/// Deterministic in (tool, evidence, options). Accuracy is monotone
/// nondecreasing in evidence.answer_strength at fixed options (exactly,
/// by common random numbers); mean_seconds is monotone nondecreasing in
/// distractors and visual_load and nonincreasing in answer_strength.
TaskOutcome SimulateTask(StudyTool tool, const TaskEvidence& evidence,
                         const SimulatedUserOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_USERSTUDY_SIMULATED_USER_H_
