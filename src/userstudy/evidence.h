// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Evidence extraction for the simulated user study (paper §IV): each
// function MEASURES, from the actual artifact a participant would look
// at, how well that artifact answers one study task — the answer's
// explicitness (answer_strength), the competing elements (distractors),
// and the clutter (visual_load). The response model itself lives in
// userstudy/simulated_user.h; nothing here draws random numbers.
//
// The measurements follow each tool's encoding:
//
//  * Terrain: the densest core IS the highest peak — the answer is
//    explicit, so strength is 1; distractors are the other peaks at the
//    answer's level, load grows with the number of super nodes.
//
//  * LaNet-vi: coreness is radial, so the densest core is findable but
//    occlusion degrades it — strength falls with the crowding of the
//    innermost shell (non-members sitting inside the members' radius).
//    Connectivity is not encoded at all, so Task 2 halves strength.
//
//  * OpenOrd: coreness is not encoded; the participant infers density
//    from spatial clumping — strength falls as the densest core smears
//    across the layout (its spread relative to the whole drawing).
//
// EvidenceTable accumulates simulated outcomes into the Tables IV-VI
// grid (dataset row x tool column) and answers the dominance questions
// the paper's tables make visually.

#ifndef GRAPHSCAPE_USERSTUDY_EVIDENCE_H_
#define GRAPHSCAPE_USERSTUDY_EVIDENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "layout/lanetvi_layout.h"
#include "layout/positions.h"
#include "scalar/super_tree.h"
#include "userstudy/simulated_user.h"

namespace graphscape {

/// Terrain over the K-Core field. `task` must be a core task.
TaskEvidence TerrainCoreEvidence(const Graph& g, const SuperTree& tree,
                                 StudyTask task);

/// Treemap of the same tree: containment is explicit (strength 1) but
/// area comparison adds distractors relative to height comparison.
TaskEvidence TreemapCoreEvidence(const Graph& g, const SuperTree& tree,
                                 StudyTask task);

/// LaNet-vi radial core layout.
TaskEvidence LanetViCoreEvidence(const Graph& g,
                                 const LanetViLayoutResult& layout,
                                 StudyTask task);

/// OpenOrd force layout; `cores` = CoreNumbers(g) (the ground truth the
/// participant is asked about, used only to locate the densest core in
/// the drawing).
TaskEvidence OpenOrdCoreEvidence(const Graph& g, const Positions& positions,
                                 const std::vector<uint32_t>& cores,
                                 StudyTask task);

/// Task 3 on a terrain: height/color correlation is directly visible;
/// strength grows with |gci| (a strong correlation is easy to call).
TaskEvidence TerrainCorrelationEvidence(double gci);

/// Task 3 on an OpenOrd drawing: correlation must be inferred from node
/// colors scattered in space — weaker strength, load from the drawing
/// size.
TaskEvidence OpenOrdCorrelationEvidence(double gci,
                                        const Positions& positions);

/// The Tables IV-VI accumulator: one row per dataset, one cell per
/// (row, tool). Insertion order of rows is preserved; re-adding a
/// (row, tool) pair overwrites the cell.
class EvidenceTable {
 public:
  void Add(const std::string& row, const TaskOutcome& outcome);

  /// The cell for (row, tool), or nullptr when absent.
  const TaskOutcome* Cell(const std::string& row, StudyTool tool) const;

  /// Row names in first-insertion order.
  const std::vector<std::string>& Rows() const { return rows_; }

  /// True when `tool` is weakly best on BOTH metrics (accuracy >=, time
  /// <=) against every other tool in every row where both have cells.
  /// Vacuously true for an empty table.
  bool Dominates(StudyTool tool) const;

 private:
  struct Entry {
    std::string row;
    TaskOutcome outcome;
  };
  std::vector<std::string> rows_;
  std::vector<Entry> entries_;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_USERSTUDY_EVIDENCE_H_
