// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "userstudy/evidence.h"

#include <algorithm>
#include <cmath>

#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Edge-soup clutter of a node-link drawing, saturating at 1.5.
double EdgeLoad(const Graph& g) {
  return std::min(1.5, static_cast<double>(g.NumEdges()) / 20000.0);
}

/// Task 2 reads connectivity (is the rival core disconnected from the
/// winner?) — 2D layouts do not encode it, so tracing edges halves what
/// the artifact gives away. Terrain evidence never goes through this:
/// disconnection is explicit there (separate peaks).
double SecondCorePenalty(StudyTask task, double strength) {
  return task == StudyTask::kSecondDensestCore ? 0.5 * strength : strength;
}

/// Mean pairwise distance over up to `cap` of the given vertices,
/// deterministically strided — the spatial spread measure for OpenOrd.
double MeanPairwiseDistance(const Positions& positions,
                            const std::vector<VertexId>& vertices,
                            uint32_t cap) {
  if (vertices.size() < 2) return 0.0;
  const uint32_t stride =
      std::max<uint32_t>(1, static_cast<uint32_t>(vertices.size()) / cap);
  double total = 0.0;
  uint64_t pairs = 0;
  for (size_t i = 0; i < vertices.size(); i += stride) {
    for (size_t j = i + stride; j < vertices.size(); j += stride) {
      const Point2& a = positions[vertices[i]];
      const Point2& b = positions[vertices[j]];
      total += std::hypot(a.x - b.x, a.y - b.y);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace

TaskEvidence TerrainCoreEvidence(const Graph& g, const SuperTree& tree,
                                 StudyTask task) {
  (void)g;
  TaskEvidence evidence;
  evidence.task = task;
  // The densest core is the highest peak and disconnection is separate
  // peaks — both explicit, so a careful participant always answers.
  evidence.answer_strength = 1.0;
  double level = 0.0;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node)
    level = std::max(level, tree.Value(node));
  const size_t rival_peaks = PeaksAtLevel(tree, level).size();
  evidence.distractors = task == StudyTask::kSecondDensestCore
                             ? static_cast<double>(rival_peaks)
                             : static_cast<double>(rival_peaks) - 1.0;
  evidence.visual_load =
      std::min(1.0, static_cast<double>(tree.NumNodes()) / 5000.0);
  return evidence;
}

TaskEvidence TreemapCoreEvidence(const Graph& g, const SuperTree& tree,
                                 StudyTask task) {
  TaskEvidence evidence = TerrainCoreEvidence(g, tree, task);
  // Containment still answers exactly, but nested-area comparison adds
  // one rival element and a denser picture than height comparison.
  evidence.distractors += 1.0;
  evidence.visual_load = std::min(
      1.2, static_cast<double>(tree.NumNodes()) / 4000.0 + 0.2);
  return evidence;
}

TaskEvidence LanetViCoreEvidence(const Graph& g,
                                 const LanetViLayoutResult& layout,
                                 StudyTask task) {
  TaskEvidence evidence;
  evidence.task = task;
  // Crowding of the innermost shell: non-members rendered inside the
  // densest core's own radius band occlude the answer.
  const uint32_t n = g.NumVertices();
  double member_radius = 0.0;
  uint32_t members = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (layout.core_of[v] != layout.max_core) continue;
    member_radius += std::hypot(layout.positions[v].x - 0.5,
                                layout.positions[v].y - 0.5);
    ++members;
  }
  member_radius = members > 0 ? member_radius / members : 0.0;
  uint32_t intruders = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (layout.core_of[v] == layout.max_core) continue;
    if (std::hypot(layout.positions[v].x - 0.5,
                   layout.positions[v].y - 0.5) < member_radius + 0.05)
      ++intruders;
  }
  const double crowding =
      static_cast<double>(intruders) / std::max(1u, members);
  evidence.answer_strength = SecondCorePenalty(
      task, Clamp(1.0 / (1.0 + 0.5 * crowding), 0.05, 1.0));
  evidence.distractors = layout.max_core / 4.0;  // shells to scan outward
  evidence.visual_load = EdgeLoad(g);
  return evidence;
}

TaskEvidence OpenOrdCoreEvidence(const Graph& g, const Positions& positions,
                                 const std::vector<uint32_t>& cores,
                                 StudyTask task) {
  TaskEvidence evidence;
  evidence.task = task;
  // Coreness is not encoded; the participant hunts for the tightest
  // clump. Strength falls as the densest core's spatial spread
  // approaches the whole drawing's spread.
  const uint32_t n = g.NumVertices();
  const uint32_t max_core = *std::max_element(cores.begin(), cores.end());
  std::vector<VertexId> core_vertices, all_vertices(n);
  for (VertexId v = 0; v < n; ++v) {
    all_vertices[v] = v;
    if (cores[v] == max_core) core_vertices.push_back(v);
  }
  const double overall = MeanPairwiseDistance(positions, all_vertices, 128);
  const double core_spread =
      MeanPairwiseDistance(positions, core_vertices, 128);
  const double smear = overall > 0.0 ? core_spread / overall : 1.0;
  evidence.answer_strength =
      SecondCorePenalty(task, Clamp(1.0 - 0.8 * smear, 0.05, 0.95));
  evidence.distractors = std::min(6.0, std::sqrt(static_cast<double>(n)) / 8.0);
  evidence.visual_load = EdgeLoad(g);
  return evidence;
}

TaskEvidence TerrainCorrelationEvidence(double gci) {
  TaskEvidence evidence;
  evidence.task = StudyTask::kCorrelationEstimate;
  // Height-vs-color agreement is one gestalt read; the stronger the
  // correlation, the easier the call.
  evidence.answer_strength = Clamp(0.55 + 0.45 * std::fabs(gci), 0.0, 1.0);
  evidence.distractors = 1.0;
  evidence.visual_load = 0.4;
  return evidence;
}

TaskEvidence OpenOrdCorrelationEvidence(double gci,
                                        const Positions& positions) {
  TaskEvidence evidence;
  evidence.task = StudyTask::kCorrelationEstimate;
  // The same correlation must be assembled from scattered node colors.
  evidence.answer_strength = Clamp(0.25 + 0.35 * std::fabs(gci), 0.0, 0.9);
  evidence.distractors = 3.0;
  evidence.visual_load =
      std::min(1.5, static_cast<double>(positions.size()) / 4000.0) + 0.3;
  return evidence;
}

void EvidenceTable::Add(const std::string& row, const TaskOutcome& outcome) {
  if (std::find(rows_.begin(), rows_.end(), row) == rows_.end())
    rows_.push_back(row);
  for (Entry& entry : entries_) {
    if (entry.row == row && entry.outcome.tool == outcome.tool) {
      entry.outcome = outcome;
      return;
    }
  }
  entries_.push_back(Entry{row, outcome});
}

const TaskOutcome* EvidenceTable::Cell(const std::string& row,
                                       StudyTool tool) const {
  for (const Entry& entry : entries_)
    if (entry.row == row && entry.outcome.tool == tool)
      return &entry.outcome;
  return nullptr;
}

bool EvidenceTable::Dominates(StudyTool tool) const {
  for (const std::string& row : rows_) {
    const TaskOutcome* mine = Cell(row, tool);
    if (mine == nullptr) continue;
    for (const Entry& entry : entries_) {
      if (entry.row != row || entry.outcome.tool == tool) continue;
      if (entry.outcome.accuracy > mine->accuracy ||
          entry.outcome.mean_seconds < mine->mean_seconds)
        return false;
    }
  }
  return true;
}

}  // namespace graphscape
