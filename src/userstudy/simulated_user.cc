// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "userstudy/simulated_user.h"

#include "common/rng.h"

namespace graphscape {

const char* TaskName(StudyTask task) {
  switch (task) {
    case StudyTask::kDensestCore:
      return "densest-core";
    case StudyTask::kSecondDensestCore:
      return "second-densest-core";
    case StudyTask::kCorrelationEstimate:
      return "correlation-estimate";
  }
  return "densest-core";
}

const char* ToolName(StudyTool tool) {
  switch (tool) {
    case StudyTool::kTerrain:
      return "terrain";
    case StudyTool::kLaNetVi:
      return "lanet-vi";
    case StudyTool::kOpenOrd:
      return "openord";
    case StudyTool::kTreemap:
      return "treemap";
  }
  return "terrain";
}

TaskOutcome SimulateTask(StudyTool tool, const TaskEvidence& evidence,
                         const SimulatedUserOptions& options) {
  TaskOutcome outcome;
  outcome.tool = tool;
  outcome.task = evidence.task;
  outcome.num_participants = options.num_participants;
  if (options.num_participants == 0) return outcome;

  // One (care, speed) draw per participant, identical for every tool and
  // evidence — the common-random-numbers pairing documented above.
  Rng rng(options.seed);
  const double task_seconds =
      (options.base_seconds +
       options.seconds_per_distractor * evidence.distractors +
       options.seconds_per_load * evidence.visual_load) *
      (1.0 + options.hesitation_factor * (1.0 - evidence.answer_strength));
  uint32_t correct = 0;
  double total_seconds = 0.0;
  for (uint32_t p = 0; p < options.num_participants; ++p) {
    const double care = rng.UniformDouble();   // in [0, 1)
    const double speed = rng.UniformDouble();  // in [0, 1)
    if (care < evidence.answer_strength) ++correct;
    total_seconds += task_seconds * (0.8 + 0.4 * speed);
  }
  outcome.accuracy =
      static_cast<double>(correct) / options.num_participants;
  outcome.mean_seconds = total_seconds / options.num_participants;
  return outcome;
}

}  // namespace graphscape
