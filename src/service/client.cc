// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace graphscape {
namespace service {
namespace {

Status ErrnoStatus(const char* what) {
  return Status::Unavailable(StrPrintf("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Status BlockingClient::Connect(const std::string& host, uint16_t port,
                               double io_timeout_seconds) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return ErrnoStatus("socket");

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument(
        StrPrintf("not a numeric IPv4 address: %s", host.c_str()));
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("connect");
    Close();
    return status;
  }
  if (io_timeout_seconds > 0.0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(io_timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (io_timeout_seconds - std::floor(io_timeout_seconds)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return Status::Ok();
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status BlockingClient::ReadExactly(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  char chunk[4096];
  while (out->size() < n) {
    const size_t want = n - out->size();
    const ssize_t got =
        ::recv(fd_, chunk, want < sizeof(chunk) ? want : sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got < 0) return ErrnoStatus("recv");
    if (got == 0) {
      return Status::Unavailable(StrPrintf(
          "connection closed mid-frame (%u of %u bytes)",
          static_cast<unsigned>(out->size()), static_cast<unsigned>(n)));
    }
    out->append(chunk, static_cast<size_t>(got));
  }
  return Status::Ok();
}

StatusOr<ResponseFrame> BlockingClient::Roundtrip(const std::string& line) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  std::string request = line;
  request += '\n';
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return ErrnoStatus("send");
    sent += static_cast<size_t>(n);
  }

  // Streaming decode: fixed header first (it carries payload_len), then
  // exactly payload + trailer, then full-frame validation — the client
  // never trusts a length beyond wire.h's sanity cap.
  std::string header_bytes;
  Status status = ReadExactly(kResponseHeaderBytes, &header_bytes);
  if (!status.ok()) return status;
  StatusOr<ResponseHeader> header = ParseResponseHeader(header_bytes);
  if (!header.ok()) return header.status();
  std::string rest;
  status = ReadExactly(
      static_cast<size_t>(header.value().payload_len) + 8, &rest);
  if (!status.ok()) return status;
  return DecodeResponseFrame(header_bytes + rest);
}

}  // namespace service
}  // namespace graphscape
