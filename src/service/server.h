// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// ServiceServer: the transport under the Graphscape daemon — one accept
// thread, a pool of worker threads, and nothing else. Each accepted
// connection is handed to one worker, which reads request lines and
// writes back whatever QueryService::HandleLine returns until the peer
// closes (the protocol is strictly request/response per connection, no
// pipelining — docs/SERVICE.md §Transport).
//
// Why dedicated std::threads instead of the common/parallel.h pool the
// issue suggested: that pool serializes parallel regions globally (one
// RunRegion at a time, by design — see parallel.cc's run_mu_). Parking
// long-lived connection handlers in it would pin the region forever and
// starve every compute ParallelFor in the process. Server workers are
// therefore plain threads; the pool stays what it is — a compute
// device. The worker count still honors the same GRAPHSCAPE_THREADS
// convention via DefaultThreads().
//
// Failpoint seam service/accept: when armed, an accepted connection is
// answered with one UNAVAILABLE frame and closed instead of being
// served — the overload/drain behavior, injectable from CI
// (GRAPHSCAPE_FAILPOINTS="service/accept=always").
//
// Binding is loopback-only (127.0.0.1) on purpose: the daemon has no
// auth story and docs/OPERATIONS.md tells operators to keep it that
// way; anything wider belongs behind a reverse proxy.

#ifndef GRAPHSCAPE_SERVICE_SERVER_H_
#define GRAPHSCAPE_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/service.h"

namespace graphscape {
namespace service {

class ServiceServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port,
    /// reported by port() after Start (the tests and the bench do this
    /// to avoid collisions).
    uint16_t port = 0;
    /// Worker threads; 0 = DefaultThreads() (the GRAPHSCAPE_THREADS
    /// convention, common/parallel.h).
    uint32_t num_threads = 0;
    /// Per-connection socket read/write timeout, seconds. A stalled
    /// peer is disconnected, never allowed to pin a worker forever.
    double io_timeout_seconds = 30.0;
  };

  /// `service` must outlive the server.
  ServiceServer(QueryService* service, const Options& options);
  ~ServiceServer();  ///< Stops if still running.

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and launches the accept + worker threads. Errors
  /// (port in use, no socket) come back as Unavailable with errno text.
  Status Start();

  /// Stops accepting, closes the listener, drains the connection queue,
  /// and joins every thread. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }

  uint32_t num_threads() const { return num_threads_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  QueryService* const service_;
  const Options options_;
  uint32_t num_threads_ = 0;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;  ///< accepted, waiting for a worker
};

}  // namespace service
}  // namespace graphscape

#endif  // GRAPHSCAPE_SERVICE_SERVER_H_
