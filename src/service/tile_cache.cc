// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "service/tile_cache.h"

#include "common/string_util.h"

namespace graphscape {
namespace service {

std::string TileKey::Canonical() const {
  return StrPrintf("%s|%s|%.17g|%.17g|%ux%u", dataset.c_str(), field.c_str(),
                   azimuth_deg, elevation_deg, static_cast<unsigned>(width),
                   static_cast<unsigned>(height));
}

bool TileLruCache::Get(const std::string& canonical_key, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(canonical_key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  if (out != nullptr) *out = it->second->second;
  return true;
}

void TileLruCache::Put(const std::string& canonical_key,
                       std::string tile_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tile_bytes.size() > max_bytes_) {
    ++stats_.rejected_oversize;
    return;
  }
  auto it = index_.find(canonical_key);
  if (it != index_.end()) {
    stats_.current_bytes -= it->second->second.size();
    stats_.current_bytes += tile_bytes.size();
    it->second->second = std::move(tile_bytes);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    stats_.current_bytes += tile_bytes.size();
    lru_.emplace_front(canonical_key, std::move(tile_bytes));
    index_[canonical_key] = lru_.begin();
    ++stats_.current_tiles;
  }
  ++stats_.insertions;
  EvictToFitLocked();
}

void TileLruCache::EvictToFitLocked() {
  while (stats_.current_bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.current_bytes -= victim.second.size();
    --stats_.current_tiles;
    ++stats_.evictions;
    index_.erase(victim.first);
    lru_.pop_back();
  }
}

std::vector<std::string> TileLruCache::KeysMruToLru() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) keys.push_back(entry.first);
  return keys;
}

TileCacheStats TileLruCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace service
}  // namespace graphscape
