// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// QueryService: the verb engine of the Graphscape daemon — everything
// the server does between "one request line arrived" and "one response
// frame to write back", with no sockets anywhere in sight. The split
// keeps the whole query surface testable in-process (service_test.cc
// drives HandleLine directly) and keeps server.cc down to transport.
//
// Data model: an ArtifactCache root (the same directory cache_fsck and
// the figure benches populate) is the corpus. Artifacts load lazily on
// first touch and stay resident for the process lifetime keyed by
// "dataset/field"; each loaded artifact keeps BOTH the deserialized
// SuperTree (for queries) and the exact serialized bytes (so TREE
// responses are byte-identical to SerializeTreeArtifact, which the
// integration test cmp's).
//
// Concurrency contract (docs/SERVICE.md §Concurrency):
//
//   * ArtifactCache is NOT thread-safe (scalar/artifact_cache.h), so
//     every cache touch happens under load_mu_.
//   * SuperTree::MemberIndex() is lazily built and unsynchronized, so it
//     is primed under load_mu_ at load time; after that the artifact is
//     immutable and shared across worker threads by shared_ptr.
//   * The tile LRU is internally synchronized; renders run OUTSIDE all
//     locks (they are the slow part — serializing them would make the
//     thread pool pointless).
//
// Every handler returns StatusOr and every Status maps onto a wire code
// (service/wire.h), so a client can always tell "you asked wrong"
// (INVALID_ARGUMENT) from "no such artifact" (NOT_FOUND) from "the
// budget refused" (RESOURCE_EXHAUSTED) from "injected/transient fault"
// (UNAVAILABLE, the only retryable class).

#ifndef GRAPHSCAPE_SERVICE_SERVICE_H_
#define GRAPHSCAPE_SERVICE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "scalar/artifact_cache.h"
#include "service/tile_cache.h"
#include "service/wire.h"

namespace graphscape {
namespace service {

/// Cumulative counters since Open, for STATS and test assertions.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;           ///< requests answered with a non-OK frame
  uint64_t artifacts_loaded = 0; ///< lazy loads that succeeded
  uint64_t tiles_rendered = 0;   ///< TILE misses that rendered
};

class QueryService {
 public:
  struct Options {
    /// Byte budget of the rendered-tile LRU.
    uint64_t tile_cache_bytes = 64ull << 20;
    /// Per-request ResourceBudget cap for TILE renders; the guarded
    /// ladder degrades resolution before refusing.
    uint64_t request_budget_bytes = 256ull << 20;
    /// Per-request wall deadline, seconds (0 = none).
    double request_deadline_seconds = 10.0;
    /// TILE width/height above this are INVALID_ARGUMENT outright.
    uint32_t max_tile_dim = 2048;
    /// Floor of the render ladder's resolution halving.
    uint32_t min_raster_dim = 64;
  };

  /// Opens (and recovers, per ArtifactCache::Open) the cache at
  /// `cache_root`. Fails only if the cache cannot be opened; an empty
  /// cache is legal (every keyed verb then answers NOT_FOUND).
  static StatusOr<std::unique_ptr<QueryService>> Open(
      const std::string& cache_root, const Options& options);
  static StatusOr<std::unique_ptr<QueryService>> Open(
      const std::string& cache_root) {
    return Open(cache_root, Options());
  }

  /// The whole request pipeline: parse one line, dispatch the verb,
  /// frame the answer. Always returns a complete frame — errors become
  /// error frames, never exceptions (the server writes the return value
  /// verbatim). Safe to call from many threads concurrently.
  std::string HandleLine(const std::string& line);

  ServiceStats stats() const;
  TileCacheStats tile_stats() const { return tiles_.stats(); }
  const Options& options() const { return options_; }

 private:
  /// One resident artifact: the tree for queries, the bytes for TREE.
  struct LoadedArtifact {
    TreeArtifact artifact;
    std::string serialized;
  };

  QueryService(ArtifactCache cache, const Options& options)
      : options_(options),
        cache_(std::move(cache)),
        tiles_(options.tile_cache_bytes) {}

  /// Dispatch after a successful parse; the payload of the OK frame.
  StatusOr<std::string> Dispatch(const Request& request);

  StatusOr<std::shared_ptr<const LoadedArtifact>> GetArtifact(
      const std::string& dataset, const std::string& field);

  StatusOr<std::string> HandleTree(const Request& request);
  StatusOr<std::string> HandlePeaks(const Request& request);
  StatusOr<std::string> HandleTopPeaks(const Request& request);
  StatusOr<std::string> HandleMembers(const Request& request);
  StatusOr<std::string> HandleCorrelation(const Request& request);
  StatusOr<std::string> HandleTile(const Request& request);
  StatusOr<std::string> HandleStats();

  const Options options_;

  /// Guards cache_ (not thread-safe) and loaded_ (the resident map);
  /// never held across a render.
  mutable std::mutex load_mu_;
  ArtifactCache cache_;
  std::unordered_map<std::string, std::shared_ptr<const LoadedArtifact>>
      loaded_;

  TileLruCache tiles_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace service
}  // namespace graphscape

#endif  // GRAPHSCAPE_SERVICE_SERVICE_H_
