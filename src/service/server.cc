// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "service/wire.h"

namespace graphscape {
namespace service {
namespace {

Status ErrnoStatus(const char* what) {
  return Status::Unavailable(StrPrintf("%s: %s", what, std::strerror(errno)));
}

// send() until done; false once the peer is gone or the SNDTIMEO
// expires. MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill
// the daemon with SIGPIPE.
bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetIoTimeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ServiceServer::ServiceServer(QueryService* service, const Options& options)
    : service_(service), options_(options) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  if (running_.load()) return Status::Ok();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind 127.0.0.1");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status status = ErrnoStatus("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  num_threads_ =
      options_.num_threads > 0 ? options_.num_threads : DefaultThreads();
  running_.store(true);
  workers_.reserve(num_threads_);
  for (uint32_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ServiceServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept(); the worker wake-up drains
  // the queue. Order matters: no new fds can arrive once the listener
  // is gone, so the drain below is complete.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void ServiceServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after Stop() closed the listener: clean exit.
      return;
    }
    SetIoTimeout(fd, options_.io_timeout_seconds);
    // The accept seam: an armed failpoint turns this connection into
    // one UNAVAILABLE frame and a close — the drain/overload path the
    // CI fault leg exercises.
    if (failpoint::Fire("service/accept")) {
      WriteAll(fd, EncodeErrorFrame(failpoint::InjectedFault(
                       "service/accept")));
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void ServiceServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() || !running_.load();
      });
      if (pending_fds_.empty()) return;  // stopping and drained
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void ServiceServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (running_.load()) {
    // One complete line = one request. The buffer carries bytes the
    // last recv over-read (a client may batch lines back-to-back even
    // though responses are strictly in order).
    const size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() >= kMaxRequestLine) {
        // Cannot resynchronize inside an oversized line: answer once,
        // hang up (docs/SERVICE.md §Framing).
        WriteAll(fd, EncodeErrorFrame(Status::InvalidArgument(StrPrintf(
                         "request line exceeds %u bytes",
                         kMaxRequestLine))));
        return;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // EOF, timeout, or error: drop the connection
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.size() + 1 > kMaxRequestLine) {
      WriteAll(fd, EncodeErrorFrame(Status::InvalidArgument(StrPrintf(
                       "request line exceeds %u bytes", kMaxRequestLine))));
      return;
    }
    if (!WriteAll(fd, service_->HandleLine(line))) return;
  }
}

}  // namespace service
}  // namespace graphscape
