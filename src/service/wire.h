// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Wire protocol of the Graphscape query service (docs/SERVICE.md is the
// normative specification; this header is its implementation). The
// protocol is deliberately asymmetric:
//
//   * REQUESTS are single ASCII lines ("PEAKS ba-demo KC 3.5\n") so an
//     operator can drive the daemon with nc and a shell — the worked
//     transcript in docs/SERVICE.md does exactly that. A line is a
//     frame: at most kMaxRequestLine bytes including the terminating
//     '\n', tokens separated by single spaces.
//   * RESPONSES are length-prefixed binary frames, because the payloads
//     that matter (TreeArtifact bytes, PPM tiles) are binary and big:
//
//       "GSRS" | u32 version | u32 wire code | u64 payload_len |
//       payload bytes | u64 fnv1a(payload)
//
//     all integers little-endian, total size kResponseOverheadBytes +
//     payload_len. The trailer checksum is the same FNV-1a the artifact
//     format embeds (scalar/tree_io.h), so a torn or corrupted response
//     is detected by the client, never silently consumed.
//
// Status codes cross the wire as explicit small integers (the kWire*
// constants below) mapped one-to-one onto common/status.h's StatusCode —
// a deliberate translation table, not a cast, so reordering the C++ enum
// can never silently change the protocol. On an error frame the payload
// is the human-readable Status message.
//
// Everything in this header is pure (no sockets, no I/O): parsing and
// framing are unit-testable and fuzzable in isolation
// (tests/wire_test.cc holds both directions to the tree_io_fuzz_test
// standard — malformed bytes always yield a structured Status, never a
// crash).

#ifndef GRAPHSCAPE_SERVICE_WIRE_H_
#define GRAPHSCAPE_SERVICE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace graphscape {
namespace service {

/// Protocol version; bumped on any frame-layout or grammar change.
/// Responses carry it so clients reject newer servers instead of
/// misreading them (same compat rule as kTreeIoVersion).
inline constexpr uint32_t kWireVersion = 1;

/// Hard cap on a request line, terminating '\n' included. A longer line
/// is answered with INVALID_ARGUMENT and the connection is closed (the
/// remainder of the oversized line cannot be resynchronized).
inline constexpr uint32_t kMaxRequestLine = 4096;

/// Response frame overhead: magic(4) + version(4) + code(4) + len(8)
/// header, plus the 8-byte checksum trailer.
inline constexpr uint32_t kResponseHeaderBytes = 20;
inline constexpr uint32_t kResponseOverheadBytes = kResponseHeaderBytes + 8;

/// Decode-side sanity cap: a header advertising a payload beyond this is
/// rejected as InvalidArgument before any allocation (hostile peers must
/// not size our buffers).
inline constexpr uint64_t kMaxResponsePayload = 1ull << 30;

/// Wire status codes — the protocol-stable integers (docs/SERVICE.md
/// status table). Never renumber; append only.
inline constexpr uint32_t kWireOk = 0;
inline constexpr uint32_t kWireInvalidArgument = 1;
inline constexpr uint32_t kWireResourceExhausted = 2;
inline constexpr uint32_t kWireNotFound = 3;
inline constexpr uint32_t kWireDataLoss = 4;
inline constexpr uint32_t kWireUnavailable = 5;
inline constexpr uint32_t kWireDeadlineExceeded = 6;

/// StatusCode -> wire code (total: every StatusCode has a wire value).
uint32_t WireCodeFromStatus(StatusCode code);

/// Wire code -> StatusCode. InvalidArgument for integers no GraphScape
/// server of this version emits.
StatusOr<StatusCode> StatusCodeFromWire(uint32_t wire_code);

/// The request verbs, grammar order (docs/SERVICE.md §Verbs).
enum class Verb : uint8_t {
  kTree,         ///< TREE <dataset> <field>
  kPeaks,        ///< PEAKS <dataset> <field> <level>
  kTopPeaks,     ///< TOPPEAKS <dataset> <field> <k>
  kMembers,      ///< MEMBERS <dataset> <field> <node>
  kCorrelation,  ///< CORRELATION <dataset> <fieldA> <fieldB>
  kTile,         ///< TILE <dataset> <field> <azimuth> <elevation> <w> <h>
  kStats,        ///< STATS
};

/// Spelling of a verb on the wire ("TREE", "PEAKS", ...).
const char* VerbName(Verb verb);

/// One parsed request. Only the fields the verb's grammar names are
/// meaningful; the rest stay default-initialized.
struct Request {
  Verb verb = Verb::kStats;
  std::string dataset;
  std::string field;    // fieldA for CORRELATION
  std::string field_b;  // CORRELATION only
  double level = 0.0;   // PEAKS
  uint32_t k = 0;       // TOPPEAKS
  uint32_t node = 0;    // MEMBERS
  double azimuth_deg = 0.0;    // TILE
  double elevation_deg = 0.0;  // TILE
  uint32_t width = 0;          // TILE
  uint32_t height = 0;         // TILE
};

/// Parses one request line (with or without the trailing '\n').
/// InvalidArgument — with a message naming the offending token — on an
/// unknown verb, wrong argument count, a key token containing '/' or a
/// control byte, a non-finite or unconsumed number, or an oversized
/// line. Never throws, never crashes on hostile bytes
/// (tests/wire_test.cc fuzzes this entry point).
StatusOr<Request> ParseRequestLine(const std::string& line);

/// Renders `request` back to its canonical wire line (no trailing
/// '\n'). Doubles are emitted with %.17g, so
/// ParseRequestLine(FormatRequestLine(r)) reproduces r exactly — the
/// round-trip tests and the load generator both rely on it.
std::string FormatRequestLine(const Request& request);

/// Encodes one response frame. For an OK status `payload` is the verb's
/// result bytes; for an error the payload SHOULD be the Status message
/// (EncodeErrorFrame does exactly that).
std::string EncodeResponseFrame(uint32_t wire_code,
                                const std::string& payload);

/// The error-arm convenience: status.message() as the payload.
std::string EncodeErrorFrame(const Status& status);

/// A decoded response frame.
struct ResponseFrame {
  uint32_t wire_code = kWireOk;
  std::string payload;
};

/// Fixed-size header prefix, decoded separately so a streaming client
/// can read kResponseHeaderBytes, learn payload_len, then read exactly
/// payload_len + 8 more bytes. InvalidArgument on bad magic, a version
/// newer than kWireVersion, an unknown wire code, or an advertised
/// payload beyond kMaxResponsePayload.
struct ResponseHeader {
  uint32_t version = 0;
  uint32_t wire_code = 0;
  uint64_t payload_len = 0;
};
StatusOr<ResponseHeader> ParseResponseHeader(const std::string& bytes);

/// Parses and fully validates one complete frame (header + payload +
/// checksum trailer). InvalidArgument for malformed layout, DataLoss
/// when the layout parses but the checksum disagrees — the same split
/// as the artifact parser, and fuzzed to the same standard.
StatusOr<ResponseFrame> DecodeResponseFrame(const std::string& bytes);

}  // namespace service
}  // namespace graphscape

#endif  // GRAPHSCAPE_SERVICE_WIRE_H_
