// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "service/wire.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/string_util.h"
#include "scalar/tree_io.h"

namespace graphscape {
namespace service {
namespace {

constexpr char kResponseMagic[4] = {'G', 'S', 'R', 'S'};

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(p[i]);
  }
  return value;
}

uint64_t ReadU64(const char* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(p[i]);
  }
  return value;
}

/// Splits on single spaces; empty tokens (leading/trailing/double
/// spaces) are grammar errors, reported by returning false.
bool Tokenize(const std::string& line, std::vector<std::string>* tokens) {
  tokens->clear();
  std::string current;
  for (char c : line) {
    if (c == ' ') {
      if (current.empty()) return false;
      tokens->push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (current.empty()) return false;
  tokens->push_back(current);
  return true;
}

/// A cache-key half: printable, no spaces (the tokenizer guarantees
/// that), no '/' (it is the canonical-key separator), no control bytes.
Status CheckKeyToken(const std::string& token, const char* what) {
  for (char c : token) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (c == '/' || uc < 0x20 || uc == 0x7f) {
      return Status::InvalidArgument(
          StrPrintf("%s token contains '/' or a control byte", what));
    }
  }
  return Status::Ok();
}

StatusOr<double> ParseFinite(const std::string& token, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty() || errno != 0 ||
      !std::isfinite(value)) {
    return Status::InvalidArgument(
        StrPrintf("%s is not a finite number: '%s'", what, token.c_str()));
  }
  return value;
}

StatusOr<uint32_t> ParseU32(const std::string& token, const char* what) {
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StrPrintf("%s is not an unsigned integer: '%s'", what,
                    token.c_str()));
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size() || errno != 0 ||
      value > 0xffffffffull) {
    return Status::InvalidArgument(
        StrPrintf("%s out of u32 range: '%s'", what, token.c_str()));
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

uint32_t WireCodeFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kWireOk;
    case StatusCode::kInvalidArgument:
      return kWireInvalidArgument;
    case StatusCode::kResourceExhausted:
      return kWireResourceExhausted;
    case StatusCode::kNotFound:
      return kWireNotFound;
    case StatusCode::kDataLoss:
      return kWireDataLoss;
    case StatusCode::kUnavailable:
      return kWireUnavailable;
    case StatusCode::kDeadlineExceeded:
      return kWireDeadlineExceeded;
  }
  return kWireUnavailable;  // unreachable; fail toward the retryable class
}

StatusOr<StatusCode> StatusCodeFromWire(uint32_t wire_code) {
  switch (wire_code) {
    case kWireOk:
      return StatusCode::kOk;
    case kWireInvalidArgument:
      return StatusCode::kInvalidArgument;
    case kWireResourceExhausted:
      return StatusCode::kResourceExhausted;
    case kWireNotFound:
      return StatusCode::kNotFound;
    case kWireDataLoss:
      return StatusCode::kDataLoss;
    case kWireUnavailable:
      return StatusCode::kUnavailable;
    case kWireDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    default:
      return Status::InvalidArgument(
          StrPrintf("unknown wire status code %u", wire_code));
  }
}

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kTree:
      return "TREE";
    case Verb::kPeaks:
      return "PEAKS";
    case Verb::kTopPeaks:
      return "TOPPEAKS";
    case Verb::kMembers:
      return "MEMBERS";
    case Verb::kCorrelation:
      return "CORRELATION";
    case Verb::kTile:
      return "TILE";
    case Verb::kStats:
      return "STATS";
  }
  return "?";
}

StatusOr<Request> ParseRequestLine(const std::string& line) {
  if (line.size() > kMaxRequestLine) {
    return Status::InvalidArgument(
        StrPrintf("request line exceeds %u bytes", kMaxRequestLine));
  }
  std::string stripped = line;
  while (!stripped.empty() &&
         (stripped.back() == '\n' || stripped.back() == '\r')) {
    stripped.pop_back();
  }
  std::vector<std::string> tokens;
  if (!Tokenize(stripped, &tokens)) {
    return Status::InvalidArgument(
        "empty request or empty token (double/leading/trailing space)");
  }

  Request request;
  const std::string& verb = tokens[0];
  const size_t args = tokens.size() - 1;

  auto take_keys = [&](size_t count) -> Status {
    static const char* const kWhat[] = {"dataset", "field", "fieldB"};
    std::string* const slots[] = {&request.dataset, &request.field,
                                  &request.field_b};
    for (size_t i = 0; i < count; ++i) {
      Status key_ok = CheckKeyToken(tokens[1 + i], kWhat[i]);
      if (!key_ok.ok()) return key_ok;
      *slots[i] = tokens[1 + i];
    }
    return Status::Ok();
  };
  auto arity_error = [&](const char* grammar) {
    return Status::InvalidArgument(
        StrPrintf("%s takes %s (got %zu arguments)", verb.c_str(), grammar,
                  args));
  };

  if (verb == "TREE") {
    request.verb = Verb::kTree;
    if (args != 2) return arity_error("<dataset> <field>");
    Status keys = take_keys(2);
    if (!keys.ok()) return keys;
    return request;
  }
  if (verb == "PEAKS") {
    request.verb = Verb::kPeaks;
    if (args != 3) return arity_error("<dataset> <field> <level>");
    Status keys = take_keys(2);
    if (!keys.ok()) return keys;
    StatusOr<double> level = ParseFinite(tokens[3], "level");
    if (!level.ok()) return level.status();
    request.level = level.value();
    return request;
  }
  if (verb == "TOPPEAKS") {
    request.verb = Verb::kTopPeaks;
    if (args != 3) return arity_error("<dataset> <field> <k>");
    Status keys = take_keys(2);
    if (!keys.ok()) return keys;
    StatusOr<uint32_t> k = ParseU32(tokens[3], "k");
    if (!k.ok()) return k.status();
    request.k = k.value();
    return request;
  }
  if (verb == "MEMBERS") {
    request.verb = Verb::kMembers;
    if (args != 3) return arity_error("<dataset> <field> <node>");
    Status keys = take_keys(2);
    if (!keys.ok()) return keys;
    StatusOr<uint32_t> node = ParseU32(tokens[3], "node");
    if (!node.ok()) return node.status();
    request.node = node.value();
    return request;
  }
  if (verb == "CORRELATION") {
    request.verb = Verb::kCorrelation;
    if (args != 3) return arity_error("<dataset> <fieldA> <fieldB>");
    Status keys = take_keys(3);
    if (!keys.ok()) return keys;
    return request;
  }
  if (verb == "TILE") {
    request.verb = Verb::kTile;
    if (args != 6) {
      return arity_error("<dataset> <field> <azimuth> <elevation> <w> <h>");
    }
    Status keys = take_keys(2);
    if (!keys.ok()) return keys;
    StatusOr<double> azimuth = ParseFinite(tokens[3], "azimuth");
    if (!azimuth.ok()) return azimuth.status();
    StatusOr<double> elevation = ParseFinite(tokens[4], "elevation");
    if (!elevation.ok()) return elevation.status();
    StatusOr<uint32_t> width = ParseU32(tokens[5], "width");
    if (!width.ok()) return width.status();
    StatusOr<uint32_t> height = ParseU32(tokens[6], "height");
    if (!height.ok()) return height.status();
    request.azimuth_deg = azimuth.value();
    request.elevation_deg = elevation.value();
    request.width = width.value();
    request.height = height.value();
    return request;
  }
  if (verb == "STATS") {
    request.verb = Verb::kStats;
    if (args != 0) return arity_error("no arguments");
    return request;
  }
  return Status::InvalidArgument(
      StrPrintf("unknown verb '%s'", verb.c_str()));
}

std::string FormatRequestLine(const Request& request) {
  switch (request.verb) {
    case Verb::kTree:
      return StrPrintf("TREE %s %s", request.dataset.c_str(),
                       request.field.c_str());
    case Verb::kPeaks:
      return StrPrintf("PEAKS %s %s %.17g", request.dataset.c_str(),
                       request.field.c_str(), request.level);
    case Verb::kTopPeaks:
      return StrPrintf("TOPPEAKS %s %s %u", request.dataset.c_str(),
                       request.field.c_str(), request.k);
    case Verb::kMembers:
      return StrPrintf("MEMBERS %s %s %u", request.dataset.c_str(),
                       request.field.c_str(), request.node);
    case Verb::kCorrelation:
      return StrPrintf("CORRELATION %s %s %s", request.dataset.c_str(),
                       request.field.c_str(), request.field_b.c_str());
    case Verb::kTile:
      return StrPrintf("TILE %s %s %.17g %.17g %u %u",
                       request.dataset.c_str(), request.field.c_str(),
                       request.azimuth_deg, request.elevation_deg,
                       request.width, request.height);
    case Verb::kStats:
      return "STATS";
  }
  return "";
}

std::string EncodeResponseFrame(uint32_t wire_code,
                                const std::string& payload) {
  std::string frame;
  frame.reserve(kResponseOverheadBytes + payload.size());
  frame.append(kResponseMagic, sizeof(kResponseMagic));
  AppendU32(&frame, kWireVersion);
  AppendU32(&frame, wire_code);
  AppendU64(&frame, payload.size());
  frame.append(payload);
  AppendU64(&frame, Fnv1aChecksum(payload));
  return frame;
}

std::string EncodeErrorFrame(const Status& status) {
  return EncodeResponseFrame(WireCodeFromStatus(status.code()),
                             status.message());
}

StatusOr<ResponseHeader> ParseResponseHeader(const std::string& bytes) {
  if (bytes.size() < kResponseHeaderBytes) {
    return Status::InvalidArgument(
        StrPrintf("response header truncated: %zu of %u bytes",
                  bytes.size(), kResponseHeaderBytes));
  }
  if (std::memcmp(bytes.data(), kResponseMagic, sizeof(kResponseMagic)) !=
      0) {
    return Status::InvalidArgument("bad response magic (want GSRS)");
  }
  ResponseHeader header;
  header.version = ReadU32(bytes.data() + 4);
  header.wire_code = ReadU32(bytes.data() + 8);
  header.payload_len = ReadU64(bytes.data() + 12);
  if (header.version == 0 || header.version > kWireVersion) {
    return Status::InvalidArgument(
        StrPrintf("unsupported wire version %u (this client speaks <= %u)",
                  header.version, kWireVersion));
  }
  StatusOr<StatusCode> code = StatusCodeFromWire(header.wire_code);
  if (!code.ok()) return code.status();
  if (header.payload_len > kMaxResponsePayload) {
    return Status::InvalidArgument(
        StrPrintf("advertised payload of %llu bytes exceeds the %llu cap",
                  static_cast<unsigned long long>(header.payload_len),
                  static_cast<unsigned long long>(kMaxResponsePayload)));
  }
  return header;
}

StatusOr<ResponseFrame> DecodeResponseFrame(const std::string& bytes) {
  StatusOr<ResponseHeader> header = ParseResponseHeader(bytes);
  if (!header.ok()) return header.status();
  const uint64_t expect =
      kResponseOverheadBytes + header.value().payload_len;
  if (bytes.size() != expect) {
    return Status::InvalidArgument(
        StrPrintf("frame is %zu bytes, header promises %llu", bytes.size(),
                  static_cast<unsigned long long>(expect)));
  }
  ResponseFrame frame;
  frame.wire_code = header.value().wire_code;
  frame.payload = bytes.substr(kResponseHeaderBytes,
                               header.value().payload_len);
  const uint64_t stored =
      ReadU64(bytes.data() + kResponseHeaderBytes +
              header.value().payload_len);
  if (stored != Fnv1aChecksum(frame.payload)) {
    return Status::DataLoss("response payload checksum mismatch");
  }
  return frame;
}

}  // namespace service
}  // namespace graphscape
