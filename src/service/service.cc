// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "service/service.h"

#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "scalar/correlation.h"
#include "scalar/tree_queries.h"
#include "terrain/guarded_render.h"
#include "terrain/render.h"

namespace graphscape {
namespace service {
namespace {

// Shared by PEAKS and TOPPEAKS: "peaks <count>" then one
// "<super_node> <member_count> <max_scalar>" row per peak, %.17g so the
// summit values round-trip exactly (docs/SERVICE.md §Payloads).
std::string FormatPeaks(const std::vector<Peak>& peaks) {
  std::string out =
      StrPrintf("peaks %u", static_cast<unsigned>(peaks.size()));
  for (const Peak& peak : peaks) {
    out += StrPrintf("\n%u %u %.17g", peak.super_node, peak.member_count,
                     peak.max_scalar);
  }
  out += '\n';
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<QueryService>> QueryService::Open(
    const std::string& cache_root, const Options& options) {
  StatusOr<ArtifactCache> cache = ArtifactCache::Open(cache_root);
  if (!cache.ok()) return cache.status();
  return std::unique_ptr<QueryService>(
      new QueryService(std::move(cache).value(), options));
}

std::string QueryService::HandleLine(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  Status status = Status::Ok();
  StatusOr<Request> parsed = ParseRequestLine(line);
  if (parsed.ok()) {
    StatusOr<std::string> payload = Dispatch(parsed.value());
    if (payload.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.ok;
      return EncodeResponseFrame(kWireOk, payload.value());
    }
    status = payload.status();
  } else {
    status = parsed.status();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  return EncodeErrorFrame(status);
}

StatusOr<std::string> QueryService::Dispatch(const Request& request) {
  switch (request.verb) {
    case Verb::kTree:
      return HandleTree(request);
    case Verb::kPeaks:
      return HandlePeaks(request);
    case Verb::kTopPeaks:
      return HandleTopPeaks(request);
    case Verb::kMembers:
      return HandleMembers(request);
    case Verb::kCorrelation:
      return HandleCorrelation(request);
    case Verb::kTile:
      return HandleTile(request);
    case Verb::kStats:
      return HandleStats();
  }
  return Status::InvalidArgument("unreachable: unknown verb after parse");
}

StatusOr<std::shared_ptr<const QueryService::LoadedArtifact>>
QueryService::GetArtifact(const std::string& dataset,
                          const std::string& field) {
  std::lock_guard<std::mutex> lock(load_mu_);
  const std::string canonical = dataset + "/" + field;
  auto it = loaded_.find(canonical);
  if (it != loaded_.end()) return it->second;

  StatusOr<TreeArtifact> got = cache_.Get(ArtifactKey{dataset, field});
  if (!got.ok()) return got.status();
  auto loaded = std::make_shared<LoadedArtifact>();
  loaded->artifact = std::move(got).value();
  StatusOr<std::string> bytes = SerializeTreeArtifact(loaded->artifact);
  if (!bytes.ok()) return bytes.status();
  loaded->serialized = std::move(bytes).value();
  // Prime the lazy member index while we hold load_mu_: its first build
  // is not thread-safe, and after this the artifact is immutable and
  // safe to share across every worker thread (scalar/super_tree.h).
  loaded->artifact.tree.MemberIndex();

  loaded_[canonical] = loaded;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.artifacts_loaded;
  }
  return std::shared_ptr<const LoadedArtifact>(loaded);
}

StatusOr<std::string> QueryService::HandleTree(const Request& request) {
  StatusOr<std::shared_ptr<const LoadedArtifact>> loaded =
      GetArtifact(request.dataset, request.field);
  if (!loaded.ok()) return loaded.status();
  return loaded.value()->serialized;
}

StatusOr<std::string> QueryService::HandlePeaks(const Request& request) {
  StatusOr<std::shared_ptr<const LoadedArtifact>> loaded =
      GetArtifact(request.dataset, request.field);
  if (!loaded.ok()) return loaded.status();
  return FormatPeaks(
      PeaksAtLevel(loaded.value()->artifact.tree, request.level));
}

StatusOr<std::string> QueryService::HandleTopPeaks(const Request& request) {
  StatusOr<std::shared_ptr<const LoadedArtifact>> loaded =
      GetArtifact(request.dataset, request.field);
  if (!loaded.ok()) return loaded.status();
  return FormatPeaks(TopPeaks(loaded.value()->artifact.tree, request.k));
}

StatusOr<std::string> QueryService::HandleMembers(const Request& request) {
  StatusOr<std::shared_ptr<const LoadedArtifact>> loaded =
      GetArtifact(request.dataset, request.field);
  if (!loaded.ok()) return loaded.status();
  const SuperTree& tree = loaded.value()->artifact.tree;
  if (request.node >= tree.NumNodes()) {
    return Status::InvalidArgument(
        StrPrintf("MEMBERS node %u out of range: tree has %u super nodes",
                  request.node, tree.NumNodes()));
  }
  const MemberRange members = tree.Members(request.node);
  std::string out = StrPrintf("members %u", members.size());
  for (uint32_t element : members) out += StrPrintf("\n%u", element);
  out += '\n';
  return out;
}

StatusOr<std::string> QueryService::HandleCorrelation(
    const Request& request) {
  StatusOr<std::shared_ptr<const LoadedArtifact>> a =
      GetArtifact(request.dataset, request.field);
  if (!a.ok()) return a.status();
  StatusOr<std::shared_ptr<const LoadedArtifact>> b =
      GetArtifact(request.dataset, request.field_b);
  if (!b.ok()) return b.status();
  const TreeArtifact& fa = a.value()->artifact;
  const TreeArtifact& fb = b.value()->artifact;
  if (fa.field_values.size() != fb.field_values.size()) {
    return Status::InvalidArgument(StrPrintf(
        "CORRELATION fields span different element spaces (%u vs %u "
        "elements; a vertex field cannot be compared to an edge field "
        "without lifting)",
        static_cast<unsigned>(fa.field_values.size()),
        static_cast<unsigned>(fb.field_values.size())));
  }
  // k=10 matches the paper-table convention (REPRODUCTION.md): enough
  // peaks to cover the dominant structures, few enough to stay local.
  const double jaccard = TopPeakJaccard(fa.tree, fb.tree, 10);
  return StrPrintf("pearson %.17g\nspearman %.17g\ntop_peak_jaccard10 %.17g\n",
                   PearsonCorrelation(fa.field_values, fb.field_values),
                   SpearmanCorrelation(fa.field_values, fb.field_values),
                   jaccard);
}

StatusOr<std::string> QueryService::HandleTile(const Request& request) {
  if (request.width == 0 || request.height == 0 ||
      request.width > options_.max_tile_dim ||
      request.height > options_.max_tile_dim) {
    return Status::InvalidArgument(
        StrPrintf("TILE dimensions %ux%u outside 1..%u", request.width,
                  request.height, options_.max_tile_dim));
  }
  StatusOr<std::shared_ptr<const LoadedArtifact>> loaded =
      GetArtifact(request.dataset, request.field);
  if (!loaded.ok()) return loaded.status();

  TileKey key;
  key.dataset = request.dataset;
  key.field = request.field;
  key.azimuth_deg = request.azimuth_deg;
  key.elevation_deg = request.elevation_deg;
  key.width = request.width;
  key.height = request.height;
  const std::string canonical = key.Canonical();
  std::string tile;
  if (tiles_.Get(canonical, &tile)) return tile;

  // The render seam: arming service/render=always turns every cold tile
  // into a clean UNAVAILABLE frame — the CI service-smoke job proves
  // clients see a structured error, not a hung or torn connection.
  if (failpoint::Fire("service/render")) {
    return failpoint::InjectedFault("service/render");
  }

  ResourceBudget budget(options_.request_budget_bytes,
                        options_.request_deadline_seconds);
  GuardedRenderOptions render_options;
  render_options.raster.width = request.width;
  render_options.raster.height = request.height;
  // One raster thread: request-level parallelism comes from the server's
  // worker pool, and ParallelFor regions serialize globally
  // (common/parallel.h) — fanning out here would stall other requests.
  render_options.raster.num_threads = 1;
  render_options.image_width = request.width;
  render_options.image_height = request.height;
  render_options.camera.azimuth_deg = request.azimuth_deg;
  render_options.camera.elevation_deg = request.elevation_deg;
  render_options.min_raster_dim = options_.min_raster_dim;
  StatusOr<GuardedRenderResult> rendered = RenderTreeTerrainGuarded(
      loaded.value()->artifact.tree, &budget, render_options);
  if (!rendered.ok()) return rendered.status();

  std::string ppm = EncodePpm(rendered.value().image);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tiles_rendered;
  }
  tiles_.Put(canonical, ppm);
  return ppm;
}

StatusOr<std::string> QueryService::HandleStats() {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  const TileCacheStats tile = tiles_.stats();
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    keys = cache_.Keys();
  }
  std::string out = StrPrintf(
      "version %u\n"
      "requests %llu\n"
      "ok %llu\n"
      "errors %llu\n"
      "artifacts_loaded %llu\n"
      "tiles_rendered %llu\n"
      "tile_hits %llu\n"
      "tile_misses %llu\n"
      "tile_evictions %llu\n"
      "tile_bytes %llu\n"
      "tile_count %llu\n",
      kWireVersion, static_cast<unsigned long long>(snapshot.requests),
      static_cast<unsigned long long>(snapshot.ok),
      static_cast<unsigned long long>(snapshot.errors),
      static_cast<unsigned long long>(snapshot.artifacts_loaded),
      static_cast<unsigned long long>(snapshot.tiles_rendered),
      static_cast<unsigned long long>(tile.hits),
      static_cast<unsigned long long>(tile.misses),
      static_cast<unsigned long long>(tile.evictions),
      static_cast<unsigned long long>(tile.current_bytes),
      static_cast<unsigned long long>(tile.current_tiles));
  // One "key dataset/field" line per cache entry — the load generator
  // discovers the corpus from exactly these lines.
  for (const std::string& key : keys) out += "key " + key + "\n";
  return out;
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace service
}  // namespace graphscape
