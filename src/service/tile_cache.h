// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Byte-budgeted LRU for rendered terrain tiles, keyed by
// (dataset, field, camera, dimensions). Rendering a tile is the most
// expensive verb the query service answers (layout + raster + oblique
// render); the same few camera presets over the same few popular
// datasets dominate real traffic, so a small byte budget buys a large
// hit rate (the zipf-driven load generator demonstrates this —
// docs/OPERATIONS.md shows the readout).
//
// Semantics (pinned by tests/tile_cache_test.cc):
//
//   * Get bumps the entry to most-recently-used; Put inserts (or
//     replaces) at MRU and then evicts from the LRU end until the byte
//     ledger fits the budget again.
//   * The ledger counts payload bytes only (the PPM string), not map
//     overhead — the same accounting convention as ResourceBudget
//     charges, so an operator can reason in output sizes.
//   * A tile larger than the whole budget is NOT stored (and evicts
//     nothing): callers still get their render, the cache just refuses
//     to thrash itself for it.
//
// Thread safety: all public methods are internally synchronized by one
// mutex — tiles are small and the critical sections are map operations,
// so one lock beats sharding at this scale. Rendering MUST happen
// outside the cache (Get-miss, render, Put), which means two racing
// requests for the same cold tile may both render it; both Puts are
// idempotent (same key, same deterministic bytes), so the only cost is
// the duplicated render — accepted, documented in docs/SERVICE.md.

#ifndef GRAPHSCAPE_SERVICE_TILE_CACHE_H_
#define GRAPHSCAPE_SERVICE_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphscape {
namespace service {

/// Everything that determines a tile's bytes. Doubles are formatted
/// with %.17g in the canonical key, so distinct cameras never collide.
struct TileKey {
  std::string dataset;
  std::string field;
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;
  uint32_t width = 0;
  uint32_t height = 0;

  /// "dataset|field|azimuth|elevation|WxH". Distinct keys cannot render
  /// the same string: the numeric tail is fixed-arity, so a '|' smuggled
  /// into dataset or field only ever shifts fields into positions the
  /// numeric parser already rejected at the wire layer.
  std::string Canonical() const;
};

struct TileCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected_oversize = 0;  ///< Put refused: tile > whole budget
  uint64_t current_bytes = 0;
  uint64_t current_tiles = 0;
};

class TileLruCache {
 public:
  explicit TileLruCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  TileLruCache(const TileLruCache&) = delete;
  TileLruCache& operator=(const TileLruCache&) = delete;

  /// Copies the tile into *out and bumps it to MRU. False on miss.
  bool Get(const std::string& canonical_key, std::string* out);

  /// Insert-or-replace at MRU, then evict LRU entries until the ledger
  /// fits max_bytes. Oversize tiles are counted and dropped.
  void Put(const std::string& canonical_key, std::string tile_bytes);

  /// Keys from most- to least-recently used (tests pin eviction order).
  std::vector<std::string> KeysMruToLru() const;

  TileCacheStats stats() const;
  uint64_t max_bytes() const { return max_bytes_; }

 private:
  using Entry = std::pair<std::string, std::string>;  // key, tile bytes

  void EvictToFitLocked();

  const uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = MRU
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  TileCacheStats stats_;
};

}  // namespace service
}  // namespace graphscape

#endif  // GRAPHSCAPE_SERVICE_TILE_CACHE_H_
