// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// BlockingClient: the minimal correct consumer of the wire protocol —
// one connection, one in-flight request, strict read-exactly framing.
// The load generator, the service bench, and the loopback integration
// test all speak through this class, so protocol handling lives in
// exactly one place on the client side too.
//
// Error taxonomy on the caller's side of Roundtrip():
//   * status not ok        -> TRANSPORT/FRAMING failure (socket died,
//     bad magic, checksum mismatch, oversized payload). The connection
//     is poisoned; Close and reconnect. graphscape_load counts these as
//     "wire errors" — the class that must be zero in CI.
//   * status ok, frame.wire_code != kWireOk -> the SERVER answered with
//     a structured error (NOT_FOUND, INVALID_ARGUMENT, ...). The
//     connection is fine and the next request may proceed; these are
//     "server errors", expected under fault injection.
//
// Thread safety: none — one BlockingClient per thread (it is a single
// socket with request/response state). That is the sharing model every
// call site uses.

#ifndef GRAPHSCAPE_SERVICE_CLIENT_H_
#define GRAPHSCAPE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/wire.h"

namespace graphscape {
namespace service {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to host:port (numeric IPv4 only — the daemon is loopback;
  /// "127.0.0.1" is what every call site passes). Unavailable with
  /// errno text on failure. Reconnecting an open client closes first.
  Status Connect(const std::string& host, uint16_t port,
                 double io_timeout_seconds = 30.0);

  /// Sends one request line (the '\n' is appended here) and reads one
  /// complete response frame: header, payload, checksum trailer. Any
  /// transport or framing failure poisons the connection (see the
  /// header comment); the server's own errors come back as an OK status
  /// with frame.wire_code != kWireOk.
  StatusOr<ResponseFrame> Roundtrip(const std::string& line);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Status ReadExactly(size_t n, std::string* out);

  int fd_ = -1;
};

}  // namespace service
}  // namespace graphscape

#endif  // GRAPHSCAPE_SERVICE_CLIENT_H_
