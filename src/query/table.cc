// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "query/table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace graphscape {

uint32_t Table::AddColumn(std::string name, std::vector<double> values) {
  if (values.size() != num_rows_)
    throw std::invalid_argument("Table column '" + name + "': expected " +
                                std::to_string(num_rows_) + " values, got " +
                                std::to_string(values.size()));
  column_names_.push_back(std::move(name));
  columns_.push_back(std::move(values));
  return static_cast<uint32_t>(columns_.size() - 1);
}

uint32_t Table::AddField(const VertexScalarField& field) {
  return AddColumn(field.Name(), field.Values());
}

void Table::SetLabels(std::vector<std::string> labels) {
  if (labels.size() != num_rows_)
    throw std::invalid_argument("Table labels: expected " +
                                std::to_string(num_rows_) + " entries, got " +
                                std::to_string(labels.size()));
  labels_ = std::move(labels);
}

uint32_t Table::FindColumn(const std::string& name) const {
  for (uint32_t c = 0; c < column_names_.size(); ++c)
    if (column_names_[c] == name) return c;
  return kNoColumn;
}

namespace {

bool Passes(double cell, FilterOp op, double value) {
  switch (op) {
    case FilterOp::kLess:
      return cell < value;
    case FilterOp::kLessEqual:
      return cell <= value;
    case FilterOp::kGreater:
      return cell > value;
    case FilterOp::kGreaterEqual:
      return cell >= value;
    case FilterOp::kEqual:
      return cell == value;
    case FilterOp::kNotEqual:
      return !std::isnan(cell) && cell != value;
  }
  return false;
}

/// Three-way key compare with NaN pinned after every number in either
/// direction. Returns <0, 0, >0.
int CompareCells(double a, double b, bool ascending) {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
  if (a == b) return 0;
  return (a < b) == ascending ? -1 : 1;
}

}  // namespace

std::vector<uint32_t> FilterRows(const Table& table,
                                 const std::vector<Filter>& filters) {
  std::vector<uint32_t> rows;
  for (size_t row = 0; row < table.NumRows(); ++row) {
    bool pass = true;
    for (const Filter& filter : filters) {
      if (!Passes(table.Value(row, filter.column), filter.op, filter.value)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(static_cast<uint32_t>(row));
  }
  return rows;
}

std::vector<uint32_t> SortRows(const Table& table,
                               const std::vector<SortKey>& keys) {
  std::vector<uint32_t> rows(table.NumRows());
  for (size_t row = 0; row < rows.size(); ++row)
    rows[row] = static_cast<uint32_t>(row);
  std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
    for (const SortKey& key : keys) {
      const int cmp = CompareCells(table.Value(a, key.column),
                                   table.Value(b, key.column), key.ascending);
      if (cmp != 0) return cmp < 0;
    }
    return a < b;
  });
  return rows;
}

std::vector<uint32_t> TopK(const Table& table, uint32_t column, uint32_t k,
                           bool largest) {
  std::vector<uint32_t> rows = SortRows(table, {{column, !largest}});
  while (!rows.empty() && std::isnan(table.Value(rows.back(), column)))
    rows.pop_back();
  if (rows.size() > k) rows.resize(k);
  return rows;
}

VertexScalarField ColumnAsField(const Table& table, uint32_t column) {
  return VertexScalarField(table.ColumnName(column), table.Column(column));
}

Table MakePlantGenusTable(size_t num_rows, Rng* rng) {
  struct GenusSpec {
    const char* label;
    double attr0_lo, attr0_hi;
  };
  // Attribute-0 bands: C sits > 2.5 away from both others, A-B only 0.6
  // apart — the separations Fig. 11's NN-graph readouts key on.
  static constexpr GenusSpec kGenera[3] = {{"genusA", 2.0, 3.2},
                                           {"genusB", 3.8, 5.0},
                                           {"genusC", 8.5, 9.5}};
  std::vector<double> attr0(num_rows), attr1(num_rows);
  std::vector<std::string> labels(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    const GenusSpec& genus = kGenera[row % 3];
    labels[row] = genus.label;
    attr0[row] = genus.attr0_lo +
                 (genus.attr0_hi - genus.attr0_lo) * rng->UniformDouble();
    attr1[row] = 4.0 + 2.0 * rng->UniformDouble();
  }
  Table table(num_rows);
  table.AddColumn("petal_length", std::move(attr0));
  table.AddColumn("sepal_width", std::move(attr1));
  table.SetLabels(std::move(labels));
  return table;
}

}  // namespace graphscape
