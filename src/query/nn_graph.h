// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// k-NN similarity graph over table rows (paper §III-D): the step that
// turns a SQL query result into a graph the terrain pipeline can
// visualize. Each row links to its nearest neighbors in attribute space
// (Euclidean over the selected columns), neighbor lists are unioned into
// an undirected simple graph, and row id == vertex id so table columns
// are directly usable as scalar fields on the result.

#ifndef GRAPHSCAPE_QUERY_NN_GRAPH_H_
#define GRAPHSCAPE_QUERY_NN_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "query/table.h"

namespace graphscape {

struct NnGraphOptions {
  /// Columns entering the distance; empty means all columns.
  std::vector<uint32_t> columns;
  /// Z-score each column first so wide-ranged attributes don't dominate.
  /// Fig. 11 runs raw (false) because its threshold is in data units.
  bool normalize = true;
  /// Nearest neighbors each row nominates (selected by distance
  /// ascending, row id breaking ties); the union is undirected, so
  /// degrees may exceed this.
  uint32_t max_neighbors = 8;
  /// Drop candidate neighbors farther than this (post-normalization
  /// units when `normalize`). A NaN distance never qualifies.
  double distance_threshold = std::numeric_limits<double>::infinity();
  /// Lanes for the per-row selection pass (common/parallel.h);
  /// bit-identical for every value.
  uint32_t num_threads = 0;
};

/// Deterministic in (table, options); identical for every num_threads.
/// The per-row candidate scan is exact (all pairs), O(rows^2 * columns).
Graph BuildNnGraph(const Table& table, const NnGraphOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_QUERY_NN_GRAPH_H_
