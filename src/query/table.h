// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Attribute tables over vertices (paper §III-D, Fig. 11): the rows of a
// SQL query result, one double column per registered attribute plus an
// optional string label per row. Rows double as vertex ids of the
// similarity graph query/nn_graph.h builds, which is what lets a query
// result flow into the terrain pipeline unchanged.
//
// Filter / sort / top-k are the paper's query-refinement verbs. All three
// are fully deterministic, NaN included: a NaN cell fails every filter
// comparison (IEEE semantics) and sorts after every non-NaN value
// regardless of direction, and every tie — NaN or not — breaks by
// ascending row id.

#ifndef GRAPHSCAPE_QUERY_TABLE_H_
#define GRAPHSCAPE_QUERY_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scalar/scalar_field.h"

namespace graphscape {

/// FindColumn's miss marker.
inline constexpr uint32_t kNoColumn = 0xffffffffu;

class Table {
 public:
  explicit Table(size_t num_rows) : num_rows_(num_rows) {}

  size_t NumRows() const { return num_rows_; }
  uint32_t NumColumns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  /// Appends a column; `values` must have NumRows() entries (throws
  /// std::invalid_argument otherwise). Returns the new column's index.
  uint32_t AddColumn(std::string name, std::vector<double> values);

  /// AddColumn from a scalar field, keeping the field's name — how the
  /// registered per-vertex measures become queryable attributes.
  uint32_t AddField(const VertexScalarField& field);

  /// Row labels (genus names, product titles); empty string when unset.
  /// `labels` must have NumRows() entries.
  void SetLabels(std::vector<std::string> labels);

  double Value(size_t row, uint32_t column) const {
    return columns_[column][row];
  }
  const std::vector<double>& Column(uint32_t column) const {
    return columns_[column];
  }
  const std::string& ColumnName(uint32_t column) const {
    return column_names_[column];
  }
  const std::string& Label(size_t row) const {
    return labels_.empty() ? empty_label_ : labels_[row];
  }

  /// Index of the column named `name`, or kNoColumn.
  uint32_t FindColumn(const std::string& name) const;

 private:
  size_t num_rows_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<double>> columns_;
  std::vector<std::string> labels_;
  std::string empty_label_;
};

enum class FilterOp : uint8_t {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqual,
  kNotEqual
};

struct Filter {
  uint32_t column = 0;
  FilterOp op = FilterOp::kLess;
  double value = 0.0;
};

/// Row ids passing ALL filters (conjunction), in ascending row order.
/// A row with NaN in a filtered column never passes (even kNotEqual —
/// "unknown" is not a match).
std::vector<uint32_t> FilterRows(const Table& table,
                                 const std::vector<Filter>& filters);

struct SortKey {
  uint32_t column = 0;
  bool ascending = true;
};

/// Row ids ordered by the keys lexicographically; NaN sorts after every
/// number under either direction, final ties break by ascending row id.
std::vector<uint32_t> SortRows(const Table& table,
                               const std::vector<SortKey>& keys);

/// The first k rows of SortRows on one column (descending when
/// `largest`); NaN rows are excluded entirely.
std::vector<uint32_t> TopK(const Table& table, uint32_t column, uint32_t k,
                           bool largest = true);

/// One column as a vertex scalar field (row id == vertex id), named
/// after the column. Throws if the column holds NaN — scalar fields are
/// finite by contract.
VertexScalarField ColumnAsField(const Table& table, uint32_t column);

/// The Fig. 11 stand-in for the paper's plant query result: `num_rows`
/// rows over three genera (labels "genusA"/"genusB"/"genusC", assigned
/// round-robin) with two attribute columns. Attribute 0 separates the
/// genera (bands A [2.0, 3.2], B [3.8, 5.0], C [8.5, 9.5] — C's gap to
/// the others exceeds 2.5, A-B's does not); attribute 1 overlaps all
/// three in [4.0, 6.0]. Deterministic in (num_rows, *rng).
Table MakePlantGenusTable(size_t num_rows, Rng* rng);

}  // namespace graphscape

#endif  // GRAPHSCAPE_QUERY_TABLE_H_
