// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "query/nn_graph.h"

#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "graph/graph_builder.h"

namespace graphscape {

Graph BuildNnGraph(const Table& table, const NnGraphOptions& options) {
  const uint32_t n = static_cast<uint32_t>(table.NumRows());
  GraphBuilder builder(n);
  if (n == 0) return builder.Build();

  std::vector<uint32_t> columns = options.columns;
  if (columns.empty()) {
    columns.resize(table.NumColumns());
    std::iota(columns.begin(), columns.end(), 0u);
  }
  const uint32_t d = static_cast<uint32_t>(columns.size());

  // Row-major point matrix, z-scored per column when requested (a
  // constant column contributes 0 to every distance either way).
  std::vector<double> points(static_cast<size_t>(n) * d);
  for (uint32_t f = 0; f < d; ++f) {
    const std::vector<double>& column = table.Column(columns[f]);
    double mean = 0.0, stddev = 1.0;
    if (options.normalize) {
      mean = 0.0;
      for (const double x : column) mean += x;
      mean /= n;
      double var = 0.0;
      for (const double x : column) var += (x - mean) * (x - mean);
      stddev = var > 0.0 ? std::sqrt(var / n) : 1.0;
    } else {
      mean = 0.0;
      stddev = 1.0;
    }
    for (uint32_t row = 0; row < n; ++row)
      points[static_cast<size_t>(row) * d + f] = (column[row] - mean) / stddev;
  }

  // Exact per-row selection into preallocated (distance, id) slots —
  // bounded insertion sort ordered by (distance asc, id asc), so the
  // nominee lists are unique and the parallel pass writes disjoint rows.
  const uint32_t k = std::min(options.max_neighbors, n - 1);
  const double threshold_sq =
      options.distance_threshold * options.distance_threshold;
  std::vector<VertexId> nominee(static_cast<size_t>(n) * k, kInvalidVertex);
  std::vector<double> nominee_dist(static_cast<size_t>(n) * k, 0.0);
  const ParallelOptions parallel{options.num_threads, /*grain=*/64};
  ParallelFor(0, n, parallel, [&](uint64_t u) {
    if (k == 0) return;
    VertexId* ids = &nominee[u * k];
    double* dists = &nominee_dist[u * k];
    uint32_t filled = 0;
    const double* pu = &points[u * d];
    for (uint32_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double* pv = &points[static_cast<size_t>(v) * d];
      double dist_sq = 0.0;
      for (uint32_t f = 0; f < d; ++f) {
        const double x = pu[f] - pv[f];
        dist_sq += x * x;
      }
      if (!(dist_sq <= threshold_sq)) continue;  // NaN fails here too
      if (filled == k && dists[k - 1] <= dist_sq) continue;
      uint32_t slot = filled < k ? filled : k - 1;
      while (slot > 0 && dists[slot - 1] > dist_sq) {
        dists[slot] = dists[slot - 1];
        ids[slot] = ids[slot - 1];
        --slot;
      }
      dists[slot] = dist_sq;
      ids[slot] = v;
      if (filled < k) ++filled;
    }
  });

  // Union of nominations; GraphBuilder dedups the mutual pairs.
  for (uint32_t u = 0; u < n; ++u)
    for (uint32_t s = 0; s < k; ++s)
      if (nominee[static_cast<size_t>(u) * k + s] != kInvalidVertex)
        builder.AddEdge(u, nominee[static_cast<size_t>(u) * k + s]);
  return builder.Build();
}

}  // namespace graphscape
