// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "layout/openord_layout.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "layout/spring_layout.h"

namespace graphscape {
namespace {

struct CoarseLevel {
  Graph graph;
  /// Fine vertex -> coarse vertex of the NEXT level.
  std::vector<VertexId> coarse_of;
};

// Deterministic maximal matching by ascending vertex id: each unmatched
// vertex grabs its first unmatched neighbor. Matched pairs and leftover
// singletons both become coarse vertices.
CoarseLevel Coarsen(const Graph& g) {
  const uint32_t n = g.NumVertices();
  CoarseLevel level;
  level.coarse_of.assign(n, kInvalidVertex);
  uint32_t next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.coarse_of[v] != kInvalidVertex) continue;
    level.coarse_of[v] = next;
    for (const VertexId u : g.Neighbors(v)) {
      if (level.coarse_of[u] == kInvalidVertex) {
        level.coarse_of[u] = next;
        break;
      }
    }
    ++next;
  }
  GraphBuilder builder(next);
  builder.Reserve(static_cast<size_t>(g.NumEdges()));
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    builder.AddEdge(level.coarse_of[u], level.coarse_of[v]);
  }
  level.graph = builder.Build();  // drops the self-loops matching creates
  return level;
}

}  // namespace

Positions OpenOrdLayout(const Graph& g, const OpenOrdOptions& options) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return {};

  // Descend: coarsen until small enough, a level cap guarding against
  // graphs where matching stops shrinking (stars collapse slowly).
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  for (uint32_t depth = 0;
       depth < options.max_levels &&
       current->NumVertices() > options.min_coarse_vertices;
       ++depth) {
    CoarseLevel level = Coarsen(*current);
    if (level.graph.NumVertices() >= current->NumVertices()) break;
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // Full spring solve on the coarsest graph.
  SpringLayoutOptions coarse;
  coarse.iterations = options.coarse_iterations;
  coarse.seed = options.seed;
  Positions pos = SpringLayout(*current, coarse);

  // Ascend: project and refine. The matched pair splits with a tiny
  // id-dependent offset so the spring core has a gradient to work with.
  SpringLayoutOptions refine;
  refine.iterations = options.refine_iterations;
  refine.seed = options.seed;
  refine.initial_temperature = 0.02;  // polish, don't re-scatter
  for (size_t li = levels.size(); li-- > 0;) {
    const std::vector<VertexId>& coarse_of = levels[li].coarse_of;
    const Graph& fine_graph = li == 0 ? g : levels[li - 1].graph;
    Positions fine(fine_graph.NumVertices());
    for (VertexId v = 0; v < fine_graph.NumVertices(); ++v) {
      const Point2 base = pos[coarse_of[v]];
      const double off = 1e-4 * static_cast<double>(v % 17);
      // Clamp back into the unit square: the spring core's grid binning
      // (and the documented return contract) require it, and a coarse
      // vertex clamped to an edge would otherwise project outside.
      fine[v] = Point2{std::min(std::max(base.x + off, 0.0), 1.0 - 1e-9),
                       std::min(std::max(base.y - off, 0.0), 1.0 - 1e-9)};
    }
    RefineSpringLayout(fine_graph, refine, &fine);
    pos = std::move(fine);
  }
  return pos;
}

}  // namespace graphscape
