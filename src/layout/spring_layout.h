// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fruchterman–Reingold spring embedding with grid-binned repulsion — the
// baseline 2D layout of Fig. 6(a, b) and the refinement core the OpenOrd
// wrapper (layout/openord_layout.h) drives at every level.
//
// The textbook algorithm is O(n^2) per iteration because every vertex
// repels every other. Here repulsion is cut off at radius 2k (k = the
// ideal spring length sqrt(area / n)) and vertices are counting-sorted
// into a uniform grid of 2k-sized cells each iteration, so a vertex only
// scans the 3x3 cell neighborhood around it: O(n) per iteration under
// bounded density, O(n * iterations) overall — the same complexity class
// as one Algorithm 1/3 sweep per iteration, not a quadratic outlier.
//
// Allocation discipline matches Algorithms 1/3 (tests/allocation_test.cc):
// every buffer (grid offsets, cell-sorted ids, displacement array) is
// sized once up front and the per-iteration loop — bin, repel, attract,
// displace, cool — performs zero heap allocations.

#ifndef GRAPHSCAPE_LAYOUT_SPRING_LAYOUT_H_
#define GRAPHSCAPE_LAYOUT_SPRING_LAYOUT_H_

#include <cstdint>

#include "graph/graph.h"
#include "layout/positions.h"

namespace graphscape {

struct SpringLayoutOptions {
  uint32_t iterations = 100;
  /// Seed for the deterministic initial scatter (common/rng.h).
  uint64_t seed = 1;
  /// Starting step bound, as a fraction of the unit square; decays
  /// linearly to ~0 over the iteration budget.
  double initial_temperature = 0.1;
  /// Lanes for the per-iteration repel/attract/displace passes (1 =
  /// sequential, 0 = GRAPHSCAPE_THREADS / hardware). Every per-vertex
  /// force is a pure function of the previous iteration's positions
  /// with disjoint writes, so the layout is BIT-IDENTICAL for every
  /// value — this is a speed knob, not a result knob. The binning pass
  /// (a counting sort) stays sequential. Per-iteration dispatch is
  /// allocation-free, preserving the discipline above.
  uint32_t num_threads = 1;
};

/// Lays out `g` from a seeded random scatter. Returns one position per
/// vertex in [0, 1]^2; deterministic in (g, options).
Positions SpringLayout(const Graph& g, const SpringLayoutOptions& options = {});

/// The in-place core: refines `positions` (size NumVertices, any state —
/// e.g. projected coarse-level coordinates) for options.iterations more
/// rounds. This is the multilevel refinement entry point.
void RefineSpringLayout(const Graph& g, const SpringLayoutOptions& options,
                        Positions* positions);

}  // namespace graphscape

#endif  // GRAPHSCAPE_LAYOUT_SPRING_LAYOUT_H_
