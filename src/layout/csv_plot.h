// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// CSV-style 1D density plot (Fig. 6(g)): vertices are laid out on the x
// axis in an order that keeps dense subgraphs contiguous — a greedy
// highest-density-first expansion, always growing the frontier at its
// densest reachable vertex — and the per-vertex density is drawn as a
// curve. Dense cores show up as humps, but unlike the terrain there is
// no second dimension for nesting: two humps may or may not share a
// foundation, and the plot cannot say. That is the paper's point in
// including it as a baseline.

#ifndef GRAPHSCAPE_LAYOUT_CSV_PLOT_H_
#define GRAPHSCAPE_LAYOUT_CSV_PLOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

struct CsvPlot {
  /// All vertices, in curve order (a permutation of 0..n-1).
  std::vector<VertexId> order;
  /// density[order[i]] — the curve's y value at x position i.
  std::vector<double> heights;
  double min_height = 0.0;
  double max_height = 0.0;
};

/// Requires density.size() == g.NumVertices(). Deterministic.
CsvPlot BuildCsvPlot(const Graph& g, const std::vector<double>& density);

/// Renders the curve as a standalone SVG (polyline + filled area).
/// Returns false if the file cannot be written.
bool WriteCsvPlotSvg(const CsvPlot& plot, const std::string& path);

}  // namespace graphscape

#endif  // GRAPHSCAPE_LAYOUT_CSV_PLOT_H_
