// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "layout/spring_layout.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"

namespace graphscape {
namespace {

// Clamp into the open unit interval so grid indices stay in range.
inline double ClampUnit(double v) {
  return std::min(std::max(v, 0.0), 1.0 - 1e-9);
}

}  // namespace

void RefineSpringLayout(const Graph& g, const SpringLayoutOptions& options,
                        Positions* positions) {
  const uint32_t n = g.NumVertices();
  if (n == 0 || positions->size() != n) return;
  Positions& pos = *positions;
  if (n == 1) {
    pos[0] = Point2{0.5, 0.5};
    return;
  }

  // Ideal spring length for unit area; repulsion cutoff at 2k.
  const double k = std::sqrt(1.0 / static_cast<double>(n));
  const double cutoff = 2.0 * k;
  const double cutoff_sq = cutoff * cutoff;
  const uint32_t grid = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::floor(1.0 / cutoff)));
  const double cell_size = 1.0 / grid;

  // All buffers for the iteration loop, allocated once.
  std::vector<uint32_t> cell_of(n);
  std::vector<uint32_t> cell_offsets(static_cast<size_t>(grid) * grid + 1);
  std::vector<uint32_t> cell_cursor(static_cast<size_t>(grid) * grid);
  std::vector<uint32_t> cell_items(n);
  std::vector<Point2> disp(n);

  const uint32_t iterations = std::max<uint32_t>(1, options.iterations);
  double temperature = options.initial_temperature;
  const double cooling = temperature / static_cast<double>(iterations);

  // Per-vertex force/displace passes run on the pool: each writes only
  // its own slot from the previous pass's state, so the result is
  // bit-identical for every width (see SpringLayoutOptions). grain 0
  // keeps the library default block size.
  const ParallelOptions par{options.num_threads, 0};

  for (uint32_t iter = 0; iter < iterations; ++iter) {
    // Bin: counting sort of vertices into grid cells.
    std::fill(cell_offsets.begin(), cell_offsets.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t cx = static_cast<uint32_t>(pos[v].x / cell_size);
      const uint32_t cy = static_cast<uint32_t>(pos[v].y / cell_size);
      cell_of[v] = std::min(cy, grid - 1) * grid + std::min(cx, grid - 1);
      ++cell_offsets[cell_of[v] + 1];
    }
    for (size_t c = 0; c + 1 < cell_offsets.size(); ++c)
      cell_offsets[c + 1] += cell_offsets[c];
    std::copy(cell_offsets.begin(), cell_offsets.end() - 1,
              cell_cursor.begin());
    for (VertexId v = 0; v < n; ++v) cell_items[cell_cursor[cell_of[v]]++] = v;

    // Repulsion: each vertex against the 3x3 cell neighborhood, cut off
    // at 2k. Degenerate coincident pairs get a deterministic id-based
    // nudge so they separate instead of dividing by zero.
    ParallelFor(0, n, par, [&](uint64_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      disp[v] = Point2{0.0, 0.0};
      const uint32_t cx = cell_of[v] % grid;
      const uint32_t cy = cell_of[v] / grid;
      const uint32_t x0 = cx > 0 ? cx - 1 : 0;
      const uint32_t x1 = std::min(cx + 1, grid - 1);
      const uint32_t y0 = cy > 0 ? cy - 1 : 0;
      const uint32_t y1 = std::min(cy + 1, grid - 1);
      for (uint32_t gy = y0; gy <= y1; ++gy) {
        for (uint32_t gx = x0; gx <= x1; ++gx) {
          const uint32_t cell = gy * grid + gx;
          for (uint32_t s = cell_offsets[cell]; s < cell_offsets[cell + 1];
               ++s) {
            const VertexId u = cell_items[s];
            if (u == v) continue;
            double dx = pos[v].x - pos[u].x;
            double dy = pos[v].y - pos[u].y;
            double d_sq = dx * dx + dy * dy;
            if (d_sq >= cutoff_sq) continue;
            if (d_sq < 1e-18) {
              dx = 1e-6 * (1.0 + static_cast<double>(v % 7));
              dy = 1e-6 * (1.0 + static_cast<double>(u % 11));
              d_sq = dx * dx + dy * dy;
            }
            // F_r = k^2 / d along the separation direction.
            const double inv = k * k / d_sq;
            disp[v].x += dx * inv;
            disp[v].y += dy * inv;
          }
        }
      }
    });

    // Attraction along edges: F_a = d / k toward the neighbor. The CSR
    // stores both directions, so visiting every slot applies the
    // symmetric pull without a second pass.
    ParallelFor(0, n, par, [&](uint64_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      for (const VertexId u : g.Neighbors(v)) {
        const double dx = pos[u].x - pos[v].x;
        const double dy = pos[u].y - pos[v].y;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d < 1e-12) continue;
        const double pull = d / k;
        disp[v].x += dx / d * pull;
        disp[v].y += dy / d * pull;
      }
    });

    // Displace, capped by the temperature; clamp into the unit square.
    ParallelFor(0, n, par, [&](uint64_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      const double len =
          std::sqrt(disp[v].x * disp[v].x + disp[v].y * disp[v].y);
      if (len < 1e-12) return;
      const double step = std::min(len, temperature) / len;
      pos[v].x = ClampUnit(pos[v].x + disp[v].x * step);
      pos[v].y = ClampUnit(pos[v].y + disp[v].y * step);
    });
    temperature = std::max(temperature - cooling, 1e-4);
  }
}

Positions SpringLayout(const Graph& g, const SpringLayoutOptions& options) {
  const uint32_t n = g.NumVertices();
  Positions pos(n);
  Rng rng(options.seed);
  for (VertexId v = 0; v < n; ++v) {
    pos[v].x = rng.UniformDouble();
    pos[v].y = rng.UniformDouble();
  }
  RefineSpringLayout(g, options, &pos);
  return pos;
}

}  // namespace graphscape
