// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "layout/lanetvi_layout.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metrics/kcore.h"

namespace graphscape {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Labels each vertex with the connected cluster it forms with same-shell
// vertices (BFS restricted to one shell), so a shell's clusters can be
// fanned into separate angular sectors. Returns the number of clusters.
uint32_t SameShellClusters(const Graph& g, const std::vector<uint32_t>& core,
                           std::vector<uint32_t>* cluster_of) {
  const uint32_t n = g.NumVertices();
  cluster_of->assign(n, kInvalidVertex);
  std::vector<VertexId> queue;
  queue.reserve(n);
  uint32_t next_cluster = 0;
  for (VertexId seed = 0; seed < n; ++seed) {
    if ((*cluster_of)[seed] != kInvalidVertex) continue;
    const uint32_t shell = core[seed];
    (*cluster_of)[seed] = next_cluster;
    queue.clear();
    queue.push_back(seed);
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (const VertexId u : g.Neighbors(v)) {
        if (core[u] == shell && (*cluster_of)[u] == kInvalidVertex) {
          (*cluster_of)[u] = next_cluster;
          queue.push_back(u);
        }
      }
    }
    ++next_cluster;
  }
  return next_cluster;
}

}  // namespace

LanetViLayoutResult LanetViLayout(const Graph& g,
                                  const LanetViOptions& options) {
  LanetViLayoutResult result;
  const uint32_t n = g.NumVertices();
  result.core_of = CoreNumbers(g);
  result.positions.resize(n);
  for (const uint32_t c : result.core_of)
    result.max_core = std::max(result.max_core, c);
  if (n == 0) return result;

  std::vector<uint32_t> cluster_of;
  const uint32_t num_clusters = SameShellClusters(g, result.core_of,
                                                  &cluster_of);

  // Per-cluster angular sectors: clusters sorted by (shell, cluster id)
  // get consecutive slices of the circle, sized by member count, so one
  // shell's clusters tile the full ring but never interleave.
  std::vector<uint32_t> cluster_size(num_clusters, 0);
  for (const uint32_t c : cluster_of) ++cluster_size[c];
  std::vector<uint32_t> order(num_clusters);
  for (uint32_t c = 0; c < num_clusters; ++c) order[c] = c;
  std::vector<uint32_t> cluster_shell(num_clusters);
  for (VertexId v = 0; v < n; ++v)
    cluster_shell[cluster_of[v]] = result.core_of[v];
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (cluster_shell[a] != cluster_shell[b])
      return cluster_shell[a] < cluster_shell[b];
    return a < b;
  });

  // Angle ranges per cluster, normalized within each shell.
  std::vector<double> sector_start(num_clusters, 0.0);
  std::vector<double> sector_width(num_clusters, 2.0 * kPi);
  for (size_t i = 0; i < order.size();) {
    size_t j = i;
    uint32_t shell_total = 0;
    while (j < order.size() &&
           cluster_shell[order[j]] == cluster_shell[order[i]]) {
      shell_total += cluster_size[order[j]];
      ++j;
    }
    double angle = 0.0;
    for (size_t p = i; p < j; ++p) {
      const uint32_t c = order[p];
      sector_start[c] = angle;
      sector_width[c] =
          2.0 * kPi * cluster_size[c] / static_cast<double>(shell_total);
      angle += sector_width[c];
    }
    i = j;
  }

  // Radius by shell — kmax innermost — with deterministic jitter so
  // same-cluster vertices spread instead of stacking on one point.
  Rng rng(options.seed);
  std::vector<uint32_t> placed_in_cluster(num_clusters, 0);
  const double rmax = 0.47;  // leave a margin inside the unit square
  const double shell_step =
      rmax / static_cast<double>(result.max_core + 1);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t c = cluster_of[v];
    const double ring =
        shell_step * static_cast<double>(result.max_core + 1 -
                                         result.core_of[v]);
    const double radius =
        std::max(ring - shell_step * 0.8 * rng.UniformDouble(),
                 shell_step * 0.1);
    const double pad = sector_width[c] * 0.05;
    const uint32_t count = cluster_size[c];
    const double slot = (static_cast<double>(placed_in_cluster[c]) + 0.5) /
                        static_cast<double>(count);
    ++placed_in_cluster[c];
    const double angle = sector_start[c] + pad +
                         (sector_width[c] - 2.0 * pad) * slot +
                         0.02 * (rng.UniformDouble() - 0.5);
    result.positions[v].x = 0.5 + radius * std::cos(angle);
    result.positions[v].y = 0.5 + radius * std::sin(angle);
  }
  return result;
}

}  // namespace graphscape
