// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// LaNet-vi-style K-core decomposition plot (Fig. 6(f), Fig. 12): vertices
// are placed on concentric rings by core number — the densest cores at
// the center, shell k at radius proportional to (kmax - k) — with each
// shell's connected clusters fanned into angular sectors so they stay
// visually grouped. This is the comparison tool the paper argues against:
// color encodes the shell, but nesting/containment between dense cores
// has no channel, which is exactly what the terrain view adds.
//
// Reuses metrics/kcore.h CoreNumbers (the same field the terrains
// render), so the two views of Fig. 6 are guaranteed to disagree only in
// presentation, never in the underlying decomposition.

#ifndef GRAPHSCAPE_LAYOUT_LANETVI_LAYOUT_H_
#define GRAPHSCAPE_LAYOUT_LANETVI_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "layout/positions.h"

namespace graphscape {

struct LanetViOptions {
  /// Seed for the deterministic in-sector jitter.
  uint64_t seed = 1;
};

struct LanetViLayoutResult {
  Positions positions;            ///< [0, 1]^2, shells centered on (.5, .5)
  std::vector<uint32_t> core_of;  ///< CoreNumbers(g), kept for coloring
  uint32_t max_core = 0;
};

/// Deterministic in (g, options).
LanetViLayoutResult LanetViLayout(const Graph& g,
                                  const LanetViOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_LAYOUT_LANETVI_LAYOUT_H_
