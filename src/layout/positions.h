// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The one vocabulary type every 2D layout shares: a flat array of
// per-vertex coordinates in the unit square [0, 1]^2. Producers
// (layout/spring_layout.h, layout/lanetvi_layout.h,
// layout/openord_layout.h) all emit it; consumers (terrain/svg.h node-link
// drawings) scale it to their viewport. Keeping it a plain vector of PODs
// means layouts can be refined in place and copied with one memcpy-class
// operation.

#ifndef GRAPHSCAPE_LAYOUT_POSITIONS_H_
#define GRAPHSCAPE_LAYOUT_POSITIONS_H_

#include <vector>

namespace graphscape {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// One Point2 per vertex, indexed by VertexId.
using Positions = std::vector<Point2>;

}  // namespace graphscape

#endif  // GRAPHSCAPE_LAYOUT_POSITIONS_H_
