// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// OpenOrd-style multilevel layout (the user-study comparison tool,
// Tables IV–VI / Fig. 12–13): a thin coarsen → layout → refine wrapper
// over the grid-binned spring core (layout/spring_layout.h).
//
// Coarsening collapses a deterministic maximal matching per level until
// the graph is small; the coarsest graph gets a full spring layout
// (coarse_iterations), then each level projects its positions onto the
// finer graph (matched pairs split with a tiny deterministic offset) and
// runs refine_iterations of the same spring core. Multilevel descent is
// what lets a local force model untangle large graphs: the coarse levels
// move whole clusters, the fine levels only polish.

#ifndef GRAPHSCAPE_LAYOUT_OPENORD_LAYOUT_H_
#define GRAPHSCAPE_LAYOUT_OPENORD_LAYOUT_H_

#include <cstdint>

#include "graph/graph.h"
#include "layout/positions.h"

namespace graphscape {

struct OpenOrdOptions {
  /// Spring iterations on the coarsest graph.
  uint32_t coarse_iterations = 100;
  /// Spring iterations after each projection step.
  uint32_t refine_iterations = 30;
  /// Stop coarsening below this many vertices.
  uint32_t min_coarse_vertices = 128;
  /// Hard cap on coarsening levels (matching can stall on star graphs).
  uint32_t max_levels = 12;
  uint64_t seed = 1;
};

/// One position per vertex in [0, 1]^2; deterministic in (g, options).
Positions OpenOrdLayout(const Graph& g, const OpenOrdOptions& options = {});

}  // namespace graphscape

#endif  // GRAPHSCAPE_LAYOUT_OPENORD_LAYOUT_H_
