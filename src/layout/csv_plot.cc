// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "layout/csv_plot.h"

#include <algorithm>
#include <cstdio>
#include <queue>
#include <utility>

#include "common/string_util.h"

namespace graphscape {

CsvPlot BuildCsvPlot(const Graph& g, const std::vector<double>& density) {
  CsvPlot plot;
  const uint32_t n = g.NumVertices();
  if (density.size() != n) return plot;
  plot.order.reserve(n);
  plot.heights.reserve(n);

  // Greedy densest-first expansion: seed at the global densest unvisited
  // vertex, then repeatedly pop the densest frontier vertex — dense
  // subgraphs drain before their sparse surroundings, so each becomes
  // one contiguous hump. (density asc, id desc) in a max-heap makes the
  // order deterministic under ties.
  using Entry = std::pair<double, VertexId>;
  auto less = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(less)> frontier(
      less);
  std::vector<char> seen(n, 0);

  std::vector<VertexId> seeds(n);
  for (VertexId v = 0; v < n; ++v) seeds[v] = v;
  std::sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
    if (density[a] != density[b]) return density[a] > density[b];
    return a < b;
  });

  for (const VertexId seed : seeds) {
    if (seen[seed]) continue;
    seen[seed] = 1;
    frontier.push({density[seed], seed});
    while (!frontier.empty()) {
      const VertexId v = frontier.top().second;
      frontier.pop();
      plot.order.push_back(v);
      plot.heights.push_back(density[v]);
      for (const VertexId u : g.Neighbors(v)) {
        if (!seen[u]) {
          seen[u] = 1;
          frontier.push({density[u], u});
        }
      }
    }
  }

  if (!plot.heights.empty()) {
    const auto [lo, hi] =
        std::minmax_element(plot.heights.begin(), plot.heights.end());
    plot.min_height = *lo;
    plot.max_height = *hi;
  }
  return plot;
}

bool WriteCsvPlotSvg(const CsvPlot& plot, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const double width = 700.0, height = 260.0, margin = 20.0;
  const double plot_w = width - 2.0 * margin;
  const double plot_h = height - 2.0 * margin;
  const size_t n = plot.heights.size();
  const double range = plot.max_height > plot.min_height
                           ? plot.max_height - plot.min_height
                           : 1.0;
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%g\" "
               "height=\"%g\" viewBox=\"0 0 %g %g\">\n",
               width, height, width, height);
  std::fprintf(f, "<rect width=\"%g\" height=\"%g\" fill=\"white\"/>\n",
               width, height);
  if (n > 0) {
    std::string area = StrPrintf("M %.2f %.2f", margin, height - margin);
    for (size_t i = 0; i < n; ++i) {
      const double x =
          margin + plot_w * (n > 1 ? static_cast<double>(i) /
                                         static_cast<double>(n - 1)
                                   : 0.5);
      const double y = height - margin -
                       plot_h * (plot.heights[i] - plot.min_height) / range;
      area += StrPrintf(" L %.2f %.2f", x, y);
    }
    area += StrPrintf(" L %.2f %.2f Z", margin + plot_w, height - margin);
    std::fprintf(f,
                 "<path d=\"%s\" fill=\"#93c5fd\" stroke=\"#1d4ed8\" "
                 "stroke-width=\"1\"/>\n",
                 area.c_str());
  }
  std::fprintf(f,
               "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" "
               "stroke=\"#374151\"/>\n",
               margin, height - margin, width - margin, height - margin);
  std::fprintf(f, "</svg>\n");
  return std::fclose(f) == 0;
}

}  // namespace graphscape
