// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/tree_io.h"

#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace graphscape {
namespace {

constexpr char kMagic[4] = {'G', 'S', 'T', 'A'};

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 doubles expected");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Bounds-checked little-endian reader over the serialized bytes.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data_[pos_++]))
            << shift;
    }
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(data_[pos_++]))
            << shift;
    }
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool ReadBytes(char* out, size_t count) {
    if (pos_ + count > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, count);
    pos_ += count;
    return true;
  }

  size_t Position() const { return pos_; }
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::string> SerializeTreeArtifact(const TreeArtifact& artifact) {
  const SuperTree& tree = artifact.tree;
  const uint32_t n = tree.NumNodes();
  const uint32_t m = tree.NumElements();
  const bool has_field = !artifact.field_values.empty();
  // The write side holds the same contract the read side validates:
  // a field is either absent or exactly one value per element. Checked
  // in every build type — serializing past the vector would emit a
  // corrupt-but-checksummed artifact.
  if (has_field && artifact.field_values.size() != m) {
    return Status::InvalidArgument(StrPrintf(
        "tree_io: field has %zu values for %u elements",
        artifact.field_values.size(), m));
  }

  std::string out;
  out.reserve(32 + artifact.field_name.size() + 16ull * n + 4ull * m +
              (has_field ? 8ull * m : 0));
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kTreeIoVersion);
  AppendU32(&out, n);
  AppendU32(&out, m);
  AppendU32(&out, tree.NumRoots());
  out.push_back(has_field ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(artifact.field_name.size()));
  out.append(artifact.field_name);
  for (uint32_t node = 0; node < n; ++node)
    AppendF64(&out, tree.NodeValues()[node]);
  for (uint32_t node = 0; node < n; ++node)
    AppendU32(&out, tree.NodeParents()[node]);
  for (uint32_t node = 0; node < n; ++node)
    AppendU32(&out, tree.MemberCounts()[node]);
  for (uint32_t e = 0; e < m; ++e) AppendU32(&out, tree.ElementNodes()[e]);
  if (has_field) {
    for (uint32_t e = 0; e < m; ++e)
      AppendF64(&out, artifact.field_values[e]);
  }
  AppendU64(&out, Fnv1a(out.data(), out.size()));
  return out;
}

StatusOr<TreeArtifact> DeserializeTreeArtifact(const std::string& bytes) {
  Reader reader(bytes);
  char magic[4];
  if (!reader.ReadBytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("tree_io: bad magic");
  }
  uint32_t version, n, m, num_roots;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&n) ||
      !reader.ReadU32(&m) || !reader.ReadU32(&num_roots)) {
    return Status::InvalidArgument("tree_io: truncated header");
  }
  if (version != kTreeIoVersion) {
    return Status::InvalidArgument(
        StrPrintf("tree_io: version %u, this reader understands %u",
                  version, kTreeIoVersion));
  }
  char has_field_byte;
  uint32_t name_len;
  if (!reader.ReadBytes(&has_field_byte, 1) || !reader.ReadU32(&name_len)) {
    return Status::InvalidArgument("tree_io: truncated header");
  }
  if (has_field_byte != 0 && has_field_byte != 1) {
    return Status::InvalidArgument("tree_io: bad field flag");
  }
  const bool has_field = has_field_byte == 1;

  // Check the advertised sizes against the actual byte count BEFORE any
  // allocation, so a hostile header can't request gigabytes.
  const uint64_t expected =
      static_cast<uint64_t>(name_len) + 16ull * n + 4ull * m +
      (has_field ? 8ull * m : 0) + 8 /* checksum */;
  if (reader.Remaining() != expected) {
    return Status::InvalidArgument(
        StrPrintf("tree_io: payload is %llu bytes, header promises %llu",
                  static_cast<unsigned long long>(reader.Remaining()),
                  static_cast<unsigned long long>(expected)));
  }

  TreeArtifact artifact;
  artifact.field_name.resize(name_len);
  if (name_len > 0 && !reader.ReadBytes(&artifact.field_name[0], name_len)) {
    return Status::InvalidArgument("tree_io: truncated name");
  }

  std::vector<double> node_values(n);
  std::vector<uint32_t> node_parents(n), member_counts(n), node_of(m);
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.ReadF64(&node_values[i])) {
      return Status::InvalidArgument("tree_io: truncated node values");
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.ReadU32(&node_parents[i])) {
      return Status::InvalidArgument("tree_io: truncated parents");
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.ReadU32(&member_counts[i])) {
      return Status::InvalidArgument("tree_io: truncated member counts");
    }
  }
  for (uint32_t i = 0; i < m; ++i) {
    if (!reader.ReadU32(&node_of[i])) {
      return Status::InvalidArgument("tree_io: truncated element nodes");
    }
  }
  if (has_field) {
    artifact.field_values.resize(m);
    for (uint32_t i = 0; i < m; ++i) {
      if (!reader.ReadF64(&artifact.field_values[i])) {
        return Status::InvalidArgument("tree_io: truncated field values");
      }
    }
  }
  const uint64_t actual_checksum =
      Fnv1a(bytes.data(), reader.Position());
  uint64_t stored_checksum;
  if (!reader.ReadU64(&stored_checksum)) {
    return Status::InvalidArgument("tree_io: truncated checksum");
  }
  if (stored_checksum != actual_checksum) {
    // The layout was intact but the payload bytes are not the ones that
    // were checksummed: stored data came back wrong.
    return Status::DataLoss("tree_io: checksum mismatch");
  }

  // Structural validation: everything SuperTree's from-parts constructor
  // assumes (and TreeMemberIndex relies on).
  uint32_t roots_seen = 0;
  uint64_t members_total = 0;
  for (uint32_t node = 0; node < n; ++node) {
    if (!std::isfinite(node_values[node])) {
      return Status::InvalidArgument("tree_io: non-finite node value");
    }
    if (member_counts[node] == 0) {
      return Status::InvalidArgument("tree_io: empty super node");
    }
    members_total += member_counts[node];
    const uint32_t p = node_parents[node];
    if (p == kInvalidSuperNode) {
      ++roots_seen;
      continue;
    }
    if (p >= node) {
      return Status::InvalidArgument(
          "tree_io: parent does not precede child");
    }
    if (!(node_values[p] < node_values[node])) {
      return Status::InvalidArgument(
          "tree_io: parent value not below child value");
    }
  }
  if (roots_seen != num_roots) {
    return Status::InvalidArgument("tree_io: root count mismatch");
  }
  if (members_total != m) {
    return Status::InvalidArgument(
        "tree_io: member counts do not partition the elements");
  }
  std::vector<uint32_t> seen(n, 0);
  for (uint32_t e = 0; e < m; ++e) {
    if (node_of[e] >= n) {
      return Status::InvalidArgument("tree_io: element node out of range");
    }
    ++seen[node_of[e]];
  }
  for (uint32_t node = 0; node < n; ++node) {
    if (seen[node] != member_counts[node]) {
      return Status::InvalidArgument(
          "tree_io: node_of disagrees with member counts");
    }
  }

  artifact.tree =
      SuperTree(std::move(node_values), std::move(node_parents),
                std::move(member_counts), std::move(node_of), num_roots);
  return artifact;
}

Status SaveTreeArtifact(const TreeArtifact& artifact,
                        const std::string& path) {
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  if (!bytes.ok()) return bytes.status();
  return WriteFileBytesAtomic(path, bytes.value());
}

StatusOr<TreeArtifact> LoadTreeArtifact(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeTreeArtifact(bytes.value());
}

uint64_t Fnv1aChecksum(const std::string& bytes) {
  return Fnv1a(bytes.data(), bytes.size());
}

}  // namespace graphscape
