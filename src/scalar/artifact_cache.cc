// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/artifact_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/string_util.h"

namespace graphscape {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kEntriesDir[] = "entries";
constexpr char kQuarantineDir[] = "quarantine";
constexpr char kEntrySuffix[] = ".gsta";
constexpr char kTempSuffix[] = ".tmp";

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool IsUnreservedKeyChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ArtifactCache::EncodeKey(const std::string& canonical) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(canonical.size());
  for (const char c : canonical) {
    if (IsUnreservedKeyChar(c)) {
      out.push_back(c);
    } else {
      const unsigned char u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    }
  }
  return out;
}

StatusOr<std::string> ArtifactCache::DecodeKey(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '%') {
      if (i + 2 >= encoded.size()) {
        return Status::InvalidArgument("cache: truncated %-escape in '" +
                                       encoded + "'");
      }
      const int hi = HexValue(encoded[i + 1]);
      const int lo = HexValue(encoded[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("cache: bad %-escape in '" + encoded +
                                       "'");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (IsUnreservedKeyChar(c)) {
      out.push_back(c);
    } else {
      return Status::InvalidArgument("cache: unencoded byte in '" + encoded +
                                     "'");
    }
  }
  return out;
}

std::string ArtifactCache::EntryPath(const std::string& canonical) const {
  return root_ + "/" + kEntriesDir + "/" + EncodeKey(canonical) +
         kEntrySuffix;
}

StatusOr<ArtifactCache> ArtifactCache::Open(const std::string& root,
                                            const Options& options) {
  ArtifactCache cache(root, options);
  for (const char* dir : {"", kEntriesDir, kQuarantineDir}) {
    const Status made =
        MakeDirs(dir[0] == '\0' ? root : root + "/" + dir);
    if (!made.ok()) return made;
  }
  // Crash recovery step 1: any .tmp anywhere is an interrupted atomic
  // write whose rename never happened — the content is unreferenced and
  // possibly torn, so it is swept, not salvaged.
  for (const std::string& dir : {root, root + "/" + kEntriesDir}) {
    const Status swept = cache.SweepTemps(dir, &cache.stats_.temps_swept);
    if (!swept.ok()) return swept;
  }
  const Status loaded = cache.LoadOrRecoverManifest();
  if (!loaded.ok()) return loaded;
  return cache;
}

Status ArtifactCache::SweepTemps(const std::string& dir, uint64_t* removed) {
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : names.value()) {
    if (!EndsWith(name, kTempSuffix)) continue;
    const Status gone = RemoveFile(dir + "/" + name);
    if (!gone.ok()) return gone;
    ++*removed;
  }
  return Status::Ok();
}

StatusOr<ArtifactCache::ManifestEntry> ArtifactCache::ValidateEntryFile(
    const std::string& canonical) {
  const std::string path = EntryPath(canonical);
  StatusOr<std::string> bytes = RetryWithBackoffOr<std::string>(
      options_.retry, [&path]() { return ReadFileBytes(path); });
  if (!bytes.ok()) return bytes.status();
  const StatusOr<TreeArtifact> parsed =
      DeserializeTreeArtifact(bytes.value());
  if (!parsed.ok()) {
    return Status::DataLoss(StrPrintf("cache: entry '%s' invalid: %s",
                                      canonical.c_str(),
                                      parsed.status().ToString().c_str()));
  }
  ManifestEntry entry;
  entry.size = bytes.value().size();
  entry.checksum = Fnv1aChecksum(bytes.value());
  return entry;
}

void ArtifactCache::QuarantineEntry(const std::string& canonical) {
  const std::string path = EntryPath(canonical);
  const std::string base =
      root_ + "/" + kQuarantineDir + "/" + EncodeKey(canonical);
  std::string target;
  for (uint32_t n = 0;; ++n) {
    target = StrPrintf("%s.%u%s", base.c_str(), n, kEntrySuffix);
    if (!PathExists(target)) break;
  }
  // Best effort: quarantine preserves the corrupt bytes for postmortem,
  // but a failed move must not keep the entry reachable.
  if (!RenameFile(path, target).ok()) (void)RemoveFile(path);
  entries_.erase(canonical);
  ++stats_.corrupt_quarantined;
}

Status ArtifactCache::LoadOrRecoverManifest() {
  const std::string manifest_path = root_ + "/" + kManifestName;
  const StatusOr<std::string> raw = ReadFileBytes(manifest_path);
  bool manifest_ok = false;
  if (raw.ok()) {
    // Parse: "GSCM <version>\n" + entry lines + "sum <fnv-hex>\n". Any
    // deviation (including a checksum mismatch) discards the manifest
    // and falls through to recovery-by-scan — the entry files are
    // individually self-validating, so nothing is lost.
    manifest_ok = true;
    std::map<std::string, ManifestEntry> parsed;
    const std::string& text = raw.value();
    size_t pos = 0;
    bool saw_header = false, saw_sum = false;
    while (pos < text.size() && manifest_ok) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        manifest_ok = false;
        break;
      }
      const std::string line = text.substr(pos, eol - pos);
      if (!saw_header) {
        manifest_ok = line == StrPrintf("GSCM %u", kArtifactCacheVersion);
        saw_header = true;
      } else if (line.compare(0, 4, "sum ") == 0) {
        const uint64_t stored =
            std::strtoull(line.c_str() + 4, nullptr, 16);
        const uint64_t actual = Fnv1aChecksum(text.substr(0, pos));
        manifest_ok = stored == actual && eol + 1 == text.size();
        saw_sum = true;
      } else if (line.compare(0, 6, "entry ") == 0) {
        char enc[512];
        unsigned long long size = 0, checksum = 0;
        if (std::sscanf(line.c_str(), "entry %511s %llu %llx", enc, &size,
                        &checksum) != 3) {
          manifest_ok = false;
          break;
        }
        StatusOr<std::string> key = DecodeKey(enc);
        if (!key.ok()) {
          manifest_ok = false;
          break;
        }
        parsed[key.value()] = ManifestEntry{size, checksum};
      } else {
        manifest_ok = false;
        break;
      }
      pos = eol + 1;
    }
    manifest_ok = manifest_ok && saw_header && saw_sum;
    if (manifest_ok) entries_ = std::move(parsed);
  }
  if (!manifest_ok && (raw.ok() || raw.status().code() != StatusCode::kNotFound)) {
    // Present but unreadable/corrupt counts as a recovery; merely absent
    // with zero entries is just a fresh cache.
    stats_.manifest_recovered = true;
  }

  // Reconcile against the entry files on disk: they are the source of
  // truth (each is internally checksummed); the manifest is an index.
  bool changed = !manifest_ok && !entries_.empty();
  if (!manifest_ok) entries_.clear();
  StatusOr<std::vector<std::string>> names =
      ListDir(root_ + "/" + kEntriesDir);
  if (!names.ok()) return names.status();
  std::map<std::string, ManifestEntry> on_disk_rows;
  for (const std::string& name : names.value()) {
    if (!EndsWith(name, kEntrySuffix)) continue;
    const std::string enc =
        name.substr(0, name.size() - std::strlen(kEntrySuffix));
    StatusOr<std::string> key = DecodeKey(enc);
    if (!key.ok()) continue;  // foreign file; leave it alone
    const std::string canonical = key.value();
    const auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      // Fast path: size agrees with the manifest row — full checksum
      // verification happens on every Get anyway.
      StatusOr<uint64_t> size = FileSizeBytes(EntryPath(canonical));
      if (size.ok() && size.value() == it->second.size) continue;
    }
    // Stray or suspicious: validate completely, then adopt or
    // quarantine. A crash between entry rename and manifest commit
    // lands here and is healed.
    StatusOr<ManifestEntry> row = ValidateEntryFile(canonical);
    if (row.ok()) {
      entries_[canonical] = row.value();
      if (!manifest_ok) {
        stats_.manifest_recovered = true;
      } else {
        ++stats_.strays_adopted;
      }
      changed = true;
    } else if (row.status().code() == StatusCode::kDataLoss) {
      QuarantineEntry(canonical);
      changed = true;
    } else {
      return row.status();
    }
  }
  // Manifest rows whose files vanished are dropped.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (PathExists(EntryPath(it->first))) {
      ++it;
    } else {
      it = entries_.erase(it);
      changed = true;
    }
  }
  if (changed || !manifest_ok) return WriteManifest();
  return Status::Ok();
}

Status ArtifactCache::WriteManifest() {
  std::string text = StrPrintf("GSCM %u\n", kArtifactCacheVersion);
  for (const auto& entry : entries_) {
    text += StrPrintf("entry %s %llu %016llx\n",
                      EncodeKey(entry.first).c_str(),
                      static_cast<unsigned long long>(entry.second.size),
                      static_cast<unsigned long long>(entry.second.checksum));
  }
  text += StrPrintf("sum %016llx\n",
                    static_cast<unsigned long long>(Fnv1aChecksum(text)));
  const std::string path = root_ + "/" + kManifestName;
  return RetryWithBackoff(options_.retry, [&]() {
    if (failpoint::Fire("cache/manifest_write")) {
      return failpoint::InjectedFault("cache/manifest_write");
    }
    return WriteFileBytesAtomic(path, text);
  });
}

Status ArtifactCache::Put(const ArtifactKey& key,
                          const TreeArtifact& artifact) {
  const std::string canonical = key.Canonical();
  StatusOr<std::string> bytes = SerializeTreeArtifact(artifact);
  if (!bytes.ok()) return bytes.status();

  // cache/torn_entry models a write the disk acknowledged but never
  // completed (half the payload lands, rename still happens): the
  // manifest keeps the INTENDED checksum, so the tear is caught — and
  // quarantined — on the next load.
  std::string disk_bytes = bytes.value();
  if (failpoint::Fire("cache/torn_entry")) {
    disk_bytes.resize(disk_bytes.size() / 2);
  }

  const std::string path = EntryPath(canonical);
  const std::string tmp = path + kTempSuffix;
  Status status = RetryWithBackoff(options_.retry, [&]() {
    return WriteFileBytes(tmp, disk_bytes, /*sync=*/true);
  });
  if (!status.ok()) {
    (void)RemoveFile(tmp);
    return status;
  }
  // cache/crash_after_temp: the process "dies" after the temp write,
  // before the rename — the stray .tmp must be swept at the next Open
  // and the previous entry must still be served.
  if (failpoint::Fire("cache/crash_after_temp")) {
    return failpoint::InjectedFault("cache/crash_after_temp");
  }
  status = RetryWithBackoff(options_.retry,
                            [&]() { return RenameFile(tmp, path); });
  if (!status.ok()) {
    (void)RemoveFile(tmp);
    return status;
  }
  status = SyncDir(root_ + "/" + kEntriesDir);
  if (!status.ok()) return status;
  // cache/manifest_crash: entry durably renamed, manifest commit never
  // happens — the next Open adopts the stray entry.
  if (failpoint::Fire("cache/manifest_crash")) {
    return failpoint::InjectedFault("cache/manifest_crash");
  }
  entries_[canonical] =
      ManifestEntry{bytes.value().size(), Fnv1aChecksum(bytes.value())};
  return WriteManifest();
}

StatusOr<TreeArtifact> ArtifactCache::Get(const ArtifactKey& key) {
  const std::string canonical = key.Canonical();
  const auto it = entries_.find(canonical);
  if (it == entries_.end()) {
    ++stats_.misses;
    return Status::NotFound("cache: no entry for '" + canonical + "'");
  }
  const std::string path = EntryPath(canonical);
  StatusOr<std::string> bytes = RetryWithBackoffOr<std::string>(
      options_.retry, [&path]() { return ReadFileBytes(path); });
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      // The file vanished behind the manifest's back: drop the row so
      // GetOrBuild can rebuild instead of failing forever.
      entries_.erase(canonical);
      (void)WriteManifest();
      ++stats_.misses;
    }
    return bytes.status();
  }
  std::string data = std::move(bytes).value();
  // cache/load_corrupt: the read "succeeded" with one flipped bit, as a
  // failing disk would. Must be caught by the manifest checksum.
  if (failpoint::Fire("cache/load_corrupt") && !data.empty()) {
    data[data.size() / 3] = static_cast<char>(data[data.size() / 3] ^ 0x10);
  }
  if (data.size() != it->second.size ||
      Fnv1aChecksum(data) != it->second.checksum) {
    QuarantineEntry(canonical);
    (void)WriteManifest();
    return Status::DataLoss(
        "cache: entry '" + canonical +
        "' fails its manifest checksum; quarantined");
  }
  StatusOr<TreeArtifact> parsed = DeserializeTreeArtifact(data);
  if (!parsed.ok()) {
    QuarantineEntry(canonical);
    (void)WriteManifest();
    return Status::DataLoss(StrPrintf(
        "cache: entry '%s' quarantined: %s", canonical.c_str(),
        parsed.status().ToString().c_str()));
  }
  ++stats_.hits;
  return parsed;
}

StatusOr<TreeArtifact> ArtifactCache::GetOrBuild(const ArtifactKey& key,
                                                 const Builder& builder) {
  StatusOr<TreeArtifact> cached = Get(key);
  if (cached.ok()) return cached;
  const StatusCode code = cached.status().code();
  if (code != StatusCode::kNotFound && code != StatusCode::kDataLoss) {
    return cached.status();  // transient I/O already outlasted retry
  }
  StatusOr<TreeArtifact> built = builder();
  if (!built.ok()) return built.status();
  ++stats_.rebuilds;
  const Status stored = Put(key, built.value());
  if (!stored.ok()) {
    // Serving beats caching: the artifact is good even if the store
    // failed; the next GetOrBuild will try to store again.
    ++stats_.put_failures;
  }
  return built;
}

bool ArtifactCache::Contains(const ArtifactKey& key) const {
  return entries_.count(key.Canonical()) != 0;
}

std::vector<std::string> ArtifactCache::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& entry : entries_) keys.push_back(entry.first);
  return keys;
}

Status ArtifactCache::Remove(const ArtifactKey& key) {
  const std::string canonical = key.Canonical();
  if (entries_.erase(canonical) == 0) return Status::Ok();
  const Status gone = RemoveFile(EntryPath(canonical));
  if (!gone.ok()) return gone;
  return WriteManifest();
}

StatusOr<ScrubReport> ArtifactCache::Scrub() {
  ScrubReport report;
  for (const std::string& dir : {root_, root_ + "/" + kEntriesDir}) {
    const Status swept = SweepTemps(dir, &report.temps_removed);
    if (!swept.ok()) return swept;
  }
  bool changed = report.temps_removed != 0;

  // Pass 1: every manifest row re-verified byte-for-byte.
  std::vector<std::string> keys = Keys();
  for (const std::string& canonical : keys) {
    ++report.entries_checked;
    const ManifestEntry expected = entries_[canonical];
    StatusOr<ManifestEntry> actual = ValidateEntryFile(canonical);
    if (actual.ok()) {
      if (actual.value().size == expected.size &&
          actual.value().checksum == expected.checksum) {
        ++report.entries_ok;
      } else {
        // The file is a valid artifact but not the one the manifest
        // promised (torn write that half-landed, then got repaired out
        // of band). The file is self-validating; trust it.
        entries_[canonical] = actual.value();
        report.adopted.push_back(canonical);
        changed = true;
      }
    } else if (actual.status().code() == StatusCode::kDataLoss) {
      QuarantineEntry(canonical);
      report.quarantined.push_back(canonical);
      changed = true;
    } else if (actual.status().code() == StatusCode::kNotFound) {
      entries_.erase(canonical);
      ++report.missing_dropped;
      changed = true;
    } else {
      return actual.status();
    }
  }

  // Pass 2: entry files the manifest doesn't know about.
  StatusOr<std::vector<std::string>> names =
      ListDir(root_ + "/" + kEntriesDir);
  if (!names.ok()) return names.status();
  for (const std::string& name : names.value()) {
    if (!EndsWith(name, kEntrySuffix)) continue;
    const std::string enc =
        name.substr(0, name.size() - std::strlen(kEntrySuffix));
    StatusOr<std::string> key = DecodeKey(enc);
    if (!key.ok() || entries_.count(key.value()) != 0) continue;
    ++report.entries_checked;
    StatusOr<ManifestEntry> row = ValidateEntryFile(key.value());
    if (row.ok()) {
      entries_[key.value()] = row.value();
      report.adopted.push_back(key.value());
      ++stats_.strays_adopted;
    } else if (row.status().code() == StatusCode::kDataLoss) {
      QuarantineEntry(key.value());
      report.quarantined.push_back(key.value());
    } else {
      return row.status();
    }
    changed = true;
  }

  if (changed) {
    const Status committed = WriteManifest();
    if (!committed.ok()) return committed;
  }
  return report;
}

}  // namespace graphscape
