// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Versioned, deterministic binary (de)serialization of super trees and
// their fields — the artifact format CI and the figure pipeline exchange
// (a built tree is the expensive part; terrains and queries re-derive
// from it). Design constraints, in order:
//
//  * Deterministic: the same SuperTree serializes to the same bytes on
//    every platform and compiler — fixed little-endian encoding, no
//    padding, doubles as IEEE-754 bit patterns. CI pins this by
//    serializing on gcc and re-serializing on clang, byte-identical.
//  * Self-validating: deserialization trusts nothing. Magic + version
//    up front, an FNV-1a checksum at the end, and every structural
//    invariant of the contraction (parents precede children, values
//    strictly decrease toward the root, member counts partition the
//    elements, node_of agrees with member_counts) is checked before a
//    SuperTree is constructed — a corrupt or adversarial file yields
//    InvalidArgument, never a broken tree.
//  * Versioned: kTreeIoVersion bumps on any layout change; old readers
//    reject newer files instead of misreading them.
//
// Layout (version 1), all integers little-endian:
//   "GSTA" | u32 version | u32 num_nodes | u32 num_elements |
//   u32 num_roots | u8 has_field | u32 name_len | name bytes |
//   f64 node_values[num_nodes] | u32 node_parents[num_nodes] |
//   u32 member_counts[num_nodes] | u32 node_of[num_elements] |
//   f64 field_values[num_elements if has_field] | u64 fnv1a(payload)

#ifndef GRAPHSCAPE_SCALAR_TREE_IO_H_
#define GRAPHSCAPE_SCALAR_TREE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/status.h"
#include "scalar/super_tree.h"

namespace graphscape {

inline constexpr uint32_t kTreeIoVersion = 1;

/// A super tree plus (optionally) the element field it was built from —
/// vertex values for vertex trees, edge values for edge trees.
/// field_values is either empty or exactly NumElements() long.
struct TreeArtifact {
  SuperTree tree;
  std::string field_name;
  std::vector<double> field_values;
};

/// The artifact as bytes (layout above). Deterministic: equal artifacts
/// produce equal strings everywhere. A non-empty field of the wrong
/// length is InvalidArgument in every build type — never an exception,
/// and never a checksummed-but-corrupt artifact.
StatusOr<std::string> SerializeTreeArtifact(const TreeArtifact& artifact);

/// Parses and fully validates. Hostile bytes always come back as a
/// structured Status, never an exception or a broken tree:
/// InvalidArgument on bad magic, newer version, truncation, or any
/// violated tree invariant; DataLoss when the layout parses but the
/// checksum disagrees (bytes were stored and came back wrong — the
/// cache's quarantine-and-rebuild trigger).
StatusOr<TreeArtifact> DeserializeTreeArtifact(const std::string& bytes);

/// Serialize to / parse from a file. SaveTreeArtifact is crash-safe:
/// bytes go through common/fs.h's WriteFileBytesAtomic (temp + fsync +
/// rename + dir fsync), so `path` is only ever absent, the old version,
/// or the complete new version. File errors keep the fs layer's codes:
/// NotFound for a missing file, Unavailable for transient I/O (the
/// retryable class). ReadFileBytes — the read half, which callers like
/// tools/tree_io_check.cc use to byte-compare artifacts — now lives in
/// common/fs.h, re-exported via the include above.
Status SaveTreeArtifact(const TreeArtifact& artifact,
                        const std::string& path);
StatusOr<TreeArtifact> LoadTreeArtifact(const std::string& path);

/// FNV-1a over `bytes` — the same hash the artifact trailer embeds,
/// exposed so the artifact cache's manifest rows and the recovery tests
/// checksum entry files identically.
uint64_t Fnv1aChecksum(const std::string& bytes);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_TREE_IO_H_
