// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/tree_queries.h"

#include <algorithm>

namespace graphscape {

TreeMemberIndex::TreeMemberIndex(const SuperTree& tree) {
  const uint32_t n = tree.NumNodes();
  const uint32_t m = tree.NumElements();

  // Children in CSR form via one counting sort over the parent array.
  // Kept as members: Children() hands the terrain layout its recursion.
  child_offsets_.assign(n + 1, 0);
  for (uint32_t node = 0; node < n; ++node) {
    const uint32_t p = tree.Parent(node);
    if (p != kNoParent) ++child_offsets_[p + 1];
  }
  for (uint32_t i = 0; i < n; ++i) child_offsets_[i + 1] += child_offsets_[i];
  children_.resize(child_offsets_[n]);
  {
    std::vector<uint32_t> cursor(child_offsets_.begin(),
                                 child_offsets_.end() - 1);
    for (uint32_t node = 0; node < n; ++node) {
      const uint32_t p = tree.Parent(node);
      if (p != kNoParent) children_[cursor[p]++] = node;
    }
  }

  // Subtree node counts without DFS state: Parent(node) < node, so one
  // descending pass accumulates children before their parents are read.
  std::vector<uint32_t> subtree_nodes(n, 1);
  subtree_max_.resize(n);
  for (uint32_t node = 0; node < n; ++node)
    subtree_max_[node] = tree.Value(node);
  for (uint32_t node = n; node-- > 0;) {
    const uint32_t p = tree.Parent(node);
    if (p == kNoParent) continue;
    subtree_nodes[p] += subtree_nodes[node];
    subtree_max_[p] = std::max(subtree_max_[p], subtree_max_[node]);
  }

  // Preorder (Euler) positions: every subtree becomes one contiguous run
  // [euler_pos_, subtree_end_). Roots in ascending id order, children in
  // ascending id order (the CSR fill above emits them sorted).
  euler_pos_.resize(n);
  subtree_end_.resize(n);
  std::vector<uint32_t> node_at_pos(n);
  std::vector<uint32_t> stack;
  stack.reserve(n);  // keeps the build's allocation count size-independent
  uint32_t next_pos = 0;
  for (uint32_t root = n; root-- > 0;) {
    if (tree.Parent(root) == kNoParent) stack.push_back(root);
  }
  while (!stack.empty()) {
    const uint32_t node = stack.back();
    stack.pop_back();
    euler_pos_[node] = next_pos;
    subtree_end_[node] = next_pos + subtree_nodes[node];
    node_at_pos[next_pos] = node;
    ++next_pos;
    const uint32_t begin = child_offsets_[node];
    const uint32_t end = child_offsets_[node + 1];
    for (uint32_t c = end; c-- > begin;) stack.push_back(children_[c]);
  }

  // Member CSR over Euler positions; scattering elements in ascending id
  // order leaves every per-node slice sorted.
  member_offsets_.assign(n + 1, 0);
  for (uint32_t pos = 0; pos < n; ++pos)
    member_offsets_[pos + 1] = tree.MemberCount(node_at_pos[pos]);
  for (uint32_t i = 0; i < n; ++i)
    member_offsets_[i + 1] += member_offsets_[i];
  members_.resize(m);
  std::vector<uint32_t> cursor(member_offsets_.begin(),
                               member_offsets_.end() - 1);
  for (uint32_t e = 0; e < m; ++e)
    members_[cursor[euler_pos_[tree.NodeOf(e)]]++] = e;
}

std::vector<Peak> PeaksAtLevel(const SuperTree& tree, double level) {
  const TreeMemberIndex& index = tree.MemberIndex();
  std::vector<Peak> peaks;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    if (tree.Value(node) < level) continue;
    const uint32_t p = tree.Parent(node);
    if (p != kNoParent && tree.Value(p) >= level) continue;
    peaks.push_back(Peak{node, index.SubtreeMemberCount(node),
                         index.SubtreeMaxValue(node)});
  }
  std::sort(peaks.begin(), peaks.end(), [](const Peak& a, const Peak& b) {
    if (a.max_scalar != b.max_scalar) return a.max_scalar > b.max_scalar;
    if (a.member_count != b.member_count)
      return a.member_count > b.member_count;
    return a.super_node < b.super_node;
  });
  return peaks;
}

uint32_t CountComponentsAtLevel(const SuperTree& tree, double level) {
  uint32_t count = 0;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    if (tree.Value(node) < level) continue;
    const uint32_t p = tree.Parent(node);
    if (p == kNoParent || tree.Value(p) < level) ++count;
  }
  return count;
}

std::vector<Peak> TopPeaks(const SuperTree& tree, uint32_t k) {
  const uint32_t n = tree.NumNodes();
  std::vector<char> has_child(n, 0);
  for (uint32_t node = 0; node < n; ++node) {
    const uint32_t p = tree.Parent(node);
    if (p != kNoParent) has_child[p] = 1;
  }
  std::vector<Peak> leaves;
  for (uint32_t node = 0; node < n; ++node) {
    if (has_child[node]) continue;
    leaves.push_back(Peak{node, tree.MemberCount(node), tree.Value(node)});
  }
  const size_t keep = std::min<size_t>(k, leaves.size());
  std::partial_sort(leaves.begin(), leaves.begin() + keep, leaves.end(),
                    [](const Peak& a, const Peak& b) {
                      if (a.max_scalar != b.max_scalar)
                        return a.max_scalar > b.max_scalar;
                      return a.super_node < b.super_node;
                    });
  leaves.resize(keep);
  return leaves;
}

}  // namespace graphscape
