// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

// Centered two-pass Pearson over an index window; the shared kernel of
// the global and the per-neighborhood paths.
template <typename IndexRange>
double PearsonOver(const IndexRange& indices, uint32_t count,
                   const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (count < 3) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (const uint32_t i : indices) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= count;
  mean_b /= count;
  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  for (const uint32_t i : indices) {
    const double da = a[i] - mean_a, db = b[i] - mean_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
  }
  const double denom = std::sqrt(var_a * var_b);
  if (!(denom > 0.0)) return 0.0;  // constant window: neutral
  return cov / denom;
}

// All indices 0..n-1 without materializing them.
struct Iota {
  uint32_t n;
  struct It {
    uint32_t i;
    uint32_t operator*() const { return i; }
    It& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const It& o) const { return i != o.i; }
  };
  It begin() const { return It{0}; }
  It end() const { return It{n}; }
};

// The closed neighborhood {v} ∪ N(v) as an index range over the CSR run.
struct ClosedNeighborhood {
  const Graph* g;
  VertexId v;
  struct It {
    const VertexId* p;
    const VertexId* last;
    VertexId self;
    bool at_self;
    uint32_t operator*() const { return at_self ? self : *p; }
    It& operator++() {
      if (at_self) {
        at_self = false;
      } else {
        ++p;
      }
      return *this;
    }
    bool operator!=(const It& o) const {
      return at_self != o.at_self || p != o.p;
    }
  };
  It begin() const {
    const Graph::NeighborRange r = g->Neighbors(v);
    return It{r.begin(), r.end(), v, true};
  }
  It end() const {
    const Graph::NeighborRange r = g->Neighbors(v);
    return It{r.end(), r.end(), v, false};
  }
};

// Average-rank transform (ties share the mean of their rank run).
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const uint32_t n = static_cast<uint32_t>(values.size());
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&values](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n);
  uint32_t i = 0;
  while (i < n) {
    uint32_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = 0.5 * (i + j);
    for (uint32_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  return PearsonOver(Iota{static_cast<uint32_t>(a.size())},
                     static_cast<uint32_t>(a.size()), a, b);
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  assert(a.size() == b.size());
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

std::vector<double> LocalCorrelationIndices(const Graph& g,
                                            const VertexScalarField& a,
                                            const VertexScalarField& b) {
  assert(a.Size() == g.NumVertices() && b.Size() == g.NumVertices());
  std::vector<double> lci(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    lci[v] = PearsonOver(ClosedNeighborhood{&g, v}, g.Degree(v) + 1,
                         a.Values(), b.Values());
  }
  return lci;
}

double Gci(const Graph& g, const VertexScalarField& a,
           const VertexScalarField& b) {
  if (g.NumVertices() == 0) return 0.0;
  const std::vector<double> lci = LocalCorrelationIndices(g, a, b);
  double sum = 0.0;
  for (const double v : lci) sum += v;
  return sum / g.NumVertices();
}

VertexScalarField OutlierScoreField(const Graph& g,
                                    const VertexScalarField& a,
                                    const VertexScalarField& b) {
  std::vector<double> values = LocalCorrelationIndices(g, a, b);
  for (double& v : values) v = -v;
  return VertexScalarField("-LCI(" + a.Name() + "," + b.Name() + ")",
                           std::move(values));
}

double TopPeakJaccard(const SuperTree& a, const SuperTree& b, uint32_t k) {
  // Checked in every build type: the two trees come from independent
  // builds, and mixing element spaces (|V| vs |E|) would index the
  // masks out of bounds, not merely return a wrong number.
  if (a.NumElements() != b.NumElements()) {
    throw std::invalid_argument(
        "TopPeakJaccard: trees contract different element spaces (" +
        std::to_string(a.NumElements()) + " vs " +
        std::to_string(b.NumElements()) +
        "); lift edge fields to vertices first");
  }
  const uint32_t m = a.NumElements();
  std::vector<char> in_a(m, 0), in_b(m, 0);
  for (const Peak& peak : TopPeaks(a, k)) {
    for (const uint32_t e : a.Members(peak.super_node)) in_a[e] = 1;
  }
  for (const Peak& peak : TopPeaks(b, k)) {
    for (const uint32_t e : b.Members(peak.super_node)) in_b[e] = 1;
  }
  uint32_t both = 0, either = 0;
  for (uint32_t e = 0; e < m; ++e) {
    both += static_cast<uint32_t>(in_a[e] && in_b[e]);
    either += static_cast<uint32_t>(in_a[e] || in_b[e]);
  }
  if (either == 0) return 1.0;
  return static_cast<double>(both) / either;
}

VertexScalarField LiftEdgeFieldToVertices(const Graph& g,
                                          const EdgeScalarField& field) {
  assert(field.Size() == g.NumEdges());
  std::vector<double> values(g.NumVertices(), field.MinValue());
  uint32_t e = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (u >= v) continue;  // EdgeList order mints ids on u < v slots
      values[u] = std::max(values[u], field[e]);
      values[v] = std::max(values[v], field[e]);
      ++e;
    }
  }
  return VertexScalarField("lift(" + field.Name() + ")", std::move(values));
}

}  // namespace graphscape
