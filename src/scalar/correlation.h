// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Field-vs-field comparison (paper §III-C): how similarly do two scalar
// fields rank the same graph? Three complementary lenses:
//
//  * Global, value-space: Pearson / Spearman over the shared element
//    support (every vertex, or every edge — or an edge field lifted to
//    vertices for KC-vs-KT style pairs).
//  * Local, neighborhood-space: the Local Correlation Index LCI(v) —
//    Pearson over the closed neighborhood {v} ∪ N(v) — and its mean, the
//    Graph Correlation Index GCI (the paper's 0.89 for degree vs
//    betweenness on Astro). Vertices whose neighborhoods ANTI-correlate
//    while the GCI is strongly positive are the interesting ones — the
//    paper's bridge vertices — so OutlierScoreField turns -LCI into a
//    field whose terrain peaks are exactly those outliers.
//  * Structural, tree-space: Jaccard overlap of the top-k peak member
//    sets of two super trees — do the fields crown the same dense
//    structures?
//
// Conventions: a correlation over fewer than three points, or over a
// window where either field is constant, is defined as 0 (neutral) —
// degenerate neighborhoods carry no evidence either way.

#ifndef GRAPHSCAPE_SCALAR_CORRELATION_H_
#define GRAPHSCAPE_SCALAR_CORRELATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_field.h"
#include "scalar/super_tree.h"

namespace graphscape {

/// Pearson correlation of two equal-length samples; 0 if fewer than 3
/// points or either sample is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation (average ranks on ties), same conventions.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// LCI(v): Pearson over the closed neighborhood {v} ∪ N(v). One O(deg)
/// scan per vertex, no allocation in the loop.
std::vector<double> LocalCorrelationIndices(const Graph& g,
                                            const VertexScalarField& a,
                                            const VertexScalarField& b);

/// GCI: the mean LCI over all vertices (paper §III-C).
double Gci(const Graph& g, const VertexScalarField& a,
           const VertexScalarField& b);

/// -LCI as a field: peaks of its terrain are the vertices whose
/// neighborhoods disagree hardest with the global trend.
VertexScalarField OutlierScoreField(const Graph& g,
                                    const VertexScalarField& a,
                                    const VertexScalarField& b);

/// Jaccard overlap |A ∩ B| / |A ∪ B| of the element sets claimed by the
/// two trees' TopPeaks(k) (scalar/tree_queries.h). Both trees must
/// contract the same element space (same NumElements()) — comparing a
/// vertex tree against an edge tree requires LiftEdgeFieldToVertices
/// first, and a mismatch throws std::invalid_argument in every build
/// type (element ids would index the wrong space). 1.0 when both unions
/// are empty.
double TopPeakJaccard(const SuperTree& a, const SuperTree& b, uint32_t k);

/// Lifts an edge field to vertices by taking each vertex's maximum
/// incident value (edge-free vertices take the field minimum), giving
/// KC-vs-KT pairs a shared vertex support.
VertexScalarField LiftEdgeFieldToVertices(const Graph& g,
                                          const EdgeScalarField& field);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_CORRELATION_H_
