// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/scalar_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace graphscape {
namespace {

// Path-halving find: every probe shortcuts grandparent links, so repeated
// finds flatten the forest without a second pass. No recursion, no stack.
inline uint32_t Find(uint32_t* uf, uint32_t x) {
  while (uf[x] != x) {
    uf[x] = uf[uf[x]];
    x = uf[x];
  }
  return x;
}

}  // namespace

ScalarTree BuildVertexScalarTree(const Graph& g,
                                 const VertexScalarField& field) {
  const uint32_t n = g.NumVertices();
  assert(field.Size() == n);
  const std::vector<double>& values = field.Values();

  // The single sort: vertices by (value, id). rank[v] is v's position in
  // that order; comparing ranks is the total order used everywhere below.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&values](VertexId a, VertexId b) {
    const double fa = values[a], fb = values[b];
    return fa < fb || (fa == fb && a < b);
  });
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;

  // Union-find state + the tree arena, all sized up front. `head[r]` is the
  // highest-rank vertex swept so far in the component rooted at r — the
  // node the next merge will attach to.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0u);
  std::vector<uint32_t> comp_size(n, 1);
  std::vector<VertexId> head(n);
  std::iota(head.begin(), head.end(), 0u);
  std::vector<VertexId> parents(n, kInvalidVertex);

  // Sweep. For w at rank k, every CSR neighbor u with rank[u] < k is exactly
  // an edge whose activation key max(rank(u), rank(w)) == k; visiting w in
  // rank order therefore processes all m edges in nondecreasing key order
  // with no materialized edge array. This loop performs zero heap
  // allocations.
  uint32_t* const uf_data = uf.data();
  uint32_t* const size_data = comp_size.data();
  VertexId* const head_data = head.data();
  VertexId* const parent_data = parents.data();
  const uint32_t* const rank_data = rank.data();
  for (uint32_t k = 0; k < n; ++k) {
    const VertexId w = order[k];
    uint32_t rw = Find(uf_data, w);
    for (const VertexId u : g.Neighbors(w)) {
      if (rank_data[u] >= k) continue;  // activates later, when u is higher
      const uint32_t ru = Find(uf_data, u);
      if (ru == rw) continue;
      // The lower component's head merges into the sweep vertex w.
      parent_data[head_data[ru]] = w;
      // Union by size; the surviving root's head becomes w.
      uint32_t big = rw, small = ru;
      if (size_data[big] < size_data[small]) std::swap(big, small);
      uf_data[small] = big;
      size_data[big] += size_data[small];
      head_data[big] = w;
      rw = big;
    }
  }

  uint32_t num_roots = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (parents[v] == kInvalidVertex) ++num_roots;
  }

  return ScalarTree(std::move(parents), std::vector<double>(values),
                    std::move(order), num_roots);
}

}  // namespace graphscape
