// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/scalar_tree.h"

#include <cassert>
#include <numeric>

#include "common/string_util.h"
#include "scalar/tree_core.h"

namespace graphscape {

ScalarTree BuildVertexScalarTree(const Graph& g,
                                 const VertexScalarField& field) {
  const uint32_t n = g.NumVertices();
  assert(field.Size() == n);
  const std::vector<double>& values = field.Values();

  // The single sort: vertices by (value desc, id asc) — superlevel sweep
  // order. rank[v] is v's position in that order; comparing ranks is the
  // total order used everywhere below.
  std::vector<uint32_t> order, rank;
  tree_core::SortSweepOrder(values, &order, &rank);

  // Union-find state + the tree arena, all sized up front. `head[r]` is the
  // highest-rank vertex swept so far in the component rooted at r — the
  // node the next merge will attach to.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0u);
  std::vector<uint32_t> comp_size(n, 1);
  std::vector<VertexId> head(n);
  std::iota(head.begin(), head.end(), 0u);
  std::vector<VertexId> parents(n, kInvalidVertex);

  // Sweep. For w at rank k, every CSR neighbor u with rank[u] < k (a
  // higher-valued vertex, already swept) is exactly an edge whose
  // activation key max(rank(u), rank(w)) == k; visiting w in rank order
  // therefore processes all m edges in nondecreasing key order with no
  // materialized edge array. This loop performs zero heap allocations.
  uint32_t* const uf_data = uf.data();
  uint32_t* const size_data = comp_size.data();
  VertexId* const head_data = head.data();
  VertexId* const parent_data = parents.data();
  const uint32_t* const rank_data = rank.data();
  for (uint32_t k = 0; k < n; ++k) {
    const VertexId w = order[k];
    uint32_t rw = tree_core::Find(uf_data, w);
    for (const VertexId u : g.Neighbors(w)) {
      if (rank_data[u] >= k) continue;  // activates later, when u is swept
      const uint32_t ru = tree_core::Find(uf_data, u);
      if (ru == rw) continue;
      // The higher component's head merges into the sweep vertex w.
      rw = tree_core::AttachAndUnion(ru, rw, w, uf_data, size_data,
                                     head_data, parent_data);
    }
  }

  uint32_t num_roots = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (parents[v] == kInvalidVertex) ++num_roots;
  }

  return ScalarTree(std::move(parents), std::vector<double>(values),
                    std::move(order), num_roots);
}

ScalarTree BuildVertexScalarTreeParallel(const Graph& g,
                                         const VertexScalarField& field,
                                         const ParallelOptions& options) {
  const uint32_t n = g.NumVertices();
  assert(field.Size() == n);
  const uint32_t lanes =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  // Exact sequential fallback: same code path, not a 1-lane simulation.
  if (lanes <= 1) return BuildVertexScalarTree(g, field);
  const std::vector<double>& values = field.Values();

  std::vector<uint32_t> order, rank;
  tree_core::ParallelSortSweepOrder(values, &order, &rank, options);

  const uint64_t min_chunk = options.grain == 0 ? 4096 : options.grain;
  const std::vector<uint64_t> bounds =
      tree_core::MakeSweepChunks(n, lanes, min_chunk);
  const uint64_t num_chunks = bounds.size() - 1;

  // Phase A: chunk-local sweeps. Each chunk owns a contiguous rank range
  // and a private union-find over it; scanning its vertices in rank
  // order, an edge to an EARLIER chunk is always kept (its global merge
  // state is unknowable locally), while an intra-chunk edge is kept only
  // if it merges locally. A locally redundant edge is redundant in the
  // sequential sweep too — the local structure is a subset of the global
  // prefix — so dropping it cannot change the replay (tree_core.h lists
  // the invariants). Parents are NOT written here; phase A only filters.
  // All per-chunk scratch is allocated below, on the calling thread,
  // sized so the region body never allocates: kept buffers are reserved
  // to the chunk's degree sum, an upper bound on its pushes.
  const std::vector<uint32_t>& offsets = g.Offsets();
  std::vector<std::vector<uint64_t>> kept(num_chunks);
  std::vector<std::vector<uint32_t>> local_uf(num_chunks);
  std::vector<std::vector<uint32_t>> local_size(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    const uint64_t lo = bounds[c], hi = bounds[c + 1];
    uint64_t degree_sum = 0;
    for (uint64_t k = lo; k < hi; ++k) {
      const VertexId w = order[k];
      degree_sum += offsets[w + 1] - offsets[w];
    }
    kept[c].reserve(degree_sum);
    local_uf[c].resize(hi - lo);
    std::iota(local_uf[c].begin(), local_uf[c].end(), 0u);
    local_size[c].assign(hi - lo, 1);
  }

  const uint32_t* const rank_data = rank.data();
  const uint32_t* const order_data = order.data();
  ParallelForBlocks(num_chunks, options, [&](uint64_t c, uint32_t) {
    const uint64_t lo = bounds[c], hi = bounds[c + 1];
    uint32_t* const luf = local_uf[c].data();
    uint32_t* const lsz = local_size[c].data();
    std::vector<uint64_t>& out = kept[c];
    for (uint64_t k = lo; k < hi; ++k) {
      const VertexId w = order_data[k];
      const uint64_t packed_w = static_cast<uint64_t>(w) << 32;
      for (const VertexId u : g.Neighbors(w)) {
        const uint32_t ru = rank_data[u];
        if (ru >= k) continue;  // activates later, when u is swept
        if (ru < lo) {          // cross-chunk: always kept
          out.push_back(packed_w | u);
          continue;
        }
        const uint32_t la =
            tree_core::Find(luf, static_cast<uint32_t>(ru - lo));
        const uint32_t lb =
            tree_core::Find(luf, static_cast<uint32_t>(k - lo));
        if (la == lb) continue;  // locally redundant => globally redundant
        uint32_t big = lb, small = la;
        if (lsz[big] < lsz[small]) std::swap(big, small);
        luf[small] = big;
        lsz[big] += lsz[small];
        out.push_back(packed_w | u);
      }
    }
  });

  // Phase B: boundary merge — replay the kept edges in sweep order
  // (chunks ascending preserve rank order; within a chunk the pushes are
  // already (rank, CSR) ordered) running the full attach-and-union. This
  // is the sequential sweep with its no-op edges removed, so parents,
  // heads, and the merge sequence are bit-identical to the sequential
  // build's. Each merge creates exactly one parent, so the root count
  // falls out of the attach count.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0u);
  std::vector<uint32_t> comp_size(n, 1);
  std::vector<VertexId> head(n);
  std::iota(head.begin(), head.end(), 0u);
  std::vector<VertexId> parents(n, kInvalidVertex);
  uint32_t* const uf_data = uf.data();
  uint32_t* const size_data = comp_size.data();
  VertexId* const head_data = head.data();
  VertexId* const parent_data = parents.data();
  uint32_t attaches = 0;
  VertexId cur_w = kInvalidVertex;
  uint32_t rw = 0;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    for (const uint64_t packed : kept[c]) {
      const VertexId w = static_cast<VertexId>(packed >> 32);
      const VertexId u = static_cast<VertexId>(packed);
      if (w != cur_w) {
        cur_w = w;
        // w is a singleton when first swept (all its edges activate at
        // its own rank or later), exactly as in the sequential sweep.
        rw = tree_core::Find(uf_data, w);
      }
      const uint32_t ru = tree_core::Find(uf_data, u);
      if (ru == rw) continue;
      rw = tree_core::AttachAndUnion(ru, rw, w, uf_data, size_data,
                                     head_data, parent_data);
      ++attaches;
    }
  }

  return ScalarTree(std::move(parents), std::vector<double>(values),
                    std::move(order), n - attaches);
}

uint64_t VertexScalarTreeBuildBytes(uint32_t num_vertices) {
  // order + rank + uf + comp_size + head + parents (u32 each) plus the
  // values copy the ScalarTree keeps (f64).
  return static_cast<uint64_t>(num_vertices) * (6 * 4 + 8);
}

StatusOr<ScalarTree> BuildVertexScalarTreeGuarded(
    const Graph& g, const VertexScalarField& field, ResourceBudget* budget) {
  if (field.Size() != g.NumVertices()) {
    return Status::InvalidArgument(StrPrintf(
        "scalar_tree: field has %u values for %u vertices", field.Size(),
        g.NumVertices()));
  }
  Status status = CheckBudgetDeadline(budget, "BuildVertexScalarTree");
  if (!status.ok()) return status;
  status = ChargeBudget(budget, VertexScalarTreeBuildBytes(g.NumVertices()),
                        "BuildVertexScalarTree");
  if (!status.ok()) return status;
  return BuildVertexScalarTree(g, field);
}

}  // namespace graphscape
