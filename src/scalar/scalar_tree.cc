// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/scalar_tree.h"

#include <cassert>
#include <numeric>

#include "common/string_util.h"
#include "scalar/tree_core.h"

namespace graphscape {

ScalarTree BuildVertexScalarTree(const Graph& g,
                                 const VertexScalarField& field) {
  const uint32_t n = g.NumVertices();
  assert(field.Size() == n);
  const std::vector<double>& values = field.Values();

  // The single sort: vertices by (value desc, id asc) — superlevel sweep
  // order. rank[v] is v's position in that order; comparing ranks is the
  // total order used everywhere below.
  std::vector<uint32_t> order, rank;
  tree_core::SortSweepOrder(values, &order, &rank);

  // Union-find state + the tree arena, all sized up front. `head[r]` is the
  // highest-rank vertex swept so far in the component rooted at r — the
  // node the next merge will attach to.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0u);
  std::vector<uint32_t> comp_size(n, 1);
  std::vector<VertexId> head(n);
  std::iota(head.begin(), head.end(), 0u);
  std::vector<VertexId> parents(n, kInvalidVertex);

  // Sweep. For w at rank k, every CSR neighbor u with rank[u] < k (a
  // higher-valued vertex, already swept) is exactly an edge whose
  // activation key max(rank(u), rank(w)) == k; visiting w in rank order
  // therefore processes all m edges in nondecreasing key order with no
  // materialized edge array. This loop performs zero heap allocations.
  uint32_t* const uf_data = uf.data();
  uint32_t* const size_data = comp_size.data();
  VertexId* const head_data = head.data();
  VertexId* const parent_data = parents.data();
  const uint32_t* const rank_data = rank.data();
  for (uint32_t k = 0; k < n; ++k) {
    const VertexId w = order[k];
    uint32_t rw = tree_core::Find(uf_data, w);
    for (const VertexId u : g.Neighbors(w)) {
      if (rank_data[u] >= k) continue;  // activates later, when u is swept
      const uint32_t ru = tree_core::Find(uf_data, u);
      if (ru == rw) continue;
      // The higher component's head merges into the sweep vertex w.
      rw = tree_core::AttachAndUnion(ru, rw, w, uf_data, size_data,
                                     head_data, parent_data);
    }
  }

  uint32_t num_roots = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (parents[v] == kInvalidVertex) ++num_roots;
  }

  return ScalarTree(std::move(parents), std::vector<double>(values),
                    std::move(order), num_roots);
}

uint64_t VertexScalarTreeBuildBytes(uint32_t num_vertices) {
  // order + rank + uf + comp_size + head + parents (u32 each) plus the
  // values copy the ScalarTree keeps (f64).
  return static_cast<uint64_t>(num_vertices) * (6 * 4 + 8);
}

StatusOr<ScalarTree> BuildVertexScalarTreeGuarded(
    const Graph& g, const VertexScalarField& field, ResourceBudget* budget) {
  if (field.Size() != g.NumVertices()) {
    return Status::InvalidArgument(StrPrintf(
        "scalar_tree: field has %u values for %u vertices", field.Size(),
        g.NumVertices()));
  }
  Status status = CheckBudgetDeadline(budget, "BuildVertexScalarTree");
  if (!status.ok()) return status;
  status = ChargeBudget(budget, VertexScalarTreeBuildBytes(g.NumVertices()),
                        "BuildVertexScalarTree");
  if (!status.ok()) return status;
  return BuildVertexScalarTree(g, field);
}

}  // namespace graphscape
