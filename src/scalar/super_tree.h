// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 2 (paper §II-D): the super tree.
//
// Contracts every maximal same-value connected subtree of the scalar tree
// into one super node, so a field with few distinct levels (K-Core, K-Truss,
// integer attributes) collapses from n nodes to one node per level-set
// component. Because ScalarTree::SweepOrder() lists parents after children,
// the contraction is a single linear pass over nodes in reverse sweep
// order: a node either joins its parent's super node (equal value) or
// opens a new one whose parent is its parent's super node.
//
// The input may be a vertex tree (Algorithm 1) or an edge tree
// (Algorithm 3, scalar/edge_scalar_tree.h) — contraction only reads
// parent links, values, and the sweep order; the actual pass lives in
// scalar/tree_core.h and is shared by both paths.

#ifndef GRAPHSCAPE_SCALAR_SUPER_TREE_H_
#define GRAPHSCAPE_SCALAR_SUPER_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "scalar/scalar_tree.h"

namespace graphscape {

inline constexpr uint32_t kInvalidSuperNode = 0xffffffffu;

class SuperTree {
 public:
  SuperTree() = default;
  explicit SuperTree(const ScalarTree& tree);

  uint32_t NumNodes() const {
    return static_cast<uint32_t>(node_values_.size());
  }

  /// kInvalidSuperNode for roots. Parent's value is strictly greater.
  uint32_t Parent(uint32_t node) const { return node_parents_[node]; }

  /// The shared scalar value of every vertex contracted into `node`.
  double Value(uint32_t node) const { return node_values_[node]; }

  /// How many graph vertices were contracted into `node`.
  uint32_t MemberCount(uint32_t node) const { return member_counts_[node]; }

  /// Super node containing vertex v.
  uint32_t NodeOf(VertexId v) const { return node_of_[v]; }

  /// One root per root of the input tree: connected components for
  /// vertex trees, edge-bearing components for edge trees.
  uint32_t NumRoots() const { return num_roots_; }

 private:
  std::vector<double> node_values_;
  std::vector<uint32_t> node_parents_;
  std::vector<uint32_t> member_counts_;
  std::vector<uint32_t> node_of_;  // vertex -> super node
  uint32_t num_roots_ = 0;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SUPER_TREE_H_
