// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 2 (paper §II-D): the super tree.
//
// Contracts every maximal same-value connected subtree of the scalar tree
// into one super node, so a field with few distinct levels (K-Core, K-Truss,
// integer attributes) collapses from n nodes to one node per level-set
// component. Because ScalarTree::SweepOrder() lists parents after children,
// the contraction is a single linear pass over nodes in reverse sweep
// order: a node either joins its parent's super node (equal value) or
// opens a new one whose parent is its parent's super node.
//
// Orientation (shared with the scalar tree, see scalar/tree_core.h):
// values strictly DECREASE toward the root — leaves are the field's peaks
// (superlevel-set components born at local maxima), each input-tree root
// becomes a super root at its component's minimum level.
//
// The input may be a vertex tree (Algorithm 1) or an edge tree
// (Algorithm 3, scalar/edge_scalar_tree.h) — contraction only reads
// parent links, values, and the sweep order; the actual pass lives in
// scalar/tree_core.h and is shared by both paths.
//
// Member iteration (Members / SubtreeMembers) is served by a CSR member
// index + Euler-tour subtree ranges (scalar/tree_queries.h) built lazily
// on first query and cached; copies of a SuperTree share the cached
// index. Building is O(elements), after which both queries are O(1) plus
// the members visited. The lazy build is NOT thread-safe; share a
// SuperTree across threads only after priming the cache via
// MemberIndex().

#ifndef GRAPHSCAPE_SCALAR_SUPER_TREE_H_
#define GRAPHSCAPE_SCALAR_SUPER_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "scalar/scalar_tree.h"

namespace graphscape {

inline constexpr uint32_t kInvalidSuperNode = 0xffffffffu;

class TreeMemberIndex;

/// Contiguous view of element ids (graph vertices for vertex trees, edge
/// ids for edge trees) owned by the member index.
struct MemberRange {
  const uint32_t* first;
  const uint32_t* last;
  const uint32_t* begin() const { return first; }
  const uint32_t* end() const { return last; }
  uint32_t size() const { return static_cast<uint32_t>(last - first); }
  uint32_t operator[](uint32_t i) const { return first[i]; }
};

class SuperTree {
 public:
  SuperTree() = default;
  explicit SuperTree(const ScalarTree& tree);

  /// Adopts pre-contracted arrays — the deserialization path
  /// (scalar/tree_io.h), which validates every invariant before calling
  /// this. Invariants assumed, not checked: Parent(node) < node,
  /// Value(Parent(node)) < Value(node), member_counts partition node_of,
  /// num_roots == #invalid parents.
  SuperTree(std::vector<double> node_values,
            std::vector<uint32_t> node_parents,
            std::vector<uint32_t> member_counts, std::vector<uint32_t> node_of,
            uint32_t num_roots)
      : node_values_(std::move(node_values)),
        node_parents_(std::move(node_parents)),
        member_counts_(std::move(member_counts)),
        node_of_(std::move(node_of)),
        num_roots_(num_roots) {}

  uint32_t NumNodes() const {
    return static_cast<uint32_t>(node_values_.size());
  }

  /// Number of field elements the tree was contracted from (graph
  /// vertices for vertex trees, edges for edge trees).
  uint32_t NumElements() const {
    return static_cast<uint32_t>(node_of_.size());
  }

  /// kInvalidSuperNode for roots. Parent's value is strictly less, and
  /// parent ids are strictly smaller (contraction mints roots first).
  uint32_t Parent(uint32_t node) const { return node_parents_[node]; }

  /// The shared scalar value of every element contracted into `node`.
  double Value(uint32_t node) const { return node_values_[node]; }

  /// Alias for Value() — the terrain/figure call sites read the node's
  /// height as "the scalar".
  double Scalar(uint32_t node) const { return node_values_[node]; }

  /// How many elements were contracted into `node`.
  uint32_t MemberCount(uint32_t node) const { return member_counts_[node]; }

  /// Subtree mass: elements in `node` and every descendant — the area
  /// weight the terrain layout allocates land by. O(1) via the cached
  /// member index (first call pays the lazy O(n) build).
  uint32_t SubtreeMemberCount(uint32_t node) const;

  /// The summit value over `node`'s subtree (cached member index).
  double SubtreeMaxValue(uint32_t node) const;

  /// Super node containing element v.
  uint32_t NodeOf(VertexId v) const { return node_of_[v]; }

  /// One root per root of the input tree: connected components for
  /// vertex trees, edge-bearing components for edge trees.
  uint32_t NumRoots() const { return num_roots_; }

  /// The elements contracted into `node`, ascending. O(1) + output after
  /// the first query on this tree (lazy index build, O(elements)).
  MemberRange Members(uint32_t node) const;

  /// The elements of `node` and every descendant — i.e. the full
  /// superlevel-set component that peaks inside `node`'s subtree. O(1) +
  /// output after the first query (Euler-tour contiguity).
  MemberRange SubtreeMembers(uint32_t node) const;

  /// The query index itself (subtree sizes, summit values); built on
  /// first use and shared by copies of this tree.
  const TreeMemberIndex& MemberIndex() const;

  /// Flat arrays, for serialization (scalar/tree_io.h).
  const std::vector<double>& NodeValues() const { return node_values_; }
  const std::vector<uint32_t>& NodeParents() const { return node_parents_; }
  const std::vector<uint32_t>& MemberCounts() const { return member_counts_; }
  const std::vector<uint32_t>& ElementNodes() const { return node_of_; }

 private:
  std::vector<double> node_values_;
  std::vector<uint32_t> node_parents_;
  std::vector<uint32_t> member_counts_;
  std::vector<uint32_t> node_of_;  // element -> super node
  uint32_t num_roots_ = 0;
  // Lazily built query index (scalar/tree_queries.h); shared_ptr so
  // copies reuse one build. Mutable: priming the cache is logically
  // const.
  mutable std::shared_ptr<const TreeMemberIndex> member_index_;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SUPER_TREE_H_
