// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/simplify.h"

#include "scalar/scalar_tree.h"
#include "scalar/tree_core.h"

namespace graphscape {

VertexScalarField QuantizeField(const VertexScalarField& field,
                                uint32_t levels) {
  return VertexScalarField(
      field.Name(), tree_core::SnapToLevels(field.Values(), field.MinValue(),
                                            field.MaxValue(), levels));
}

EdgeScalarField QuantizeEdgeField(const EdgeScalarField& field,
                                  uint32_t levels) {
  return EdgeScalarField(
      field.Name(), tree_core::SnapToLevels(field.Values(), field.MinValue(),
                                            field.MaxValue(), levels));
}

SuperTree SimplifiedVertexSuperTree(const Graph& g,
                                    const VertexScalarField& field,
                                    uint32_t levels) {
  return SuperTree(BuildVertexScalarTree(g, QuantizeField(field, levels)));
}

SuperTree SimplifiedEdgeSuperTree(const Graph& g,
                                  const EdgeScalarField& field,
                                  uint32_t levels) {
  return SuperTree(
      BuildEdgeScalarTree(g, QuantizeEdgeField(field, levels)));
}

}  // namespace graphscape
