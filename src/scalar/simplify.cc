// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/simplify.h"

#include <algorithm>
#include <vector>

#include "scalar/scalar_tree.h"

namespace graphscape {

VertexScalarField QuantizeField(const VertexScalarField& field,
                                uint32_t levels) {
  if (levels == 0) levels = 1;
  const double lo = field.MinValue();
  const double range = field.MaxValue() - lo;
  if (range <= 0.0) return VertexScalarField(field.Name(), field.Values());

  const double width = range / static_cast<double>(levels);
  std::vector<double> snapped(field.Values());
  for (double& v : snapped) {
    uint32_t bucket = static_cast<uint32_t>((v - lo) / width);
    // The maximum lands exactly on the upper fence; fold it into the top
    // bucket so exactly `levels` distinct values are possible.
    bucket = std::min(bucket, levels - 1);
    v = lo + width * static_cast<double>(bucket);
  }
  return VertexScalarField(field.Name(), std::move(snapped));
}

SuperTree SimplifiedVertexSuperTree(const Graph& g,
                                    const VertexScalarField& field,
                                    uint32_t levels) {
  const VertexScalarField snapped = QuantizeField(field, levels);
  return SuperTree(BuildVertexScalarTree(g, snapped));
}

}  // namespace graphscape
