// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 3 (paper §II-C): the scalar tree of an *edge* field — K-Truss
// trussness, (3,4)-nucleus values, edge weights. Two edges are neighbors
// when they share an endpoint, so the level sets live on the dual (line)
// graph; the naive method materializes that graph and pays Θ(Σ deg²),
// which explodes on hubs (the paper's 16334 s Wikipedia cell).
//
// The optimized build never touches the dual graph. It runs the same
// sweep as Algorithm 1 — ONE sort, edges by (value desc, id asc), the
// superlevel orientation — but keeps the union-find over *vertices* of
// the original graph: an edge-level-set component is exactly a set of
// vertices connected by already-swept edges, so sweeping edge {u, v}
// merges the components at u and v and chains their head edges under the
// new edge. Total cost O(E log E) for the sort plus near-linear
// union-find, independent of degree skew.
//
// The result is an ordinary ScalarTree whose node ids are edge ids in
// EdgeList order (graph/edge_index.h) — Algorithm 2 (SuperTree) and the
// §II-E simplification apply unchanged, which is the point of the shared
// core in scalar/tree_core.h.

#ifndef GRAPHSCAPE_SCALAR_EDGE_SCALAR_TREE_H_
#define GRAPHSCAPE_SCALAR_EDGE_SCALAR_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "graph/edge_index.h"
#include "graph/graph.h"
#include "scalar/scalar_field.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"

namespace graphscape {

/// One scalar per undirected edge, indexed in EdgeList order (ascending
/// smaller endpoint, then larger) — the order TrussNumbers and
/// EdgeIndex use. The undirected-twin mapping from CSR slots to these
/// ids is resolved once by constructing an EdgeIndex.
class EdgeScalarField : public internal::CheckedScalarField {
 public:
  EdgeScalarField(std::string name, std::vector<double> values)
      : CheckedScalarField("EdgeScalarField", std::move(name),
                           std::move(values)) {}

  /// Lifts an integer edge metric (truss numbers, ...) to a field.
  template <typename Count>
  static EdgeScalarField FromCounts(std::string name,
                                    const std::vector<Count>& counts) {
    std::vector<double> values(counts.begin(), counts.end());
    return EdgeScalarField(std::move(name), std::move(values));
  }
};

/// Algorithm 3. Requires field.Size() == g.NumEdges(). The returned
/// tree's nodes are edge ids; NumRoots() is the number of connected
/// components that contain at least one edge (isolated vertices have no
/// edge-tree presence).
ScalarTree BuildEdgeScalarTree(const Graph& g, const EdgeScalarField& field);

/// Same, amortizing the twin-mapping resolution across builds. The sweep
/// loop itself performs zero heap allocations.
ScalarTree BuildEdgeScalarTree(const Graph& g, const EdgeIndex& index,
                               const EdgeScalarField& field);

/// Parallel Algorithm 3: the (value desc, id asc) sort and the rank
/// setup run on the pool; byte-identical to BuildEdgeScalarTree for
/// every thread count. The sweep itself stays sequential BY DESIGN: its
/// same-component case is a plateau CHAIN (parent[head] = e; head = e),
/// not a no-op, so the prune-and-replay filter that parallelizes the
/// vertex sweep is unsound here — a chunk-local sweep cannot know the
/// global head an edge must chain under. See docs/PARALLELISM.md.
ScalarTree BuildEdgeScalarTreeParallel(const Graph& g,
                                       const EdgeScalarField& field,
                                       const ParallelOptions& options = {});

/// Working-set bytes BuildEdgeScalarTree allocates for n vertices and m
/// edges — what the guarded build charges before running.
uint64_t EdgeScalarTreeBuildBytes(uint32_t num_vertices, uint64_t num_edges);

/// Budget-guarded Algorithm 3 (see BuildVertexScalarTreeGuarded for the
/// charge/deadline contract): ResourceExhausted / DeadlineExceeded
/// instead of allocator death, InvalidArgument on a field size mismatch.
StatusOr<ScalarTree> BuildEdgeScalarTreeGuarded(const Graph& g,
                                                const EdgeScalarField& field,
                                                ResourceBudget* budget);

/// The naive dual-graph baseline: materialize the line graph and run
/// Algorithm 1 on it. Produces a tree identical to BuildEdgeScalarTree
/// (same definition, same tie-break) at Θ(Σ deg²) cost; kept as the
/// Table II / microbench comparison point and as a cross-check oracle.
/// Fails with ResourceExhausted when the line graph would exceed
/// `max_line_edges` adjacencies instead of exhausting memory.
StatusOr<ScalarTree> BuildEdgeScalarTreeNaive(
    const Graph& g, const EdgeScalarField& field,
    uint64_t max_line_edges = 1ull << 28);

/// Algorithm 2 over an edge tree. A SuperTree whose nodes contract
/// same-value edge chains; MemberCount() counts edges, NodeOf() maps
/// edge ids.
using EdgeSuperTree = SuperTree;
EdgeSuperTree BuildEdgeSuperTree(const Graph& g,
                                 const EdgeScalarField& field);

// ---- Field producers: the paper's real edge fields (§III, Fig. 7). ----

/// K-Truss trussness as an edge field (values >= 2).
EdgeScalarField TrussnessEdgeField(const Graph& g);

/// (3,4)-nucleus values lifted to edges: each edge takes the maximum
/// nucleus number over the triangles containing it (0 if triangle-free).
/// Inherits Nucleus34's < 2^21-vertex precondition.
EdgeScalarField NucleusEdgeField(const Graph& g);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_EDGE_SCALAR_TREE_H_
