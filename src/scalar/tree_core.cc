// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/tree_core.h"

#include "common/parallel.h"

namespace graphscape {
namespace tree_core {
namespace {

// The sweep comparator — must stay in lockstep with SortSweepOrder.
struct SweepLess {
  const double* values;
  bool operator()(uint32_t a, uint32_t b) const {
    const double fa = values[a], fb = values[b];
    return fa > fb || (fa == fb && a < b);
  }
};

// Co-rank split: the unique i such that the first k elements of
// merge(A, B) are exactly A[0..i) followed by B[0..k-i). Unique because
// the comparator is a strict total order (no ties to arbitrate).
uint64_t CoRank(uint64_t k, const uint32_t* a, uint64_t na, const uint32_t* b,
                uint64_t nb, const SweepLess& less) {
  uint64_t lo = k > nb ? k - nb : 0;
  uint64_t hi = k < na ? k : na;
  while (lo < hi) {
    const uint64_t i = lo + (hi - lo) / 2;  // lo <= i < hi <= min(k, na)
    if (less(a[i], b[k - i - 1])) {
      lo = i + 1;  // a[i] ranks among the first k: take more from A
    } else {
      hi = i;
    }
  }
  return lo;
}

}  // namespace

void ParallelSortSweepOrder(const std::vector<double>& values,
                            std::vector<uint32_t>* order,
                            std::vector<uint32_t>* rank,
                            const ParallelOptions& options) {
  const uint32_t n = static_cast<uint32_t>(values.size());
  const uint32_t lanes =
      EffectiveLanes({options.num_threads, /*grain=*/1}, n);
  if (lanes <= 1 || n < 4096) {
    SortSweepOrder(values, order, rank);
    return;
  }
  const SweepLess less{values.data()};
  order->resize(n);
  rank->resize(n);
  uint32_t* const ord = order->data();
  const ParallelOptions fill_opts{lanes, 0};
  ParallelFor(0, n, fill_opts,
              [ord](uint64_t i) { ord[i] = static_cast<uint32_t>(i); });

  // Sort `lanes` nearly equal runs in place, then merge them pairwise in
  // rounds, ping-ponging between the output array and an aux buffer.
  // Each pairwise merge is itself split into `parts` co-rank slices so
  // every round keeps all lanes busy (a sequential final merge would cap
  // the sort's speedup at ~2x regardless of width).
  const uint64_t num_runs = lanes;
  std::vector<uint64_t> bounds(num_runs + 1);
  for (uint64_t r = 0; r <= num_runs; ++r) bounds[r] = n * r / num_runs;
  ParallelForBlocks(num_runs, {lanes, 1}, [&](uint64_t r, uint32_t) {
    std::sort(ord + bounds[r], ord + bounds[r + 1], less);
  });

  std::vector<uint32_t> aux(n);
  uint32_t* src = ord;
  uint32_t* dst = aux.data();
  std::vector<uint64_t> cur(bounds);
  std::vector<uint64_t> nxt;
  nxt.reserve(cur.size());
  while (cur.size() - 1 > 1) {
    const uint64_t runs = cur.size() - 1;
    const uint64_t pairs = (runs + 1) / 2;
    const uint64_t parts =
        std::max<uint64_t>(1, (2 * lanes + pairs - 1) / pairs);
    ParallelForBlocks(pairs * parts, {lanes, 1}, [&](uint64_t t, uint32_t) {
      const uint64_t p = t / parts, q = t % parts;
      const uint64_t a0 = cur[2 * p], a1 = cur[2 * p + 1];
      const uint64_t b1 = 2 * p + 2 <= runs ? cur[2 * p + 2] : a1;
      const uint32_t* A = src + a0;
      const uint64_t na = a1 - a0;
      const uint32_t* B = src + a1;
      const uint64_t nb = b1 - a1;
      const uint64_t len = na + nb;
      const uint64_t k0 = len * q / parts, k1 = len * (q + 1) / parts;
      if (k0 >= k1) return;
      const uint64_t i0 = CoRank(k0, A, na, B, nb, less);
      const uint64_t i1 = CoRank(k1, A, na, B, nb, less);
      std::merge(A + i0, A + i1, B + (k0 - i0), B + (k1 - i1), dst + a0 + k0,
                 less);
    });
    nxt.clear();
    for (uint64_t p = 0; p < pairs; ++p) nxt.push_back(cur[2 * p]);
    nxt.push_back(n);
    cur.swap(nxt);
    std::swap(src, dst);
  }
  if (src != ord) {
    const uint32_t* const merged = src;
    ParallelFor(0, n, fill_opts, [ord, merged](uint64_t i) {
      ord[i] = merged[i];
    });
  }

  uint32_t* const rank_data = rank->data();
  ParallelFor(0, n, fill_opts, [ord, rank_data](uint64_t i) {
    rank_data[ord[i]] = static_cast<uint32_t>(i);
  });
}

std::vector<uint64_t> MakeSweepChunks(uint64_t n, uint32_t max_chunks,
                                      uint64_t min_chunk) {
  if (min_chunk == 0) min_chunk = 1;
  if (max_chunks == 0) max_chunks = 1;
  uint64_t chunks = n / min_chunk;
  if (chunks < 1) chunks = 1;
  if (chunks > max_chunks) chunks = max_chunks;
  std::vector<uint64_t> bounds(chunks + 1);
  for (uint64_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  return bounds;
}

}  // namespace tree_core
}  // namespace graphscape
