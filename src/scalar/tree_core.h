// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// The shared core both scalar-tree paths (vertex fields, Algorithm 1;
// edge fields, Algorithm 3 — see PAPER.md / paper §II-C) instantiate:
// the (value, id) rank sort, the path-halving union-find primitive, the
// attach-and-union merge step, uniform level quantization (§II-E), and
// Algorithm 2's same-value chain contraction (§II-D).
//
// The invariants that make one core serve both element types:
//
//  * Rank sort (SortSweepOrder). The sweep runs DESCENDING in value —
//    the paper's superlevel-set orientation, G[t] = {x : f(x) >= t} —
//    because the analysis layer's whole vocabulary (peaks, dense cores,
//    persistence of maxima) is about components of superlevel sets: a
//    minima-first sweep provably cannot answer "how many disconnected
//    dense cores exist at level t" (two disconnected K-max cores would
//    contract into one same-value chain). Ties broken by ascending id
//    give a TOTAL order over field elements, so "the component
//    containing x when element y is swept" is well defined even on
//    plateau-heavy integer fields (K-Core, K-Truss). Both algorithms
//    sweep strictly in rank order; every downstream structure quotes
//    ranks, never raw values.
//
//  * Attach-and-union (AttachAndUnion). A union-find root stands for one
//    growing superlevel-set component; head[root] is the LAST element of
//    that component the sweep has seen. When the element being swept
//    touches a component, the component's head becomes its child — then
//    the two union-find classes merge by size and the surviving root's
//    head becomes the swept element. Consequences both paths rely on:
//    parents appear after children in sweep order (SweepOrder()), values
//    are non-increasing toward the root (leaves are local maxima, each
//    component's root is its minimum), and Algorithm 2 can contract in
//    ONE reverse pass (ContractSameValueChains).
//
//  * Element-space neutrality. Nothing here touches the graph: Algorithm
//    1 feeds vertex ids whose adjacency comes from CSR runs; Algorithm 3
//    feeds edge ids whose adjacency is implicit in the union-find over
//    ORIGINAL vertices (two edges are neighbors iff they share an
//    endpoint — the twin mapping in graph/edge_index.h fixes the id
//    space). That is why SimplifiedVertexSuperTree and
//    SimplifiedEdgeSuperTree bucket identically (SnapToLevels) and why
//    tests pin vertex-vs-edge bucketing to be the same.
//
//  * What the parallel builds lean on (docs/PARALLELISM.md). Three of
//    the invariants above are exactly what makes the chunked sweep of
//    BuildVertexScalarTreeParallel byte-identical to the sequential
//    build: (1) the sweep comparator is a STRICT TOTAL order, so the
//    sorted (order, rank) arrays are unique — ParallelSortSweepOrder may
//    schedule its chunk sorts and co-rank merges any way it likes and
//    must still produce the same bytes; (2) at the moment element w is
//    swept, w's component is the singleton {w} (every edge of w
//    activates at key >= rank(w)), so a replay that re-derives Find(w)
//    sees exactly what the sequential sweep saw; (3) a chunk-local
//    union-find only ever processes a PREFIX-SUBSET of the edges the
//    global sweep has processed at the same point, so local connectivity
//    implies global connectivity — an intra-chunk edge that is locally
//    redundant is provably a no-op in the sequential sweep and can be
//    dropped before the ordered boundary replay. Per-chunk scratch
//    (local union-find arrays, kept-edge buffers) is allocated by the
//    CALLING thread before the region starts and owned by exactly one
//    chunk; lanes never share mutable state.
//
// Everything operates on pre-sized flat arrays so the callers' sweep
// loops stay allocation-free (tests/allocation_test.cc).

#ifndef GRAPHSCAPE_SCALAR_TREE_CORE_H_
#define GRAPHSCAPE_SCALAR_TREE_CORE_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/parallel.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"

namespace graphscape {
namespace tree_core {

// Path-halving find: every probe shortcuts grandparent links, so repeated
// finds flatten the forest without a second pass. No recursion, no stack.
inline uint32_t Find(uint32_t* uf, uint32_t x) {
  while (uf[x] != x) {
    uf[x] = uf[uf[x]];
    x = uf[x];
  }
  return x;
}

// The single sort both algorithms hinge on: node ids by (value
// descending, id ascending) — the superlevel sweep order. Fills *order
// with the sorted ids and *rank with its inverse; comparing ranks is the
// total order used by every sweep (rank 0 is the global maximum).
inline void SortSweepOrder(const std::vector<double>& values,
                           std::vector<uint32_t>* order,
                           std::vector<uint32_t>* rank) {
  const uint32_t n = static_cast<uint32_t>(values.size());
  order->resize(n);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(),
            [&values](uint32_t a, uint32_t b) {
              const double fa = values[a], fb = values[b];
              return fa > fb || (fa == fb && a < b);
            });
  rank->resize(n);
  for (uint32_t i = 0; i < n; ++i) (*rank)[(*order)[i]] = i;
}

// SortSweepOrder, parallelized: chunk sorts followed by co-rank-split
// merge rounds on the pool. The comparator is a strict total order, so
// the sorted sequence is UNIQUE — the output arrays are byte-identical
// to SortSweepOrder's for every thread count and every chunking. Falls
// back to the sequential sort when the effective width is 1.
void ParallelSortSweepOrder(const std::vector<double>& values,
                            std::vector<uint32_t>* order,
                            std::vector<uint32_t>* rank,
                            const ParallelOptions& options);

// Rank-space chunk boundaries for the phase-A local sweeps of
// BuildVertexScalarTreeParallel: min(max_chunks, max(1, n / min_chunk))
// nearly equal ranges as a bounds array of size C+1. The chunking choice
// affects only load balance, never the result (see the header comment);
// tests shrink min_chunk to force adversarial boundaries.
std::vector<uint64_t> MakeSweepChunks(uint64_t n, uint32_t max_chunks,
                                      uint64_t min_chunk);

// One merge step of the sweep: the component rooted at `ru` finishes
// growing — its head becomes a child of sweep node `w` — then unions by
// size into `rw`. The surviving root's head becomes `w`; returns it.
inline uint32_t AttachAndUnion(uint32_t ru, uint32_t rw, uint32_t w,
                               uint32_t* uf, uint32_t* comp_size,
                               uint32_t* head, uint32_t* parent) {
  parent[head[ru]] = w;
  uint32_t big = rw, small = ru;
  if (comp_size[big] < comp_size[small]) std::swap(big, small);
  uf[small] = big;
  comp_size[big] += comp_size[small];
  head[big] = w;
  return big;
}

// §II-E quantization, shared verbatim by the vertex and edge paths so
// SimplifiedVertexSuperTree and SimplifiedEdgeSuperTree bucket
// identically: snap each value to the lower fence of its bucket among
// `levels` uniform buckets spanning [lo, hi]. levels == 0 is treated as
// 1; a degenerate range returns the values unchanged.
inline std::vector<double> SnapToLevels(const std::vector<double>& values,
                                        double lo, double hi,
                                        uint32_t levels) {
  if (levels == 0) levels = 1;
  const double range = hi - lo;
  std::vector<double> snapped(values);
  if (range <= 0.0) return snapped;

  const double width = range / static_cast<double>(levels);
  for (double& v : snapped) {
    uint32_t bucket = static_cast<uint32_t>((v - lo) / width);
    // The maximum lands exactly on the upper fence; fold it into the top
    // bucket so exactly `levels` distinct values are possible.
    bucket = std::min(bucket, levels - 1);
    v = lo + width * static_cast<double>(bucket);
  }
  return snapped;
}

// Algorithm 2's output, as flat arrays SuperTree adopts by move.
struct Contraction {
  std::vector<double> node_values;
  std::vector<uint32_t> node_parents;
  std::vector<uint32_t> member_counts;
  std::vector<uint32_t> node_of;  // tree node -> super node
  uint32_t num_roots = 0;
};

// Algorithm 2: contract every maximal same-value connected subtree into
// one super node. Works for any ScalarTree — the nodes may be graph
// vertices (Algorithm 1) or edges (Algorithm 3); contraction only reads
// parent links, values, and the sweep order. Because SweepOrder() lists
// parents after children, one reverse pass suffices: a node either joins
// its parent's super node (equal value) or opens a new one whose parent
// is its parent's super node.
inline Contraction ContractSameValueChains(const ScalarTree& tree) {
  const uint32_t n = tree.NumNodes();
  Contraction c;
  c.node_of.assign(n, kInvalidSuperNode);
  // Worst case (all values distinct) produces n super nodes; reserving
  // up front keeps the pass allocation-free.
  c.node_values.reserve(n);
  c.node_parents.reserve(n);
  c.member_counts.reserve(n);

  const std::vector<VertexId>& order = tree.SweepOrder();
  for (uint32_t i = n; i-- > 0;) {
    const VertexId v = order[i];
    const VertexId p = tree.Parent(v);
    if (p != kInvalidVertex && tree.Value(p) == tree.Value(v)) {
      const uint32_t node = c.node_of[p];
      c.node_of[v] = node;
      ++c.member_counts[node];
      continue;
    }
    const uint32_t node = static_cast<uint32_t>(c.node_values.size());
    c.node_values.push_back(tree.Value(v));
    c.member_counts.push_back(1);
    if (p == kInvalidVertex) {
      c.node_parents.push_back(kInvalidSuperNode);
      ++c.num_roots;
    } else {
      c.node_parents.push_back(c.node_of[p]);
    }
    c.node_of[v] = node;
  }
  return c;
}

}  // namespace tree_core
}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_TREE_CORE_H_
