// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/persistence.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace graphscape {
namespace {

// The elder-rule pass shared by pair extraction and simplification.
// best[v] is the carrier: the sweep rank of the eldest (highest-value)
// leaf in v's subtree. Because SweepOrder() lists children before
// parents, one forward pass suffices: a node is born a leaf if nothing
// pushed into it yet, and pushing best[v] into Parent(v) resolves every
// junction by the elder rule — the younger carrier dies there and emits
// a pair.
struct ElderPass {
  std::vector<uint32_t> best;          // node -> final carrier rank
  std::vector<PersistencePair> pairs;  // emission order
  std::vector<uint32_t> carrier_rank;  // parallel to pairs: dying carrier
};

ElderPass RunElderPass(const ScalarTree& tree) {
  const uint32_t n = tree.NumNodes();
  const std::vector<VertexId>& order = tree.SweepOrder();
  ElderPass pass;
  pass.best.assign(n, kInvalidVertex);
  for (uint32_t k = 0; k < n; ++k) {
    const VertexId v = order[k];
    if (pass.best[v] == kInvalidVertex) pass.best[v] = k;  // leaf: born here
    const VertexId p = tree.Parent(v);
    if (p == kInvalidVertex) {
      // v is its component's root (minimum); the eldest branch never
      // merges — the essential pair of this component.
      const VertexId birth = order[pass.best[v]];
      pass.pairs.push_back(PersistencePair{birth, kInvalidVertex,
                                           tree.Value(birth), tree.Value(v),
                                           true});
      pass.carrier_rank.push_back(pass.best[v]);
      continue;
    }
    if (pass.best[p] == kInvalidVertex) {
      pass.best[p] = pass.best[v];
      continue;
    }
    uint32_t dying = pass.best[v], surviving = pass.best[p];
    if (dying < surviving) std::swap(dying, surviving);  // elder survives
    pass.best[p] = surviving;
    const VertexId birth = order[dying];
    pass.pairs.push_back(PersistencePair{birth, p, tree.Value(birth),
                                         tree.Value(p), false});
    pass.carrier_rank.push_back(dying);
  }
  return pass;
}

}  // namespace

std::vector<PersistencePair> PersistencePairs(const ScalarTree& tree) {
  std::vector<PersistencePair> pairs = RunElderPass(tree).pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const PersistencePair& a, const PersistencePair& b) {
              if (a.essential != b.essential) return a.essential;
              const double pa = a.Persistence(), pb = b.Persistence();
              if (pa != pb) return pa > pb;
              return a.birth_element < b.birth_element;
            });
  return pairs;
}

std::vector<double> PersistenceSimplifiedValues(const ScalarTree& tree,
                                                double min_persistence) {
  const uint32_t n = tree.NumNodes();
  std::vector<double> values(tree.Values());
  if (min_persistence <= 0.0 || n == 0) return values;

  const ElderPass pass = RunElderPass(tree);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // ceiling[rank of carrier leaf] = the value its branch clamps to, with
  // nested cancellations cascaded through the branch a feature died
  // into. A dying branch's death node belongs to a strictly elder
  // branch, so processing pairs by ascending carrier rank resolves every
  // parent ceiling first.
  std::vector<double> ceiling(n, kInf);
  std::vector<uint32_t> by_rank(pass.pairs.size());
  for (uint32_t i = 0; i < by_rank.size(); ++i) by_rank[i] = i;
  std::sort(by_rank.begin(), by_rank.end(),
            [&pass](uint32_t a, uint32_t b) {
              return pass.carrier_rank[a] < pass.carrier_rank[b];
            });
  for (const uint32_t i : by_rank) {
    const PersistencePair& pair = pass.pairs[i];
    if (pair.essential) continue;  // essential peaks always survive
    const double own =
        pair.Persistence() < min_persistence ? pair.death : kInf;
    const double parent = ceiling[pass.best[pair.death_element]];
    ceiling[pass.carrier_rank[i]] = std::min(own, parent);
  }

  for (uint32_t v = 0; v < n; ++v) {
    values[v] = std::min(values[v], ceiling[pass.best[v]]);
  }
  return values;
}

SuperTree SimplifyByPersistence(const Graph& g,
                                const VertexScalarField& field,
                                double min_persistence) {
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  if (min_persistence <= 0.0) return SuperTree(tree);
  return SuperTree(BuildVertexScalarTree(
      g, VertexScalarField(field.Name(),
                           PersistenceSimplifiedValues(tree,
                                                       min_persistence))));
}

SuperTree SimplifyEdgeByPersistence(const Graph& g,
                                    const EdgeScalarField& field,
                                    double min_persistence) {
  const ScalarTree tree = BuildEdgeScalarTree(g, field);
  if (min_persistence <= 0.0) return SuperTree(tree);
  return SuperTree(BuildEdgeScalarTree(
      g, EdgeScalarField(field.Name(),
                         PersistenceSimplifiedValues(tree,
                                                     min_persistence))));
}

}  // namespace graphscape
