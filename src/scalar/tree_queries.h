// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Analysis queries over super trees (paper §II-D/§III): member
// iteration, superlevel-component counting, and peak enumeration — the
// read side every figure bench drills into after construction.
//
// The workhorse is TreeMemberIndex, built once per tree (lazily, via
// SuperTree::MemberIndex()) in O(elements):
//
//  * a CSR member index — elements grouped by super node, so
//    Members(node) is one contiguous slice;
//  * Euler-tour (preorder) subtree ranges — nodes laid out so every
//    subtree is one contiguous run of positions, so SubtreeMembers(node)
//    is ALSO one contiguous slice of the same member array. Both queries
//    are O(1) plus the members visited — no per-query traversal.
//
// Peak vocabulary (superlevel orientation, scalar/tree_core.h): values
// decrease toward the root, so the superlevel set {x : f(x) >= level} is
// a union of whole subtrees. Each maximal such subtree — a node at or
// above the level whose parent is below it — is one connected component
// of the superlevel set: a "peak" in the paper's terrain metaphor, with
// its summit at the subtree's maximum value.
//
// Thread-safety: a built TreeMemberIndex is immutable — every accessor
// is const over flat arrays frozen in the constructor, so any number of
// threads may query one index (and one tree) concurrently. What is NOT
// thread-safe is the lazy build: the first SuperTree::MemberIndex()
// call mutates the cache, so prime it single-threaded before sharing
// (the query daemon does this under its load mutex — see
// service/service.cc and docs/SERVICE.md §Concurrency).
//
// Allocation: construction is the only allocating step — a handful of
// exactly-sized flat vectors, O(elements) total. The accessors below
// (Members, SubtreeMembers, Children, the counts and summit lookups)
// allocate nothing; they return pointer ranges into the index's own
// arrays, valid as long as the index lives. Of the free functions, only
// the output vector of PeaksAtLevel/TopPeaks allocates;
// CountComponentsAtLevel is allocation-free.

#ifndef GRAPHSCAPE_SCALAR_TREE_QUERIES_H_
#define GRAPHSCAPE_SCALAR_TREE_QUERIES_H_

#include <cstdint>
#include <vector>

#include "scalar/super_tree.h"

namespace graphscape {

/// Root marker, as the peak-inspection call sites read it.
inline constexpr uint32_t kNoParent = kInvalidSuperNode;

/// The query index behind Members/SubtreeMembers/PeaksAtLevel. Relies on
/// the contraction invariant Parent(node) < node (tree_io validates it
/// for deserialized trees).
class TreeMemberIndex {
 public:
  explicit TreeMemberIndex(const SuperTree& tree);

  /// Elements contracted into exactly `node`, ascending.
  MemberRange Members(uint32_t node) const {
    const uint32_t pos = euler_pos_[node];
    return MemberRange{members_.data() + member_offsets_[pos],
                       members_.data() + member_offsets_[pos + 1]};
  }

  /// Elements of `node`'s whole subtree (one contiguous Euler run).
  MemberRange SubtreeMembers(uint32_t node) const {
    return MemberRange{members_.data() + member_offsets_[euler_pos_[node]],
                       members_.data() + member_offsets_[subtree_end_[node]]};
  }

  uint32_t SubtreeMemberCount(uint32_t node) const {
    return member_offsets_[subtree_end_[node]] -
           member_offsets_[euler_pos_[node]];
  }

  /// The summit: maximum value over `node`'s subtree.
  double SubtreeMaxValue(uint32_t node) const { return subtree_max_[node]; }

  /// `node`'s children, ascending node id — the iteration the terrain
  /// layout recursion walks (terrain/terrain_layout.h). The CSR arrays
  /// are a build by-product, kept instead of discarded.
  MemberRange Children(uint32_t node) const {
    return MemberRange{children_.data() + child_offsets_[node],
                       children_.data() + child_offsets_[node + 1]};
  }

  uint32_t NumChildren(uint32_t node) const {
    return child_offsets_[node + 1] - child_offsets_[node];
  }

 private:
  std::vector<uint32_t> child_offsets_;   // node -> child slot (N + 1)
  std::vector<uint32_t> children_;        // children grouped by parent
  std::vector<uint32_t> euler_pos_;       // node -> preorder position
  std::vector<uint32_t> subtree_end_;     // node -> one-past-last position
  std::vector<uint32_t> member_offsets_;  // position -> member slot (N + 1)
  std::vector<uint32_t> members_;         // elements grouped by position
  std::vector<double> subtree_max_;       // node -> summit value
};

/// One connected component of a superlevel set.
struct Peak {
  uint32_t super_node;    ///< component top: at/above the level, parent below
  uint32_t member_count;  ///< elements in the whole component (subtree)
  double max_scalar;      ///< summit value inside the component
};

/// Connected components of {x : f(x) >= level}, most prominent first
/// (summit desc, then size desc, then node id). Builds/reuses the
/// tree's member index.
std::vector<Peak> PeaksAtLevel(const SuperTree& tree, double level);

/// Component count of {x : f(x) >= level} alone — one O(nodes) scan, no
/// member index needed. The level-quantized sweep over a simplified tree
/// (§II-E) makes repeated calls cheap.
uint32_t CountComponentsAtLevel(const SuperTree& tree, double level);

/// The k highest local maxima: leaf super nodes ranked by value (desc,
/// ties by node id). member_count/max_scalar describe the leaf itself —
/// the innermost plateau of each peak, e.g. the densest core proper for
/// a K-Core field.
std::vector<Peak> TopPeaks(const SuperTree& tree, uint32_t k);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_TREE_QUERIES_H_
