// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Crash-safe on-disk cache of TreeArtifacts, keyed by dataset × field —
// the storage engine under the Graphscape query daemon
// (service/service.h) and the large-scale figure benches. Trees are the
// expensive part of every query, figure, and terrain render; this cache
// makes them build-once, survive-anything.
//
// On-disk layout under the cache root:
//
//   MANIFEST                    versioned text: one line per entry with
//                               its byte size + FNV-1a checksum, then a
//                               whole-file checksum line; replaced only
//                               atomically (temp + fsync + rename).
//   entries/<enc-key>.gsta      exactly SerializeTreeArtifact's bytes —
//                               byte-identical to a clean serialization,
//                               so CI can `cmp` recovered caches against
//                               fresh ones, and the daemon's TREE verb
//                               can serve them with zero translation.
//   quarantine/<enc-key>.N.gsta corrupt bytes, moved aside (never
//                               deleted) for postmortems.
//   *.tmp                       in-flight atomic writes; any that
//                               survive a crash are swept at Open().
//
// <enc-key> percent-encodes "dataset/field" so the mapping is bijective:
// a lost MANIFEST is rebuilt from the entry files alone.
//
// Failure semantics (the recovery state machine is drawn out in
// docs/ROBUSTNESS.md):
//
//   * Writes are atomic: a crash at any seam leaves the previous entry
//     (or no entry) plus at worst a stale temp — never a torn entry
//     reachable from the manifest.
//   * Every load is checksum-verified against the manifest AND the
//     artifact's own internal checksum + structural validation; corrupt
//     entries are quarantined and surface as kDataLoss.
//   * kNotFound / kDataLoss are the rebuild triggers: GetOrBuild runs
//     the caller's builder (typically a budget-guarded tree build) and
//     re-Puts, converging the cache back to clean bytes.
//   * Transient I/O (kUnavailable, incl. injected faults) is retried
//     with backoff per Options::retry before any of the above.
//
// Thread-safety: NONE — the cache assumes one process, and every method
// (including Get, which mutates stats and may quarantine) requires
// external synchronization when shared across threads. The query daemon
// is the worked example: QueryService routes every cache touch through
// one load mutex, then shares the immutable loaded artifacts lock-free
// (docs/SERVICE.md §Concurrency). Multi-process coordination is out of
// scope; run one daemon per cache root.

#ifndef GRAPHSCAPE_SCALAR_ARTIFACT_CACHE_H_
#define GRAPHSCAPE_SCALAR_ARTIFACT_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "scalar/tree_io.h"

namespace graphscape {

inline constexpr uint32_t kArtifactCacheVersion = 1;

/// Canonical cache key. The string form is "dataset/field"
/// ("GrQc/KC"); any UTF-8 is legal in either half.
struct ArtifactKey {
  std::string dataset;
  std::string field;

  std::string Canonical() const { return dataset + "/" + field; }
};

/// Counters for observability and test assertions; cumulative since
/// Open.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t corrupt_quarantined = 0;
  uint64_t rebuilds = 0;
  uint64_t put_failures = 0;       ///< GetOrBuild served but couldn't store
  uint64_t temps_swept = 0;        ///< stale .tmp files removed at Open
  bool manifest_recovered = false; ///< MANIFEST was missing/corrupt at Open
  uint64_t strays_adopted = 0;     ///< valid entries found outside MANIFEST
};

/// What a Scrub() pass found and fixed.
struct ScrubReport {
  uint64_t entries_checked = 0;
  uint64_t entries_ok = 0;
  uint64_t temps_removed = 0;
  uint64_t missing_dropped = 0;  ///< manifest rows whose files vanished
  std::vector<std::string> quarantined;  ///< canonical keys, corrupt bytes
  std::vector<std::string> adopted;      ///< valid strays added to MANIFEST

  /// True when the pass had nothing to fix.
  bool Clean() const {
    return quarantined.empty() && adopted.empty() && temps_removed == 0 &&
           missing_dropped == 0;
  }
};

class ArtifactCache {
 public:
  struct Options {
    /// Backoff policy for the transient (kUnavailable) failure class.
    RetryOptions retry;
  };

  /// An unopened cache (what StatusOr's error arm holds). Every usable
  /// instance comes from Open().
  ArtifactCache() = default;

  /// Opens (creating directories as needed) and RECOVERS: sweeps stale
  /// temps, rebuilds a missing/corrupt MANIFEST by scanning and
  /// validating the entry files, drops manifest rows whose files are
  /// gone, adopts valid stray entries a crash left un-manifested.
  static StatusOr<ArtifactCache> Open(const std::string& root,
                                      const Options& options = {});

  /// Serialize + atomically store `artifact` under `key`, then commit
  /// the manifest. On any error the previous entry (if any) is intact.
  Status Put(const ArtifactKey& key, const TreeArtifact& artifact);

  /// Load + verify. kNotFound if never stored; kDataLoss (after
  /// quarantining the bytes) if the entry fails its checksums or
  /// structural validation; kUnavailable only if transient I/O outlasted
  /// the retry policy.
  StatusOr<TreeArtifact> Get(const ArtifactKey& key);

  /// The self-healing read path: Get, and on kNotFound/kDataLoss run
  /// `builder` and store its result. A build that fails (e.g. a
  /// ResourceBudget refusal) propagates; a store that fails after a good
  /// build is tolerated (the artifact is served, put_failures counts it).
  using Builder = std::function<StatusOr<TreeArtifact>()>;
  StatusOr<TreeArtifact> GetOrBuild(const ArtifactKey& key,
                                    const Builder& builder);

  bool Contains(const ArtifactKey& key) const;

  /// Canonical keys, sorted.
  std::vector<std::string> Keys() const;

  /// Drop `key`'s entry and commit the manifest. OK if absent.
  Status Remove(const ArtifactKey& key);

  /// Full offline verification pass (the cache_fsck engine): re-checks
  /// every entry byte-for-byte, quarantines corruption, adopts strays,
  /// sweeps temps, and rewrites the manifest if anything changed.
  StatusOr<ScrubReport> Scrub();

  const CacheStats& stats() const { return stats_; }
  const std::string& root() const { return root_; }

  /// Percent-encoding of canonical keys into entry file names (public
  /// for cache_fsck and tests).
  static std::string EncodeKey(const std::string& canonical);
  static StatusOr<std::string> DecodeKey(const std::string& encoded);

 private:
  struct ManifestEntry {
    uint64_t size = 0;
    uint64_t checksum = 0;  // FNV-1a over the entry file bytes
  };

  ArtifactCache(std::string root, Options options)
      : root_(std::move(root)), options_(std::move(options)) {}

  std::string EntryPath(const std::string& canonical) const;
  Status SweepTemps(const std::string& dir, uint64_t* removed);
  Status LoadOrRecoverManifest();
  Status WriteManifest();
  /// Validates the file behind `canonical` completely; returns its
  /// manifest row.
  StatusOr<ManifestEntry> ValidateEntryFile(const std::string& canonical);
  /// Moves `canonical`'s entry file into quarantine/ and drops it from
  /// the manifest map (caller commits the manifest).
  void QuarantineEntry(const std::string& canonical);

  std::string root_;
  Options options_;
  std::map<std::string, ManifestEntry> entries_;  // canonical key -> row
  CacheStats stats_;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_ARTIFACT_CACHE_H_
