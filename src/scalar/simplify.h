// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// §II-E simplification: the persistence-threshold rendering knob.
//
// Snapping the field to L uniform levels before tree construction collapses
// every topological feature whose persistence is below (max - min) / L —
// same-level plateaus contract into single super nodes by Algorithm 2, so
// the rendered tree size is bounded by the number of surviving level-set
// components instead of n. Larger L keeps more detail; L = 1 yields one
// super node per connected component.
//
// Vertex and edge fields share ONE quantization implementation
// (tree_core::SnapToLevels), so SimplifiedVertexSuperTree and
// SimplifiedEdgeSuperTree bucket identically by construction — pinned by
// tests/simplify_test.cc.

#ifndef GRAPHSCAPE_SCALAR_SIMPLIFY_H_
#define GRAPHSCAPE_SCALAR_SIMPLIFY_H_

#include <cstdint>

#include "graph/graph.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_field.h"
#include "scalar/super_tree.h"

namespace graphscape {

/// Returns `field` snapped to `levels` uniform values across its range.
/// levels == 0 is treated as 1. A constant field is returned unchanged.
VertexScalarField QuantizeField(const VertexScalarField& field,
                                uint32_t levels);

/// Edge-field twin of QuantizeField; identical bucketing.
EdgeScalarField QuantizeEdgeField(const EdgeScalarField& field,
                                  uint32_t levels);

/// Algorithm 1 + Algorithm 2 over the quantized field.
SuperTree SimplifiedVertexSuperTree(const Graph& g,
                                    const VertexScalarField& field,
                                    uint32_t levels);

/// Algorithm 3 + Algorithm 2 over the quantized edge field.
SuperTree SimplifiedEdgeSuperTree(const Graph& g,
                                  const EdgeScalarField& field,
                                  uint32_t levels);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SIMPLIFY_H_
