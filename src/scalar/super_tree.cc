// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/super_tree.h"

#include <utility>

#include "scalar/tree_core.h"
#include "scalar/tree_queries.h"

namespace graphscape {

SuperTree::SuperTree(const ScalarTree& tree) {
  // The contraction itself is the shared Algorithm 2 core — the same
  // pass serves vertex trees (Algorithm 1) and edge trees (Algorithm 3).
  tree_core::Contraction c = tree_core::ContractSameValueChains(tree);
  node_values_ = std::move(c.node_values);
  node_parents_ = std::move(c.node_parents);
  member_counts_ = std::move(c.member_counts);
  node_of_ = std::move(c.node_of);
  num_roots_ = c.num_roots;
}

const TreeMemberIndex& SuperTree::MemberIndex() const {
  if (!member_index_) {
    member_index_ = std::make_shared<const TreeMemberIndex>(*this);
  }
  return *member_index_;
}

MemberRange SuperTree::Members(uint32_t node) const {
  return MemberIndex().Members(node);
}

MemberRange SuperTree::SubtreeMembers(uint32_t node) const {
  return MemberIndex().SubtreeMembers(node);
}

uint32_t SuperTree::SubtreeMemberCount(uint32_t node) const {
  return MemberIndex().SubtreeMemberCount(node);
}

double SuperTree::SubtreeMaxValue(uint32_t node) const {
  return MemberIndex().SubtreeMaxValue(node);
}

}  // namespace graphscape
