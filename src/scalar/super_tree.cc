// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/super_tree.h"

namespace graphscape {

SuperTree::SuperTree(const ScalarTree& tree) {
  const uint32_t n = tree.NumNodes();
  node_of_.assign(n, kInvalidSuperNode);
  // Worst case (all values distinct) produces n super nodes; reserving up
  // front keeps the pass allocation-free.
  node_values_.reserve(n);
  node_parents_.reserve(n);
  member_counts_.reserve(n);

  const std::vector<VertexId>& order = tree.SweepOrder();
  // Reverse sweep order: every vertex's scalar-tree parent has already been
  // assigned a super node when the vertex is visited.
  for (uint32_t i = n; i-- > 0;) {
    const VertexId v = order[i];
    const VertexId p = tree.Parent(v);
    if (p != kInvalidVertex && tree.Value(p) == tree.Value(v)) {
      const uint32_t node = node_of_[p];
      node_of_[v] = node;
      ++member_counts_[node];
      continue;
    }
    const uint32_t node = static_cast<uint32_t>(node_values_.size());
    node_values_.push_back(tree.Value(v));
    member_counts_.push_back(1);
    if (p == kInvalidVertex) {
      node_parents_.push_back(kInvalidSuperNode);
      ++num_roots_;
    } else {
      node_parents_.push_back(node_of_[p]);
    }
    node_of_[v] = node;
  }
}

}  // namespace graphscape
