// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Topological persistence over scalar trees (paper §II-E's principled
// sibling; cf. Yan et al., "Scalar Field Comparison with Topological
// Descriptors"). A superlevel-set component is BORN at a leaf of the
// scalar tree (a local maximum) and DIES where the sweep merges it into
// a component with an older (higher) birth — the elder rule. The pair
// (birth, death) measures the feature's prominence: birth - death.
//
// Extraction is one linear pass over the sweep order (which lists every
// child before its parent — the tree_core invariant both Algorithms 1
// and 3 guarantee), pushing each subtree's eldest birth up to its
// parent; the younger branch at every junction emits a pair. Works for
// vertex trees and edge trees alike since both are plain ScalarTrees.
// One pair per leaf; each tree root carries one ESSENTIAL pair (the
// component's global maximum, dying only at the component minimum).
//
// SimplifyByPersistence is the persistence-ranked alternative to §II-E's
// uniform level quantization (scalar/simplify.h): instead of snapping
// values to a grid — which kills small features and tall-but-thin ones
// alike — it cancels exactly the peaks whose persistence is below the
// threshold, clamping the dying branch down to its death value so the
// rebuilt tree merges it into the surviving neighbor. Quantizing to L
// levels kills every feature with persistence < range/L; persistence
// simplification with that threshold keeps the features a uniform grid
// would smear.

#ifndef GRAPHSCAPE_SCALAR_PERSISTENCE_H_
#define GRAPHSCAPE_SCALAR_PERSISTENCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_field.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"

namespace graphscape {

/// One birth/death feature of the superlevel filtration.
struct PersistencePair {
  uint32_t birth_element;  ///< the local maximum that born the component
  uint32_t death_element;  ///< merge element; kInvalidVertex if essential
  double birth;            ///< field value at birth_element
  double death;            ///< value at death; the component minimum if
                           ///< essential
  bool essential;          ///< never merged: one per tree root

  double Persistence() const { return birth - death; }
};

/// All pairs of the tree's filtration, essential pairs first, then by
/// persistence descending (ties: birth_element ascending). Exactly one
/// pair per leaf; NumRoots() of them are essential. O(n) after the
/// O(n log n) tree build.
std::vector<PersistencePair> PersistencePairs(const ScalarTree& tree);

/// The tree's values with every non-essential feature of persistence
/// < min_persistence cancelled: each dying branch is clamped down to its
/// death value (cascading through nested cancellations), so rebuilding
/// the tree on the returned values merges cancelled peaks into their
/// surviving neighbors. min_persistence <= 0 returns the values
/// unchanged; essential peaks always survive.
std::vector<double> PersistenceSimplifiedValues(const ScalarTree& tree,
                                                double min_persistence);

/// Algorithm 1 + cancellation + Algorithm 2: the persistence-ranked
/// counterpart of SimplifiedVertexSuperTree (scalar/simplify.h).
SuperTree SimplifyByPersistence(const Graph& g,
                                const VertexScalarField& field,
                                double min_persistence);

/// Algorithm 3 + cancellation + Algorithm 2, for edge fields.
SuperTree SimplifyEdgeByPersistence(const Graph& g,
                                    const EdgeScalarField& field,
                                    double min_persistence);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_PERSISTENCE_H_
