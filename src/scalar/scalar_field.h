// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Named scalar fields over graph elements (paper §II-A): one double per
// vertex (K-Core numbers, PageRank, attribute columns) or per edge
// (trussness, nucleus values — see scalar/edge_scalar_tree.h). Both field
// types share the checked storage below; they differ only in what their
// index space means.

#ifndef GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_
#define GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace graphscape {
namespace internal {

/// Shared storage + validation for vertex and edge fields. Values must
/// all be finite: NaN would break the strict weak ordering the tree
/// sweeps sort by, and infinities break level quantization — both
/// silently, so the constructor rejects them up front in every build
/// type (throws std::invalid_argument). `kind` names the concrete field
/// type in the error message.
class CheckedScalarField {
 public:
  const std::string& Name() const { return name_; }
  uint32_t Size() const { return static_cast<uint32_t>(values_.size()); }
  double operator[](uint32_t i) const { return values_[i]; }
  const std::vector<double>& Values() const { return values_; }
  /// Lowercase alias, the spelling the figure benches use when handing a
  /// field's raw column to the color mappers (terrain/render.h).
  const std::vector<double>& values() const { return values_; }
  double MinValue() const { return min_; }
  double MaxValue() const { return max_; }

 protected:
  CheckedScalarField(const char* kind, std::string name,
                     std::vector<double> values)
      : name_(std::move(name)), values_(std::move(values)) {
    min_ = max_ = values_.empty() ? 0.0 : values_[0];
    for (const double v : values_) {
      if (!std::isfinite(v)) {
        throw std::invalid_argument(std::string(kind) + " '" + name_ +
                                    "': values must be finite");
      }
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

 private:
  std::string name_;
  std::vector<double> values_;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace internal

class VertexScalarField : public internal::CheckedScalarField {
 public:
  VertexScalarField(std::string name, std::vector<double> values)
      : CheckedScalarField("VertexScalarField", std::move(name),
                           std::move(values)) {}

  /// Lifts an integer metric (core numbers, truss numbers, ...) to a field.
  template <typename Count>
  static VertexScalarField FromCounts(std::string name,
                                      const std::vector<Count>& counts) {
    std::vector<double> values(counts.begin(), counts.end());
    return VertexScalarField(std::move(name), std::move(values));
  }
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_
