// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// A named scalar field over graph vertices (paper §II-A): one double per
// vertex, e.g. K-Core numbers, PageRank, or an arbitrary attribute column.

#ifndef GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_
#define GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace graphscape {

class VertexScalarField {
 public:
  /// Values must all be finite: NaN would break the strict weak ordering
  /// Algorithm 1 sorts by, and infinities break level quantization — both
  /// silently, so the constructor rejects them up front in every build
  /// type (throws std::invalid_argument).
  VertexScalarField(std::string name, std::vector<double> values)
      : name_(std::move(name)), values_(std::move(values)) {
    min_ = max_ = values_.empty() ? 0.0 : values_[0];
    for (const double v : values_) {
      if (!std::isfinite(v)) {
        throw std::invalid_argument("VertexScalarField '" + name_ +
                                    "': values must be finite");
      }
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

  /// Lifts an integer metric (core numbers, truss numbers, ...) to a field.
  template <typename Count>
  static VertexScalarField FromCounts(std::string name,
                                      const std::vector<Count>& counts) {
    std::vector<double> values(counts.begin(), counts.end());
    return VertexScalarField(std::move(name), std::move(values));
  }

  const std::string& Name() const { return name_; }
  uint32_t Size() const { return static_cast<uint32_t>(values_.size()); }
  double operator[](VertexId v) const { return values_[v]; }
  const std::vector<double>& Values() const { return values_; }
  double MinValue() const { return min_; }
  double MaxValue() const { return max_; }

 private:
  std::string name_;
  std::vector<double> values_;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SCALAR_FIELD_H_
