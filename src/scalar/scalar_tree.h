// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Algorithm 1 (paper §II-C): the vertex scalar tree.
//
// Every graph vertex is a tree node; Parent(v) is the vertex at which v's
// superlevel-set component G[t] = {x : f(x) >= t} merges into a component
// born higher. Values are non-increasing toward the root: leaves are
// local maxima of the field (the paper's peaks — dense cores under
// K-Core/K-Truss fields), each connected component's root is its minimum.
// Ties are broken by ascending vertex id, giving a total order ("rank")
// and a deterministic tree for duplicate-heavy fields.
//
// Construction is engineered for the memory-bound reality of merge trees
// (cf. TACHYON): ONE sort — vertices by (value desc, id asc) — then a
// union-find sweep over edges in nondecreasing activation order. An edge
// {u, v} activates at key max(rank(u), rank(v)); walking vertices in rank
// order and scanning each one's CSR run enumerates edges already grouped
// and sorted by that key, so the per-edge counting sort is implicit in the
// CSR layout and costs zero extra passes. The sweep uses path-halving find
// with union by size over three pre-sized flat uint32 arrays; tree nodes
// live in the parallel arrays below (a struct-of-arrays arena) — no
// per-node heap allocation anywhere in the loop.

#ifndef GRAPHSCAPE_SCALAR_SCALAR_TREE_H_
#define GRAPHSCAPE_SCALAR_SCALAR_TREE_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/parallel.h"
#include "common/status.h"
#include "graph/graph.h"
#include "scalar/scalar_field.h"

namespace graphscape {

class ScalarTree {
 public:
  ScalarTree() = default;
  ScalarTree(std::vector<VertexId> parents, std::vector<double> values,
             std::vector<VertexId> order, uint32_t num_roots)
      : parents_(std::move(parents)),
        values_(std::move(values)),
        order_(std::move(order)),
        num_roots_(num_roots) {}

  /// One node per field element: graph vertices for Algorithm 1, edge
  /// ids for Algorithm 3 (scalar/edge_scalar_tree.h).
  uint32_t NumNodes() const { return static_cast<uint32_t>(parents_.size()); }

  /// kInvalidVertex for roots.
  VertexId Parent(VertexId v) const { return parents_[v]; }

  double Value(VertexId v) const { return values_[v]; }

  /// Connected components of the graph for vertex trees; edge-bearing
  /// components for edge trees (isolated vertices have no edge node).
  uint32_t NumRoots() const { return num_roots_; }

  const std::vector<VertexId>& Parents() const { return parents_; }
  const std::vector<double>& Values() const { return values_; }

  /// Node ids in (value descending, id ascending) order — the superlevel
  /// sweep order of Algorithms 1/3. Parents always appear AFTER their
  /// children here, which is what lets Algorithm 2 run as a single linear
  /// pass.
  const std::vector<VertexId>& SweepOrder() const { return order_; }

 private:
  std::vector<VertexId> parents_;
  std::vector<double> values_;
  std::vector<VertexId> order_;
  uint32_t num_roots_ = 0;
};

/// Algorithm 1. Requires field.Size() == g.NumVertices().
ScalarTree BuildVertexScalarTree(const Graph& g,
                                 const VertexScalarField& field);

/// Parallel Algorithm 1: byte-identical output to BuildVertexScalarTree
/// for EVERY thread count (pinned by tests/parallel_test.cc; determinism
/// argument in docs/PARALLELISM.md). Three phases: a parallel
/// (value desc, id asc) sort — unique result, the comparator is a total
/// order — then chunk-local union-find sweeps over rank-partitioned
/// chunks that drop provably redundant intra-chunk edges, then a
/// sequential boundary replay of the kept edges in sweep order, which
/// performs the exact merge sequence of the sequential build.
/// options.num_threads == 1 (or an effective width of 1) calls
/// BuildVertexScalarTree directly; options.grain overrides the minimum
/// sweep-chunk length (default 4096 — tests shrink it to force
/// adversarial chunk boundaries).
ScalarTree BuildVertexScalarTreeParallel(const Graph& g,
                                         const VertexScalarField& field,
                                         const ParallelOptions& options = {});

/// Working-set bytes BuildVertexScalarTree allocates for an n-vertex
/// graph (order/rank, union-find state, parents, the values copy) — the
/// amount the guarded build charges before running.
uint64_t VertexScalarTreeBuildBytes(uint32_t num_vertices);

/// Budget-guarded Algorithm 1: charges the working set against `budget`
/// (nullptr = unlimited) before allocating and checks the deadline, so
/// an over-budget build refuses with ResourceExhausted /
/// DeadlineExceeded instead of dying in the allocator mid-sweep. A
/// field/graph size mismatch is InvalidArgument here (the unguarded
/// build asserts). The charge is NOT released on success — the caller
/// owns the returned tree's memory and releases when it drops it.
StatusOr<ScalarTree> BuildVertexScalarTreeGuarded(
    const Graph& g, const VertexScalarField& field,
    ResourceBudget* budget);

}  // namespace graphscape

#endif  // GRAPHSCAPE_SCALAR_SCALAR_TREE_H_
