// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "scalar/edge_scalar_tree.h"

#include <cassert>
#include <numeric>

#include "common/string_util.h"
#include "graph/graph_builder.h"
#include "metrics/ktruss.h"
#include "metrics/nucleus.h"
#include "scalar/tree_core.h"

namespace graphscape {

namespace {

// The Algorithm 3 sweep proper, over edge endpoints in EdgeList order,
// given a precomputed sweep order (adopted into the returned tree).
ScalarTree SweepEdgesInOrder(uint32_t n, uint32_t m, const VertexId* eu,
                             const VertexId* ev,
                             const std::vector<double>& values,
                             std::vector<uint32_t> order) {
  // Union-find over the ORIGINAL graph's vertices — this is what makes
  // the dual graph unnecessary. head[r] is the latest-swept edge in the
  // vertex component rooted at r, or kInvalidVertex while the component
  // has no active edges.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0u);
  std::vector<uint32_t> comp_size(n, 1);
  std::vector<uint32_t> head(n, kInvalidVertex);
  std::vector<VertexId> parents(m, kInvalidVertex);

  // Sweep edges in rank order. Zero heap allocations in this loop.
  uint32_t* const uf_data = uf.data();
  uint32_t* const size_data = comp_size.data();
  uint32_t* const head_data = head.data();
  VertexId* const parent_data = parents.data();
  uint32_t num_roots = 0;
  for (uint32_t k = 0; k < m; ++k) {
    const uint32_t e = order[k];
    const uint32_t ru = tree_core::Find(uf_data, eu[e]);
    const uint32_t rv = tree_core::Find(uf_data, ev[e]);
    if (ru == rv) {
      // Both endpoints already joined by swept edges: e extends that
      // component's chain. (A union always sets the head, so it's valid.)
      parent_data[head_data[ru]] = e;
      head_data[ru] = e;
      continue;
    }
    const bool u_active = head_data[ru] != kInvalidVertex;
    const bool v_active = head_data[rv] != kInvalidVertex;
    if (u_active) parent_data[head_data[ru]] = e;
    if (v_active) parent_data[head_data[rv]] = e;
    if (!u_active && !v_active) ++num_roots;  // e opens a new component
    if (u_active && v_active) --num_roots;    // e merges two components
    uint32_t big = ru, small = rv;
    if (size_data[big] < size_data[small]) std::swap(big, small);
    uf_data[small] = big;
    size_data[big] += size_data[small];
    head_data[big] = e;
  }

  return ScalarTree(std::move(parents), std::vector<double>(values),
                    std::move(order), num_roots);
}

// Sort-then-sweep wrapper shared by the EdgeIndex overload.
ScalarTree SweepEdges(uint32_t n, uint32_t m, const VertexId* eu,
                      const VertexId* ev,
                      const std::vector<double>& values) {
  // The single sort: edges by (value desc, id asc) — superlevel sweep.
  std::vector<uint32_t> order, rank;
  tree_core::SortSweepOrder(values, &order, &rank);
  return SweepEdgesInOrder(n, m, eu, ev, values, std::move(order));
}

}  // namespace

ScalarTree BuildEdgeScalarTree(const Graph& g,
                               const EdgeScalarField& field) {
  // The sweep only needs endpoints per edge id, never the CSR twin
  // mapping — the graph already stores them in EdgeList order.
  const uint32_t m = static_cast<uint32_t>(g.NumEdges());
  assert(field.Size() == m);
  return SweepEdges(g.NumVertices(), m, g.EdgeSources().data(),
                    g.EdgeTargets().data(), field.Values());
}

ScalarTree BuildEdgeScalarTreeParallel(const Graph& g,
                                       const EdgeScalarField& field,
                                       const ParallelOptions& options) {
  const uint32_t m = static_cast<uint32_t>(g.NumEdges());
  assert(field.Size() == m);
  const uint32_t lanes =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  // Exact sequential fallback: same code path, not a 1-lane simulation.
  if (lanes <= 1) return BuildEdgeScalarTree(g, field);
  // Parallel sort, sequential sweep (see the header for why the edge
  // sweep cannot be chunked); identical order array => identical tree.
  std::vector<uint32_t> order, rank;
  tree_core::ParallelSortSweepOrder(field.Values(), &order, &rank, options);
  return SweepEdgesInOrder(g.NumVertices(), m, g.EdgeSources().data(),
                           g.EdgeTargets().data(), field.Values(),
                           std::move(order));
}

ScalarTree BuildEdgeScalarTree(const Graph& g, const EdgeIndex& index,
                               const EdgeScalarField& field) {
  assert(field.Size() == index.NumEdges());
  return SweepEdges(g.NumVertices(), index.NumEdges(),
                    index.EndpointsU().data(), index.EndpointsV().data(),
                    field.Values());
}

uint64_t EdgeScalarTreeBuildBytes(uint32_t num_vertices,
                                  uint64_t num_edges) {
  // Per vertex: uf + comp_size + head (u32 each). Per edge: order +
  // rank + parents (u32 each; endpoints come straight from the graph)
  // plus the values copy (f64).
  return static_cast<uint64_t>(num_vertices) * 12 + num_edges * (3 * 4 + 8);
}

StatusOr<ScalarTree> BuildEdgeScalarTreeGuarded(const Graph& g,
                                                const EdgeScalarField& field,
                                                ResourceBudget* budget) {
  if (field.Size() != g.NumEdges()) {
    return Status::InvalidArgument(StrPrintf(
        "edge_scalar_tree: field has %u values for %llu edges",
        field.Size(), static_cast<unsigned long long>(g.NumEdges())));
  }
  Status status = CheckBudgetDeadline(budget, "BuildEdgeScalarTree");
  if (!status.ok()) return status;
  status = ChargeBudget(
      budget, EdgeScalarTreeBuildBytes(g.NumVertices(), g.NumEdges()),
      "BuildEdgeScalarTree");
  if (!status.ok()) return status;
  return BuildEdgeScalarTree(g, field);
}

StatusOr<ScalarTree> BuildEdgeScalarTreeNaive(const Graph& g,
                                              const EdgeScalarField& field,
                                              uint64_t max_line_edges) {
  const EdgeIndex index(g);
  const uint32_t m = index.NumEdges();
  assert(field.Size() == m);

  // Guard the Θ(Σ deg²) blowup before committing memory: every pair of
  // CSR slots at a vertex becomes a line-graph edge.
  uint64_t line_edges = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    line_edges += d * (d - 1) / 2;
  }
  if (line_edges > max_line_edges) {
    return Status::ResourceExhausted(StrPrintf(
        "line graph needs %llu edges, cap is %llu",
        static_cast<unsigned long long>(line_edges),
        static_cast<unsigned long long>(max_line_edges)));
  }

  // Materialize the dual: one vertex per edge id, cliques over each
  // original vertex's incident edges.
  GraphBuilder builder(m);
  builder.Reserve(static_cast<size_t>(line_edges));
  const std::vector<uint32_t>& offsets = g.Offsets();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      for (uint32_t t = s + 1; t < offsets[v + 1]; ++t) {
        builder.AddEdge(index.EdgeAtSlot(s), index.EdgeAtSlot(t));
      }
    }
  }
  const Graph line_graph = builder.Build();
  return BuildVertexScalarTree(
      line_graph, VertexScalarField(field.Name(), field.Values()));
}

EdgeSuperTree BuildEdgeSuperTree(const Graph& g,
                                 const EdgeScalarField& field) {
  return SuperTree(BuildEdgeScalarTree(g, field));
}

EdgeScalarField TrussnessEdgeField(const Graph& g) {
  return EdgeScalarField::FromCounts("trussness", TrussNumbers(g));
}

EdgeScalarField NucleusEdgeField(const Graph& g) {
  return EdgeScalarField::FromCounts("nucleus34", NucleusEdgeNumbers(g));
}

}  // namespace graphscape
