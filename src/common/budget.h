// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// ResourceBudget: a byte cap plus a deadline, threaded by pointer
// through the guarded construction and render paths so paper-scale
// builds degrade deliberately instead of dying in the allocator.
//
// Semantics:
//   * ChargeBytes(n) reserves n bytes against the cap BEFORE the caller
//     allocates them; over-cap charges refuse with ResourceExhausted and
//     leave the ledger unchanged. ReleaseBytes returns a reservation
//     when the memory is freed (the degrading render ladder releases a
//     failed attempt before trying a cheaper one).
//   * CheckDeadline() refuses with DeadlineExceeded once the injected
//     clock passes max_seconds. Callers poll it between phases, not in
//     hot loops.
//   * A default-constructed budget is unlimited and never refuses —
//     guarded entry points accept nullptr to mean the same, so the
//     unguarded fast paths stay zero-overhead.
//
// The clock is injectable for tests; the failpoint seams budget/charge
// and budget/deadline let the recovery suite inject an allocation-cap
// hit or an expired deadline at any guarded call site without actually
// exhausting anything (docs/ROBUSTNESS.md).

#ifndef GRAPHSCAPE_COMMON_BUDGET_H_
#define GRAPHSCAPE_COMMON_BUDGET_H_

#include <cstdint>
#include <functional>

#include "common/failpoint.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace graphscape {

class ResourceBudget {
 public:
  static constexpr uint64_t kUnlimitedBytes = ~0ull;
  static constexpr double kNoDeadline = 0.0;

  /// Unlimited: never refuses.
  ResourceBudget() = default;

  /// `max_bytes` caps cumulative outstanding charges; `max_seconds` (from
  /// construction, 0 = none) bounds wall time. `clock` returns seconds
  /// elapsed since an arbitrary epoch and defaults to the wall clock.
  explicit ResourceBudget(uint64_t max_bytes,
                          double max_seconds = kNoDeadline,
                          std::function<double()> clock = {})
      : max_bytes_(max_bytes),
        max_seconds_(max_seconds),
        clock_(std::move(clock)) {
    start_seconds_ = Now();
  }

  /// Reserve `bytes` for `what`. ResourceExhausted if it would exceed
  /// the cap (ledger unchanged), so callers can degrade and re-charge.
  Status ChargeBytes(uint64_t bytes, const char* what) {
    if (failpoint::Fire("budget/charge")) {
      return Status::ResourceExhausted(
          StrPrintf("injected allocation-cap hit charging %s", what));
    }
    if (bytes > max_bytes_ - charged_bytes_) {
      return Status::ResourceExhausted(StrPrintf(
          "%s needs %llu bytes; %llu of %llu already charged", what,
          static_cast<unsigned long long>(bytes),
          static_cast<unsigned long long>(charged_bytes_),
          static_cast<unsigned long long>(max_bytes_)));
    }
    charged_bytes_ += bytes;
    if (charged_bytes_ > peak_bytes_) peak_bytes_ = charged_bytes_;
    return Status::Ok();
  }

  /// Return a reservation (clamped, so callers can't underflow).
  void ReleaseBytes(uint64_t bytes) {
    charged_bytes_ -= bytes < charged_bytes_ ? bytes : charged_bytes_;
  }

  /// DeadlineExceeded once elapsed time passes max_seconds.
  Status CheckDeadline(const char* what) {
    if (failpoint::Fire("budget/deadline")) {
      return Status::DeadlineExceeded(
          StrPrintf("injected deadline expiry at %s", what));
    }
    if (max_seconds_ <= kNoDeadline) return Status::Ok();
    const double elapsed = Now() - start_seconds_;
    if (elapsed > max_seconds_) {
      return Status::DeadlineExceeded(
          StrPrintf("%s at %.3fs, deadline %.3fs", what, elapsed,
                    max_seconds_));
    }
    return Status::Ok();
  }

  uint64_t charged_bytes() const { return charged_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }
  uint64_t max_bytes() const { return max_bytes_; }
  uint64_t remaining_bytes() const { return max_bytes_ - charged_bytes_; }

 private:
  double Now() const { return clock_ ? clock_() : wall_.Seconds(); }

  uint64_t max_bytes_ = kUnlimitedBytes;
  double max_seconds_ = kNoDeadline;
  std::function<double()> clock_;
  WallTimer wall_;
  double start_seconds_ = 0.0;
  uint64_t charged_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
};

/// The guarded entry points take a ResourceBudget* where nullptr means
/// "unlimited"; this helper keeps their charge sites one-liners.
inline Status ChargeBudget(ResourceBudget* budget, uint64_t bytes,
                           const char* what) {
  return budget == nullptr ? Status::Ok()
                           : budget->ChargeBytes(bytes, what);
}

inline Status CheckBudgetDeadline(ResourceBudget* budget, const char* what) {
  return budget == nullptr ? Status::Ok() : budget->CheckDeadline(what);
}

inline void ReleaseBudget(ResourceBudget* budget, uint64_t bytes) {
  if (budget != nullptr) budget->ReleaseBytes(bytes);
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_BUDGET_H_
