// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "common/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace graphscape {
namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  const std::string message =
      StrPrintf("fs: %s %s: %s", op, path.c_str(), std::strerror(err));
  return err == ENOENT ? Status::NotFound(message)
                       : Status::Unavailable(message);
}

// open(2) with EINTR retry.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

Status CloseChecked(int fd, const std::string& path) {
  // POSIX leaves the fd state unspecified after EINTR from close; on
  // Linux the fd is closed either way, so a retry could close a
  // stranger's fd. Call once, report everything but EINTR.
  if (::close(fd) != 0 && errno != EINTR) {
    return ErrnoStatus("close", path, errno);
  }
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& path) {
  if (failpoint::Fire("fs/fsync")) {
    return failpoint::InjectedFault("fs/fsync");
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("fsync", path, errno);
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  if (failpoint::Fire("fs/open_read")) {
    return failpoint::InjectedFault("fs/open_read");
  }
  const int fd = OpenRetry(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    if (failpoint::Fire("fs/read")) {
      (void)CloseChecked(fd, path);
      return failpoint::InjectedFault("fs/read");
    }
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      (void)CloseChecked(fd, path);
      return ErrnoStatus("read", path, err);
    }
    if (got == 0) break;
    bytes.append(buffer, static_cast<size_t>(got));
  }
  const Status closed = CloseChecked(fd, path);
  if (!closed.ok()) return closed;
  // Corruption-injection seam: flip one bit mid-payload so checksum
  // verification downstream sees a read that "succeeded" with bad bytes
  // (what a failing disk or DMA error actually produces).
  if (failpoint::Fire("fs/read_corrupt") && !bytes.empty()) {
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  }
  return bytes;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes,
                      bool sync) {
  if (failpoint::Fire("fs/open_write")) {
    return failpoint::InjectedFault("fs/open_write");
  }
  const int fd =
      OpenRetry(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  size_t written = 0;
  while (written < bytes.size()) {
    if (failpoint::Fire("fs/write")) {
      (void)CloseChecked(fd, path);
      return failpoint::InjectedFault("fs/write");
    }
    size_t chunk = bytes.size() - written;
    // fs/short_write models a partial write(2) return; the loop must
    // absorb it and still land every byte.
    if (failpoint::Fire("fs/short_write") && chunk > 1) chunk /= 2;
    const ssize_t put = ::write(fd, bytes.data() + written, chunk);
    if (put < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      (void)CloseChecked(fd, path);
      return ErrnoStatus("write", path, err);
    }
    written += static_cast<size_t>(put);
  }
  if (sync) {
    const Status synced = FsyncFd(fd, path);
    if (!synced.ok()) {
      (void)CloseChecked(fd, path);
      return synced;
    }
  }
  return CloseChecked(fd, path);
}

Status WriteFileBytesAtomic(const std::string& path,
                            const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  Status status = WriteFileBytes(tmp, bytes, /*sync=*/true);
  if (status.ok()) status = RenameFile(tmp, path);
  if (!status.ok()) {
    (void)RemoveFile(tmp);
    return status;
  }
  const size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (failpoint::Fire("fs/rename")) {
    return failpoint::InjectedFault("fs/rename");
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (failpoint::Fire("fs/remove")) {
    return failpoint::InjectedFault("fs/remove");
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::Ok();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

StatusOr<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status MakeDirs(const std::string& path) {
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    start = end + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", prefix, errno);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(d);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(d);
      if (err != 0) return ErrnoStatus("readdir", dir, err);
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
        S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDir(const std::string& dir) {
  if (failpoint::Fire("fs/sync_dir")) {
    return failpoint::InjectedFault("fs/sync_dir");
  }
  const int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open", dir, errno);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  // Some filesystems refuse directory fsync (EINVAL); that's not a
  // durability bug we can fix from here, so only real errors surface.
  const int err = rc != 0 ? errno : 0;
  const Status closed = CloseChecked(fd, dir);
  if (rc != 0 && err != EINVAL) return ErrnoStatus("fsync", dir, err);
  return closed;
}

}  // namespace graphscape
