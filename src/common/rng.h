// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic, seedable PRNG for generators and benchmarks.
//
// xoshiro256++ seeded through splitmix64: fast (sub-nanosecond per draw),
// reproducible across platforms, and decoupled from std::mt19937's
// implementation-defined distributions — UniformInt/UniformDouble below are
// bit-exact everywhere, which keeps generated graphs identical between CI
// and local runs.

#ifndef GRAPHSCAPE_COMMON_RNG_H_
#define GRAPHSCAPE_COMMON_RNG_H_

#include <cstdint>

namespace graphscape {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw (xoshiro256++).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  uint32_t UniformInt(uint32_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free-in-practice reduction; the
    // rejection loop removes modulo bias entirely.
    uint64_t x = Next() & 0xffffffffull;
    uint64_t m = x * bound;
    uint32_t low = static_cast<uint32_t>(m);
    if (low < bound) {
      const uint32_t threshold = static_cast<uint32_t>(-bound) % bound;
      while (low < threshold) {
        x = Next() & 0xffffffffull;
        m = x * bound;
        low = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_RNG_H_
