// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared-memory parallel-for over a small fixed-size thread pool — the
// construction engine behind the chunked scalar-tree sweeps
// (scalar/tree_core.h), the parallel metrics substrate, the spring-layout
// repulsion pass, and the terrain raster's row bands. The full threading
// model (pool lifecycle, grain sizes, the determinism contract) is
// documented in docs/PARALLELISM.md; the invariants callers rely on:
//
//  * Deterministic by construction. ParallelFor runs a pure body over
//    disjoint indices; ParallelReduce splits the range into blocks whose
//    boundaries depend only on (range, grain) — never on the thread
//    count — and combines block partials in ascending block order on the
//    calling thread. A caller whose body is a pure function of its index
//    therefore gets bit-identical results for EVERY thread count,
//    including 1.
//
//  * num_threads == 1 is an exact sequential fallback: the body runs
//    inline on the calling thread, the pool is never touched (not even
//    lazily constructed), and no synchronization happens. num_threads ==
//    0 means DefaultThreads() — the GRAPHSCAPE_THREADS environment
//    override, else std::thread::hardware_concurrency().
//
//  * Allocation-free dispatch. A parallel region is published to the
//    pool as a plain function pointer plus a context pointer (no
//    std::function, no per-task heap nodes), so hot loops that dispatch
//    one region per iteration (spring layout) stay allocation-free after
//    the pool's one-time lazy spawn. Callers needing per-thread scratch
//    allocate it up front, indexed by the dense `lane` id every block
//    invocation receives — the per-thread arena pattern the
//    allocation-discipline tests pin.
//
//  * Lanes, not threads. A region running at effective width T hands out
//    lane ids 0..T-1; lane 0 is always the calling thread. A lane
//    processes whole blocks, so per-lane scratch never needs interior
//    locking; blocks are claimed dynamically (atomic counter) for load
//    balance, which is safe precisely because nothing downstream may
//    depend on the block -> lane assignment.

#ifndef GRAPHSCAPE_COMMON_PARALLEL_H_
#define GRAPHSCAPE_COMMON_PARALLEL_H_

#include <cstdint>
#include <vector>

namespace graphscape {

/// Hard ceiling on pool width; requests beyond it are clamped.
inline constexpr uint32_t kMaxThreads = 64;

/// The session-wide default width: GRAPHSCAPE_THREADS if set to a
/// positive integer (clamped to [1, kMaxThreads]; empty or malformed
/// values are ignored), else std::thread::hardware_concurrency(), else 1.
uint32_t DefaultThreads();

struct ParallelOptions {
  /// Lanes to run on. 0 = DefaultThreads(); 1 = exact sequential inline
  /// execution (the pool is not touched).
  uint32_t num_threads = 0;
  /// Minimum indices per block. 0 lets the algorithm pick its own grain
  /// (ParallelFor/ParallelReduce default to 1024; the tree builds use
  /// their documented sweep-chunk default). Block boundaries depend only
  /// on (range, grain) so reductions stay thread-count independent.
  uint64_t grain = 0;
};

/// The lane count a region with these options will actually use for a
/// range of `count` indices — what callers size per-lane scratch by.
/// Never exceeds the block count (a lane with no block to claim is not
/// spawned into the region).
uint32_t EffectiveLanes(const ParallelOptions& options, uint64_t count);

namespace internal {

/// One region: invoke fn(ctx, block, lane) for every block in
/// [0, num_blocks), spread over num_threads lanes (lane 0 = caller).
/// Blocks are claimed dynamically; the call returns after every block
/// completed and every worker lane has left the region. Thread-safe but
/// regions are serialized — one region runs at a time.
void RunRegion(uint32_t num_threads, uint64_t num_blocks,
               void (*fn)(void* ctx, uint64_t block, uint32_t lane),
               void* ctx);

/// Join the pool's workers (used by tests; the pool respawns lazily).
void ShutdownPoolForTest();

inline uint64_t ResolveGrain(uint64_t grain, uint64_t fallback) {
  return grain == 0 ? fallback : grain;
}

}  // namespace internal

/// body(i) for every i in [begin, end), spread over the pool. The body
/// must be safe to run concurrently for distinct indices (disjoint
/// writes); index -> lane assignment is unspecified.
template <typename Body>
void ParallelFor(uint64_t begin, uint64_t end, const ParallelOptions& options,
                 Body&& body) {
  if (begin >= end) return;
  const uint64_t count = end - begin;
  const uint64_t grain = internal::ResolveGrain(options.grain, 1024);
  const uint32_t lanes = EffectiveLanes(options, count);
  if (lanes <= 1) {
    for (uint64_t i = begin; i < end; ++i) body(i);
    return;
  }
  struct Ctx {
    Body* body;
    uint64_t begin, end, grain;
  } ctx{&body, begin, end, grain};
  const uint64_t num_blocks = (count + grain - 1) / grain;
  internal::RunRegion(
      lanes, num_blocks,
      [](void* raw, uint64_t block, uint32_t) {
        Ctx* c = static_cast<Ctx*>(raw);
        const uint64_t lo = c->begin + block * c->grain;
        const uint64_t hi = lo + c->grain < c->end ? lo + c->grain : c->end;
        for (uint64_t i = lo; i < hi; ++i) (*c->body)(i);
      },
      &ctx);
}

/// body(block, lane) for every block in [0, num_blocks). The caller owns
/// the block -> range mapping; `lane` (dense in [0, EffectiveLanes))
/// indexes per-thread scratch. Nothing may depend on which lane ran
/// which block.
template <typename Body>
void ParallelForBlocks(uint64_t num_blocks, const ParallelOptions& options,
                       Body&& body) {
  if (num_blocks == 0) return;
  const uint32_t lanes =
      EffectiveLanes({options.num_threads, /*grain=*/1}, num_blocks);
  if (lanes <= 1) {
    for (uint64_t b = 0; b < num_blocks; ++b) body(b, 0u);
    return;
  }
  struct Ctx {
    Body* body;
  } ctx{&body};
  internal::RunRegion(
      lanes, num_blocks,
      [](void* raw, uint64_t block, uint32_t lane) {
        (*static_cast<Ctx*>(raw)->body)(block, lane);
      },
      &ctx);
}

/// Deterministic map-reduce: acc starts at `identity` per block,
/// map(i, &acc) folds indices into it, block partials are combined with
/// combine(total, partial) in ASCENDING block order on the calling
/// thread. Because block boundaries depend only on (range, grain), the
/// result is identical for every thread count — but NOT necessarily to a
/// single flat left fold (floating-point callers get "identical across
/// thread counts", integer callers get full equality).
template <typename T, typename Map, typename Combine>
T ParallelReduce(uint64_t begin, uint64_t end, const ParallelOptions& options,
                 T identity, Map&& map, Combine&& combine) {
  if (begin >= end) return identity;
  const uint64_t count = end - begin;
  const uint64_t grain = internal::ResolveGrain(options.grain, 1024);
  const uint64_t num_blocks = (count + grain - 1) / grain;
  std::vector<T> partials(num_blocks, identity);
  ParallelForBlocks(num_blocks, options, [&](uint64_t block, uint32_t) {
    const uint64_t lo = begin + block * grain;
    const uint64_t hi = lo + grain < end ? lo + grain : end;
    T acc = identity;
    for (uint64_t i = lo; i < hi; ++i) map(i, &acc);
    partials[block] = acc;
  });
  T total = identity;
  for (uint64_t block = 0; block < num_blocks; ++block)
    total = combine(total, partials[block]);
  return total;
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_PARALLEL_H_
