// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared O(1)-per-operation bucket structure for peeling decompositions
// (Batagelj–Zaversnik discipline). Used by K-Core over vertices, K-Truss
// over edges, and (3,4)-nucleus over triangles: items are bin-sorted by
// support, peeled in nondecreasing order, and each demotion swaps the item
// with the head of its bucket and advances the bucket boundary.
//
// Contract: peel items by iterating i = 0..NumItems()-1 and taking
// ItemAt(i); between steps, only Demote() may change supports. Demote is a
// no-op at or below the floor level, which both pins already-peeled items
// (their support equals their peel level) and implements the "support never
// drops below the current level" rule of truss/nucleus peeling.

#ifndef GRAPHSCAPE_COMMON_BUCKET_PEEL_H_
#define GRAPHSCAPE_COMMON_BUCKET_PEEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace graphscape {

class BucketPeeler {
 public:
  /// `support` is borrowed and mutated in place by Demote; it must outlive
  /// the peeler.
  explicit BucketPeeler(std::vector<uint32_t>* support) : support_(*support) {
    const uint32_t n = static_cast<uint32_t>(support_.size());
    uint32_t max_support = 0;
    for (const uint32_t s : support_) max_support = std::max(max_support, s);
    bin_.assign(max_support + 2, 0);
    for (uint32_t i = 0; i < n; ++i) ++bin_[support_[i] + 1];
    for (uint32_t s = 0; s <= max_support; ++s) bin_[s + 1] += bin_[s];
    order_.resize(n);
    pos_.resize(n);
    std::vector<uint32_t> cursor(bin_.begin(), bin_.end() - 1);
    for (uint32_t i = 0; i < n; ++i) {
      pos_[i] = cursor[support_[i]]++;
      order_[pos_[i]] = i;
    }
  }

  uint32_t NumItems() const { return static_cast<uint32_t>(order_.size()); }

  /// The item peeled at step i; valid once every j < i has been peeled.
  uint32_t ItemAt(uint32_t i) const { return order_[i]; }

  /// Decrement item's support by one unless it is already <= floor_level.
  void Demote(uint32_t item, uint32_t floor_level) {
    if (support_[item] <= floor_level) return;
    const uint32_t s = support_[item];
    const uint32_t pi = pos_[item];
    const uint32_t pw = bin_[s];
    const uint32_t w = order_[pw];
    if (item != w) {
      pos_[item] = pw;
      pos_[w] = pi;
      order_[pi] = w;
      order_[pw] = item;
    }
    ++bin_[s];
    --support_[item];
  }

 private:
  std::vector<uint32_t>& support_;
  std::vector<uint32_t> bin_;    // bucket start positions, by support
  std::vector<uint32_t> order_;  // items sorted by current support
  std::vector<uint32_t> pos_;    // item -> slot in order_
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_BUCKET_PEEL_H_
