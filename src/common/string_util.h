// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tiny string helpers the figure/table benches lean on: printf-style
// formatting into std::string, and human-readable durations for the
// construction-time tables (Table II's tc/te/tv columns).

#ifndef GRAPHSCAPE_COMMON_STRING_UTIL_H_
#define GRAPHSCAPE_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

namespace graphscape {

/// printf into a std::string. Two-pass vsnprintf: the common short-output
/// case formats straight into a stack buffer; longer output sizes exactly.
inline std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrPrintf(const char* format, ...) {
  char stack_buffer[256];
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed =
      std::vsnprintf(stack_buffer, sizeof(stack_buffer), format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  if (static_cast<size_t>(needed) < sizeof(stack_buffer)) {
    va_end(args_copy);
    return std::string(stack_buffer, static_cast<size_t>(needed));
  }
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(&result[0], result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

/// Renders a duration at the precision a human reading a results table
/// wants: "1h02m", "2m03s", "3.45s", "12.30ms", "45.60us", "789ns".
/// Non-positive durations render as "0s".
inline std::string HumanSeconds(double seconds) {
  if (seconds <= 0.0) return "0s";
  if (seconds >= 3600.0) {
    const uint64_t minutes = static_cast<uint64_t>(seconds / 60.0);
    return StrPrintf("%lluh%02llum",
                     static_cast<unsigned long long>(minutes / 60),
                     static_cast<unsigned long long>(minutes % 60));
  }
  if (seconds >= 60.0) {
    const uint64_t whole = static_cast<uint64_t>(seconds);
    return StrPrintf("%llum%02llus",
                     static_cast<unsigned long long>(whole / 60),
                     static_cast<unsigned long long>(whole % 60));
  }
  if (seconds >= 1.0) return StrPrintf("%.2fs", seconds);
  if (seconds >= 1e-3) return StrPrintf("%.2fms", seconds * 1e3);
  if (seconds >= 1e-6) return StrPrintf("%.2fus", seconds * 1e6);
  return StrPrintf("%.0fns", seconds * 1e9);
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_STRING_UTIL_H_
