// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace graphscape {
namespace {

uint32_t ParseThreadsEnv() {
  const char* env = std::getenv("GRAPHSCAPE_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return 0;
  return parsed > kMaxThreads ? kMaxThreads
                              : static_cast<uint32_t>(parsed);
}

// One in-flight parallel region. Lives on the calling thread's stack;
// RunRegion does not return until `active_workers` drops back to zero, so
// workers never dangle into a dead frame.
struct Region {
  void (*fn)(void* ctx, uint64_t block, uint32_t lane) = nullptr;
  void* ctx = nullptr;
  uint64_t num_blocks = 0;
  uint32_t max_lanes = 0;
  std::atomic<uint64_t> next_block{0};
  std::atomic<uint32_t> next_lane{1};  // lane 0 is the calling thread
  uint64_t done_blocks = 0;            // guarded by the pool mutex
  uint32_t active_workers = 0;         // guarded by the pool mutex
};

// Lazy global pool. Workers sleep on a condition variable between
// regions; publishing a region bumps `epoch_` so a worker that raced a
// previous wakeup cannot re-enter a finished region. The pool is a
// function-local static (destroyed at exit, joining its workers) so the
// leak-sanitizer legs stay clean.
class ThreadPool {
 public:
  ~ThreadPool() { Shutdown(); }

  static ThreadPool& Global() {
    static ThreadPool pool;
    return pool;
  }

  void Run(uint32_t num_threads, uint64_t num_blocks,
           void (*fn)(void* ctx, uint64_t block, uint32_t lane), void* ctx) {
    if (num_blocks == 0) return;
    if (num_threads > kMaxThreads) num_threads = kMaxThreads;
    if (static_cast<uint64_t>(num_threads) > num_blocks)
      num_threads = static_cast<uint32_t>(num_blocks);
    if (num_threads <= 1) {
      for (uint64_t b = 0; b < num_blocks; ++b) fn(ctx, b, 0);
      return;
    }
    // Regions are serialized: nested/concurrent callers run one at a time.
    std::lock_guard<std::mutex> run_lock(run_mu_);

    Region region;
    region.fn = fn;
    region.ctx = ctx;
    region.num_blocks = num_blocks;
    region.max_lanes = num_threads;
    {
      std::unique_lock<std::mutex> lock(mu_);
      EnsureWorkersLocked(num_threads - 1);
      region_ = &region;
      ++epoch_;
    }
    work_cv_.notify_all();
    WorkOn(&region, /*lane=*/0);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&region] {
        return region.done_blocks == region.num_blocks &&
               region.active_workers == 0;
      });
      region_ = nullptr;
    }
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = false;
    }
  }

 private:
  void EnsureWorkersLocked(uint32_t want) {
    while (workers_.size() < want)
      workers_.emplace_back([this] { WorkerLoop(); });
  }

  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    for (;;) {
      Region* region = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this, seen_epoch] {
          return shutdown_ || (epoch_ != seen_epoch && region_ != nullptr);
        });
        if (shutdown_) return;
        seen_epoch = epoch_;
        region = region_;
        ++region->active_workers;
      }
      const uint32_t lane =
          region->next_lane.fetch_add(1, std::memory_order_relaxed);
      if (lane < region->max_lanes) WorkOn(region, lane);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --region->active_workers;
      }
      done_cv_.notify_one();
    }
  }

  // Claim blocks until the region is drained, then account for them in
  // one batch so the completion wait sees a consistent count.
  void WorkOn(Region* region, uint32_t lane) {
    uint64_t claimed = 0;
    for (;;) {
      const uint64_t block =
          region->next_block.fetch_add(1, std::memory_order_relaxed);
      if (block >= region->num_blocks) break;
      region->fn(region->ctx, block, lane);
      ++claimed;
    }
    if (claimed > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      region->done_blocks += claimed;
    }
  }

  std::mutex run_mu_;  // serializes whole regions
  std::mutex mu_;      // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Region* region_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace

uint32_t DefaultThreads() {
  static const uint32_t cached = [] {
    const uint32_t from_env = ParseThreadsEnv();
    if (from_env > 0) return from_env;
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return 1u;
    return hw > kMaxThreads ? kMaxThreads : static_cast<uint32_t>(hw);
  }();
  return cached;
}

uint32_t EffectiveLanes(const ParallelOptions& options, uint64_t count) {
  if (count == 0) return 0;
  uint32_t lanes =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  if (lanes > kMaxThreads) lanes = kMaxThreads;
  const uint64_t grain = internal::ResolveGrain(options.grain, 1024);
  const uint64_t num_blocks = (count + grain - 1) / grain;
  if (static_cast<uint64_t>(lanes) > num_blocks)
    lanes = static_cast<uint32_t>(num_blocks);
  return lanes;
}

namespace internal {

void RunRegion(uint32_t num_threads, uint64_t num_blocks,
               void (*fn)(void* ctx, uint64_t block, uint32_t lane),
               void* ctx) {
  ThreadPool::Global().Run(num_threads, num_blocks, fn, ctx);
}

void ShutdownPoolForTest() { ThreadPool::Global().Shutdown(); }

}  // namespace internal
}  // namespace graphscape
