// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.

#include "common/failpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace graphscape {
namespace failpoint {
namespace {

struct ArmedState {
  Spec spec;
  Rng rng{0};
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool armed = false;  // false after Disarm: counters readable, never fires
};

// g_armed_count gates the fast path: zero means no failpoint anywhere is
// armed and Fire() returns after one relaxed load. It counts ARMED
// entries (disarmed entries linger in the map only for their counters).
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::map<std::string, ArmedState>& Registry() {
  static std::map<std::string, ArmedState>* r =
      new std::map<std::string, ArmedState>;
  return *r;
}

// Parses one "name=spec" clause. Returns false (with *error set) on
// grammar violations; never arms partially.
bool ParseClause(const std::string& clause, std::string* name, Spec* spec,
                 std::string* error) {
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "expected name=spec in '" + clause + "'";
    return false;
  }
  *name = clause.substr(0, eq);
  const std::string body = clause.substr(eq + 1);
  const size_t paren = body.find('(');
  const std::string kind =
      paren == std::string::npos ? body : body.substr(0, paren);
  std::string args;
  if (paren != std::string::npos) {
    if (body.back() != ')') {
      *error = "unterminated argument list in '" + clause + "'";
      return false;
    }
    args = body.substr(paren + 1, body.size() - paren - 2);
  }
  char* end = nullptr;
  if (kind == "always" && args.empty()) {
    *spec = Spec::Always();
    return true;
  }
  if (kind == "once") {
    uint64_t nth = 0;
    if (!args.empty()) {
      nth = std::strtoull(args.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        *error = "bad once() argument in '" + clause + "'";
        return false;
      }
    }
    *spec = Spec::Once(nth);
    return true;
  }
  if (kind == "after") {
    const uint64_t n = std::strtoull(args.c_str(), &end, 10);
    if (args.empty() || end == nullptr || *end != '\0') {
      *error = "bad after() argument in '" + clause + "'";
      return false;
    }
    *spec = Spec::After(n);
    return true;
  }
  if (kind == "prob") {
    const size_t comma = args.find(',');
    const std::string p_str =
        comma == std::string::npos ? args : args.substr(0, comma);
    const double p = std::strtod(p_str.c_str(), &end);
    if (p_str.empty() || end == nullptr || *end != '\0' || p < 0.0 ||
        p > 1.0) {
      *error = "bad prob() probability in '" + clause + "'";
      return false;
    }
    uint64_t seed = Spec().seed;
    if (comma != std::string::npos) {
      const std::string s_str = args.substr(comma + 1);
      seed = std::strtoull(s_str.c_str(), &end, 10);
      if (s_str.empty() || end == nullptr || *end != '\0') {
        *error = "bad prob() seed in '" + clause + "'";
        return false;
      }
    }
    *spec = Spec::Probability(p, seed);
    return true;
  }
  *error = "unknown spec '" + body + "' in '" + clause + "'";
  return false;
}

// Environment arming runs once, before main touches any seam: a static
// initializer in this TU. Failures are fatal — a CI job that armed a
// misspelled failpoint must not silently run fault-free.
struct EnvArmer {
  EnvArmer() {
    const char* env = std::getenv("GRAPHSCAPE_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    const Status status = ArmFromString(env);
    if (!status.ok()) {
      std::fprintf(stderr, "GRAPHSCAPE_FAILPOINTS: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};
const EnvArmer g_env_armer;

}  // namespace

bool Fire(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end() || !it->second.armed) return false;
  ArmedState& state = it->second;
  const uint64_t hit = state.hits++;
  if (hit < state.spec.skip) return false;
  if (state.spec.max_fires != 0 && state.fires >= state.spec.max_fires) {
    return false;
  }
  if (state.spec.probability < 1.0 &&
      state.rng.UniformDouble() >= state.spec.probability) {
    return false;
  }
  ++state.fires;
  return true;
}

void Arm(const std::string& name, const Spec& spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmedState& state = Registry()[name];
  if (!state.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  state.spec = spec;
  state.rng = Rng(spec.seed);
  state.hits = 0;
  state.fires = 0;
  state.armed = true;
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  for (auto& entry : Registry()) {
    if (entry.second.armed) {
      entry.second.armed = false;
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FireCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.fires;
}

Status ArmFromString(const std::string& armed_list) {
  // Parse the whole list before arming anything, so a bad clause can't
  // leave a half-armed configuration behind.
  std::vector<std::pair<std::string, Spec>> parsed;
  size_t start = 0;
  while (start <= armed_list.size()) {
    size_t end = armed_list.find(';', start);
    if (end == std::string::npos) end = armed_list.size();
    const std::string clause = armed_list.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    std::string name, error;
    Spec spec;
    if (!ParseClause(clause, &name, &spec, &error)) {
      return Status::InvalidArgument("failpoint: " + error);
    }
    parsed.emplace_back(std::move(name), spec);
  }
  for (const auto& entry : parsed) Arm(entry.first, entry.second);
  return Status::Ok();
}

Status InjectedFault(const char* name) {
  return Status::Unavailable(
      StrPrintf("injected fault at failpoint '%s'", name));
}

}  // namespace failpoint
}  // namespace graphscape
