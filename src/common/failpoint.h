// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Named failpoints: the fault-injection seams the recovery test suite
// and CI drive. Every fallible boundary in the I/O and budget layers is
// labeled with a stable name ("fs/rename", "cache/crash_after_temp",
// "budget/charge", ...; the catalog lives in docs/ROBUSTNESS.md) and
// asks Fire(name) whether to fail THIS hit. Failpoints are always
// compiled in — no build flavor divergence between what CI proves and
// what ships — and cost exactly one relaxed atomic load while nothing is
// armed, so production paths pay nothing measurable.
//
// Arming is programmatic (Arm / ScopedFailpoint, the unit-test path) or
// via the environment (the CI fault-injection job):
//
//   GRAPHSCAPE_FAILPOINTS="fs/fsync=once;cache/load_corrupt=after(2)"
//
// parsed once at process start. Spec grammar, per failpoint:
//
//   always        every hit fires
//   once          the next hit fires, later hits pass
//   once(N)       hits 0..N-1 pass, hit N fires, later hits pass
//   after(N)      hits 0..N-1 pass, every hit >= N fires
//   prob(P)       each hit fires with probability P (seeded, deterministic)
//   prob(P,S)     same with explicit seed S
//
// Trigger decisions are made under a mutex (armed state only — the
// disarmed fast path never touches it); hit/fire counters let tests
// assert a seam was actually exercised.

#ifndef GRAPHSCAPE_COMMON_FAILPOINT_H_
#define GRAPHSCAPE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace graphscape {
namespace failpoint {

/// When and how often an armed failpoint fires. The factory functions
/// below match the env grammar; the fields compose (skip, then cap,
/// then probability) for anything the grammar can't say.
struct Spec {
  uint64_t skip = 0;         ///< pass this many hits before firing
  uint64_t max_fires = 0;    ///< stop firing after this many (0 = no cap)
  double probability = 1.0;  ///< chance an eligible hit fires
  uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< for the probability draw

  static Spec Always() { return Spec{}; }
  static Spec Once(uint64_t nth = 0) { return Spec{nth, 1, 1.0, 0}; }
  static Spec After(uint64_t n) { return Spec{n, 0, 1.0, 0}; }
  static Spec Probability(double p, uint64_t seed = 0x9e3779b97f4a7c15ull) {
    return Spec{0, 0, p, seed};
  }
};

/// Should the seam named `name` fail this hit? The only call sites are
/// the labeled seams themselves. One relaxed atomic load when nothing at
/// all is armed (the steady production state).
bool Fire(const char* name);

/// Arm `name` with `spec`; replaces any previous arming (and resets its
/// counters).
void Arm(const std::string& name, const Spec& spec);

/// Disarm one failpoint / every failpoint. Counters are kept until the
/// name is re-armed, so tests can Disarm then assert FireCount.
void Disarm(const std::string& name);
void DisarmAll();

/// Lifetime hits (Fire calls) and actual fires for `name` since it was
/// last armed. 0 for names never armed.
uint64_t HitCount(const std::string& name);
uint64_t FireCount(const std::string& name);

/// Parses "name=spec[;name=spec...]" (the GRAPHSCAPE_FAILPOINTS value)
/// and arms every entry. InvalidArgument names the offending clause.
Status ArmFromString(const std::string& armed_list);

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor so a failing test can't leak an armed seam into the next.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const Spec& spec) : name_(std::move(name)) {
    Arm(name_, spec);
  }
  ~ScopedFailpoint() { Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  uint64_t fire_count() const { return FireCount(name_); }
  uint64_t hit_count() const { return HitCount(name_); }

 private:
  std::string name_;
};

/// The Status an injected fault surfaces as: Unavailable (the transient,
/// retryable class) with the seam name in the message, so a test or log
/// line can tell an injected fault from a real one.
Status InjectedFault(const char* name);

}  // namespace failpoint
}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_FAILPOINT_H_
