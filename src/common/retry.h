// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Bounded retry with exponential backoff and deterministic jitter, for
// the transient (kUnavailable) failure class only — deterministic errors
// (bad bytes, missing files, exhausted budgets) fail straight through;
// retrying them would just triple the latency of a certain failure.
//
// Everything time-shaped is injectable: the sleeper so tests run in
// microseconds while asserting the exact backoff schedule, the jitter
// seed so that schedule is reproducible. Backoff for attempt k (0-based
// count of failures so far) is
//
//   min(initial * multiplier^(k-1), max) * (1 - jitter + 2*jitter*u_k)
//
// with u_k drawn from a seeded xoshiro stream (common/rng.h), so two
// processes with different seeds spread out instead of thundering in
// lockstep, yet a test with a fixed seed sees the same schedule forever.

#ifndef GRAPHSCAPE_COMMON_RETRY_H_
#define GRAPHSCAPE_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace graphscape {

struct RetryOptions {
  /// Total tries, including the first. 1 disables retry entirely.
  uint32_t max_attempts = 3;
  double initial_backoff_seconds = 0.005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
  /// Fractional spread around the nominal backoff: 0.25 draws uniformly
  /// from [0.75x, 1.25x]. 0 disables jitter.
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0x5ca1ab1eull;
  /// Injected sleeper; the default really sleeps. Tests install a
  /// recorder to assert the schedule without waiting for it.
  std::function<void(double seconds)> sleeper;
};

namespace retry_internal {

inline void DefaultSleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace retry_internal

/// The backoff before retry number `attempt` (1-based: attempt 1 is the
/// first RE-try), jittered from `rng`. Exposed so tests pin the schedule.
inline double RetryBackoffSeconds(const RetryOptions& options,
                                  uint32_t attempt, Rng* rng) {
  double backoff = options.initial_backoff_seconds;
  for (uint32_t i = 1; i < attempt; ++i) {
    backoff *= options.backoff_multiplier;
    if (backoff >= options.max_backoff_seconds) break;
  }
  if (backoff > options.max_backoff_seconds) {
    backoff = options.max_backoff_seconds;
  }
  if (options.jitter_fraction > 0.0) {
    const double spread = options.jitter_fraction;
    backoff *= 1.0 - spread + 2.0 * spread * rng->UniformDouble();
  }
  return backoff;
}

/// Runs `fn` (a callable returning Status) until it returns OK, returns
/// a non-retryable code, or max_attempts is spent. The last Status is
/// returned verbatim either way.
template <typename Fn>
Status RetryWithBackoff(const RetryOptions& options, Fn&& fn) {
  Rng rng(options.jitter_seed);
  const auto& sleep =
      options.sleeper ? options.sleeper : retry_internal::DefaultSleep;
  Status status = Status::Ok();
  const uint32_t attempts = options.max_attempts == 0 ? 1 : options.max_attempts;
  for (uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt < attempts) {
      sleep(RetryBackoffSeconds(options, attempt, &rng));
    }
  }
  return status;
}

/// StatusOr flavor: retries while fn().status() is retryable.
template <typename T, typename Fn>
StatusOr<T> RetryWithBackoffOr(const RetryOptions& options, Fn&& fn) {
  Rng rng(options.jitter_seed);
  const auto& sleep =
      options.sleeper ? options.sleeper : retry_internal::DefaultSleep;
  const uint32_t attempts = options.max_attempts == 0 ? 1 : options.max_attempts;
  StatusOr<T> result = fn();
  for (uint32_t attempt = 1;
       !result.ok() && IsRetryable(result.status()) && attempt < attempts;
       ++attempt) {
    sleep(RetryBackoffSeconds(options, attempt, &rng));
    result = fn();
  }
  return result;
}

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_RETRY_H_
