// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal Status / StatusOr for operations that can fail for resource or
// environmental reasons rather than programmer error. The code set is
// deliberately small and grown only when a caller actually branches on a
// new code:
//
//   kInvalidArgument    hostile or malformed input (bad artifact bytes)
//   kResourceExhausted  a size/byte cap would be exceeded (naive edge
//                       tree guard, ResourceBudget::ChargeBytes)
//   kNotFound           the named thing does not exist (missing file,
//                       cache key never stored) — distinct from an I/O
//                       error so callers can rebuild instead of retrying
//   kDataLoss           bytes were stored but came back wrong (checksum
//                       mismatch, torn write) — the cache quarantines
//                       and rebuilds on this code
//   kUnavailable        transient environmental failure (EINTR-class
//                       I/O, injected faults) — the only retryable code
//   kDeadlineExceeded   a ResourceBudget deadline expired

#ifndef GRAPHSCAPE_COMMON_STATUS_H_
#define GRAPHSCAPE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace graphscape {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kResourceExhausted,
  kNotFound,
  kDataLoss,
  kUnavailable,
  kDeadlineExceeded,
};

class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT: " + message_;
      case StatusCode::kResourceExhausted:
        return "RESOURCE_EXHAUSTED: " + message_;
      case StatusCode::kNotFound:
        return "NOT_FOUND: " + message_;
      case StatusCode::kDataLoss:
        return "DATA_LOSS: " + message_;
      case StatusCode::kUnavailable:
        return "UNAVAILABLE: " + message_;
      case StatusCode::kDeadlineExceeded:
        return "DEADLINE_EXCEEDED: " + message_;
    }
    return "UNKNOWN";
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The transient class: worth retrying with backoff (common/retry.h).
/// Everything else is deterministic — retrying can't help.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// Either a value or the Status explaining its absence. value() asserts
/// ok(); callers branch on ok() first (see bench_table2_construction.cpp).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr from Status requires an error");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_STATUS_H_
