// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal Status / StatusOr for operations that can fail for resource
// reasons rather than programmer error — e.g. the naive dual-graph
// edge-tree baseline, whose line graph is Θ(Σ deg²) and must be guarded
// by a size cap instead of silently exhausting memory on hub-heavy
// graphs. Deliberately tiny: two error codes cover every current caller;
// grow it only when a new code is actually needed.

#ifndef GRAPHSCAPE_COMMON_STATUS_H_
#define GRAPHSCAPE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace graphscape {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kResourceExhausted,
};

class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT: " + message_;
      case StatusCode::kResourceExhausted:
        return "RESOURCE_EXHAUSTED: " + message_;
    }
    return "UNKNOWN";
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining its absence. value() asserts
/// ok(); callers branch on ok() first (see bench_table2_construction.cpp).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr from Status requires an error");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_STATUS_H_
