// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Hardened POSIX file I/O — the only layer in the repo that touches the
// filesystem. Every operation:
//
//   * retries EINTR and loops short reads/writes to completion,
//   * distinguishes NotFound (ENOENT) from Unavailable (every other
//     errno — the transient, retryable class) in the returned Status,
//   * is a labeled failpoint seam (fs/open_read, fs/read, fs/open_write,
//     fs/short_write, fs/write, fs/fsync, fs/rename, fs/remove,
//     fs/read_corrupt — docs/ROBUSTNESS.md has the catalog), so the
//     recovery suite can inject any I/O failure without a real disk
//     fault.
//
// WriteFileBytesAtomic is the crash-safety primitive the TreeArtifact
// cache and SaveTreeArtifact build on: bytes land in `path + ".tmp"`,
// are fsynced, renamed over `path`, and the parent directory is fsynced
// — a crash at any step leaves either the old file intact or a stale
// .tmp that recovery deletes; never a half-written `path`.

#ifndef GRAPHSCAPE_COMMON_FS_H_
#define GRAPHSCAPE_COMMON_FS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace graphscape {

/// The whole file as bytes. NotFound if `path` does not exist,
/// Unavailable on any other I/O failure.
StatusOr<std::string> ReadFileBytes(const std::string& path);

/// Plain (non-atomic) write: create/truncate, write everything, then
/// fsync when `sync` — the temp-file half of an atomic write, or a file
/// whose partial existence is harmless.
Status WriteFileBytes(const std::string& path, const std::string& bytes,
                      bool sync);

/// Crash-safe replace of `path` with `bytes`: temp write + fsync +
/// rename + parent-directory fsync. On failure the previous `path`
/// content (if any) is untouched and the temp file is best-effort
/// removed.
Status WriteFileBytesAtomic(const std::string& path,
                            const std::string& bytes);

/// rename(2). NotFound if `from` is missing, Unavailable otherwise.
Status RenameFile(const std::string& from, const std::string& to);

/// unlink(2). OK if the file was already gone (callers remove stale
/// temps without caring who won the race).
Status RemoveFile(const std::string& path);

/// True iff `path` exists (any file type).
bool PathExists(const std::string& path);

/// Size in bytes. NotFound / Unavailable like ReadFileBytes.
StatusOr<uint64_t> FileSizeBytes(const std::string& path);

/// mkdir -p one level at a time; OK if it already exists.
Status MakeDirs(const std::string& path);

/// Regular-file names (not paths) directly inside `dir`, sorted.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

/// fsync the directory itself so a renamed-in entry survives a crash.
Status SyncDir(const std::string& dir);

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_FS_H_
