// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Wall-clock timer for bench banners and coarse phase timing.

#ifndef GRAPHSCAPE_COMMON_TIMER_H_
#define GRAPHSCAPE_COMMON_TIMER_H_

#include <chrono>

namespace graphscape {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graphscape

#endif  // GRAPHSCAPE_COMMON_TIMER_H_
