// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 7: large-scale terrains (Wikipedia, Cit-Patent) for K-Core and
// K-Truss fields, with the densest-structure drill-down the paper
// highlights (K-Truss with K=86, K-Core with K=64 on the real data).
// Runs on scale-divided analogues by default; set GRAPHSCAPE_FULL_SCALE=1
// to regenerate at paper scale.
//
// Both super trees are served through the crash-safe ArtifactCache
// (scalar/artifact_cache.h): the first run builds and persists them, and
// reruns load checksum-verified artifacts instead of re-running the
// K-Core/K-Truss sweeps — at paper scale that is the dominant cost. A
// corrupt or missing entry transparently falls back to a rebuild.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/artifact_cache.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/simplify.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/terrain_raster.h"

namespace {

using namespace graphscape;

bool Run(ArtifactCache& cache, DatasetId id, const std::string& out) {
  DatasetOptions options;
  if (bench::FullScale()) options.scale_divisor = 1;
  WallTimer timer;
  const Dataset ds = MakeDataset(id, options);
  std::printf("%s (1/%u scale): %u vertices, %llu edges [gen %.1fs]\n",
              ds.spec.name, ds.scale_divisor, ds.graph.NumVertices(),
              static_cast<unsigned long long>(ds.graph.NumEdges()),
              timer.Seconds());
  // The scale divisor is part of the cache key: a 1/16-scale Wikipedia and
  // the paper-scale one are different graphs, so they must never collide.
  const std::string dataset_key =
      std::string(ds.spec.name) + "@1-" + std::to_string(ds.scale_divisor);

  // K-Core terrain.
  timer.Restart();
  const StatusOr<TreeArtifact> core = cache.GetOrBuild(
      ArtifactKey{dataset_key, "KC"}, [&]() -> StatusOr<TreeArtifact> {
        const VertexScalarField kc =
            VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
        TreeArtifact artifact;
        // The parallel build is byte-identical to the sequential one, so
        // the cache's checksum verification doubles as an end-to-end
        // determinism check across thread counts and reruns.
        artifact.tree = SuperTree(BuildVertexScalarTreeParallel(
            ds.graph, kc, {bench::Threads(), 0}));
        artifact.field_name = kc.Name();
        artifact.field_values = kc.Values();
        return artifact;
      });
  if (!core.ok()) {
    std::fprintf(stderr, "fig7: K-Core artifact for %s failed: %s\n",
                 ds.spec.name, core.status().ToString().c_str());
    return false;
  }
  const VertexScalarField kc(core.value().field_name,
                             core.value().field_values);
  const SuperTree& core_tree = core.value().tree;
  std::printf("  K-Core: densest K=%g, super tree %u nodes [%.1fs]\n",
              kc.MaxValue(), core_tree.NumNodes(), timer.Seconds());
  const auto core_peaks = PeaksAtLevel(core_tree, kc.MaxValue());
  for (const auto& peak : core_peaks)
    std::printf("    densest K-Core: %u vertices\n", peak.member_count);
  const HeightField core_field =
      RasterizeTerrain(BuildTerrainLayout(core_tree));
  (void)WritePpm(RenderOblique(core_field, HeightColors(core_tree), Camera{},
                               960, 720),
                 out + "/fig7_" + ds.spec.name + "_kcore.ppm");

  // K-Truss terrain (simplified tree for rendering, as §II-E prescribes for
  // large trees).
  timer.Restart();
  const StatusOr<TreeArtifact> truss = cache.GetOrBuild(
      ArtifactKey{dataset_key, "KT"}, [&]() -> StatusOr<TreeArtifact> {
        const EdgeScalarField kt = EdgeScalarField::FromCounts(
            "KT", TrussNumbersParallel(ds.graph, {bench::Threads(), 0}));
        TreeArtifact artifact;
        artifact.tree = SuperTree(BuildEdgeScalarTreeParallel(
            ds.graph, kt, {bench::Threads(), 0}));
        artifact.field_name = kt.Name();
        artifact.field_values = kt.Values();
        return artifact;
      });
  if (!truss.ok()) {
    std::fprintf(stderr, "fig7: K-Truss artifact for %s failed: %s\n",
                 ds.spec.name, truss.status().ToString().c_str());
    return false;
  }
  const EdgeScalarField kt(truss.value().field_name,
                           truss.value().field_values);
  const SuperTree& truss_tree = truss.value().tree;
  std::printf("  K-Truss: densest KT=%g, super tree %u nodes [%.1fs]\n",
              kt.MaxValue(), truss_tree.NumNodes(), timer.Seconds());
  const auto truss_peaks = PeaksAtLevel(truss_tree, kt.MaxValue());
  for (const auto& peak : truss_peaks)
    std::printf("    densest K-Truss: %u edges\n", peak.member_count);

  const SuperTree render_tree =
      truss_tree.NumNodes() > 50000
          ? SimplifiedEdgeSuperTree(ds.graph, kt, 64)
          : truss_tree;
  const HeightField truss_field =
      RasterizeTerrain(BuildTerrainLayout(render_tree));
  (void)WritePpm(RenderOblique(truss_field, HeightColors(render_tree),
                               Camera{}, 960, 720),
                 out + "/fig7_" + ds.spec.name + "_ktruss.ppm");
  return true;
}

}  // namespace

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 7 — K-Cores and K-Trusses at scale",
                "paper Fig. 7(a)-(f): Wikipedia & Cit-Patent terrains + "
                "densest-structure drilldowns");
  const std::string out = bench::OutputDir();
  StatusOr<ArtifactCache> cache = ArtifactCache::Open(bench::CacheDir());
  if (!cache.ok()) {
    std::fprintf(stderr, "fig7: cannot open tree cache at %s: %s\n",
                 bench::CacheDir().c_str(),
                 cache.status().ToString().c_str());
    return 2;
  }
  std::printf("tree cache: %s\n", cache.value().root().c_str());
  if (!Run(cache.value(), DatasetId::kWikipedia, out)) return 1;
  if (!Run(cache.value(), DatasetId::kCitPatent, out)) return 1;
  const CacheStats& stats = cache.value().stats();
  std::printf("tree cache: %llu hits, %llu misses, %llu rebuilds, "
              "%llu quarantined\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.rebuilds),
              static_cast<unsigned long long>(stats.corrupt_quarantined));
  std::printf("shape check: scale-free link/citation graphs grow one "
              "dominant dense structure whose\nK value far exceeds the "
              "collaboration networks' (paper: K-Truss K=86, K-Core K=64).\n");
  return 0;
}
