// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 7: large-scale terrains (Wikipedia, Cit-Patent) for K-Core and
// K-Truss fields, with the densest-structure drill-down the paper
// highlights (K-Truss with K=86, K-Core with K=64 on the real data).
// Runs on scale-divided analogues by default; set GRAPHSCAPE_FULL_SCALE=1
// to regenerate at paper scale.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/simplify.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/terrain_raster.h"

namespace {

using namespace graphscape;

void Run(DatasetId id, const std::string& out) {
  DatasetOptions options;
  if (bench::FullScale()) options.scale_divisor = 1;
  WallTimer timer;
  const Dataset ds = MakeDataset(id, options);
  std::printf("%s (1/%u scale): %u vertices, %llu edges [gen %.1fs]\n",
              ds.spec.name, ds.scale_divisor, ds.graph.NumVertices(),
              static_cast<unsigned long long>(ds.graph.NumEdges()),
              timer.Seconds());

  // K-Core terrain.
  timer.Restart();
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
  const SuperTree core_tree(BuildVertexScalarTree(ds.graph, kc));
  std::printf("  K-Core: densest K=%g, super tree %u nodes [%.1fs]\n",
              kc.MaxValue(), core_tree.NumNodes(), timer.Seconds());
  const auto core_peaks = PeaksAtLevel(core_tree, kc.MaxValue());
  for (const auto& peak : core_peaks)
    std::printf("    densest K-Core: %u vertices\n", peak.member_count);
  const HeightField core_field =
      RasterizeTerrain(BuildTerrainLayout(core_tree));
  (void)WritePpm(RenderOblique(core_field, HeightColors(core_tree), Camera{},
                               960, 720),
                 out + "/fig7_" + ds.spec.name + "_kcore.ppm");

  // K-Truss terrain (simplified tree for rendering, as §II-E prescribes for
  // large trees).
  timer.Restart();
  const EdgeScalarField kt =
      EdgeScalarField::FromCounts("KT", TrussNumbers(ds.graph));
  const SuperTree truss_tree(BuildEdgeScalarTree(ds.graph, kt));
  std::printf("  K-Truss: densest KT=%g, super tree %u nodes [%.1fs]\n",
              kt.MaxValue(), truss_tree.NumNodes(), timer.Seconds());
  const auto truss_peaks = PeaksAtLevel(truss_tree, kt.MaxValue());
  for (const auto& peak : truss_peaks)
    std::printf("    densest K-Truss: %u edges\n", peak.member_count);

  const SuperTree render_tree =
      truss_tree.NumNodes() > 50000
          ? SimplifiedEdgeSuperTree(ds.graph, kt, 64)
          : truss_tree;
  const HeightField truss_field =
      RasterizeTerrain(BuildTerrainLayout(render_tree));
  (void)WritePpm(RenderOblique(truss_field, HeightColors(render_tree),
                               Camera{}, 960, 720),
                 out + "/fig7_" + ds.spec.name + "_ktruss.ppm");
}

}  // namespace

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 7 — K-Cores and K-Trusses at scale",
                "paper Fig. 7(a)-(f): Wikipedia & Cit-Patent terrains + "
                "densest-structure drilldowns");
  const std::string out = bench::OutputDir();
  Run(DatasetId::kWikipedia, out);
  Run(DatasetId::kCitPatent, out);
  std::printf("shape check: scale-free link/citation graphs grow one "
              "dominant dense structure whose\nK value far exceeds the "
              "collaboration networks' (paper: K-Truss K=86, K-Core K=64).\n");
  return 0;
}
