// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks: Algorithm 1 (vertex scalar tree) and Algorithm 2 (super
// tree) scaling, and the duplicate-ratio ablation — integer fields with few
// distinct values stress Algorithm 2's merge, continuous fields stress the
// sort.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "scalar/simplify.h"
#include "scalar/super_tree.h"

namespace graphscape {
namespace {

Graph MakeBenchGraph(uint32_t n) {
  Rng rng(42);
  return BarabasiAlbert(n, 4, &rng);
}

void BM_Algorithm1_Distinct(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const Graph g = MakeBenchGraph(n);
  Rng rng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVertexScalarTree(g, field));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Algorithm1_Distinct)->Range(1 << 10, 1 << 17);

void BM_Algorithm1_IntegerField(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const Graph g = MakeBenchGraph(n);
  const VertexScalarField field =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVertexScalarTree(g, field));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Algorithm1_IntegerField)->Range(1 << 10, 1 << 17);

// Fixed-size sequential reference for the scaling gate: the /threads:N
// rows below divide against this row, and bench/compare_bench.py checks
// the 4-thread ratio on machines with enough cores.
void BM_BuildVertexScalarTree(benchmark::State& state) {
  const uint32_t n = 1 << 17;
  const Graph g = MakeBenchGraph(n);
  Rng rng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVertexScalarTree(g, field));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildVertexScalarTree);

// Chunked parallel build (docs/PARALLELISM.md): parallel sweep-order sort
// + per-chunk pruning sweeps + sequential replay of the kept stream.
// Output is byte-identical to the sequential row for every thread count
// (tests/parallel_test.cc); these rows measure the speed side of that
// contract.
void BM_BuildVertexScalarTreeParallel(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const uint32_t n = 1 << 17;
  const Graph g = MakeBenchGraph(n);
  Rng rng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  const ParallelOptions options{threads, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVertexScalarTreeParallel(g, field, options));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildVertexScalarTreeParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_Algorithm2_SuperTree(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const Graph g = MakeBenchGraph(n);
  const VertexScalarField field =
      VertexScalarField::FromCounts("KC", CoreNumbers(g));
  const ScalarTree tree = BuildVertexScalarTree(g, field);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SuperTree(tree));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Algorithm2_SuperTree)->Range(1 << 10, 1 << 17);

// Ablation: how the number of distinct scalar levels drives end-to-end
// (Alg.1 + Alg.2) cost and output size.
void BM_PipelineByDistinctLevels(benchmark::State& state) {
  const uint32_t levels = static_cast<uint32_t>(state.range(0));
  const Graph g = MakeBenchGraph(1 << 14);
  Rng rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values)
    v = static_cast<double>(rng.UniformInt(levels));
  const VertexScalarField field("f", values);
  uint32_t super_nodes = 0;
  for (auto _ : state) {
    const SuperTree super(BuildVertexScalarTree(g, field));
    super_nodes = super.NumNodes();
    benchmark::DoNotOptimize(super_nodes);
  }
  state.counters["super_nodes"] = super_nodes;
}
BENCHMARK(BM_PipelineByDistinctLevels)->RangeMultiplier(4)->Range(2, 2048);

// Ablation: simplification levels vs tree size (the §II-E rendering knob).
void BM_Simplification(benchmark::State& state) {
  const uint32_t levels = static_cast<uint32_t>(state.range(0));
  const Graph g = MakeBenchGraph(1 << 14);
  Rng rng(9);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = rng.UniformDouble();
  const VertexScalarField field("f", values);
  uint32_t super_nodes = 0;
  for (auto _ : state) {
    const SuperTree super = SimplifiedVertexSuperTree(g, field, levels);
    super_nodes = super.NumNodes();
    benchmark::DoNotOptimize(super_nodes);
  }
  state.counters["super_nodes"] = super_nodes;
}
BENCHMARK(BM_Simplification)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace
}  // namespace graphscape
