#!/usr/bin/env bash
# Copyright 2026 The GraphScape Authors.
# Licensed under the Apache License, Version 2.0.
#
# Regenerate the committed bench baseline (bench/baseline/
# BENCH_baseline.json) from a fresh local run, mirroring exactly what
# CI's bench-smoke job produces as BENCH_merged.json. Usage:
#
#   bench/make_baseline.sh <build-dir> <output.json>
#
# Prefer re-baselining from CI itself (download a green run's
# BENCH_merged.json artifact) so the baseline matches runner hardware;
# this script is for bootstrapping and local experiments.

set -euo pipefail

build_dir=${1:?usage: make_baseline.sh <build-dir> <output.json>}
output=${2:?usage: make_baseline.sh <build-dir> <output.json>}
build_dir=$(cd "$build_dir" && pwd)  # bench_service_qps runs from $tmp
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bench in scalar_tree edge_tree queries terrain metrics intersect; do
  "$build_dir/bench_micro_$bench" \
    --benchmark_min_time=0.1 \
    --benchmark_out="$tmp/BENCH_$bench.json" \
    --benchmark_out_format=json
done
"$build_dir/bench_table1_datasets" > "$tmp/table1.txt"
"$build_dir/bench_table2_construction" > "$tmp/table2.txt"
GRAPHSCAPE_BENCH_OUT="$tmp/fig_artifacts" \
  "$build_dir/bench_table456_userstudy" > "$tmp/table456.txt"
# Service throughput rows (SVC_*); writes BENCH_service.json into cwd.
(cd "$tmp" && GRAPHSCAPE_BENCH_OUT="$tmp/fig_artifacts" \
  "$build_dir/bench_service_qps" > "$tmp/service_qps.txt")

python3 - "$tmp" "$output" <<'EOF'
import json
import sys

tmp, output = sys.argv[1], sys.argv[2]
merged = {"context": None, "benchmarks": [], "tables": {}}
for name in ("scalar_tree", "edge_tree", "queries", "terrain",
             "metrics", "intersect", "service"):
    with open(f"{tmp}/BENCH_{name}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context")
    merged["benchmarks"].extend(data.get("benchmarks", []))
for table, path in (("table1_datasets", f"{tmp}/table1.txt"),
                    ("table2_construction", f"{tmp}/table2.txt"),
                    ("table456_userstudy", f"{tmp}/table456.txt")):
    with open(path) as f:
        merged["tables"][table] = [l for l in f.read().split("\n") if l]
with open(output, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {output}")
EOF
