// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 10: comparing degree and betweenness centrality on the Astro
// network. Reports GCI (paper: 0.89), draws the outlier-score terrain
// colored by degree, and drills into the two most prominent outlier peaks
// (paper: bridge vertices connecting multiple communities).

#include <cstdio>

#include "bench_util.h"
#include "gen/datasets.h"
#include "graph/graph_algos.h"
#include "layout/spring_layout.h"
#include "metrics/centrality.h"
#include "scalar/correlation.h"
#include "scalar/persistence.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 10 — degree vs betweenness on Astro",
                "paper §III-C: GCI=0.89; outlier terrain; bridge drilldowns");
  const std::string out = bench::OutputDir();

  DatasetOptions options;
  if (bench::FullScale()) options.scale_divisor = 1;
  const Dataset astro = MakeDataset(DatasetId::kAstro, options);
  std::printf("Astro-like: %u vertices, %llu edges\n",
              astro.graph.NumVertices(),
              static_cast<unsigned long long>(astro.graph.NumEdges()));

  const VertexScalarField degree("degree", DegreeCentrality(astro.graph));
  BetweennessOptions bo;
  bo.num_samples = 256;
  const VertexScalarField betweenness(
      "betweenness", BetweennessCentrality(astro.graph, bo));

  const double gci = Gci(astro.graph, degree, betweenness);
  std::printf("GCI(Sd, Sb) = %.2f   (paper: 0.89 — strongly positive)\n",
              gci);

  const VertexScalarField outlier =
      OutlierScoreField(astro.graph, degree, betweenness);
  const SuperTree tree(BuildVertexScalarTree(astro.graph, outlier));
  const TerrainLayout layout = BuildTerrainLayout(tree);
  const HeightField field = RasterizeTerrain(layout);
  (void)WritePpm(RenderOblique(field, SuperNodeColors(tree, degree.values()),
                               Camera{}, 960, 720),
                 out + "/fig10a_outlier_terrain.ppm");
  std::printf("(a) outlier terrain (height=-LCI, color=degree) -> "
              "fig10a_outlier_terrain.ppm\n");

  // The paper's color observation: "most high peaks are blue", i.e. the
  // outlier vertices have low degree relative to the degree scale set by
  // the network's hubs. Check the color band of the most prominent peaks.
  const auto colors = SuperNodeColors(tree, degree.values());
  const Rgb blue = FourBandColor(0.0);
  uint32_t blue_peaks = 0, checked = 0;
  for (const auto& peak : PeaksAtLevel(tree, 0.0)) {  // outlier territory
    if (checked >= 10) break;
    ++checked;
    if (colors[peak.super_node] == blue) ++blue_peaks;
  }
  if (checked > 0) {
    std::printf("top outlier peaks colored blue (low degree): %u of %u "
                "(paper: \"most high peaks are blue\")\n",
                blue_peaks, checked);
  }

  // (b, c) drill into the two most prominent outlier peaks.
  const auto peaks = PeaksAtLevel(tree, 0.0);  // negative-LCI territory
  int drawn = 0;
  for (const auto& peak : peaks) {
    if (drawn >= 2) break;
    VertexId top = kInvalidVertex;
    for (uint32_t member : tree.SubtreeMembers(peak.super_node))
      if (top == kInvalidVertex || outlier[member] > outlier[top])
        top = member;
    if (top == kInvalidVertex) continue;
    const auto hood = KHopNeighborhood(astro.graph, top, 2);
    const Subgraph sub = InducedSubgraph(astro.graph, hood);
    SpringLayoutOptions spring;
    spring.iterations = 60;
    const Positions pos = SpringLayout(sub.graph, spring);
    std::vector<Rgb> colors(sub.graph.NumVertices(), Rgb{59, 130, 246});
    colors[0] = Rgb{220, 38, 38};
    const std::string path = out + "/fig10" + (drawn == 0 ? "b" : "c") +
                             "_outlier_neighborhood.svg";
    (void)WriteNodeLinkSvg(sub.graph, pos, colors, path, 600, 3.5);
    std::printf("(%c) outlier vertex %u: LCI=%.2f, degree=%u, betweenness "
                "rank high -> %s\n",
                drawn == 0 ? 'b' : 'c', top, -outlier[top],
                astro.graph.Degree(top), path.c_str());
    ++drawn;
  }
  std::printf("shape check: outlier vertices look like bridges between "
              "communities in the 2-hop drilldowns.\n");
  return 0;
}
