// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 6: visualizing dense subgraphs. Regenerates every panel:
//   (a,b) spring layouts of GrQc / WikiVote — the uninformative baseline;
//   (c,d) K-Core terrains — GrQc shows several high peaks, WikiVote one;
//   (e)   K-Truss terrain of GrQc;
//   (f)   LaNet-vi-style K-Core plot of GrQc;
//   (g)   CSV plot of K-Truss density.
// Prints the structural readouts that distinguish the two regimes.

#include <cstdio>

#include "bench_util.h"
#include "gen/datasets.h"
#include "layout/csv_plot.h"
#include "layout/lanetvi_layout.h"
#include "layout/spring_layout.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_raster.h"

namespace {

using namespace graphscape;

void SpringPanel(const Dataset& ds, const std::string& path) {
  SpringLayoutOptions options;
  options.iterations = 50;
  const Positions pos = SpringLayout(ds.graph, options);
  const std::vector<uint32_t> core = CoreNumbers(ds.graph);
  uint32_t kmax = 0;
  for (uint32_t c : core) kmax = std::max(kmax, c);
  std::vector<Rgb> colors(ds.graph.NumVertices());
  for (VertexId v = 0; v < ds.graph.NumVertices(); ++v)
    colors[v] = FourBandColor(static_cast<double>(core[v]) / kmax);
  (void)WriteNodeLinkSvg(ds.graph, pos, colors, path, 700, 1.2);
}

uint32_t TerrainPanel(const Dataset& ds, const std::string& path,
                      double* densest_k) {
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
  const SuperTree tree(BuildVertexScalarTree(ds.graph, kc));
  const TerrainLayout layout = BuildTerrainLayout(tree);
  const HeightField field = RasterizeTerrain(layout);
  (void)WritePpm(
      RenderOblique(field, HeightColors(tree), Camera{}, 960, 720), path);
  *densest_k = kc.MaxValue();
  // "High peaks": disconnected components in the top 30% of the K range.
  const double high = kc.MinValue() + 0.7 * (kc.MaxValue() - kc.MinValue());
  return CountComponentsAtLevel(tree, high);
}

}  // namespace

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 6 — visualizing dense subgraphs",
                "paper Fig. 6(a)-(g): spring vs terrain vs LaNet-vi vs CSV");
  const std::string out = bench::OutputDir();

  const Dataset grqc = MakeDataset(DatasetId::kGrQc);
  const Dataset wikivote = MakeDataset(DatasetId::kWikiVote);

  // (a, b) spring layouts.
  SpringPanel(grqc, out + "/fig6a_grqc_spring.svg");
  SpringPanel(wikivote, out + "/fig6b_wikivote_spring.svg");
  std::printf("(a,b) spring layouts -> fig6a/fig6b (dense-core structure "
              "unreadable there)\n");

  // (c, d) K-Core terrains: the two regimes.
  double grqc_k = 0.0, wikivote_k = 0.0;
  const uint32_t grqc_high =
      TerrainPanel(grqc, out + "/fig6c_grqc_kcore_terrain.ppm", &grqc_k);
  const uint32_t wikivote_high = TerrainPanel(
      wikivote, out + "/fig6d_wikivote_kcore_terrain.ppm", &wikivote_k);
  std::printf("(c) GrQc terrain: densest K=%g, high peaks=%u (paper: "
              "SEVERAL disconnected dense cores)\n",
              grqc_k, grqc_high);
  std::printf("(d) WikiVote terrain: densest K=%g, high peaks=%u (paper: ONE "
              "dominant core)\n",
              wikivote_k, wikivote_high);

  // (e) K-Truss terrain of GrQc.
  const EdgeScalarField kt =
      EdgeScalarField::FromCounts("KT", TrussNumbers(grqc.graph));
  const SuperTree truss_tree(BuildEdgeScalarTree(grqc.graph, kt));
  const HeightField truss_field =
      RasterizeTerrain(BuildTerrainLayout(truss_tree));
  (void)WritePpm(RenderOblique(truss_field, HeightColors(truss_tree),
                               Camera{}, 960, 720),
                 out + "/fig6e_grqc_ktruss_terrain.ppm");
  std::printf("(e) GrQc K-Truss terrain: densest KT=%g\n", kt.MaxValue());

  // Hierarchy readout the 2D tools cannot show: how many dense cores sit
  // on shared foundations (nested peaks).
  const VertexScalarField kc_field =
      VertexScalarField::FromCounts("KC", CoreNumbers(grqc.graph));
  const SuperTree core_tree(BuildVertexScalarTree(grqc.graph, kc_field));
  const auto top_peaks = PeaksAtLevel(core_tree, kc_field.MaxValue());
  uint32_t nested = 0;
  for (const auto& peak : top_peaks)
    if (core_tree.Parent(peak.super_node) != kNoParent) ++nested;
  std::printf("    hierarchy: %u of %zu densest cores rest on less-dense "
              "foundations (containment)\n",
              nested, top_peaks.size());

  // (f) LaNet-vi-style plot.
  const LanetViLayoutResult lanetvi = LanetViLayout(grqc.graph);
  std::vector<Rgb> shell_colors(grqc.graph.NumVertices());
  for (VertexId v = 0; v < grqc.graph.NumVertices(); ++v)
    shell_colors[v] = ContinuousColor(
        static_cast<double>(lanetvi.core_of[v]) /
        std::max(1u, lanetvi.max_core));
  (void)WriteNodeLinkSvg(grqc.graph, lanetvi.positions, shell_colors,
                         out + "/fig6f_grqc_lanetvi.svg", 700, 1.5);
  std::printf("(f) LaNet-vi plot -> fig6f (color-coded shells, no "
              "containment channel)\n");

  // (g) CSV plot over the truss density.
  std::vector<double> density(grqc.graph.NumVertices(), 0.0);
  const std::vector<uint32_t> truss = TrussNumbers(grqc.graph);
  for (EdgeId e = 0; e < grqc.graph.NumEdges(); ++e) {
    const auto [u, v] = grqc.graph.EdgeEndpoints(e);
    density[u] = std::max(density[u], static_cast<double>(truss[e]));
    density[v] = std::max(density[v], static_cast<double>(truss[e]));
  }
  const CsvPlot plot = BuildCsvPlot(grqc.graph, density);
  (void)WriteCsvPlotSvg(plot, out + "/fig6g_grqc_csv_plot.svg");
  std::printf("(g) CSV plot -> fig6g (1D density curve; peaks without "
              "hierarchy)\n");
  return 0;
}
