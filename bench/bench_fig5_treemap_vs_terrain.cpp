// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 5: 2D treemap vs 3D terrain of the same scalar tree (GrQc, KC(v)).
// The quantitative point the paper makes: color alone (treemap) cannot
// discriminate close scalar values that height separates — we print the
// number of distinct KC values that collapse into each of the four color
// bands.

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 5 — 2D treemap vs 3D terrain",
                "paper Fig. 5(a) GrQc treemap, Fig. 5(b) GrQc terrain");
  const std::string out = bench::OutputDir();

  const Dataset grqc = MakeDataset(DatasetId::kGrQc);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(grqc.graph));
  const SuperTree tree(BuildVertexScalarTree(grqc.graph, kc));
  const TerrainLayout layout = BuildTerrainLayout(tree);

  // (a) the flat 2D treemap: heights zeroed, color = scalar band.
  (void)WriteTreemapSvg(layout, HeightColors(tree),
                        out + "/fig5a_treemap.svg");
  // (b) the 3D terrain.
  const HeightField field = RasterizeTerrain(layout);
  (void)WritePpm(
      RenderOblique(field, HeightColors(tree), Camera{}, 960, 720),
      out + "/fig5b_terrain.ppm");

  // Color-channel quantization: distinct KC values per four-band color.
  std::map<uint32_t, std::set<double>> values_per_band;
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    const double t = NormalizeValue(tree.Scalar(node), kc.MinValue(),
                                    kc.MaxValue());
    values_per_band[FourBandIndex(t)].insert(tree.Scalar(node));
  }
  std::printf("distinct KC values collapsed into each treemap color band:\n");
  const char* band_names[4] = {"blue", "green", "yellow", "red"};
  for (const auto& [band, values] : values_per_band) {
    std::printf("  %-6s: %zu distinct values", band_names[band],
                values.size());
    if (values.size() > 1)
      std::printf("  <- indistinguishable by color, separated by height");
    std::printf("\n");
  }
  std::printf("-> %s/fig5a_treemap.svg, %s/fig5b_terrain.ppm\n", out.c_str(),
              out.c_str());
  return 0;
}
