// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Table I: dataset properties. Prints the paper's numbers next to the
// generated synthetic analogues (with the scale divisor used).

#include <cstdio>

#include "bench_util.h"
#include "gen/datasets.h"
#include "metrics/clustering.h"

int main() {
  using namespace graphscape;
  bench::Banner("Table I — dataset properties",
                "paper Table I (8 SNAP datasets; synthetic analogues here)");

  std::printf("%-11s %12s %12s %6s %12s %12s %8s\n", "Dataset", "paper_nodes",
              "paper_edges", "1/div", "gen_nodes", "gen_edges", "avg_cc");
  for (DatasetId id : AllDatasetIds()) {
    DatasetOptions options;
    if (bench::FullScale()) options.scale_divisor = 1;
    const Dataset ds = MakeDataset(id, options);
    // Average clustering on a sample-size-bounded graph is cheap enough for
    // everything but the largest; report it as the structural fingerprint.
    const double cc = ds.graph.NumEdges() < 5'000'000
                          ? AverageClusteringCoefficient(ds.graph)
                          : -1.0;
    std::printf("%-11s %12llu %12llu %6u %12u %12llu %8.3f\n", ds.spec.name,
                static_cast<unsigned long long>(ds.spec.paper_nodes),
                static_cast<unsigned long long>(ds.spec.paper_edges),
                ds.scale_divisor, ds.graph.NumVertices(),
                static_cast<unsigned long long>(ds.graph.NumEdges()), cc);
  }
  std::printf("\nshape check: collaboration networks (GrQc/PPI/Astro/DBLP/"
              "Amazon) show high clustering;\nvote/link/citation graphs "
              "(WikiVote/Wikipedia/Cit-Patent) show heavy-tailed low-"
              "clustering structure.\n");
  return 0;
}
