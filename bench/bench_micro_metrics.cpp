// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks of the scalar-field substrates: K-Core peeling, triangle
// counting, K-Truss peeling, PageRank, and sampled Brandes betweenness.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/centrality.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "metrics/nucleus.h"
#include "metrics/pagerank.h"
#include "metrics/triangles.h"

namespace graphscape {
namespace {

Graph CollabGraph(uint32_t n) {
  CollaborationOptions options;
  options.num_vertices = n;
  options.num_groups = n / 2;
  options.num_planted_cores = 2;
  options.planted_core_size = 24;
  Rng rng(11);
  return CollaborationNetwork(options, &rng);
}

void BM_CoreNumbers(benchmark::State& state) {
  const Graph g = CollabGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(CoreNumbers(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CoreNumbers)->Range(1 << 10, 1 << 16);

void BM_TriangleCount(benchmark::State& state) {
  const Graph g = CollabGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(CountTriangles(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCount)->Range(1 << 10, 1 << 16);

void BM_TrussNumbers(benchmark::State& state) {
  const Graph g = CollabGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(TrussNumbers(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TrussNumbers)->Range(1 << 10, 1 << 15);

void BM_PageRank(benchmark::State& state) {
  const Graph g = CollabGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(PageRank(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_PageRank)->Range(1 << 10, 1 << 16);

// Parallel metric rows (docs/PARALLELISM.md): each /threads:N row is
// exactly equal (integer metrics) or bit-identical (floating point) to
// its sequential counterpart above — tests/parallel_test.cc pins that;
// these rows record the speed side.
void BM_TriangleCountParallel(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const Graph g = CollabGraph(1 << 16);
  const ParallelOptions options{threads, 0};
  for (auto _ : state)
    benchmark::DoNotOptimize(CountTrianglesParallel(g, options));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCountParallel)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_PageRankParallel(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const Graph g = CollabGraph(1 << 16);
  const ParallelOptions parallel{threads, 0};
  for (auto _ : state)
    benchmark::DoNotOptimize(PageRankParallel(g, {}, parallel));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_PageRankParallel)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_TrussNumbersParallel(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const Graph g = CollabGraph(1 << 15);
  const ParallelOptions options{threads, 0};
  for (auto _ : state)
    benchmark::DoNotOptimize(TrussNumbersParallel(g, options));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TrussNumbersParallel)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

// Ablation: the dense-subgraph hierarchy ladder — core (1,2), truss (2,3),
// nucleus (3,4) — each rung costs roughly an order of magnitude more.
void BM_Nucleus34(benchmark::State& state) {
  const Graph g = CollabGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(Nucleus34(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Nucleus34)->Range(1 << 10, 1 << 13);

void BM_BetweennessSampled(benchmark::State& state) {
  const Graph g = CollabGraph(1 << 13);
  BetweennessOptions options;
  options.num_samples = static_cast<uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(BetweennessCentrality(g, options));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BetweennessSampled)->RangeMultiplier(4)->Range(16, 256);

}  // namespace
}  // namespace graphscape
