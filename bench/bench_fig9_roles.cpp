// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 9 + Table III: roles over one Amazon co-purchase community. The
// community-score terrain is colored by detected role; the paper's layering
// (green hub summit, blue dense band, red periphery) is verified
// quantitatively by comparing mean heights per role, and a Table III
// analogue lists exemplar members per role.

#include <cstdio>

#include "bench_util.h"
#include "community/roles.h"
#include "gen/generators.h"
#include "graph/graph_algos.h"
#include "layout/spring_layout.h"
#include "scalar/scalar_tree.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 9 + Table III — roles on an Amazon community",
                "paper Fig. 9(a)/(b) role-colored terrain + Table III roles");
  const std::string out = bench::OutputDir();

  RoleCommunityOptions options;
  options.num_dense = 40;
  options.num_periphery = 80;
  options.num_whiskers = 30;
  Rng rng(9);
  const RoleCommunityResult amazon = RoleCommunityGraph(options, &rng);
  std::printf("Amazon-like: %u vertices, %u edges; community of %zu "
              "products\n",
              amazon.graph.NumVertices(), amazon.graph.NumEdges(),
              amazon.community_vertices.size());

  const auto roles = ClassifyRoles(amazon.graph, amazon.community_vertices);
  std::printf("role recovery accuracy vs planted: %.2f\n",
              RoleAccuracy(roles, amazon.roles));

  // Terrain from the community score, colored by dominant member role.
  const VertexScalarField score("community_score", amazon.community_score);
  const SuperTree tree(BuildVertexScalarTree(amazon.graph, score));
  const TerrainLayout layout = BuildTerrainLayout(tree);
  const HeightField field = RasterizeTerrain(layout);
  std::vector<Rgb> colors(tree.NumNodes());
  for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
    uint32_t votes[5] = {0, 0, 0, 0, 0};
    for (uint32_t member : tree.Members(node))
      ++votes[static_cast<uint32_t>(roles[member])];
    uint32_t best = 4;
    for (uint32_t r = 0; r < 5; ++r)
      if (votes[r] > votes[best]) best = r;
    colors[node] = RoleColor(static_cast<VertexRole>(best));
  }
  (void)WritePpm(RenderOblique(field, colors, Camera{}, 800, 600),
                 out + "/fig9a_roles_terrain.ppm");

  // The paper's layering claim, checked on heights.
  double mean_height[5] = {0, 0, 0, 0, 0};
  uint32_t count[5] = {0, 0, 0, 0, 0};
  for (VertexId v : amazon.community_vertices) {
    const auto r = static_cast<uint32_t>(roles[v]);
    mean_height[r] += amazon.community_score[v];
    ++count[r];
  }
  const char* names[5] = {"hub(green)", "dense(blue)", "periphery(red)",
                          "whisker(yellow)", "background"};
  std::printf("mean terrain height per role:\n");
  for (int r = 0; r < 4; ++r) {
    if (count[r] == 0) continue;
    std::printf("  %-16s %.3f  (%u vertices)\n", names[r],
                mean_height[r] / count[r], count[r]);
  }
  std::printf("shape check: hub > dense > periphery > whisker (green summit "
              "over blue band over red slope)\n");

  // Fig 9(b): node-link detail of the community.
  const Subgraph sub = InducedSubgraph(amazon.graph, amazon.community_vertices);
  const Positions pos = SpringLayout(sub.graph);
  std::vector<Rgb> vertex_colors(sub.graph.NumVertices());
  for (VertexId local = 0; local < sub.graph.NumVertices(); ++local)
    vertex_colors[local] = RoleColor(roles[sub.to_parent_vertex[local]]);
  (void)WriteNodeLinkSvg(sub.graph, pos, vertex_colors,
                         out + "/fig9b_community_detail.svg", 700, 3.0);

  // Table III analogue: exemplar members per role (synthetic product ids
  // stand in for the paper's book titles).
  std::printf("\nTable III analogue (exemplar products per role):\n");
  std::printf("  %-16s %s\n", "Role", "Product");
  int printed[5] = {0, 0, 0, 0, 0};
  for (VertexId v : amazon.community_vertices) {
    const auto r = static_cast<uint32_t>(roles[v]);
    if (r > 2 || printed[r] >= (r == 0 ? 1 : 3)) continue;
    std::printf("  %-16s product-%04u (score %.2f, degree %u)\n", names[r], v,
                amazon.community_score[v], amazon.graph.Degree(v));
    ++printed[r];
  }
  return 0;
}
