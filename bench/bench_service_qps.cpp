// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Service throughput bench: an in-process graphscape daemon on an
// ephemeral loopback port, driven closed-loop by concurrent
// BlockingClients over a deterministic mixed query workload — the same
// protocol path a real client pays, sockets included.
//
// Emits BENCH_service.json (Google-Benchmark-shaped, merged by CI's
// bench-smoke job alongside the micro benches):
//   SVC_MixedQps           items_per_second, gated by compare_bench.py
//   SVC_MixedP50 / P99     real_time ns, gated (lower is better)
//   SVC_<class>Qps         per-class readouts, informational
//
// The corpus is built fresh into a bench-local cache (2 datasets x 2
// fields), so the numbers never depend on what an earlier bench left in
// the shared tree cache. Workload mix and seeds are fixed; run-to-run
// variance is the scheduler's, not the workload's.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/artifact_cache.h"
#include "scalar/scalar_field.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "service/client.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"

namespace {

using namespace graphscape;

constexpr long kClients = 4;
constexpr long kRequestsPerClient = 250;

struct ClassStat {
  const char* name;
  uint32_t weight;  // out of the summed total
  uint64_t count = 0;
  double seconds = 0.0;
};

// The mix: read-heavy like a dashboard (peak queries dominate), with
// enough TREE and TILE traffic to keep the big-payload paths honest.
ClassStat g_classes[] = {
    {"tree", 10, 0, 0.0},    {"peaks", 25, 0, 0.0},
    {"toppeaks", 25, 0, 0.0}, {"members", 15, 0, 0.0},
    {"correlation", 10, 0, 0.0}, {"tile", 10, 0, 0.0},
    {"stats", 5, 0, 0.0},
};

Status BuildCorpus(const std::string& root) {
  StatusOr<ArtifactCache> opened = ArtifactCache::Open(root);
  if (!opened.ok()) return opened.status();
  ArtifactCache cache = std::move(opened).value();
  const struct {
    const char* name;
    uint32_t vertices;
    uint64_t seed;
  } kSpecs[] = {{"ba-bench", 1200, 7}, {"er-bench", 800, 11}};
  for (const auto& spec : kSpecs) {
    Rng rng(spec.seed);
    const Graph g = spec.seed == 7
                        ? BarabasiAlbert(spec.vertices, 3, &rng)
                        : ErdosRenyi(spec.vertices, 0.01, &rng);
    std::vector<uint32_t> degrees(g.NumVertices());
    for (uint32_t v = 0; v < g.NumVertices(); ++v) degrees[v] = g.Degree(v);
    const VertexScalarField fields[] = {
        VertexScalarField::FromCounts("KC", CoreNumbers(g)),
        VertexScalarField::FromCounts("DEG", degrees)};
    for (const VertexScalarField& field : fields) {
      TreeArtifact artifact;
      artifact.tree = SuperTree(BuildVertexScalarTree(g, field));
      artifact.field_name = field.Name();
      artifact.field_values = field.Values();
      const Status put =
          cache.Put(ArtifactKey{spec.name, field.Name()}, artifact);
      if (!put.ok()) return put;
    }
  }
  return Status::Ok();
}

std::string MakeLine(const ClassStat& klass, Rng* rng) {
  static const char* kDatasets[] = {"ba-bench", "er-bench"};
  static const char* kFields[] = {"KC", "DEG"};
  static const double kAzimuths[] = {225.0, 45.0, 135.0, 315.0};
  const char* dataset = kDatasets[rng->UniformInt(2)];
  const char* field = kFields[rng->UniformInt(2)];
  const std::string name = klass.name;
  if (name == "tree") return StrPrintf("TREE %s %s", dataset, field);
  if (name == "peaks") {
    return StrPrintf("PEAKS %s %s %.17g", dataset, field,
                     rng->UniformDouble() * 8.0);
  }
  if (name == "toppeaks") {
    return StrPrintf("TOPPEAKS %s %s %u", dataset, field,
                     1 + rng->UniformInt(16));
  }
  if (name == "members") return StrPrintf("MEMBERS %s %s 0", dataset, field);
  if (name == "correlation") return StrPrintf("CORRELATION %s KC DEG", dataset);
  if (name == "tile") {
    return StrPrintf("TILE %s %s %.17g 42 128 96", dataset, field,
                     kAzimuths[rng->UniformInt(4)]);
  }
  return "STATS";
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1))];
}

}  // namespace

int main() {
  bench::Banner("Service QPS — mixed query workload over loopback",
                "ROADMAP item 3 (query service): QPS + p50/p99 per class "
                "through the full wire protocol");

  const std::string cache_root = bench::OutputDir() + "/svc_bench_cache";
  Status built = BuildCorpus(cache_root);
  if (!built.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  StatusOr<std::unique_ptr<service::QueryService>> opened =
      service::QueryService::Open(cache_root);
  if (!opened.ok()) {
    std::fprintf(stderr, "service open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<service::QueryService> query_service =
      std::move(opened).value();
  service::ServiceServer::Options server_options;
  server_options.port = 0;  // ephemeral: parallel CI jobs cannot collide
  server_options.num_threads = bench::Threads();
  service::ServiceServer server(query_service.get(), server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  uint32_t weight_total = 0;
  for (const ClassStat& klass : g_classes) weight_total += klass.weight;

  struct PerClient {
    uint64_t errors = 0;
    std::vector<double> latencies_s;
    std::vector<std::pair<size_t, double>> per_class;  // class idx, secs
  };
  std::vector<PerClient> results(kClients);
  std::vector<std::thread> threads;
  WallTimer wall;
  for (long c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      PerClient& mine = results[static_cast<size_t>(c)];
      Rng rng(0xbe9c5 + static_cast<uint64_t>(c));
      service::BlockingClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        mine.errors += kRequestsPerClient;
        return;
      }
      for (long r = 0; r < kRequestsPerClient; ++r) {
        uint32_t draw = rng.UniformInt(weight_total);
        size_t klass = 0;
        while (draw >= g_classes[klass].weight) {
          draw -= g_classes[klass].weight;
          ++klass;
        }
        const std::string line = MakeLine(g_classes[klass], &rng);
        WallTimer latency;
        StatusOr<service::ResponseFrame> reply = client.Roundtrip(line);
        const double seconds = latency.Seconds();
        if (!reply.ok() || reply.value().wire_code != service::kWireOk) {
          ++mine.errors;
          continue;
        }
        mine.latencies_s.push_back(seconds);
        mine.per_class.emplace_back(klass, seconds);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.Seconds();
  server.Stop();

  uint64_t errors = 0;
  std::vector<double> latencies;
  for (const PerClient& result : results) {
    errors += result.errors;
    latencies.insert(latencies.end(), result.latencies_s.begin(),
                     result.latencies_s.end());
    for (const auto& entry : result.per_class) {
      ++g_classes[entry.first].count;
      g_classes[entry.first].seconds += entry.second;
    }
  }
  if (latencies.empty() || errors != 0) {
    // The bench measures the happy path; any error means the numbers
    // would be garbage, so fail loudly instead of emitting them.
    std::fprintf(stderr, "service bench saw %llu errors over %llu replies\n",
                 static_cast<unsigned long long>(errors),
                 static_cast<unsigned long long>(latencies.size()));
    return 1;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = static_cast<double>(latencies.size()) / elapsed;
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);

  std::printf("%-14s %9s %12s\n", "class", "requests", "mean ms");
  for (const ClassStat& klass : g_classes) {
    std::printf("%-14s %9llu %12.3f\n", klass.name,
                static_cast<unsigned long long>(klass.count),
                klass.count > 0
                    ? 1e3 * klass.seconds / static_cast<double>(klass.count)
                    : 0.0);
  }
  std::printf("mixed qps: %.1f  p50: %.3f ms  p99: %.3f ms  "
              "(%u threads, %ld clients)\n",
              qps, p50 * 1e3, p99 * 1e3, server.num_threads(), kClients);

  // Google-Benchmark-shaped JSON so CI's jq merge and compare_bench.py
  // treat these rows exactly like the micro benches' (SVC_MixedQps is
  // throughput-tracked; the P50/P99 rows are real_time-tracked).
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n \"context\": {\"num_cpus\": %u},\n \"benchmarks\": [\n",
               bench::Threads());
  std::fprintf(out,
               "  {\"name\": \"SVC_MixedQps\", \"run_type\": \"iteration\", "
               "\"iterations\": %llu, \"real_time\": %.1f, \"cpu_time\": "
               "%.1f, \"time_unit\": \"ns\", \"items_per_second\": %.3f},\n",
               static_cast<unsigned long long>(latencies.size()),
               1e9 * elapsed / static_cast<double>(latencies.size()),
               1e9 * elapsed / static_cast<double>(latencies.size()), qps);
  std::fprintf(out,
               "  {\"name\": \"SVC_MixedP50\", \"run_type\": \"iteration\", "
               "\"iterations\": 1, \"real_time\": %.1f, \"cpu_time\": %.1f, "
               "\"time_unit\": \"ns\"},\n",
               1e9 * p50, 1e9 * p50);
  std::fprintf(out,
               "  {\"name\": \"SVC_MixedP99\", \"run_type\": \"iteration\", "
               "\"iterations\": 1, \"real_time\": %.1f, \"cpu_time\": %.1f, "
               "\"time_unit\": \"ns\"},\n",
               1e9 * p99, 1e9 * p99);
  bool first = true;
  for (const ClassStat& klass : g_classes) {
    if (klass.count == 0) continue;
    std::fprintf(out,
                 "%s  {\"name\": \"SVC_%sQps\", \"run_type\": \"iteration\", "
                 "\"iterations\": %llu, \"real_time\": %.1f, \"cpu_time\": "
                 "%.1f, \"time_unit\": \"ns\", \"items_per_second\": %.3f}",
                 first ? "" : ",\n", klass.name,
                 static_cast<unsigned long long>(klass.count),
                 1e9 * klass.seconds / static_cast<double>(klass.count),
                 1e9 * klass.seconds / static_cast<double>(klass.count),
                 static_cast<double>(klass.count) /
                     (klass.seconds > 0.0 ? klass.seconds : 1.0));
    first = false;
  }
  std::fprintf(out, "\n ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
