// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks: the scalar-tree analysis layer. The member index
// build (one-time cost), the O(1)-amortized Members/SubtreeMembers
// scans, level/peak queries, persistence extraction, field correlation,
// and artifact (de)serialization — the read-side costs every figure
// bench pays after construction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/correlation.h"
#include "scalar/persistence.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_io.h"
#include "scalar/tree_queries.h"

namespace graphscape {
namespace {

Graph MakeBenchGraph(uint32_t n) {
  Rng rng(42);
  return BarabasiAlbert(n, 4, &rng);
}

VertexScalarField KcField(const Graph& g) {
  return VertexScalarField::FromCounts("KC", CoreNumbers(g));
}

void BM_MemberIndexBuild(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  const SuperTree tree(BuildVertexScalarTree(g, KcField(g)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeMemberIndex(tree));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_MemberIndexBuild)->Range(1 << 10, 1 << 17);

void BM_MembersFullScan(benchmark::State& state) {
  // Iterating every node's member slice touches each element once: the
  // O(1)-amortized contract means items/s here is memory bandwidth.
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  const SuperTree tree(BuildVertexScalarTree(g, KcField(g)));
  tree.MemberIndex();  // prime the cache; the scan is what's timed
  for (auto _ : state) {
    uint64_t checksum = 0;
    for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
      for (const uint32_t v : tree.Members(node)) checksum += v;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_MembersFullScan)->Range(1 << 10, 1 << 17);

void BM_SubtreeMembersTopPeaks(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  const VertexScalarField kc = KcField(g);
  const SuperTree tree(BuildVertexScalarTree(g, kc));
  tree.MemberIndex();
  for (auto _ : state) {
    uint64_t checksum = 0;
    for (const Peak& peak : PeaksAtLevel(tree, 0.7 * kc.MaxValue())) {
      for (const uint32_t v : tree.SubtreeMembers(peak.super_node))
        checksum += v;
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_SubtreeMembersTopPeaks)->Range(1 << 10, 1 << 17);

void BM_CountComponentsAtLevel(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  const VertexScalarField kc = KcField(g);
  const SuperTree tree(BuildVertexScalarTree(g, kc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountComponentsAtLevel(tree, 0.5 * kc.MaxValue()));
  }
  state.SetItemsProcessed(state.iterations() * tree.NumNodes());
}
BENCHMARK(BM_CountComponentsAtLevel)->Range(1 << 10, 1 << 17);

void BM_PersistencePairs(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(7);
  std::vector<double> values(g.NumVertices());
  for (auto& v : values) v = rng.UniformDouble();
  const ScalarTree tree =
      BuildVertexScalarTree(g, VertexScalarField("f", values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PersistencePairs(tree));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_PersistencePairs)->Range(1 << 10, 1 << 17);

void BM_Gci(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  std::vector<double> degree(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) degree[v] = g.Degree(v);
  const VertexScalarField a("degree", degree);
  const VertexScalarField b = KcField(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gci(g, a, b));
  }
  // Each LCI window scans the CSR run twice; 2m slots per pass.
  state.SetItemsProcessed(state.iterations() * 2 * g.NumEdges());
}
BENCHMARK(BM_Gci)->Range(1 << 10, 1 << 16);

void BM_TreeIoRoundtrip(benchmark::State& state) {
  const Graph g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  const VertexScalarField kc = KcField(g);
  TreeArtifact artifact;
  artifact.tree = SuperTree(BuildVertexScalarTree(g, kc));
  artifact.field_name = kc.Name();
  artifact.field_values = kc.Values();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string serialized =
        SerializeTreeArtifact(artifact).value();
    bytes = serialized.size();
    auto loaded = DeserializeTreeArtifact(serialized);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() * 2 * bytes);
}
BENCHMARK(BM_TreeIoRoundtrip)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace graphscape
