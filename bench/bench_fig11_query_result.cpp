// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 11: SQL-query-result terrains over the plant-genus NN graph. Checks
// the three observations the paper reads off the figure: (i) three genus
// clusters with the blue genus well separated; (ii) red genus contained
// within / adjacent to green; (iii) attribute 1 separates genus better than
// attribute 2 (greater terrain-height variance across genus).

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "graph/graph_algos.h"
#include "query/nn_graph.h"
#include "query/table.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 11 — query result understanding",
                "paper Fig. 11(a)/(b): plant-genus NN-graph terrains");
  const std::string out = bench::OutputDir();

  Rng rng(11);
  const Table table = MakePlantGenusTable(120, &rng);
  NnGraphOptions nn;
  nn.normalize = false;
  nn.distance_threshold = 2.5;
  nn.max_neighbors = 8;
  const Graph graph = BuildNnGraph(table, nn);
  std::printf("query result: %zu rows -> NN graph %u vertices, %u edges\n",
              table.NumRows(), graph.NumVertices(), graph.NumEdges());

  // (i)+(ii) genus separation in the NN graph itself: the blue genus
  // (genusC) is well separated; red (genusA) and green (genusB) are the
  // adjacent pair, so any cross edges should be A-B.
  const ComponentLabeling comps = ConnectedComponents(graph);
  std::map<std::string, uint32_t> cross;
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const auto [u, v] = graph.EdgeEndpoints(e);
    if (table.Label(u) != table.Label(v)) {
      std::string key = table.Label(u) < table.Label(v)
                            ? table.Label(u) + "-" + table.Label(v)
                            : table.Label(v) + "-" + table.Label(u);
      ++cross[key];
    }
  }
  std::printf("(i) %u components; cross-genus edges:", comps.num_components);
  if (cross.empty()) std::printf(" none");
  for (const auto& [pair, count] : cross)
    std::printf(" %s:%u", pair.c_str(), count);
  std::printf("\n(ii) genusC (blue) touches no other genus: %s; any contact "
              "is A-B (red within green's reach): %s\n",
              cross.count("genusA-genusC") == 0 &&
                      cross.count("genusB-genusC") == 0
                  ? "HOLDS"
                  : "VIOLATED",
              cross.size() == cross.count("genusA-genusB") ? "HOLDS"
                                                            : "VIOLATED");

  const std::map<std::string, Rgb> genus_color = {
      {"genusA", Rgb{220, 38, 38}},
      {"genusB", Rgb{46, 166, 76}},
      {"genusC", Rgb{41, 98, 255}}};

  double separability[2] = {0.0, 0.0};
  for (uint32_t attribute : {0u, 1u}) {
    const VertexScalarField field = ColumnAsField(table, attribute);
    const SuperTree tree(BuildVertexScalarTree(graph, field));
    const TerrainLayout layout = BuildTerrainLayout(tree);
    const HeightField height_field = RasterizeTerrain(layout);

    std::vector<Rgb> colors(tree.NumNodes(), Rgb{156, 163, 175});
    for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
      std::map<std::string, uint32_t> votes;
      for (uint32_t member : tree.Members(node)) ++votes[table.Label(member)];
      uint32_t best = 0;
      for (const auto& [label, count] : votes)
        if (count > best) {
          best = count;
          colors[node] = genus_color.at(label);
        }
    }
    const std::string path = out + "/fig11" +
                             (attribute == 0 ? "a" : "b") + "_attr" +
                             std::to_string(attribute + 1) + "_terrain.ppm";
    (void)WritePpm(
        RenderOblique(height_field, colors, Camera{}, 800, 600), path);

    // Separability: variance of per-genus mean heights.
    std::map<std::string, std::pair<double, uint32_t>> genus_height;
    for (size_t row = 0; row < table.NumRows(); ++row) {
      auto& [sum, count] = genus_height[table.Label(row)];
      sum += table.Value(row, attribute);
      ++count;
    }
    double mean_of_means = 0.0;
    for (const auto& [label, acc] : genus_height)
      mean_of_means += acc.first / acc.second;
    mean_of_means /= genus_height.size();
    for (const auto& [label, acc] : genus_height) {
      const double m = acc.first / acc.second;
      separability[attribute] += (m - mean_of_means) * (m - mean_of_means);
    }
    std::printf("attribute %u terrain -> %s (height variance across genus: "
                "%.2f)\n",
                attribute + 1, path.c_str(), separability[attribute]);
  }
  std::printf("(iii) attribute 1 variance %.2f > attribute 2 variance %.2f: "
              "%s\n",
              separability[0], separability[1],
              separability[0] > separability[1] ? "HOLDS" : "VIOLATED");
  return 0;
}
