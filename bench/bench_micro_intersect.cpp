// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks of the sorted-run intersection layer (docs/SIMD.md):
//
//   BM_IntersectCount_{Scalar,Simd}/<len>   balanced run-length sweep;
//       the Simd/Scalar ratio at each length is the vectorization win
//       (bench/compare_bench.py gates Simd >= 2x Scalar at 4096).
//   BM_IntersectSkew_{Scalar,Gallop}/<ratio> skewed runs (short side 16);
//       the Gallop/Scalar ratio is the exponential-search win
//       (compare_bench.py gates Gallop >= 5x Scalar at 1:1024).
//   BM_IntersectDensity_Simd/<hit%>          hit-density sweep at 4096:
//       shuffle-compare cost is density-independent; this row proves it.
//   BM_IntersectCount3/<len>                 3-way count (nucleus support).
//   BM_CountTriangles_{Scalar,Simd}          before/after rows for the
//       end-to-end triangle pipeline on the collaboration graph.
//   BM_TrussSupport_{Scalar,Simd}            per-edge support counting
//       (the K-Truss front half) before/after.
//
// Scalar rows force Kernel::kScalar via SetKernelForTesting, so one
// binary produces both sides of every comparison on the same machine in
// the same run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/edge_index.h"
#include "graph/intersect.h"
#include "graph/intersect_simd.h"
#include "metrics/triangles.h"

namespace graphscape {
namespace {

using intersect::Kernel;

// Sorted duplicate-free run of `len` values from [0, universe).
std::vector<uint32_t> MakeRun(uint32_t len, uint32_t universe, Rng* rng) {
  std::set<uint32_t> values;
  while (values.size() < len && values.size() < universe) {
    values.insert(rng->UniformInt(universe));
  }
  return std::vector<uint32_t>(values.begin(), values.end());
}

// Forces `kernel` for the benchmark's lifetime; restores on destruction.
// Falls back to the widest supported kernel when the requested one is
// unavailable (SIMD-off build, non-AVX2 host) so the rows still run.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel kernel) : previous_(intersect::ActiveKernel()) {
    intersect::SetKernelForTesting(kernel);
  }
  ~ScopedKernel() { intersect::SetKernelForTesting(previous_); }

 private:
  Kernel previous_;
};

// Balanced runs, ~50% hit density (universe = 2 * len).
void IntersectCountBalanced(benchmark::State& state, Kernel kernel) {
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  Rng rng(17);
  const std::vector<uint32_t> a = MakeRun(len, 2 * len, &rng);
  const std::vector<uint32_t> b = MakeRun(len, 2 * len, &rng);
  ScopedKernel scoped(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect::Count(a.data(), static_cast<uint32_t>(a.size()), b.data(),
                         static_cast<uint32_t>(b.size())));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}

void BM_IntersectCount_Scalar(benchmark::State& state) {
  IntersectCountBalanced(state, Kernel::kScalar);
}
BENCHMARK(BM_IntersectCount_Scalar)->RangeMultiplier(4)->Range(64, 1 << 14);

void BM_IntersectCount_Simd(benchmark::State& state) {
  IntersectCountBalanced(state, intersect::ActiveKernel());
}
BENCHMARK(BM_IntersectCount_Simd)->RangeMultiplier(4)->Range(64, 1 << 14);

// Skewed runs: short side fixed at 16, long side 16 * ratio. Both rows
// call the detail:: paths directly — the public Count would route the
// scalar row through galloping too (skew >= kGallopSkewRatio), hiding
// exactly the comparison this row exists to make.
void IntersectSkew(benchmark::State& state, bool gallop) {
  const uint32_t ratio = static_cast<uint32_t>(state.range(0));
  const uint32_t short_len = 16;
  const uint32_t long_len = short_len * ratio;
  Rng rng(29);
  const std::vector<uint32_t> a = MakeRun(short_len, 2 * long_len, &rng);
  const std::vector<uint32_t> b = MakeRun(long_len, 2 * long_len, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gallop ? intersect::detail::CountGallop(
                     a.data(), static_cast<uint32_t>(a.size()), b.data(),
                     static_cast<uint32_t>(b.size()))
               : intersect::detail::CountMerge(
                     a.data(), static_cast<uint32_t>(a.size()), b.data(),
                     static_cast<uint32_t>(b.size())));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}

void BM_IntersectSkew_Scalar(benchmark::State& state) {
  IntersectSkew(state, /*gallop=*/false);
}
BENCHMARK(BM_IntersectSkew_Scalar)
    ->ArgName("ratio")
    ->RangeMultiplier(4)
    ->Range(16, 4096);

void BM_IntersectSkew_Gallop(benchmark::State& state) {
  IntersectSkew(state, /*gallop=*/true);
}
BENCHMARK(BM_IntersectSkew_Gallop)
    ->ArgName("ratio")
    ->RangeMultiplier(4)
    ->Range(16, 4096);

// Hit-density sweep at length 4096: universe scales so the expected
// overlap is ~range(0) percent of each run.
void BM_IntersectDensity_Simd(benchmark::State& state) {
  const uint32_t len = 4096;
  const uint32_t density = static_cast<uint32_t>(state.range(0));
  const uint32_t universe = std::max(len, len * 100 / std::max(1u, density));
  Rng rng(43);
  const std::vector<uint32_t> a = MakeRun(len, universe, &rng);
  const std::vector<uint32_t> b = MakeRun(len, universe, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect::Count(a.data(), static_cast<uint32_t>(a.size()), b.data(),
                         static_cast<uint32_t>(b.size())));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectDensity_Simd)
    ->ArgName("hitpct")
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(90);

// 3-way count-only intersection — the nucleus 4-clique support shape.
void BM_IntersectCount3(benchmark::State& state) {
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  Rng rng(59);
  const std::vector<uint32_t> a = MakeRun(len, 2 * len, &rng);
  const std::vector<uint32_t> b = MakeRun(len, 2 * len, &rng);
  const std::vector<uint32_t> c = MakeRun(len, 2 * len, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect::Count3(
        a.data(), static_cast<uint32_t>(a.size()), b.data(),
        static_cast<uint32_t>(b.size()), c.data(),
        static_cast<uint32_t>(c.size())));
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.size() + b.size() + c.size()));
}
BENCHMARK(BM_IntersectCount3)->RangeMultiplier(4)->Range(64, 1 << 12);

// ------------------------------------------------------- end-to-end rows --

Graph CollabGraph(uint32_t n) {
  CollaborationOptions options;
  options.num_vertices = n;
  options.num_groups = n / 2;
  options.num_planted_cores = 2;
  options.planted_core_size = 24;
  Rng rng(11);  // same seed/shape as bench_micro_metrics BM_TriangleCount
  return CollaborationNetwork(options, &rng);
}

void CountTrianglesWithKernel(benchmark::State& state, Kernel kernel) {
  const Graph g = CollabGraph(1 << 16);
  ScopedKernel scoped(kernel);
  for (auto _ : state) benchmark::DoNotOptimize(CountTriangles(g));
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}

void BM_CountTriangles_Scalar(benchmark::State& state) {
  CountTrianglesWithKernel(state, Kernel::kScalar);
}
BENCHMARK(BM_CountTriangles_Scalar);

void BM_CountTriangles_Simd(benchmark::State& state) {
  CountTrianglesWithKernel(state, intersect::ActiveKernel());
}
BENCHMARK(BM_CountTriangles_Simd);

// The K-Truss front half: one count-only intersection per edge.
void TrussSupportWithKernel(benchmark::State& state, Kernel kernel) {
  const Graph g = CollabGraph(1 << 15);
  const EdgeIndex index(g);
  ScopedKernel scoped(kernel);
  for (auto _ : state) {
    uint64_t total = 0;
    for (uint32_t e = 0; e < index.NumEdges(); ++e) {
      total += CountCommonNeighbors(g, index.U(e), index.V(e));
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}

void BM_TrussSupport_Scalar(benchmark::State& state) {
  TrussSupportWithKernel(state, Kernel::kScalar);
}
BENCHMARK(BM_TrussSupport_Scalar);

void BM_TrussSupport_Simd(benchmark::State& state) {
  TrussSupportWithKernel(state, intersect::ActiveKernel());
}
BENCHMARK(BM_TrussSupport_Simd);

}  // namespace
}  // namespace graphscape
