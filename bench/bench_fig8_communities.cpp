// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 8: community terrains on the DBLP(sub)-like network. The community
// score vectors play the role of ref [14]'s (BigCLAM) output: the planted
// generator emits them directly (DESIGN.md §3, substitution 2), and our
// BigCLAM-lite implementation is run as a secondary recovery check. The
// headline structure is the *two disconnected core peaks* inside each
// community (the paper's US-vs-China researcher groups).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "community/bigclam.h"
#include "gen/generators.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 8 — two communities in the DBLP network",
                "paper Fig. 8(a)/(b): twin core peaks inside one community");
  const std::string out = bench::OutputDir();

  OverlappingCommunityOptions options;
  options.num_communities = 4;
  options.vertices_per_community = 300;
  options.subclusters = 2;
  Rng rng(2017);
  const CommunityGraphResult dblp = OverlappingCommunities(options, &rng);
  std::printf("DBLP(sub)-like: %u vertices, %u edges, 4 overlapping "
              "communities\n",
              dblp.graph.NumVertices(), dblp.graph.NumEdges());

  for (uint32_t c = 0; c < 4; ++c) {
    const VertexScalarField score("community" + std::to_string(c),
                                  dblp.scores[c]);
    const SuperTree tree(BuildVertexScalarTree(dblp.graph, score));
    const TerrainLayout layout = BuildTerrainLayout(tree);
    const HeightField field = RasterizeTerrain(layout);
    const std::string path =
        out + "/fig8_community" + std::to_string(c) + ".ppm";
    (void)WritePpm(
        RenderOblique(field, HeightColors(tree), Camera{}, 800, 600), path);

    // Sub-peak structure near the summit: disconnected high-score cores.
    const auto core_peaks = PeaksAtLevel(tree, 0.8);
    std::printf("community %u: %zu core peak(s) at score >= 0.8;", c,
                core_peaks.size());
    for (const auto& peak : core_peaks)
      std::printf(" [%u members, summit %.2f]", peak.member_count,
                  peak.max_scalar);
    std::printf(" -> %s\n", path.c_str());
    if (core_peaks.size() >= 2) {
      std::printf("  twin peaks are disconnected at score 0.8 -> their "
                  "member sets do not collaborate directly (the paper's "
                  "geographic-split reading)\n");
    }
  }

  // Secondary check: BigCLAM-lite recovery of the planted communities.
  BigClamOptions bigclam;
  bigclam.num_communities = 4;
  bigclam.iterations = 80;
  const auto affinities = BigClamFit(dblp.graph, bigclam);
  std::printf("\nBigCLAM-lite recovery (best member-overlap per planted "
              "community):\n");
  for (uint32_t planted = 0; planted < 4; ++planted) {
    double best = 0.0;
    for (uint32_t fitted = 0; fitted < 4; ++fitted) {
      const VertexScalarField fit = CommunityScoreField(affinities, fitted);
      uint32_t hits = 0, size = 0;
      for (VertexId v = 0; v < dblp.graph.NumVertices(); ++v) {
        if (dblp.scores[planted][v] > 0.2) {
          ++size;
          if (fit[v] > 0.3) ++hits;
        }
      }
      if (size > 0) best = std::max(best, static_cast<double>(hits) / size);
    }
    std::printf("  community %u: overlap %.2f\n", planted, best);
  }
  std::printf("\nshape check: every community = one major peak; twin "
              "sub-communities = 2 disconnected core peaks near the summit.\n");
  return 0;
}
