#!/usr/bin/env python3
# Copyright 2026 The GraphScape Authors.
# Licensed under the Apache License, Version 2.0.
"""CI bench-regression gate: compare a BENCH_merged.json against the
committed baseline and fail on any tracked throughput regression.

Usage:
    compare_bench.py BASELINE CURRENT [--max-regression 0.25]
                     [--min-seconds 0.05]

Tracked rows:

  * Microbenchmark throughput (items_per_second) for the hot paths:
    Algorithm 1 (vertex tree), Algorithm 3 (edge tree), the analysis
    layer's member index / persistence scans, and the terrain pipeline
    (rasterization pixels/s, spring layout vertex-iterations/s). A row
    regressing by more than --max-regression (default 25%) fails the
    gate. A tracked row missing from CURRENT fails too — a bench
    silently disappearing is a regression. A row missing from BASELINE
    is reported and skipped (re-baseline to start tracking it).

  * Microbenchmark latency (real_time, lower is better) for hot paths
    that report no item counter — the terrain layout construction under
    both split policies. Same regression bound, inverted.

  * Scaling efficiency for the parallel construction engine
    (docs/PARALLELISM.md): within the CURRENT run, the sequential
    reference's real_time over its /threads:4 row. The vertex-tree row
    gates at >= 2.5x, but ONLY when the runner reports enough cores
    (context.num_cpus >= 4); on smaller machines all scaling rows are
    informational. The other rows are always informational readouts.

  * Kernel speedups for the sorted-run intersection layer (docs/SIMD.md):
    within the CURRENT run, the scalar merge's real_time over the
    dispatched SIMD row (gates >= 2x on balanced 4096-element runs) and
    over the galloping row (gates >= 5x at 1:1024 skew). Both sides come
    from the same bench_micro_intersect process, so the comparison is
    machine-independent.

  * Table II construction times, aggregated: the sum of tc over all
    KC(v) rows, the sum over all KT(e) rows, and the sum of the numeric
    te cells present in BOTH files. Aggregation keeps the gate out of
    per-row millisecond noise; aggregates whose baseline is below
    --min-seconds are informational only (they gate automatically on
    slower runners, where the sums are large enough to be meaningful).

Re-baselining (e.g. after CI runner hardware changes, or when a PR
legitimately trades one row for a bigger win): download the
BENCH_merged.json artifact from a green run of the bench-smoke job on
main and commit it as bench/baseline/BENCH_baseline.json. Locally:

    cmake -B build -S . && cmake --build build -j
    bench/make_baseline.sh build bench/baseline/BENCH_baseline.json

Exit status: 0 when every gated row is within bounds, 1 otherwise.
"""

import argparse
import json
import re
import sys

TRACKED_BENCHMARKS = [
    "BM_Algorithm1_Distinct/131072",
    "BM_Algorithm1_IntegerField/131072",
    "BM_EdgeTree_Optimized/65536",
    "BM_MemberIndexBuild/131072",
    "BM_MembersFullScan/131072",
    "BM_PersistencePairs/131072",
    "BM_Rasterize/512",
    "BM_SpringLayout/16384",
    # Parallel construction engine (docs/PARALLELISM.md): the fixed-size
    # sequential references and their 4-lane rows. Tracking both keeps a
    # regression in EITHER path visible even on 1-core runners, where the
    # /threads:4 row degrades to the sequential code path.
    "BM_BuildVertexScalarTree",
    "BM_BuildVertexScalarTreeParallel/threads:4",
    "BM_BuildEdgeScalarTree",
    "BM_BuildEdgeScalarTreeParallel/threads:4",
    "BM_TriangleCountParallel/threads:4",
    "BM_PageRankParallel/threads:4",
    "BM_RasterizeParallel/threads:4",
    "BM_SpringLayoutParallel/threads:4",
    # Query service (docs/SERVICE.md): mixed-workload throughput over the
    # loopback wire protocol, from bench_service_qps's BENCH_service.json.
    "SVC_MixedQps",
    # Sorted-run intersection layer (docs/SIMD.md): the dispatched kernel
    # on balanced 4096-element runs, the galloping path at 1:1024 skew,
    # and the triangle-adjacent end-to-end rows they feed.
    "BM_IntersectCount_Simd/4096",
    "BM_IntersectSkew_Gallop/ratio:1024",
    "BM_IntersectCount3/1024",
    "BM_CountTriangles_Simd",
    "BM_TrussSupport_Simd",
    "BM_TriangleCount/65536",
]

# real_time rows (ns, lower is better): benches without an item counter.
TRACKED_TIME_BENCHMARKS = [
    "BM_Layout_SliceDice/65536",
    "BM_Layout_Balanced/65536",
    # Service request latency percentiles (ns) under the mixed workload.
    "SVC_MixedP50",
    "SVC_MixedP99",
]

# Scaling-efficiency readout: within the CURRENT run, real_time of the
# sequential reference divided by its /threads:N row. Rows with a
# min_speedup GATE when the runner actually has the cores
# (context.num_cpus >= the thread count); on smaller machines every row
# is informational — a 1-core container cannot show parallel speedup and
# must not fail on it. min_speedup None = always informational (e.g. the
# edge tree only parallelizes its sort; the raster pays per-band
# footprint re-decode).
SCALING_CHECKS = [
    ("BM_BuildVertexScalarTree",
     "BM_BuildVertexScalarTreeParallel/threads:4", 4, 2.5),
    ("BM_BuildEdgeScalarTree",
     "BM_BuildEdgeScalarTreeParallel/threads:4", 4, None),
    ("BM_TriangleCountParallel/threads:1",
     "BM_TriangleCountParallel/threads:4", 4, None),
    ("BM_PageRankParallel/threads:1",
     "BM_PageRankParallel/threads:4", 4, None),
    ("BM_RasterizeParallel/threads:1",
     "BM_RasterizeParallel/threads:4", 4, None),
    ("BM_SpringLayoutParallel/threads:1",
     "BM_SpringLayoutParallel/threads:4", 4, None),
]

# Kernel-vs-scalar readout (docs/SIMD.md): within the CURRENT run, the
# scalar row's real_time over the dispatched/galloping row's, from
# bench_micro_intersect's forced-kernel pairs. Unlike SCALING_CHECKS
# these gate unconditionally — vectorization and exponential search need
# no extra cores. Rows missing from the run (e.g. a -DGRAPHSCAPE_SIMD=OFF
# build whose bench was filtered out) are skipped, not failed.
KERNEL_CHECKS = [
    ("BM_IntersectCount_Scalar/4096", "BM_IntersectCount_Simd/4096", 2.0),
    ("BM_IntersectSkew_Scalar/ratio:1024",
     "BM_IntersectSkew_Gallop/ratio:1024", 5.0),
]

TABLE2_ROW = re.compile(
    r"^(\w+)\s+(KC\(v\)|KT\(e\))\s+(\d+)\s+([0-9.]+)\s+(\S+)\s+(\S+)")


def load_benchmarks(merged):
    """name -> items_per_second for benchmark entries that report one."""
    rows = {}
    for entry in merged.get("benchmarks", []):
        if "items_per_second" in entry:
            rows[entry["name"]] = float(entry["items_per_second"])
    return rows


def load_times(merged):
    """name -> real_time (ns) for every benchmark entry."""
    rows = {}
    for entry in merged.get("benchmarks", []):
        if "real_time" in entry:
            rows[entry["name"]] = float(entry["real_time"])
    return rows


def load_table2(merged):
    """(dataset, scalar) -> {"tc": float, "te": float | None}."""
    rows = {}
    for line in merged.get("tables", {}).get("table2_construction", []):
        match = TABLE2_ROW.match(line)
        if not match:
            continue
        dataset, scalar, _, tc, te, _ = match.groups()
        te_value = float(te) if re.fullmatch(r"[0-9.]+", te) else None
        rows[(dataset, scalar)] = {"tc": float(tc), "te": te_value}
    return rows


def table2_aggregates(base_rows, cur_rows):
    """Aggregate sums over the rows both files report."""
    shared = sorted(set(base_rows) & set(cur_rows))
    aggregates = []
    for scalar, label in (("KC(v)", "table2 tc sum KC(v)"),
                          ("KT(e)", "table2 tc sum KT(e)")):
        keys = [k for k in shared if k[1] == scalar]
        if keys:
            aggregates.append((label,
                               sum(base_rows[k]["tc"] for k in keys),
                               sum(cur_rows[k]["tc"] for k in keys)))
    te_keys = [k for k in shared
               if base_rows[k]["te"] is not None
               and cur_rows[k]["te"] is not None]
    if te_keys:
        aggregates.append(("table2 te sum (naive)",
                           sum(base_rows[k]["te"] for k in te_keys),
                           sum(cur_rows[k]["te"] for k in te_keys)))
    return aggregates


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional throughput loss that fails the "
                             "gate (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="table2 aggregates with a baseline below "
                             "this are informational only")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    print(f"{'row':44s} {'baseline':>12s} {'current':>12s} {'delta':>8s}  "
          f"verdict")

    # Microbench throughput rows: higher is better.
    base_bench = load_benchmarks(baseline)
    cur_bench = load_benchmarks(current)
    for name in TRACKED_BENCHMARKS:
        if name not in base_bench:
            print(f"{name:44s} {'-':>12s} {'-':>12s} {'-':>8s}  "
                  f"SKIP (not in baseline; re-baseline to track)")
            continue
        base_value = base_bench[name]
        if name not in cur_bench:
            print(f"{name:44s} {base_value:12.3e} {'-':>12s} {'-':>8s}  "
                  f"FAIL (missing from current run)")
            failures.append(f"{name} missing from current run")
            continue
        cur_value = cur_bench[name]
        delta = cur_value / base_value - 1.0
        ok = cur_value >= base_value * (1.0 - args.max_regression)
        verdict = "ok" if ok else "FAIL"
        print(f"{name:44s} {base_value:12.3e} {cur_value:12.3e} "
              f"{delta:+7.1%}  {verdict}")
        if not ok:
            failures.append(
                f"{name}: {cur_value:.3e} items/s vs baseline "
                f"{base_value:.3e} ({delta:+.1%})")

    # Latency rows: lower is better, same bound inverted.
    base_times = load_times(baseline)
    cur_times = load_times(current)
    for name in TRACKED_TIME_BENCHMARKS:
        if name not in base_times:
            print(f"{name:44s} {'-':>12s} {'-':>12s} {'-':>8s}  "
                  f"SKIP (not in baseline; re-baseline to track)")
            continue
        base_value = base_times[name]
        if name not in cur_times:
            print(f"{name:44s} {base_value:12.3e} {'-':>12s} {'-':>8s}  "
                  f"FAIL (missing from current run)")
            failures.append(f"{name} missing from current run")
            continue
        cur_value = cur_times[name]
        delta = cur_value / base_value - 1.0
        ok = cur_value <= base_value / (1.0 - args.max_regression)
        verdict = "ok" if ok else "FAIL"
        print(f"{name:44s} {base_value:12.3e} {cur_value:12.3e} "
              f"{delta:+7.1%}  {verdict}")
        if not ok:
            failures.append(
                f"{name}: {cur_value:.3e} ns vs baseline "
                f"{base_value:.3e} ({delta:+.1%})")

    # Scaling efficiency (current run only): seq real_time / par real_time.
    num_cpus = (current.get("context") or {}).get("num_cpus", 0)
    for seq_name, par_name, threads, min_speedup in SCALING_CHECKS:
        if seq_name not in cur_times or par_name not in cur_times:
            print(f"{par_name:44s} {'-':>12s} {'-':>12s} {'-':>8s}  "
                  f"SKIP (scaling rows missing from current run)")
            continue
        speedup = cur_times[seq_name] / cur_times[par_name]
        gated = min_speedup is not None and num_cpus >= threads
        label = f"scaling {par_name}"
        if min_speedup is None:
            verdict = "info"
            ok = True
        elif not gated:
            verdict = f"info (num_cpus={num_cpus} < {threads})"
            ok = True
        else:
            ok = speedup >= min_speedup
            verdict = "ok" if ok else "FAIL"
        bound = f">={min_speedup:.1f}x" if min_speedup is not None else "-"
        print(f"{label:44s} {bound:>12s} {speedup:11.2f}x {'':>8s}  "
              f"{verdict}")
        if not ok:
            failures.append(
                f"{par_name}: {speedup:.2f}x speedup over {seq_name}, "
                f"required >= {min_speedup:.1f}x on a "
                f"{num_cpus}-cpu runner")

    # Kernel speedups (current run only): scalar real_time / kernel
    # real_time on the same inputs in the same process.
    for slow_name, fast_name, min_speedup in KERNEL_CHECKS:
        if slow_name not in cur_times or fast_name not in cur_times:
            print(f"{fast_name:44s} {'-':>12s} {'-':>12s} {'-':>8s}  "
                  f"SKIP (kernel rows missing from current run)")
            continue
        speedup = cur_times[slow_name] / cur_times[fast_name]
        ok = speedup >= min_speedup
        verdict = "ok" if ok else "FAIL"
        label = f"kernel {fast_name}"
        bound = f">={min_speedup:.1f}x"
        print(f"{label:44s} {bound:>12s} {speedup:11.2f}x {'':>8s}  "
              f"{verdict}")
        if not ok:
            failures.append(
                f"{fast_name}: {speedup:.2f}x speedup over {slow_name}, "
                f"required >= {min_speedup:.1f}x")

    # Table II aggregates: lower is better.
    for label, base_value, cur_value in table2_aggregates(
            load_table2(baseline), load_table2(current)):
        delta = cur_value / base_value - 1.0 if base_value > 0 else 0.0
        gated = base_value >= args.min_seconds
        ok = cur_value <= base_value / (1.0 - args.max_regression)
        verdict = ("ok" if ok else "FAIL") if gated else "info"
        print(f"{label:44s} {base_value:11.4f}s {cur_value:11.4f}s "
              f"{delta:+7.1%}  {verdict}")
        if gated and not ok:
            failures.append(
                f"{label}: {cur_value:.4f}s vs baseline "
                f"{base_value:.4f}s ({delta:+.1%})")

    if failures:
        for failure in failures:
            print(f"::error::bench regression: {failure}")
        print("::error::if this regression is expected, re-baseline: see "
              "bench/compare_bench.py --help")
        return 1
    print("bench gate: all tracked rows within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
