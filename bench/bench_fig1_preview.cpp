// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fig. 1: the paper's preview — (a) a K-Core terrain of a collaboration
// network colored by degree (second measure), and (b) a four-community
// terrain of a DBLP-like network. Writes both renders and prints the
// structural readouts the paper calls out.

#include <cstdio>

#include "bench_util.h"
#include "community/bigclam.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "scalar/tree_queries.h"
#include "terrain/render.h"
#include "terrain/terrain_raster.h"

int main() {
  using namespace graphscape;
  bench::Banner("Fig. 1 — preview terrains",
                "paper Fig. 1(a) K-Core terrain, Fig. 1(b) community terrain");
  const std::string out = bench::OutputDir();

  // (a) K-Core terrain colored by degree.
  const Dataset grqc = MakeDataset(DatasetId::kGrQc);
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(grqc.graph));
  const SuperTree core_tree(BuildVertexScalarTree(grqc.graph, kc));
  std::vector<double> degrees(grqc.graph.NumVertices());
  for (VertexId v = 0; v < grqc.graph.NumVertices(); ++v)
    degrees[v] = grqc.graph.Degree(v);
  const TerrainLayout core_layout = BuildTerrainLayout(core_tree);
  const HeightField core_field = RasterizeTerrain(core_layout);
  (void)WritePpm(RenderOblique(core_field, SuperNodeColors(core_tree, degrees),
                               Camera{}, 960, 720),
                 out + "/fig1a_kcore_terrain.ppm");
  const auto top = PeaksAtLevel(core_tree, kc.MaxValue());
  std::printf("Fig 1(a): densest K-Core K=%g, %zu disconnected densest "
              "core(s); click-to-inspect set sizes:", kc.MaxValue(),
              top.size());
  for (const auto& peak : top) std::printf(" %u", peak.member_count);
  std::printf("\n  -> %s/fig1a_kcore_terrain.ppm (height=KC, color=degree)\n",
              out.c_str());

  // (b) Four communities in one picture: terrain of max community score
  // (scores stand in for ref [14]'s output; see DESIGN.md substitution 2).
  OverlappingCommunityOptions community_options;
  community_options.num_communities = 4;
  community_options.vertices_per_community = 300;
  Rng rng(1);
  const CommunityGraphResult dblp =
      OverlappingCommunities(community_options, &rng);

  std::vector<double> best_score(dblp.graph.NumVertices(), 0.0);
  std::vector<double> best_community(dblp.graph.NumVertices(), 0.0);
  for (uint32_t c = 0; c < 4; ++c) {
    for (VertexId v = 0; v < dblp.graph.NumVertices(); ++v) {
      if (dblp.scores[c][v] > best_score[v]) {
        best_score[v] = dblp.scores[c][v];
        best_community[v] = c;
      }
    }
  }
  const VertexScalarField field("max_community_score", best_score);
  const SuperTree tree(BuildVertexScalarTree(dblp.graph, field));
  const TerrainLayout layout = BuildTerrainLayout(tree);
  const HeightField height_field = RasterizeTerrain(layout);
  (void)WritePpm(
      RenderOblique(height_field, SuperNodeColors(tree, best_community),
                    Camera{}, 960, 720),
      out + "/fig1b_community_terrain.ppm");
  std::printf("Fig 1(b): %u major peaks at score >= 0.5 (expect ~4, one per "
              "community)\n",
              CountComponentsAtLevel(tree, 0.5));
  std::printf("  -> %s/fig1b_community_terrain.ppm (height=score, "
              "color=community id)\n",
              out.c_str());
  return 0;
}
