// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared helpers for the figure/table benches: output directory handling
// and uniform banner printing so every bench reads the same way.

#ifndef GRAPHSCAPE_BENCH_BENCH_UTIL_H_
#define GRAPHSCAPE_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/parallel.h"

namespace graphscape {
namespace bench {

/// Thread count for the parallel construction paths, resolved once and
/// uniformly for every bench: GRAPHSCAPE_THREADS if set, else hardware
/// concurrency (common/parallel.h) — no bench parses the env on its own.
inline uint32_t Threads() { return DefaultThreads(); }

/// Artifact directory: $GRAPHSCAPE_BENCH_OUT or ./bench_artifacts.
inline std::string OutputDir() {
  const char* env = std::getenv("GRAPHSCAPE_BENCH_OUT");
  const std::string dir = env != nullptr ? env : "bench_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr,
                 "bench_util: failed to create output dir '%s': %s\n",
                 dir.c_str(), ec.message().c_str());
  }
  return dir;
}

/// Tree-artifact cache root for figure benches: $GRAPHSCAPE_CACHE_DIR or
/// ./tree_cache. Kept separate from OutputDir() so CI can upload rendered
/// figures without dragging cached artifacts along, and persist the cache
/// across runs independently.
inline std::string CacheDir() {
  const char* env = std::getenv("GRAPHSCAPE_CACHE_DIR");
  return env != nullptr ? env : "tree_cache";
}

/// True when the caller asked for paper-scale datasets
/// ($GRAPHSCAPE_FULL_SCALE set to 1/true/yes, case-insensitive); default is
/// the scaled-down registry sizes.
inline bool FullScale() {
  const char* env = std::getenv("GRAPHSCAPE_FULL_SCALE");
  if (env == nullptr) return false;
  const std::string value = env;
  auto iequals = [&value](const char* expected) {
    if (value.size() != std::strlen(expected)) return false;
    for (size_t i = 0; i < value.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(value[i])) != expected[i])
        return false;
    }
    return true;
  };
  return iequals("1") || iequals("true") || iequals("yes");
}

inline void Banner(const char* experiment, const char* paper_content) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  reproduces: %s\n", paper_content);
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace graphscape

#endif  // GRAPHSCAPE_BENCH_BENCH_UTIL_H_
