// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks of the terrain pipeline: layout construction under both
// split policies (the DESIGN.md ablation), rasterization by resolution, and
// the oblique software render.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "layout/spring_layout.h"
#include "metrics/kcore.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"
#include "terrain/render.h"
#include "terrain/terrain_layout.h"
#include "terrain/terrain_raster.h"

namespace graphscape {
namespace {

SuperTree BenchTree(uint32_t n) {
  CollaborationOptions options;
  options.num_vertices = n;
  options.num_groups = n / 2;
  Rng rng(5);
  const Graph g = CollaborationNetwork(options, &rng);
  return SuperTree(BuildVertexScalarTree(
      g, VertexScalarField::FromCounts("KC", CoreNumbers(g))));
}

void BM_Layout_SliceDice(benchmark::State& state) {
  const SuperTree tree = BenchTree(static_cast<uint32_t>(state.range(0)));
  TerrainLayoutOptions options;
  options.split = SplitPolicy::kSliceDice;
  for (auto _ : state)
    benchmark::DoNotOptimize(BuildTerrainLayout(tree, options));
  state.counters["super_nodes"] = tree.NumNodes();
}
BENCHMARK(BM_Layout_SliceDice)->Range(1 << 12, 1 << 16);

void BM_Layout_Balanced(benchmark::State& state) {
  const SuperTree tree = BenchTree(static_cast<uint32_t>(state.range(0)));
  TerrainLayoutOptions options;
  options.split = SplitPolicy::kBalanced;
  for (auto _ : state)
    benchmark::DoNotOptimize(BuildTerrainLayout(tree, options));
  state.counters["super_nodes"] = tree.NumNodes();
}
BENCHMARK(BM_Layout_Balanced)->Range(1 << 12, 1 << 16);

void BM_Rasterize(benchmark::State& state) {
  const SuperTree tree = BenchTree(1 << 14);
  const TerrainLayout layout = BuildTerrainLayout(tree);
  RasterOptions options;
  options.width = static_cast<uint32_t>(state.range(0));
  options.height = options.width;
  for (auto _ : state)
    benchmark::DoNotOptimize(RasterizeTerrain(layout, options));
  state.SetItemsProcessed(state.iterations() * options.width * options.width);
}
BENCHMARK(BM_Rasterize)->RangeMultiplier(2)->Range(128, 1024);

// Row-band parallel paint at a fixed 1024x1024 grid; the field is
// bit-identical to the sequential row for every thread count
// (tests/parallel_test.cc). Bands re-decode every footprint, so the
// useful width saturates near the nesting-depth overdraw bound.
void BM_RasterizeParallel(benchmark::State& state) {
  const SuperTree tree = BenchTree(1 << 14);
  const TerrainLayout layout = BuildTerrainLayout(tree);
  RasterOptions options;
  options.width = options.height = 1024;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(RasterizeTerrain(layout, options));
  state.SetItemsProcessed(state.iterations() * options.width * options.width);
}
BENCHMARK(BM_RasterizeParallel)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_RenderOblique(benchmark::State& state) {
  const SuperTree tree = BenchTree(1 << 14);
  const TerrainLayout layout = BuildTerrainLayout(tree);
  RasterOptions raster;
  raster.width = static_cast<uint32_t>(state.range(0));
  raster.height = raster.width;
  const HeightField field = RasterizeTerrain(layout, raster);
  const auto colors = HeightColors(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RenderOblique(field, colors, Camera{}, 800, 600));
  }
}
BENCHMARK(BM_RenderOblique)->RangeMultiplier(2)->Range(128, 512);

void BM_SpringLayout(benchmark::State& state) {
  CollaborationOptions options;
  options.num_vertices = static_cast<uint32_t>(state.range(0));
  options.num_groups = options.num_vertices / 2;
  Rng rng(5);
  const Graph g = CollaborationNetwork(options, &rng);
  SpringLayoutOptions spring;
  spring.iterations = 20;
  for (auto _ : state) benchmark::DoNotOptimize(SpringLayout(g, spring));
  // Throughput in vertex-iterations: the grid-binned loop's unit of work.
  state.SetItemsProcessed(state.iterations() * g.NumVertices() *
                          spring.iterations);
}
BENCHMARK(BM_SpringLayout)->Range(1 << 12, 1 << 14);

// Per-vertex force passes on all lanes (binning stays sequential);
// positions are bit-identical to the sequential row for every width.
void BM_SpringLayoutParallel(benchmark::State& state) {
  CollaborationOptions options;
  options.num_vertices = 1 << 14;
  options.num_groups = options.num_vertices / 2;
  Rng rng(5);
  const Graph g = CollaborationNetwork(options, &rng);
  SpringLayoutOptions spring;
  spring.iterations = 20;
  spring.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(SpringLayout(g, spring));
  state.SetItemsProcessed(state.iterations() * g.NumVertices() *
                          spring.iterations);
}
BENCHMARK(BM_SpringLayoutParallel)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_RenderTopDown(benchmark::State& state) {
  const SuperTree tree = BenchTree(1 << 14);
  const TerrainLayout layout = BuildTerrainLayout(tree);
  RasterOptions raster;
  raster.width = static_cast<uint32_t>(state.range(0));
  raster.height = raster.width;
  const HeightField field = RasterizeTerrain(layout, raster);
  const auto colors = HeightColors(tree);
  for (auto _ : state)
    benchmark::DoNotOptimize(RenderTopDown(field, colors));
}
BENCHMARK(BM_RenderTopDown)->RangeMultiplier(2)->Range(128, 1024);

}  // namespace
}  // namespace graphscape
