// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tables IV, V, VI: the simulated user study (see DESIGN.md §3,
// substitution 4 — simulated participants replace the paper's human
// subjects; evidence is extracted from the actual rendered artifacts).
// Also regenerates the Fig. 12/13 panels as files.
//
// Shape to hold: terrain accuracy 1.0 on Tasks 1-2 with the lowest times;
// LaNet-vi/OpenOrd drop accuracy on PPI/DBLP and cost 1.5-3x the time;
// Task 3 favors terrain over OpenOrd on both accuracy and time.

#include <cstdio>

#include "bench_util.h"
#include "gen/datasets.h"
#include "layout/openord_layout.h"
#include "metrics/centrality.h"
#include "metrics/kcore.h"
#include "scalar/correlation.h"
#include "scalar/scalar_tree.h"
#include "terrain/render.h"
#include "terrain/svg.h"
#include "terrain/terrain_raster.h"
#include "userstudy/evidence.h"
#include "userstudy/simulated_user.h"

namespace {

using namespace graphscape;

struct ToolArtifacts {
  SuperTree tree;
  LanetViLayoutResult lanetvi;
  Positions openord;
  std::vector<uint32_t> cores;
};

ToolArtifacts BuildArtifacts(const Graph& graph) {
  ToolArtifacts artifacts;
  artifacts.cores = CoreNumbers(graph);
  artifacts.tree = SuperTree(BuildVertexScalarTree(
      graph, VertexScalarField::FromCounts("KC", artifacts.cores)));
  artifacts.lanetvi = LanetViLayout(graph);
  OpenOrdOptions oo;
  oo.coarse_iterations = 60;
  oo.refine_iterations = 15;
  artifacts.openord = OpenOrdLayout(graph, oo);
  return artifacts;
}

void EmitFig12Panels(const char* name, const Graph& graph,
                     const ToolArtifacts& artifacts, const std::string& out) {
  const HeightField field =
      RasterizeTerrain(BuildTerrainLayout(artifacts.tree));
  (void)WritePpm(RenderOblique(field, HeightColors(artifacts.tree), Camera{},
                               700, 520),
                 out + "/fig12_" + name + "_terrain.ppm");
  uint32_t kmax = 1;
  for (uint32_t c : artifacts.cores) kmax = std::max(kmax, c);
  std::vector<Rgb> colors(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v)
    colors[v] =
        ContinuousColor(static_cast<double>(artifacts.cores[v]) / kmax);
  (void)WriteNodeLinkSvg(graph, artifacts.lanetvi.positions, colors,
                         out + "/fig12_" + std::string(name) + "_lanetvi.svg",
                         600, 1.5);
  (void)WriteNodeLinkSvg(graph, artifacts.openord, colors,
                         out + "/fig12_" + std::string(name) + "_openord.svg",
                         600, 1.5);
}

void RunCoreTask(StudyTask task, const char* table_name,
                 EvidenceTable* evidence_table) {
  std::printf("\n%s\n", table_name);
  std::printf("%-8s | %-8s %-8s | %-8s %-8s | %-8s %-8s\n", "Dataset",
              "Terr.acc", "Terr.t", "LaNet.acc", "LaNet.t", "Open.acc",
              "Open.t");
  const DatasetId sets[] = {DatasetId::kGrQc, DatasetId::kPPI,
                            DatasetId::kDBLP};
  const std::string out = bench::OutputDir();
  for (DatasetId id : sets) {
    const Dataset ds = MakeDataset(id);
    const ToolArtifacts artifacts = BuildArtifacts(ds.graph);
    if (task == StudyTask::kDensestCore)
      EmitFig12Panels(ds.spec.name, ds.graph, artifacts, out);

    const TaskOutcome terrain =
        SimulateTask(StudyTool::kTerrain,
                     TerrainCoreEvidence(ds.graph, artifacts.tree, task));
    const TaskOutcome lanetvi = SimulateTask(
        StudyTool::kLaNetVi,
        LanetViCoreEvidence(ds.graph, artifacts.lanetvi, task));
    const TaskOutcome openord = SimulateTask(
        StudyTool::kOpenOrd,
        OpenOrdCoreEvidence(ds.graph, artifacts.openord, artifacts.cores,
                            task));
    const std::string row =
        std::string(TaskName(task)) + "/" + ds.spec.name;
    evidence_table->Add(row, terrain);
    evidence_table->Add(row, lanetvi);
    evidence_table->Add(row, openord);
    std::printf("%-8s | %8.1f %8.1f | %8.1f %8.1f | %8.1f %8.1f\n",
                ds.spec.name, terrain.accuracy, terrain.mean_seconds,
                lanetvi.accuracy, lanetvi.mean_seconds, openord.accuracy,
                openord.mean_seconds);
  }
}

}  // namespace

int main() {
  using namespace graphscape;
  bench::Banner("Tables IV-VI — simulated user study",
                "paper §IV Tables IV/V/VI + Fig. 12/13 artifacts");
  std::printf("(simulated participants; evidence measured from real "
              "artifacts — see DESIGN.md substitution 4)\n");

  EvidenceTable evidence_table;
  RunCoreTask(StudyTask::kDensestCore,
              "Table IV — Task 1: identify the densest K-Core "
              "(accuracy, avg seconds)",
              &evidence_table);
  RunCoreTask(StudyTask::kSecondDensestCore,
              "Table V — Task 2: densest K-Core disconnected from the first",
              &evidence_table);

  // Table VI — Task 3 on Astro: terrain vs OpenOrd.
  std::printf("\nTable VI — Task 3: degree/betweenness correlation (Astro)\n");
  DatasetOptions astro_options;
  astro_options.scale_divisor = 2;
  const Dataset astro = MakeDataset(DatasetId::kAstro, astro_options);
  const VertexScalarField degree("degree", DegreeCentrality(astro.graph));
  BetweennessOptions bo;
  bo.num_samples = 128;
  const VertexScalarField betweenness(
      "betweenness", BetweennessCentrality(astro.graph, bo));
  const double gci = Gci(astro.graph, degree, betweenness);

  OpenOrdOptions oo;
  oo.coarse_iterations = 60;
  oo.refine_iterations = 15;
  const Positions openord_positions = OpenOrdLayout(astro.graph, oo);

  const TaskOutcome terrain =
      SimulateTask(StudyTool::kTerrain, TerrainCorrelationEvidence(gci));
  const TaskOutcome openord = SimulateTask(
      StudyTool::kOpenOrd,
      OpenOrdCorrelationEvidence(gci, openord_positions));
  evidence_table.Add("correlation-estimate/Astro", terrain);
  evidence_table.Add("correlation-estimate/Astro", openord);
  std::printf("%-8s | %-8s %-8s | %-8s %-8s   (GCI=%.2f)\n", "Dataset",
              "Terr.acc", "Terr.t", "Open.acc", "Open.t", gci);
  std::printf("%-8s | %8.1f %8.1f | %8.1f %8.1f\n", "Astro",
              terrain.accuracy, terrain.mean_seconds, openord.accuracy,
              openord.mean_seconds);

  // Fig. 13 artifacts.
  const std::string out = bench::OutputDir();
  const VertexScalarField betw_field("betweenness", betweenness.values());
  const SuperTree tree(BuildVertexScalarTree(astro.graph, betw_field));
  const HeightField field = RasterizeTerrain(BuildTerrainLayout(tree));
  (void)WritePpm(
      RenderOblique(field, SuperNodeColors(tree, degree.values()), Camera{},
                    700, 520),
      out + "/fig13a_astro_terrain.ppm");
  std::vector<Rgb> colors(astro.graph.NumVertices());
  for (VertexId v = 0; v < astro.graph.NumVertices(); ++v)
    colors[v] = FourBandColor(betweenness[v] / betweenness.MaxValue());
  (void)WriteNodeLinkSvg(astro.graph, openord_positions, colors,
                         out + "/fig13b_astro_openord.svg", 600, 1.5);

  std::printf("\nshape check: terrain == 1.0 accuracy and lowest time on "
              "Tasks 1-2; Task 2 punishes the 2D tools hardest (edge "
              "tracing); Task 3 favors terrain on both metrics.\n");
  // The line CI's bench-smoke greps: terrain must be weakly best on
  // accuracy AND time in every row of Tables IV-VI.
  std::printf("accuracy ordering (terrain >= 2D tools on every row): %s\n",
              evidence_table.Dominates(StudyTool::kTerrain) ? "HOLDS"
                                                            : "VIOLATED");
  return 0;
}
