// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Table II: terrain visualization time cost. For each dataset × scalar
// (KC(v), KT(e)) reports:
//   Nt — super tree size after Algorithm 2,
//   tc — tree construction time (Algorithm 1 or 3, + Algorithm 2),
//   te — the naive dual-graph edge-tree baseline (edge scalars only;
//        attempted through the guarded builder, so hub-heavy rows print
//        "guard" instead of burning hours),
//   tv — terrain generation time; blocked on terrain/ (ROADMAP item 10),
//        printed as "-" until that subsystem lands.
// Shape to hold: tc seconds-scale even on the largest graphs; te >> tc and
// exploding with hub degrees (the paper's 16334 s Wikipedia cell).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "metrics/kcore.h"
#include "metrics/ktruss.h"
#include "scalar/edge_scalar_tree.h"
#include "scalar/scalar_tree.h"
#include "scalar/super_tree.h"

namespace {

using namespace graphscape;

// Line-graph cap for the per-row naive attempts: large enough that the
// small collaboration sets run it, small enough that hub-heavy rows are
// refused instantly (the guard checks Σ deg² before building anything).
constexpr uint64_t kRowNaiveCap = 1ull << 24;

void RunVertexRow(const Dataset& ds) {
  WallTimer timer;
  const VertexScalarField kc =
      VertexScalarField::FromCounts("KC", CoreNumbers(ds.graph));
  const ScalarTree tree = BuildVertexScalarTree(ds.graph, kc);
  const SuperTree super(tree);
  const double tc = timer.Seconds();
  std::printf("%-11s %-6s %9u %9.4f %9s %9s\n", ds.spec.name, "KC(v)",
              super.NumNodes(), tc, "-", "-");
}

void RunEdgeRow(const Dataset& ds) {
  WallTimer timer;
  const EdgeScalarField kt =
      EdgeScalarField::FromCounts("KT", TrussNumbers(ds.graph));
  const double t_field = timer.Seconds();

  timer.Restart();
  const ScalarTree tree = BuildEdgeScalarTree(ds.graph, kt);
  const SuperTree super(tree);
  const double tc = timer.Seconds();

  timer.Restart();
  const auto naive = BuildEdgeScalarTreeNaive(ds.graph, kt, kRowNaiveCap);
  std::string te;
  if (naive.ok()) {
    const SuperTree naive_super(naive.value());
    te = StrPrintf("%.4f", timer.Seconds());
  } else {
    te = "guard";  // line graph would blow past the size cap
  }
  std::printf("%-11s %-6s %9u %9.4f %9s %9s   (KT field: %.2fs)\n",
              ds.spec.name, "KT(e)", super.NumNodes(), tc, te.c_str(), "-",
              t_field);
}

}  // namespace

int main() {
  using namespace graphscape;
  bench::Banner("Table II — terrain visualization time cost (sec)",
                "paper Table II (Nt, tc, te per dataset x scalar; tv "
                "blocked on terrain/)");
  std::printf("%-11s %-6s %9s %9s %9s %9s\n", "Dataset", "Scalar", "Nt", "tc",
              "te", "tv");

  for (const DatasetId id : AllDatasetIds()) {
    DatasetOptions options;
    if (bench::FullScale()) options.scale_divisor = 1;
    const Dataset ds = MakeDataset(id, options);
    RunVertexRow(ds);
    RunEdgeRow(ds);
  }

  // The te-vs-tc gap at matched scale: the paper's headline is the naive
  // method being orders slower (>300x on Wikipedia). Demonstrate the gap on
  // a scaled copy where the naive method still terminates.
  std::printf("\nnaive-vs-optimized gap on scaled Wikipedia analogue:\n");
  DatasetOptions scaled;
  scaled.scale_divisor = 256;
  const Dataset wiki = MakeDataset(DatasetId::kWikipedia, scaled);
  const EdgeScalarField kt =
      EdgeScalarField::FromCounts("KT", TrussNumbers(wiki.graph));
  WallTimer timer;
  const SuperTree opt(BuildEdgeScalarTree(wiki.graph, kt));
  const double tc = timer.Seconds();
  timer.Restart();
  const auto naive = BuildEdgeScalarTreeNaive(wiki.graph, kt, 1ull << 33);
  const double te = timer.Seconds();
  if (naive.ok()) {
    std::printf("  |V|=%u |E|=%llu: tc=%.4fs te=%.4fs -> naive is %.0fx "
                "slower\n",
                wiki.graph.NumVertices(),
                static_cast<unsigned long long>(wiki.graph.NumEdges()), tc,
                te, te / std::max(1e-9, tc));
  } else {
    std::printf("  naive guarded out: %s\n",
                naive.status().ToString().c_str());
  }
  return 0;
}
