// Copyright 2026 The GraphScape Authors.
// Licensed under the Apache License, Version 2.0.
//
// Microbenchmarks: Algorithm 3 vs the naive dual-graph method — the paper's
// central performance claim (§II-C, Table II's tc vs te). The hub ablation
// shows the naive method's Θ(sum deg²) blowup on skewed graphs while
// Algorithm 3 stays O(E log E).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "scalar/edge_scalar_tree.h"

namespace graphscape {
namespace {

EdgeScalarField RandomEdgeField(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(g.NumEdges());
  for (auto& v : values) v = static_cast<double>(rng.UniformInt(64));
  return EdgeScalarField("f", std::move(values));
}

void BM_EdgeTree_Optimized(benchmark::State& state) {
  Rng rng(1);
  const Graph g = BarabasiAlbert(static_cast<uint32_t>(state.range(0)), 4,
                                 &rng);
  const EdgeScalarField field = RandomEdgeField(g, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEdgeScalarTree(g, field));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_EdgeTree_Optimized)->Range(1 << 10, 1 << 16);

void BM_EdgeTree_Naive(benchmark::State& state) {
  Rng rng(1);
  const Graph g = BarabasiAlbert(static_cast<uint32_t>(state.range(0)), 4,
                                 &rng);
  const EdgeScalarField field = RandomEdgeField(g, 2);
  for (auto _ : state) {
    auto result = BuildEdgeScalarTreeNaive(g, field);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_EdgeTree_Naive)->Range(1 << 10, 1 << 14);

// Fixed-size sequential reference for the /threads:N rows below.
void BM_BuildEdgeScalarTree(benchmark::State& state) {
  Rng rng(1);
  const Graph g = BarabasiAlbert(1 << 16, 4, &rng);
  const EdgeScalarField field = RandomEdgeField(g, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEdgeScalarTree(g, field));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildEdgeScalarTree);

// Parallel edge-tree build: the O(m log m) sort runs on all lanes; the
// sweep itself stays sequential by design (the plateau chain makes
// same-component edges real writes, so they cannot be pruned chunk-
// locally — docs/PARALLELISM.md). Expect sort-fraction speedup only.
void BM_BuildEdgeScalarTreeParallel(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  const Graph g = BarabasiAlbert(1 << 16, 4, &rng);
  const EdgeScalarField field = RandomEdgeField(g, 2);
  const ParallelOptions options{threads, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEdgeScalarTreeParallel(g, field, options));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildEdgeScalarTreeParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

// Hub ablation: a star-heavy graph where sum deg^2 explodes. Algorithm 3 is
// immune; the naive method pays quadratically in the hub degree.
Graph HubGraph(uint32_t hub_degree) {
  GraphBuilder builder(hub_degree + 200);
  for (uint32_t i = 1; i <= hub_degree; ++i) builder.AddEdge(0, i);
  // A sparse tail so the graph isn't just a star.
  for (uint32_t i = hub_degree; i + 1 < hub_degree + 200; ++i)
    builder.AddEdge(i, i + 1);
  return builder.Build();
}

void BM_EdgeTree_Optimized_Hub(benchmark::State& state) {
  const Graph g = HubGraph(static_cast<uint32_t>(state.range(0)));
  const EdgeScalarField field = RandomEdgeField(g, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEdgeScalarTree(g, field));
  }
}
BENCHMARK(BM_EdgeTree_Optimized_Hub)->Range(256, 8192);

void BM_EdgeTree_Naive_Hub(benchmark::State& state) {
  const Graph g = HubGraph(static_cast<uint32_t>(state.range(0)));
  const EdgeScalarField field = RandomEdgeField(g, 3);
  for (auto _ : state) {
    auto result = BuildEdgeScalarTreeNaive(g, field);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EdgeTree_Naive_Hub)->Range(256, 4096);

}  // namespace
}  // namespace graphscape
